//! Workspace façade crate: re-exports every `visim` crate so the examples
//! and integration tests in this repository have a single dependency.
pub use media_dsp as dsp;
pub use media_image as image;
pub use media_jpeg as jpeg;
pub use media_kernels as kernels;
pub use media_mpeg as mpeg;
pub use visim as study;
pub use visim_cpu as cpu;
pub use visim_isa as isa;
pub use visim_mem as mem;
pub use visim_trace as trace;
