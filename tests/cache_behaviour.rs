//! Cross-crate integration tests for the §4.1 cache-size results.

use media_kernels::Variant;
use visim::bench::{Bench, WorkloadSize};
use visim::experiment::{l1_sweep, l2_sweep, run_timed};
use visim::Arch;
use visim_mem::MemConfig;

fn size() -> WorkloadSize {
    let mut s = WorkloadSize::tiny();
    s.image_w = 64;
    s.image_h = 48;
    s.dotprod_n = 8192;
    s
}

#[test]
fn streaming_kernels_are_insensitive_to_l2_size() {
    // §4.1: "Increasing the size of the L2 cache has no impact on the
    // performance of the 6 image processing kernels."
    for bench in [Bench::Addition, Bench::Scaling] {
        let pts = l2_sweep(bench, &size(), &[128 << 10, 1 << 20]);
        let small = pts[0].summary.cycles() as f64;
        let large = pts[1].summary.cycles() as f64;
        assert!(
            (small / large) < 1.05,
            "{}: streaming data has no reuse ({:.3})",
            bench.name(),
            small / large
        );
    }
}

#[test]
fn progressive_jpeg_benefits_from_a_working_set_sized_l2() {
    // §4.1: the progressive codecs reuse the image-sized coefficient
    // buffer; a cache that captures it helps (<= ~1.2x in the paper).
    // At this miniature scale the whole working set fits even in 128K,
    // so instead shrink the L2 to force the effect.
    // (The 64K default L1 swallows the miniature working set, so probe
    // with an 8K L1 to expose the L2 reuse.)
    let cfg = |l2: u64| {
        let mut m = MemConfig::default();
        m.l1.size = 8 << 10;
        m.l2.size = l2;
        m
    };
    let small = run_timed(
        Bench::Djpeg,
        Arch::Ooo4,
        Some(cfg(16 << 10)),
        &size(),
        Variant::VIS,
    );
    let large = run_timed(
        Bench::Djpeg,
        Arch::Ooo4,
        Some(cfg(128 << 10)),
        &size(),
        Variant::VIS,
    );
    let ratio = small.cycles() as f64 / large.cycles() as f64;
    assert!(
        ratio > 1.005,
        "progressive decode likes a bigger L2: {ratio:.3}"
    );
}

#[test]
fn small_l1_works_for_kernels_but_hurts_table_driven_codecs() {
    // §4.1: L1 size has no impact on the streaming kernels; the
    // benchmarks with table working sets want 4-16K.
    let pts = l1_sweep(Bench::Addition, &size(), &[1 << 10, 64 << 10]);
    let ratio = pts[0].summary.cycles() as f64 / pts[1].summary.cycles() as f64;
    assert!(
        ratio < 1.25,
        "addition barely cares about L1 size: {ratio:.3}"
    );

    let pts = l1_sweep(Bench::DjpegNp, &size(), &[1 << 10, 16 << 10, 64 << 10]);
    let spread = pts[0].summary.cycles() as f64 / pts.last().unwrap().summary.cycles() as f64;
    assert!(
        spread > 1.02,
        "table-driven codec feels a 1K L1: {spread:.3}"
    );
    // 16K gets close to 64K (paper: within 3%; allow slack at tiny scale).
    let near = pts[1].summary.cycles() as f64 / pts.last().unwrap().summary.cycles() as f64;
    assert!(near < 1.10, "16K L1 is nearly enough: {near:.3}");
}

#[test]
fn mshr_starvation_slows_streaming_writes() {
    // §3.1: the MSHR write backup. Halving MSHRs must not speed
    // anything up, and 2 MSHRs must clearly hurt a streaming kernel.
    let mem_with = |n: u32| {
        let mut m = MemConfig::default();
        m.l1.mshrs = n;
        m
    };
    let few = run_timed(
        Bench::Addition,
        Arch::Ooo4,
        Some(mem_with(2)),
        &size(),
        Variant::VIS,
    );
    let many = run_timed(
        Bench::Addition,
        Arch::Ooo4,
        Some(mem_with(12)),
        &size(),
        Variant::VIS,
    );
    // Like the paper's observation, load-miss overlap rarely exceeds
    // 2-3, so the slowdown is modest — but the structural rejections
    // must appear and the ordering must hold.
    assert!(few.cycles() >= many.cycles());
    assert!(
        few.mem.rejects_mshr_full > 100,
        "2 MSHRs cause structural rejections: {}",
        few.mem.rejects_mshr_full
    );
    // The byte-granularity write backup (§3.1) shows as merge-limit
    // rejections in the SCALAR variant even with all 12 MSHRs.
    let scalar = run_timed(Bench::Addition, Arch::Ooo4, None, &size(), Variant::SCALAR);
    assert!(
        scalar.mem.rejects_merge_limit > 50,
        "scalar byte stores exhaust the 8-merge limit: {}",
        scalar.mem.rejects_merge_limit
    );
}
