//! Cross-crate integration tests: the paper's headline claims must hold
//! qualitatively on miniature inputs.

use media_kernels::Variant;
use visim::bench::{Bench, WorkloadSize};
use visim::experiment::{fig3, run_counted, run_timed};
use visim::Arch;

fn size() -> WorkloadSize {
    let mut s = WorkloadSize::tiny();
    s.image_w = 64;
    s.image_h = 48;
    s.dotprod_n = 8192;
    s
}

#[test]
fn claim_base_machine_is_compute_bound() {
    // §3: "On the base single-issue in-order processor, all the
    // benchmarks are primarily compute-bound."
    for bench in [Bench::Addition, Bench::Thresh, Bench::CjpegNp] {
        let s = run_timed(bench, Arch::InOrder1, None, &size(), Variant::SCALAR);
        let bd = s.cpu.breakdown();
        assert!(
            bd.memory() < 0.5 * s.cycles() as f64,
            "{}: memory fraction {:.2}",
            bench.name(),
            bd.memory() / s.cycles() as f64
        );
    }
}

#[test]
fn claim_ilp_features_speed_up_every_benchmark() {
    // §3.1: multiple issue + out-of-order = 2.3x-4.2x. On miniature
    // inputs we assert ordering and a healthy magnitude.
    for bench in [Bench::Addition, Bench::Conv, Bench::CjpegNp] {
        let t1 = run_timed(bench, Arch::InOrder1, None, &size(), Variant::SCALAR).cycles();
        let t4 = run_timed(bench, Arch::InOrder4, None, &size(), Variant::SCALAR).cycles();
        let to = run_timed(bench, Arch::Ooo4, None, &size(), Variant::SCALAR).cycles();
        assert!(t4 < t1, "{}: multiple issue helps", bench.name());
        assert!(to < t4, "{}: out-of-order helps more", bench.name());
        let speedup = t1 as f64 / to as f64;
        assert!(
            speedup > 1.5,
            "{}: ILP speedup only {speedup:.2}",
            bench.name()
        );
    }
}

#[test]
fn claim_vis_speedups_range_and_ordering() {
    // §3.2: 1.1x-4.2x on the out-of-order machine; kernels near the
    // top, Huffman-bound JPEG codecs near the bottom.
    let mut speedups = Vec::new();
    for bench in [
        Bench::Scaling,
        Bench::Thresh,
        Bench::Dotprod,
        Bench::DjpegNp,
    ] {
        let s = run_timed(bench, Arch::Ooo4, None, &size(), Variant::SCALAR).cycles();
        let v = run_timed(bench, Arch::Ooo4, None, &size(), Variant::VIS).cycles();
        speedups.push((bench, s as f64 / v as f64));
    }
    for &(b, sp) in &speedups {
        assert!(sp > 1.0, "{}: VIS never hurts ({sp:.2})", b.name());
    }
    let get = |b: Bench| speedups.iter().find(|(x, _)| *x == b).unwrap().1;
    assert!(
        get(Bench::Scaling) > get(Bench::DjpegNp),
        "kernels gain more than Huffman-bound codecs: {:.2} vs {:.2}",
        get(Bench::Scaling),
        get(Bench::DjpegNp)
    );
}

#[test]
fn claim_kernels_become_memory_bound_with_ilp_and_vis() {
    // §3.3: five image kernels spend 55-66% in memory stalls after
    // ILP+VIS. Streaming kernels must be majority-memory here.
    for bench in [Bench::Addition, Bench::Scaling] {
        let s = run_timed(bench, Arch::Ooo4, None, &size(), Variant::VIS);
        let frac = s.cpu.breakdown().memory() / s.cycles() as f64;
        assert!(
            frac > 0.5,
            "{}: memory-bound after VIS ({frac:.2})",
            bench.name()
        );
    }
}

#[test]
fn claim_prefetching_makes_everything_compute_bound() {
    // §4.2 + conclusion: with software prefetching all benchmarks
    // revert to being compute-bound.
    let rows = fig3(&size());
    for r in &rows {
        let frac = r.pf.cpu.breakdown().memory() / r.pf.cycles() as f64;
        assert!(
            frac < 0.5,
            "{}: still memory-bound after PF ({frac:.2})",
            r.bench.name()
        );
        // Prefetch instruction overhead may cost a sliver when the
        // working set already fits the caches (tiny inputs).
        assert!(
            (r.pf.cycles() as f64) <= 1.03 * r.vis.cycles() as f64,
            "{}: prefetching is at worst neutral ({} vs {})",
            r.bench.name(),
            r.pf.cycles(),
            r.vis.cycles()
        );
    }
}

#[test]
fn claim_vis_cuts_dynamic_instruction_counts() {
    // Figure 2's shape: kernels drop to ~18-30%, dotprod stays high,
    // JPEG codecs in between.
    let sz = size();
    let ratio = |b: Bench| {
        let base = run_counted(b, &sz, Variant::SCALAR).retired as f64;
        let vis = run_counted(b, &sz, Variant::VIS).retired as f64;
        vis / base
    };
    let blend = ratio(Bench::Blend);
    let dotprod = ratio(Bench::Dotprod);
    let cjpeg = ratio(Bench::Cjpeg);
    assert!(blend < 0.4, "blend ratio {blend:.2}");
    assert!(dotprod > blend, "dotprod is the weakest kernel win");
    assert!(cjpeg > blend, "cjpeg {cjpeg:.2} vs blend {blend:.2}");
    assert!(cjpeg < 1.0 && dotprod < 1.0);
}

#[test]
fn determinism_across_full_timed_runs() {
    let a = run_timed(Bench::Blend, Arch::Ooo4, None, &size(), Variant::VIS);
    let b = run_timed(Bench::Blend, Arch::Ooo4, None, &size(), Variant::VIS);
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.cpu.retired, b.cpu.retired);
    assert_eq!(a.mem, b.mem);
}
