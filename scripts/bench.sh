#!/usr/bin/env bash
# End-to-end wall-clock harness for the figure/table binaries: times
# every binary at the given workload size and emits BENCH_runtime.json,
# the repo's perf-trajectory baseline (EXPERIMENTS.md records the
# before/after history).
#
# Usage:            scripts/bench.sh
#   SIZE=tiny       workload size passed to every binary (default study)
#   VISIM_JOBS=N    worker count for the experiment executor
#                   (default: auto, one worker per core)
#   BENCH_OUT=path  output JSON path (default BENCH_runtime.json)
#
# A degraded binary (nonzero exit, e.g. under VISIM_FAIL_BENCH) is still
# timed and recorded with its exit status; the harness itself only fails
# on build errors.
set -euo pipefail
cd "$(dirname "$0")/.."

SIZE="${SIZE:-study}"
OUT="${BENCH_OUT:-BENCH_runtime.json}"
BINARIES=(fig1 fig2 fig3 sweep_l1 sweep_l2 kernels14 ablation tables)

echo "== build (release, offline, workspace) =="
# --workspace: a plain root build only covers the root package and its
# lib deps; the visim-bench binaries would stay stale.
cargo build --release --offline --workspace

cores=$(nproc 2>/dev/null || echo 1)
jobs="${VISIM_JOBS:-auto}"
git_rev=$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)

echo "== timing (size=$SIZE, jobs=$jobs, cores=$cores) =="
rows=""
total=0
for bin in "${BINARIES[@]}"; do
  start=$(date +%s%N)
  status=0
  ./target/release/"$bin" "$SIZE" >/dev/null 2>&1 || status=$?
  end=$(date +%s%N)
  secs=$(awk -v s="$start" -v e="$end" 'BEGIN{printf "%.3f", (e-s)/1e9}')
  total=$(awk -v t="$total" -v s="$secs" 'BEGIN{printf "%.3f", t+s}')
  printf '%-10s %8ss  (exit %d)\n' "$bin" "$secs" "$status"
  [ -n "$rows" ] && rows+=$',\n'
  rows+="    {\"name\": \"$bin\", \"seconds\": $secs, \"exit\": $status}"
done

cat > "$OUT" <<EOF
{
  "schema": "visim-bench-runtime-v2",
  "git_rev": "$git_rev",
  "size": "$SIZE",
  "jobs": "$jobs",
  "host_cores": $cores,
  "binaries": [
$rows
  ],
  "total_seconds": $total
}
EOF

echo "== total ${total}s; wrote $OUT =="

# The timing loop above regenerated results/json/ as a side effect, so
# the fidelity gate runs against exactly what was just measured.
# pipetrace is not part of the timed 8-binary baseline, but validate
# checks its trace-vs-aggregate artifact, so refresh it first.
./target/release/pipetrace --attribution "$SIZE" >/dev/null 2>&1 || true
fidelity=$(./target/release/validate results/json 2>/dev/null | tail -1) || true
echo "== ${fidelity:-fidelity: validate did not run} =="
