#!/usr/bin/env bash
# End-to-end wall-clock harness for the figure/table binaries: times
# every binary at the given workload size and emits BENCH_runtime.json,
# the repo's perf-trajectory baseline (EXPERIMENTS.md records the
# before/after history).
#
# Each binary is timed three times: a *cold* pass starting from a
# purged on-disk trace cache (VISIM_TRACE_DIR, default
# target/trace-cache — the harness deletes and repopulates it), a
# *warm* pass that reuses the cache, and a *sampled* pass running the
# same suite under `--sample` (SMARTS-style windowed estimation) into
# a separate results directory. A fourth pass times the visim-serve
# daemon answering an already-stored manifest (every cell a store hit),
# the serving-latency headline. All four land in the JSON
# (visim-bench-runtime-v6: seconds/exit, seconds_warm/exit_warm, and
# seconds_sampled/exit_sampled per binary; total_seconds,
# total_seconds_warm, total_seconds_sampled, the exact-vs-sampled
# suite speedup, and serve_cells/serve_seconds_warm/
# requests_per_sec_warm plus the per-request hit-path latency
# percentiles serve_p50_ms_warm/serve_p99_ms_warm — read from the
# daemon's live telemetry — for the daemon pass).
#
# Usage:                scripts/bench.sh
#   SIZE=tiny           workload size passed to every binary (default study)
#   VISIM_JOBS=N        worker count for the experiment executor
#                       (default: auto, one worker per core)
#   BENCH_OUT=path      output JSON path (default BENCH_runtime.json)
#   VISIM_TRACE_DIR=dir on-disk trace cache location (purged at start)
#
# A degraded binary (nonzero exit, e.g. under VISIM_FAIL_BENCH) is still
# timed and recorded with its exit status; the harness itself only fails
# on build errors.
set -euo pipefail
cd "$(dirname "$0")/.."

SIZE="${SIZE:-study}"
OUT="${BENCH_OUT:-BENCH_runtime.json}"
BINARIES=(fig1 fig2 fig3 sweep_l1 sweep_l2 kernels14 ablation tables)
# Absolute: the sampled pass runs in a subdirectory and must share it.
export VISIM_TRACE_DIR="${VISIM_TRACE_DIR:-$PWD/target/trace-cache}"
ROOT="$PWD"
SAMPLED_DIR="$ROOT/target/bench-sampled"

echo "== build (release, offline, workspace) =="
# --workspace: a plain root build only covers the root package and its
# lib deps; the visim-bench binaries would stay stale.
cargo build --release --offline --workspace

cores=$(nproc 2>/dev/null || echo 1)
jobs="${VISIM_JOBS:-auto}"
git_rev=$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)

# One timing pass over every binary; appends to the named seconds/exit
# arrays and adds to the named total. $4 is the working directory (the
# binaries write results/ relative to it), remaining args are passed to
# every binary (e.g. --sample).
time_pass() {
  local -n secs_out=$1 exit_out=$2
  local total_var=$3 workdir=$4
  shift 4
  local bin start end status secs
  for bin in "${BINARIES[@]}"; do
    start=$(date +%s%N)
    status=0
    (cd "$workdir" && "$ROOT/target/release/$bin" "$SIZE" "$@" \
      >/dev/null 2>&1) || status=$?
    end=$(date +%s%N)
    secs=$(awk -v s="$start" -v e="$end" 'BEGIN{printf "%.3f", (e-s)/1e9}')
    printf -v "$total_var" '%s' \
      "$(awk -v t="${!total_var}" -v s="$secs" 'BEGIN{printf "%.3f", t+s}')"
    printf '%-10s %8ss  (exit %d)\n' "$bin" "$secs" "$status"
    secs_out+=("$secs")
    exit_out+=("$status")
  done
}

echo "== timing pass 1/3: cold trace cache (size=$SIZE, jobs=$jobs, cores=$cores) =="
rm -rf "${VISIM_TRACE_DIR:?}"
cold_secs=() cold_exit=() warm_secs=() warm_exit=() sampled_secs=() sampled_exit=()
total=0
time_pass cold_secs cold_exit total "$ROOT"

echo "== timing pass 2/3: warm trace cache =="
total_warm=0
time_pass warm_secs warm_exit total_warm "$ROOT"

echo "== timing pass 3/3: sampled (--sample, default geometry) =="
# Separate results directory: the exact artifacts in results/json stay
# the ones the fidelity gate below validates, and the sampled twins
# feed the drift gate.
rm -rf "$SAMPLED_DIR"
mkdir -p "$SAMPLED_DIR"
total_sampled=0
time_pass sampled_secs sampled_exit total_sampled "$SAMPLED_DIR" --sample

speedup=$(awk -v w="$total_warm" -v s="$total_sampled" \
  'BEGIN{printf "%.2f", (s > 0) ? w / s : 0}')

echo "== timing pass 4/4: warm-hit serve (daemon, fig2 manifest) =="
# Populate a dedicated store through the daemon, then time a second
# submission of the same manifest: every cell is a checksum-validated
# store hit, so this measures pure serving latency (protocol + store
# reads), not simulation.
SERVE_DIR="$ROOT/target/bench-serve"
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
serve="$ROOT/target/release/visim-serve"
(cd "$SERVE_DIR" && "$serve" --addr-file addr.txt >/dev/null 2>&1) \
  & serve_pid=$!
for _ in $(seq 1 300); do
  [ -s "$SERVE_DIR/addr.txt" ] && break
  sleep 0.1
done
serve_addr=$(sed 's/.*"addr":"\([^"]*\)".*/\1/' "$SERVE_DIR/addr.txt")
serve_cells=0 serve_secs=0 rps_warm=0 serve_p50_ms=0 serve_p99_ms=0
if (cd "$SERVE_DIR" && "$serve" client "$serve_addr" manifest fig2 "$SIZE" \
    > cold-serve.txt 2>/dev/null); then
  start=$(date +%s%N)
  (cd "$SERVE_DIR" && "$serve" client "$serve_addr" manifest fig2 "$SIZE" \
    > warm-serve.txt 2>/dev/null) || true
  end=$(date +%s%N)
  serve_secs=$(awk -v s="$start" -v e="$end" 'BEGIN{printf "%.3f", (e-s)/1e9}')
  serve_cells=$(sed -n 's/.*"event":"done".*"cells":\([0-9]*\).*/\1/p' \
    "$SERVE_DIR/warm-serve.txt" | head -1)
  serve_cells="${serve_cells:-0}"
  rps_warm=$(awk -v c="$serve_cells" -v s="$serve_secs" \
    'BEGIN{printf "%.1f", (s > 0) ? c / s : 0}')
  # Per-request warm-hit latency percentiles from the daemon's live
  # telemetry (the stats event's hit-path histogram, ns -> ms).
  (cd "$SERVE_DIR" && "$serve" client "$serve_addr" stats --json \
    > stats-serve.txt 2>/dev/null) || true
  hit_p50_ns=$(sed -n 's/.*"hit":{"count":[0-9]*,"p50_ns":\([0-9]*\).*/\1/p' \
    "$SERVE_DIR/stats-serve.txt" | head -1)
  hit_p99_ns=$(sed -n \
    's/.*"hit":{[^}]*"p99_ns":\([0-9]*\).*/\1/p' \
    "$SERVE_DIR/stats-serve.txt" | head -1)
  serve_p50_ms=$(awk -v n="${hit_p50_ns:-0}" 'BEGIN{printf "%.3f", n/1e6}')
  serve_p99_ms=$(awk -v n="${hit_p99_ns:-0}" 'BEGIN{printf "%.3f", n/1e6}')
  printf '%-10s %8ss  (%s cells, %s req/s warm, hit p50 %sms p99 %sms)\n' \
    "serve" "$serve_secs" "$serve_cells" "$rps_warm" \
    "$serve_p50_ms" "$serve_p99_ms"
else
  echo "serve pass skipped: cold manifest submission failed"
fi
(cd "$SERVE_DIR" && "$serve" client "$serve_addr" shutdown \
  >/dev/null 2>&1) || true
wait "$serve_pid" 2>/dev/null || true

rows=""
for i in "${!BINARIES[@]}"; do
  [ -n "$rows" ] && rows+=$',\n'
  rows+="    {\"name\": \"${BINARIES[$i]}\", \"seconds\": ${cold_secs[$i]}, \"exit\": ${cold_exit[$i]}, \"seconds_warm\": ${warm_secs[$i]}, \"exit_warm\": ${warm_exit[$i]}, \"seconds_sampled\": ${sampled_secs[$i]}, \"exit_sampled\": ${sampled_exit[$i]}}"
done

cat > "$OUT" <<EOF
{
  "schema": "visim-bench-runtime-v6",
  "git_rev": "$git_rev",
  "size": "$SIZE",
  "jobs": "$jobs",
  "host_cores": $cores,
  "binaries": [
$rows
  ],
  "total_seconds": $total,
  "total_seconds_warm": $total_warm,
  "total_seconds_sampled": $total_sampled,
  "speedup_exact_vs_sampled": $speedup,
  "serve_cells": ${serve_cells},
  "serve_seconds_warm": ${serve_secs},
  "requests_per_sec_warm": ${rps_warm},
  "serve_p50_ms_warm": ${serve_p50_ms},
  "serve_p99_ms_warm": ${serve_p99_ms}
}
EOF

echo "== total ${total}s cold, ${total_warm}s warm, ${total_sampled}s sampled (exact-vs-sampled speedup ${speedup}x), serve ${rps_warm} req/s warm; wrote $OUT =="

# The timing loop above regenerated results/json/ as a side effect, so
# the fidelity gate runs against exactly what was just measured.
# pipetrace is not part of the timed 8-binary baseline, but validate
# checks its trace-vs-aggregate artifact, so refresh it first.
./target/release/pipetrace --attribution "$SIZE" >/dev/null 2>&1 || true
fidelity=$(./target/release/validate results/json 2>/dev/null | tail -1) || true
echo "== ${fidelity:-fidelity: validate did not run} =="
# And the sampled twins must stay within their own error bars of the
# exact artifacts (plus the same paper bands).
drift=$(./target/release/validate --drift results/json \
  "$SAMPLED_DIR/results/json" 2>/dev/null | tail -1) || true
echo "== ${drift:-drift: validate did not run} =="
