#!/usr/bin/env bash
# Tier-1 verification, fully offline. This is the gate every change
# must pass: a hermetic build (no registry access — the workspace has
# zero third-party dependencies), the complete test suite across all
# crates, formatting, and the paper-fidelity gate (a tiny-size run of
# the figure binaries validated against the paper's tolerance bands).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline, workspace) =="
# --workspace: a plain root build only covers the root package and its
# lib deps; the visim-bench binaries would stay stale.
cargo build --release --offline --workspace

echo "== tests (workspace, offline) =="
cargo test --workspace --offline -q

echo "== clippy (workspace, offline) =="
cargo clippy --workspace --offline -- -D warnings

echo "== formatting =="
cargo fmt --check

echo "== paper-fidelity gate (tiny) =="
fidelity_dir=$(mktemp -d)
trap 'rm -rf "$fidelity_dir"' EXIT
for bin in fig1 fig2 fig3; do
  (cd "$fidelity_dir" && "$OLDPWD/target/release/$bin" tiny >/dev/null)
done

echo "== pipeline-trace gate (tiny) =="
# Single-run mode: emits the Chrome trace-event file, round-trips it
# through the visim-obs JSON parser (B/E balance included), and checks
# the trace-derived stall attribution against the Figure 1 aggregate —
# the binary exits nonzero if any of that fails.
(cd "$fidelity_dir" && "$OLDPWD/target/release/pipetrace" blend ooo-vis tiny >/dev/null)
test -s "$fidelity_dir/results/trace/blend.ooo-vis.trace.json"
# Matrix mode: every benchmark x config, aggregates only; validate then
# re-checks the trace-vs-aggregate invariant from the JSON artifact.
(cd "$fidelity_dir" && "$OLDPWD/target/release/pipetrace" --attribution tiny >/dev/null)
./target/release/validate "$fidelity_dir/results/json"

echo "== replay-equivalence gate (tiny) =="
# The trace cache records each dynamic instruction stream once and
# replays it per configuration; text output must be byte-identical to
# direct emission. Run cached (with an on-disk spill) vs direct and
# diff the reports.
replay_dir="$fidelity_dir/replay"
tdir="$replay_dir/trace-cache"
mkdir -p "$replay_dir/cached" "$replay_dir/direct"
for bin in fig1 sweep_l1; do
  (cd "$replay_dir/cached" && VISIM_TRACE_DIR="$tdir" \
    "$OLDPWD/target/release/$bin" tiny > "../$bin.cached.txt")
  (cd "$replay_dir/direct" && VISIM_NO_TRACE_CACHE=1 \
    "$OLDPWD/target/release/$bin" tiny > "../$bin.direct.txt")
  diff "$replay_dir/$bin.cached.txt" "$replay_dir/$bin.direct.txt"
done
# A corrupted on-disk trace must be purged and re-recorded, not fail
# the run or change its output.
victim=$(ls "$tdir"/*.vtrc | head -1)
printf 'garbage' >> "$victim"
(cd "$replay_dir/cached" && VISIM_TRACE_DIR="$tdir" \
  "$OLDPWD/target/release/fig1" tiny > "../fig1.healed.txt" 2>/dev/null)
diff "$replay_dir/fig1.cached.txt" "$replay_dir/fig1.healed.txt"

echo "verify: OK"
