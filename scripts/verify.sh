#!/usr/bin/env bash
# Tier-1 verification, fully offline. This is the gate every change
# must pass: a hermetic build (no registry access — the workspace has
# zero third-party dependencies), the complete test suite across all
# crates, and formatting.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test --workspace --offline -q

echo "== clippy (workspace, offline) =="
cargo clippy --workspace --offline -- -D warnings

echo "== formatting =="
cargo fmt --check

echo "verify: OK"
