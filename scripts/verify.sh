#!/usr/bin/env bash
# Tier-1 verification, fully offline. This is the gate every change
# must pass: a hermetic build (no registry access — the workspace has
# zero third-party dependencies), the complete test suite across all
# crates, formatting, and the paper-fidelity gate (a tiny-size run of
# the figure binaries validated against the paper's tolerance bands).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline, workspace) =="
# --workspace: a plain root build only covers the root package and its
# lib deps; the visim-bench binaries would stay stale.
cargo build --release --offline --workspace

echo "== tests (workspace, offline) =="
cargo test --workspace --offline -q

echo "== clippy (workspace, offline) =="
cargo clippy --workspace --offline -- -D warnings

echo "== formatting =="
cargo fmt --check

echo "== paper-fidelity gate (tiny) =="
fidelity_dir=$(mktemp -d)
trap 'rm -rf "$fidelity_dir"' EXIT
for bin in fig1 fig2 fig3; do
  (cd "$fidelity_dir" && "$OLDPWD/target/release/$bin" tiny >/dev/null)
done

echo "== pipeline-trace gate (tiny) =="
# Single-run mode: emits the Chrome trace-event file, round-trips it
# through the visim-obs JSON parser (B/E balance included), and checks
# the trace-derived stall attribution against the Figure 1 aggregate —
# the binary exits nonzero if any of that fails.
(cd "$fidelity_dir" && "$OLDPWD/target/release/pipetrace" blend ooo-vis tiny >/dev/null)
test -s "$fidelity_dir/results/trace/blend.ooo-vis.trace.json"
# Matrix mode: every benchmark x config, aggregates only; validate then
# re-checks the trace-vs-aggregate invariant from the JSON artifact.
(cd "$fidelity_dir" && "$OLDPWD/target/release/pipetrace" --attribution tiny >/dev/null)
./target/release/validate "$fidelity_dir/results/json"

echo "== sampled-drift gate (tiny) =="
# SMARTS-style sampled runs must agree with exact simulation: every
# sampled estimate lands within its own declared 95% CI (floored at
# ±5% relative CPI error), exact-fallback and counted cells match bit
# for bit, and the sampled Figures 1-3 still pass the paper-fidelity
# bands above. Geometry 2000:10000 keeps the per-window pipeline
# fill/drain transient small at tiny size while still sampling every
# timed cell (tiny streams are long enough for >= 2 windows).
sampled_dir="$fidelity_dir/sampled"
mkdir -p "$sampled_dir"
for bin in fig1 fig2 fig3; do
  (cd "$sampled_dir" && "$OLDPWD/target/release/$bin" tiny --sample 2000:10000 \
    --no-store >/dev/null)
done
./target/release/validate --drift "$fidelity_dir/results/json" \
  "$sampled_dir/results/json"

echo "== replay-equivalence gate (tiny) =="
# The trace cache records each dynamic instruction stream once and
# replays it per configuration; text output must be byte-identical to
# direct emission. Run cached (with an on-disk spill) vs direct and
# diff the reports.
replay_dir="$fidelity_dir/replay"
tdir="$replay_dir/trace-cache"
mkdir -p "$replay_dir/cached" "$replay_dir/direct"
# VISIM_SPILL_EMIT_MBPS: tiny streams all re-emit far faster than the
# spill policy's disk-rate threshold, so force every stream to disk —
# this gate is about the spill path itself.
for bin in fig1 sweep_l1; do
  (cd "$replay_dir/cached" && VISIM_TRACE_DIR="$tdir" \
    VISIM_SPILL_EMIT_MBPS=1000000 \
    "$OLDPWD/target/release/$bin" tiny > "../$bin.cached.txt")
  (cd "$replay_dir/direct" && VISIM_NO_TRACE_CACHE=1 \
    "$OLDPWD/target/release/$bin" tiny > "../$bin.direct.txt")
  diff "$replay_dir/$bin.cached.txt" "$replay_dir/$bin.direct.txt"
done
# A corrupted on-disk trace must be purged and re-recorded, not fail
# the run or change its output.
victim=$(ls "$tdir"/*.vtrc | head -1)
printf 'garbage' >> "$victim"
(cd "$replay_dir/cached" && VISIM_TRACE_DIR="$tdir" \
  VISIM_SPILL_EMIT_MBPS=1000000 \
  "$OLDPWD/target/release/fig1" tiny > "../fig1.healed.txt" 2>/dev/null)
diff "$replay_dir/fig1.cached.txt" "$replay_dir/fig1.healed.txt"

echo "== durability gate: store equivalence + resume (tiny) =="
# The result store must be invisible in the results: store-on,
# store-off, and fully-warm --resume runs are byte-identical.
store_dir="$fidelity_dir/store-equiv"
mkdir -p "$store_dir/on" "$store_dir/off"
(cd "$store_dir/on" && "$OLDPWD/target/release/fig1" tiny > ../on.txt)
(cd "$store_dir/off" && "$OLDPWD/target/release/fig1" tiny --no-store > ../off.txt)
diff "$store_dir/on.txt" "$store_dir/off.txt"
ls "$store_dir/on/results/store"/*.vcell >/dev/null  # cells persisted
if ls "$store_dir/off/results/store"/*.vcell >/dev/null 2>&1; then
  echo "--no-store still wrote cells"; exit 1
fi
(cd "$store_dir/on" && "$OLDPWD/target/release/fig1" tiny --resume \
  > ../resumed.txt 2>/dev/null)
diff "$store_dir/on.txt" "$store_dir/resumed.txt"

echo "== durability gate: kill-resume convergence (tiny) =="
# SIGKILL a run once at least one cell is durable; --resume must then
# converge to the uninterrupted run's bytes.
kill_dir="$fidelity_dir/kill"
mkdir -p "$kill_dir/run"
(cd "$kill_dir/run" && "$OLDPWD/target/release/fig1" tiny \
  >/dev/null 2>&1) & victim=$!
for _ in $(seq 1 600); do
  if ls "$kill_dir/run/results/store"/*.vcell >/dev/null 2>&1; then break; fi
  if ! kill -0 "$victim" 2>/dev/null; then break; fi
  sleep 0.1
done
kill -9 "$victim" 2>/dev/null || true  # a naturally-finished run is fine
wait "$victim" 2>/dev/null || true
ls "$kill_dir/run/results/store"/*.vcell >/dev/null  # something survived
(cd "$kill_dir/run" && "$OLDPWD/target/release/fig1" tiny --resume \
  > ../resumed.txt 2>/dev/null)
diff "$store_dir/on.txt" "$kill_dir/resumed.txt"

echo "== durability gate: fault matrix (tiny) =="
fault_dir="$fidelity_dir/faults"
# 1. A transient fault on one cell's first attempt heals via retry:
#    exit 0 and byte-identical output.
mkdir -p "$fault_dir/transient"
(cd "$fault_dir/transient" && VISIM_FAULT=cell.transient:conv:0 \
  "$OLDPWD/target/release/fig1" tiny > ../transient.txt 2>/dev/null)
diff "$store_dir/on.txt" "$fault_dir/transient.txt"
# 2. Torn store writes (atomic-write discipline bypassed): the run is
#    unaffected; a clean resume purges the tears and converges.
mkdir -p "$fault_dir/torn"
(cd "$fault_dir/torn" && VISIM_FAULT=store.write.torn:1/4 \
  "$OLDPWD/target/release/fig1" tiny > ../torn.txt 2>/dev/null)
diff "$store_dir/on.txt" "$fault_dir/torn.txt"
(cd "$fault_dir/torn" && "$OLDPWD/target/release/fig1" tiny --resume \
  > ../torn-resumed.txt 2>/dev/null)
diff "$store_dir/on.txt" "$fault_dir/torn-resumed.txt"
# 3. A workload panic degrades that benchmark to an error row: exit 1,
#    partial artifacts written, and a resume under the same fault is
#    stable (byte-identical to the failing run).
mkdir -p "$fault_dir/panic"
set +e
(cd "$fault_dir/panic" && VISIM_FAULT=cell.panic:conv \
  "$OLDPWD/target/release/fig1" tiny > ../panic.txt 2>/dev/null)
panic_exit=$?
set -e
test "$panic_exit" -ne 0
test -s "$fault_dir/panic/results/partial/fig1.txt"
set +e
(cd "$fault_dir/panic" && VISIM_FAULT=cell.panic:conv \
  "$OLDPWD/target/release/fig1" tiny --resume > ../panic-resumed.txt 2>/dev/null)
set -e
diff "$fault_dir/panic.txt" "$fault_dir/panic-resumed.txt"
# 4. Corrupted trace-cache spills are purged and re-recorded; two runs
#    under the same corruption rate stay byte-identical. (Spills forced
#    as in the replay gate — tiny streams would not spill on merit.)
mkdir -p "$fault_dir/spill"
(cd "$fault_dir/spill" && VISIM_FAULT=spill.corrupt:1/2 \
  VISIM_TRACE_DIR="$fault_dir/spill/tcache" VISIM_SPILL_EMIT_MBPS=1000000 \
  "$OLDPWD/target/release/fig1" tiny --no-store > ../spill1.txt 2>/dev/null)
(cd "$fault_dir/spill" && VISIM_FAULT=spill.corrupt:1/2 \
  VISIM_TRACE_DIR="$fault_dir/spill/tcache" VISIM_SPILL_EMIT_MBPS=1000000 \
  "$OLDPWD/target/release/fig1" tiny --no-store > ../spill2.txt 2>/dev/null)
diff "$fault_dir/spill1.txt" "$fault_dir/spill2.txt"
diff "$store_dir/on.txt" "$fault_dir/spill1.txt"

echo "== serve gate: daemon warm-hit round trip (tiny) =="
# Start the job daemon on an ephemeral port, submit the fig2 manifest
# twice, and require the second pass to be served 100% from the store
# (zero re-simulations), then shut down cleanly and leave a metrics doc.
serve_dir="$fidelity_dir/serve"
mkdir -p "$serve_dir"
serve="$PWD/target/release/visim-serve"
(cd "$serve_dir" && "$serve" --addr-file addr.txt >/dev/null 2>&1) & serve_pid=$!
for _ in $(seq 1 300); do
  if [ -s "$serve_dir/addr.txt" ]; then break; fi
  sleep 0.1
done
test -s "$serve_dir/addr.txt"
serve_addr=$(sed 's/.*"addr":"\([^"]*\)".*/\1/' "$serve_dir/addr.txt")
(cd "$serve_dir" && "$serve" client "$serve_addr" manifest fig2 tiny \
  > cold.txt)
(cd "$serve_dir" && "$serve" client "$serve_addr" manifest fig2 tiny \
  > warm.txt)
grep -q '"event":"done"' "$serve_dir/cold.txt"
# Warm pass: all 24 cells are store hits, nothing was simulated.
grep -q '"event":"done".*"ok":24,"failed":0,"hits":24,"misses":0' \
  "$serve_dir/warm.txt"
(cd "$serve_dir" && "$serve" client "$serve_addr" shutdown >/dev/null)
wait "$serve_pid"
test -s "$serve_dir/results/json/serve.json"
grep -q '"serve.hits": 24' "$serve_dir/results/json/serve.json"
(cd "$serve_dir" && "$serve" --store-stats | grep -q "entries: 24")

echo "== telemetry gate: request spans, flight recorder, timeline (tiny) =="
# Daemon A (cold): fig2 tiny fills the store; the stats event must carry
# non-zero simulate percentiles for all 24 misses.
telem_dir="$fidelity_dir/telemetry"
mkdir -p "$telem_dir"
(cd "$telem_dir" && "$serve" --addr-file addr.txt >/dev/null 2>&1) & telem_pid=$!
for _ in $(seq 1 300); do
  if [ -s "$telem_dir/addr.txt" ]; then break; fi
  sleep 0.1
done
telem_addr=$(sed 's/.*"addr":"\([^"]*\)".*/\1/' "$telem_dir/addr.txt")
(cd "$telem_dir" && "$serve" client "$telem_addr" manifest fig2 tiny >/dev/null)
(cd "$telem_dir" && "$serve" client "$telem_addr" stats --json > stats-cold.txt)
grep -q '"simulate":{"count":24,"p50_ns":[1-9]' "$telem_dir/stats-cold.txt"
(cd "$telem_dir" && "$serve" client "$telem_addr" shutdown >/dev/null)
wait "$telem_pid"
# Daemon B (warm, fast recorder tick, request tracing): the same
# manifest is now served 100% from the store, every always-on phase
# observed all 24 requests, watch streams live snapshots, and shutdown
# persists the flight-recorder timeline plus the Chrome request trace.
(cd "$telem_dir" && VISIM_TICK_MS=50 "$serve" --addr-file addr2.txt \
  --trace-out results/trace/serve_requests.trace.json >/dev/null 2>&1) & telem_pid=$!
for _ in $(seq 1 300); do
  if [ -s "$telem_dir/addr2.txt" ]; then break; fi
  sleep 0.1
done
telem_addr=$(sed 's/.*"addr":"\([^"]*\)".*/\1/' "$telem_dir/addr2.txt")
(cd "$telem_dir" && "$serve" client "$telem_addr" manifest fig2 tiny > warm.txt)
grep -q '"event":"done".*"hits":24,"misses":0' "$telem_dir/warm.txt"
(cd "$telem_dir" && "$serve" client "$telem_addr" stats --json > stats-warm.txt)
grep -q '"hit_ratio_pct":100' "$telem_dir/stats-warm.txt"
for phase in read_parse store_lookup queue_wait respond; do
  grep -q "\"$phase\":{\"count\":[1-9][0-9]*,\"p50_ns\":[1-9]" \
    "$telem_dir/stats-warm.txt"
done
grep -q '"paths":{"hit":{"count":24' "$telem_dir/stats-warm.txt"
(cd "$telem_dir" && "$serve" client "$telem_addr" watch 2 --json > watch.txt)
test "$(grep -c '"event":"snapshot"' "$telem_dir/watch.txt")" -ge 2
(cd "$telem_dir" && "$serve" client "$telem_addr" shutdown >/dev/null)
wait "$telem_pid"
test -s "$telem_dir/results/trace/serve_requests.trace.json"
"$serve" --check-timeline "$telem_dir/results/json/serve_timeline.json" \
  | grep -q 'schema visim-serve-timeline-v1'

echo "verify: OK"
