//! A thread-safe metrics registry readable at any instant.
//!
//! The plain [`Registry`](crate::metrics::Registry) is `&mut`-only: the
//! figure binaries record into it single-threaded (after the worker
//! pool reassembles results) and drain it once at exit. A long-lived
//! daemon needs the opposite — many threads recording concurrently
//! while another thread snapshots the current state without stopping
//! the world. [`LiveRegistry`] provides that:
//!
//! * counters are `AtomicU64`s behind shard locks taken only on first
//!   touch (hot-path increments are a map lookup plus one atomic add;
//!   [`LiveRegistry::handle`] removes even the lookup);
//! * histograms are the existing mergeable [`Histogram`]s behind
//!   per-shard mutexes, so observation cost is one short critical
//!   section and snapshots see bucket-consistent state (a histogram is
//!   never observed half-updated — no torn reads);
//! * [`LiveRegistry::snapshot`] converts to an ordinary [`Registry`] at
//!   any moment, which gives the JSON form for free.
//!
//! Names are spread over a fixed set of shards by FNV-1a hash, so
//! threads hammering *different* metrics rarely contend. The daemon's
//! request-lifecycle phase and per-path latency names live here too
//! ([`names`]), shared between `visim::experiment` (which records the
//! store-lookup and simulate phases) and `visim-serve` (which records
//! the rest), so both sides agree on the vocabulary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{Histogram, Registry};

/// Request-lifecycle metric names shared by the daemon and the
/// experiment layer. Phase histograms time one phase of a request;
/// path histograms time whole requests, classified by how they were
/// served (exactly one path per request, so the path counts sum to the
/// request count).
pub mod names {
    /// Reading and parsing one request line off the socket.
    pub const PHASE_READ_PARSE: &str = "serve.phase.read_parse_ns";
    /// Content-addressed store lookup (recorded by `visim::experiment`).
    pub const PHASE_STORE_LOOKUP: &str = "serve.phase.store_lookup_ns";
    /// A follower waiting on another request's in-flight simulation.
    pub const PHASE_COALESCE_WAIT: &str = "serve.phase.coalesce_wait_ns";
    /// Waiting in the worker-pool queue before the cell ran.
    pub const PHASE_QUEUE_WAIT: &str = "serve.phase.queue_wait_ns";
    /// Running the simulation proper (recorded by `visim::experiment`).
    pub const PHASE_SIMULATE: &str = "serve.phase.simulate_ns";
    /// Encoding and writing the reply event to the client.
    pub const PHASE_RESPOND: &str = "serve.phase.respond_ns";
    /// Whole-request latency of cells served from the store.
    pub const PATH_HIT: &str = "serve.lat.hit_ns";
    /// Whole-request latency of cells that simulated.
    pub const PATH_MISS: &str = "serve.lat.miss_ns";
    /// Whole-request latency of cells that joined an in-flight leader.
    pub const PATH_COALESCED: &str = "serve.lat.coalesced_ns";

    /// Every request-phase histogram, in lifecycle order.
    pub const PHASES: [&str; 6] = [
        PHASE_READ_PARSE,
        PHASE_STORE_LOOKUP,
        PHASE_COALESCE_WAIT,
        PHASE_QUEUE_WAIT,
        PHASE_SIMULATE,
        PHASE_RESPOND,
    ];

    /// Every per-path latency histogram.
    pub const PATHS: [&str; 3] = [PATH_HIT, PATH_MISS, PATH_COALESCED];

    /// The short display name of a phase or path metric
    /// (`"serve.phase.queue_wait_ns"` → `"queue_wait"`).
    pub fn short(name: &str) -> &str {
        let base = name.rsplit('.').next().unwrap_or(name);
        base.strip_suffix("_ns").unwrap_or(base)
    }
}

/// Histogram layout for request-latency metrics: 1 µs to ~2 min in
/// nanoseconds, two buckets per octave (±~25% quantile resolution) so
/// hit-path and miss-path percentiles stay distinguishable.
pub fn latency_histogram() -> Histogram {
    let mut bounds = Vec::with_capacity(56);
    let mut b: u64 = 1 << 10;
    for _ in 0..28 {
        bounds.push(b);
        bounds.push(b + b / 2);
        b <<= 1;
    }
    Histogram::new(&bounds)
}

/// Number of shards. A small power of two: enough to keep a dozen
/// worker threads off each other's locks, few enough that snapshots
/// stay cheap.
const SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    counters: Mutex<std::collections::BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<std::collections::BTreeMap<String, Histogram>>,
}

/// A sharded, thread-safe registry of named counters and histograms.
/// See the module docs for the design; all methods take `&self`.
#[derive(Default)]
pub struct LiveRegistry {
    shards: [Shard; SHARDS],
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl LiveRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        LiveRegistry::default()
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[(fnv1a(name) as usize) % SHARDS]
    }

    /// The counter cell for `name`, created at zero on first use. Hot
    /// paths keep the handle and `fetch_add` on it directly.
    pub fn handle(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.shard(name).counters.lock().expect("counter shard");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Add `by` to the counter `name`.
    pub fn add(&self, name: &str, by: u64) {
        self.handle(name).fetch_add(by, Ordering::Relaxed);
    }

    /// Set counter `name` to exactly `value`.
    pub fn set(&self, name: &str, value: u64) {
        self.handle(name).store(value, Ordering::Relaxed);
    }

    /// Current value of a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        let map = self.shard(name).counters.lock().expect("counter shard");
        map.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Record `value` into histogram `name`, creating it with the given
    /// layout on first use.
    pub fn observe_with(&self, name: &str, value: u64, mk: impl FnOnce() -> Histogram) {
        let mut map = self.shard(name).histograms.lock().expect("histogram shard");
        map.entry(name.to_string())
            .or_insert_with(mk)
            .observe(value);
    }

    /// Record a latency sample in nanoseconds under the shared
    /// [`latency_histogram`] layout. Zero-duration samples clamp to
    /// 1 ns so a recorded phase is never mistaken for an absent one.
    pub fn observe_latency_ns(&self, name: &str, ns: u64) {
        self.observe_with(name, ns.max(1), latency_histogram);
    }

    /// A copy of the histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let map = self.shard(name).histograms.lock().expect("histogram shard");
        map.get(name).cloned()
    }

    /// Fold a plain [`Registry`] in: counters add, histograms merge (or
    /// are adopted when absent here). This is how post-run batch stats
    /// (the worker pool's `PoolRunStats`) join the live view.
    pub fn merge(&self, other: &Registry) {
        for (name, v) in other.counters() {
            self.add(name, v);
        }
        for (name, h) in other.histograms() {
            let mut map = self.shard(name).histograms.lock().expect("histogram shard");
            match map.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    map.insert(name.to_string(), h.clone());
                }
            }
        }
    }

    /// Snapshot the current state into an ordinary [`Registry`].
    /// Shards are locked one at a time, so the snapshot is per-metric
    /// consistent (each counter and histogram is internally coherent)
    /// without ever blocking all recording threads at once.
    pub fn snapshot(&self) -> Registry {
        let mut reg = Registry::new();
        for shard in &self.shards {
            for (name, c) in shard.counters.lock().expect("counter shard").iter() {
                reg.set(name, c.load(Ordering::Relaxed));
            }
            for (name, h) in shard.histograms.lock().expect("histogram shard").iter() {
                reg.merge_histogram(name, h);
            }
        }
        reg
    }

    /// The JSON form of [`LiveRegistry::snapshot`].
    pub fn to_json(&self) -> crate::json::Json {
        self.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_record_exactly() {
        let live = LiveRegistry::new();
        live.add("a", 2);
        live.add("a", 3);
        live.set("b", 7);
        live.observe_latency_ns("lat", 5_000);
        live.observe_latency_ns("lat", 0); // clamps to 1 ns
        assert_eq!(live.counter("a"), 5);
        assert_eq!(live.counter("b"), 7);
        assert_eq!(live.counter("absent"), 0);
        let h = live.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5_000);
        let snap = live.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn merge_folds_batch_registries_into_the_live_view() {
        let live = LiveRegistry::new();
        live.add("pool.jobs", 1);
        let mut batch = Registry::new();
        batch.add("pool.jobs", 9);
        batch.observe_with("pool.queue_depth", 3, || Histogram::new(&[1, 2, 4]));
        live.merge(&batch);
        live.merge(&batch);
        assert_eq!(live.counter("pool.jobs"), 19);
        assert_eq!(live.histogram("pool.queue_depth").unwrap().count(), 2);
    }

    /// The tentpole concurrency guarantee: N threads hammering the same
    /// counters and histograms lose nothing and tear nothing — totals
    /// are exact and every snapshot taken mid-flight is internally
    /// consistent (histogram bucket sums always equal its count).
    #[test]
    fn concurrent_recording_is_exact_and_untorn() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 5_000;
        let live = LiveRegistry::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let live = &live;
                s.spawn(move || {
                    let fast = live.handle("stress.count");
                    for i in 0..PER_THREAD {
                        fast.fetch_add(1, Ordering::Relaxed);
                        live.add("stress.slow", 1);
                        live.observe_latency_ns("stress.lat", (t as u64 + 1) * (i % 7 + 1));
                    }
                });
            }
            // A reader snapshots while the writers run; whatever it
            // sees must be internally coherent.
            let live = &live;
            s.spawn(move || {
                for _ in 0..50 {
                    let snap = live.snapshot();
                    if let Some(h) = snap.histogram("stress.lat") {
                        let j = h.to_json();
                        let counts = j.get("counts").and_then(crate::json::Json::elements);
                        let sum: u64 = counts
                            .unwrap()
                            .iter()
                            .filter_map(crate::json::Json::as_u64)
                            .sum();
                        assert_eq!(sum, h.count(), "torn histogram read");
                    }
                    assert!(snap.counter("stress.count") <= THREADS as u64 * PER_THREAD);
                }
            });
        });
        let want = THREADS as u64 * PER_THREAD;
        assert_eq!(live.counter("stress.count"), want);
        assert_eq!(live.counter("stress.slow"), want);
        assert_eq!(live.histogram("stress.lat").unwrap().count(), want);
    }

    #[test]
    fn phase_names_shorten_for_display() {
        assert_eq!(names::short(names::PHASE_QUEUE_WAIT), "queue_wait");
        assert_eq!(names::short(names::PATH_HIT), "hit");
        assert_eq!(names::short("plain"), "plain");
    }

    #[test]
    fn latency_layout_resolves_neighbouring_octaves() {
        let mut h = latency_histogram();
        for _ in 0..100 {
            h.observe(100_000);
        }
        for _ in 0..100 {
            h.observe(1_000_000);
        }
        let p25 = h.quantile(0.25);
        let p75 = h.quantile(0.75);
        assert!(p75 > p25 * 5, "p25 {p25} vs p75 {p75}");
    }
}
