//! `visim-obs` — observability substrate for the visim workspace.
//!
//! The workspace builds hermetically (no registry access), so this
//! crate provides the std-only machinery a metrics/eval harness would
//! normally pull from serde + prometheus:
//!
//! * [`codec`] — a little-endian byte writer/reader pair for the
//!   versioned binary payloads the result store persists (exact
//!   integer round-trips, which the derived-float JSON views cannot
//!   provide);
//! * [`json`] — a JSON value model with an emitter (compact and
//!   pretty) and a recursive-descent parser, so the figure binaries can
//!   write machine-readable artifacts and the `validate` gate can read
//!   them back without third-party crates;
//! * [`metrics`] — a lightweight registry of named counters and
//!   fixed-bucket histograms, threaded through the pipeline, the memory
//!   system, and the experiment worker pool, and drained into the JSON
//!   artifacts;
//! * [`live`] — the thread-safe counterpart: a sharded registry of
//!   atomic counters and mutex-guarded histograms that concurrent
//!   threads record into and any thread snapshots at any instant (the
//!   serve daemon's request-lifecycle telemetry lives here);
//! * [`log`] — a leveled structured stderr logger (`VISIM_LOG`,
//!   `VISIM_QUIET`) shared by the binaries' progress heartbeat and the
//!   daemon's diagnostics;
//! * [`schema`] — the versioned result schemas (`visim-results-v2`,
//!   `visim-bench-runtime-v6`, `visim-trace-v1`,
//!   `visim-serve-timeline-v1`): one place that names and versions
//!   every machine-readable output format the repo produces;
//! * [`trace`] — cycle-level event tracing: a bounded ring of
//!   instruction lifecycle spans, instant events, and per-cycle
//!   stall-cause samples, with a Chrome trace-event / Perfetto JSON
//!   exporter and an exact Figure 1-style attribution accumulator.
//!
//! This crate sits at the bottom of the dependency graph (it depends on
//! nothing, not even `visim-util`) so every other crate can report into
//! it.

pub mod codec;
pub mod json;
pub mod live;
pub mod log;
pub mod metrics;
pub mod schema;
pub mod trace;

pub use json::Json;
pub use metrics::{Histogram, Registry};
