//! A zero-dependency JSON value model, emitter, and parser.
//!
//! The emitter produces deterministic output: object members keep their
//! insertion order (no hash maps), floats use Rust's shortest
//! round-trip formatting with a trailing `.0` forced onto integral
//! values so a float field never silently becomes an integer field, and
//! non-finite floats (which JSON cannot represent) emit as `null`.
//!
//! The parser is a recursive-descent reader for the same dialect:
//! strict JSON, no comments, no trailing commas. Numbers with a `.`,
//! `e`, or `E` parse as [`Json::F64`]; plain integers parse as
//! [`Json::U64`]/[`Json::I64`] so 64-bit counters survive a round trip
//! exactly.

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats emit as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, cycle counts).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (always emitted with a `.` or exponent).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved (and emitted) as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Look up a member of an object (`None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The members of an object, if this is one.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn elements(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::I64(n) => Some(n as f64),
            Json::F64(x) => Some(x),
            _ => None,
        }
    }

    /// Non-negative integer payload, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering: two-space indent, one member/element per line.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => out.push_str(&fmt_f64(*x)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d)
                })
            }
        }
    }

    /// Parse a strict-JSON document (the whole input must be one value).
    ///
    /// # Errors
    ///
    /// Returns the byte offset and a description of the first syntax
    /// error, including trailing garbage after the value.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Shortest round-trip float formatting with a forced decimal marker;
/// non-finite values become `null`.
fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + lo.wrapping_sub(0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number slice is ASCII by construction");
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        if n >= 0 {
            Json::U64(n as u64)
        } else {
            Json::I64(n)
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let j = Json::from("a\"b\\c\nd\te\u{01}f");
        assert_eq!(j.to_compact(), r#""a\"b\\c\nd\te\u0001f""#);
        let back = Json::parse(&j.to_compact()).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn nested_objects_round_trip_with_member_order_preserved() {
        let doc = Json::obj(vec![
            ("zeta", Json::from(1u64)),
            (
                "alpha",
                Json::obj(vec![("inner", Json::from(vec![1u64, 2, 3]))]),
            ),
            ("neg", Json::from(-5i64)),
            ("flag", Json::from(true)),
            ("none", Json::Null),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "{text}");
        }
        // Member order is preserved verbatim, not sorted.
        let compact = doc.to_compact();
        assert!(compact.find("zeta").unwrap() < compact.find("alpha").unwrap());
    }

    #[test]
    #[allow(clippy::excessive_precision)] // the truncating literal is the point
    fn f64_formatting_round_trips_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            2.5e-17,
            1e300,
            -0.0,
            123456789.123456789,
            f64::MIN_POSITIVE,
        ] {
            let text = Json::from(x).to_compact();
            match Json::parse(&text).unwrap() {
                Json::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{text}"),
                other => panic!("{text} parsed as {other:?}"),
            }
        }
        // Integral floats keep a decimal marker so the field stays float-typed.
        assert_eq!(Json::from(4.0).to_compact(), "4.0");
        // Non-finite values cannot be represented; they emit as null.
        assert_eq!(Json::from(f64::NAN).to_compact(), "null");
        assert_eq!(Json::from(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn u64_counters_survive_a_round_trip_exactly() {
        let n = u64::MAX - 3;
        let text = Json::from(n).to_compact();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "1 2",
            "nul",
            "\"\\q\"",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap(),
            Json::from("é😀")
        );
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"cells":[{"cycles":42}],"name":"fig1"}"#).unwrap();
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("fig1"));
        let cells = doc.get("cells").and_then(Json::elements).unwrap();
        assert_eq!(cells[0].get("cycles").and_then(Json::as_u64), Some(42));
        assert_eq!(doc.get("absent"), None);
    }
}
