//! Versioned machine-readable output schemas.
//!
//! Every JSON artifact the repo produces names its schema here — this
//! module is the single place that versions output formats:
//!
//! * [`RESULTS_SCHEMA`] (`visim-results-v2`) — the per-binary result
//!   documents under `results/json/<name>.json` and the per-failure
//!   artifacts under `results/partial/<name>.<benchmark>.json` (v2
//!   added the sampled-simulation cell counters, `cell.sampling.*`);
//! * [`BENCH_RUNTIME_SCHEMA`] (`visim-bench-runtime-v6`) — the
//!   wall-clock harness output `BENCH_runtime.json` written by
//!   `scripts/bench.sh` (v2 added `git_rev` and the fidelity summary;
//!   v3 added the warm-trace-cache second pass: per-binary
//!   `seconds_warm`/`exit_warm` and the `total_seconds_warm` total;
//!   v4 added the sampled third pass: `seconds_sampled`/`exit_sampled`,
//!   `total_seconds_sampled`, and the exact-vs-sampled suite speedup;
//!   v5 added the warm-hit serve pass: `serve_cells`,
//!   `serve_seconds_warm`, and `requests_per_sec_warm` — the
//!   visim-serve daemon answering an already-stored manifest;
//!   v6 added the warm serving-latency distribution from the daemon's
//!   live telemetry: `serve_p50_ms_warm`/`serve_p99_ms_warm`, the
//!   hit-path per-request latency percentiles);
//! * [`TRACE_SCHEMA`] (`visim-trace-v1`) — the Chrome trace-event /
//!   Perfetto files under `results/trace/` written by `pipetrace`
//!   (schema tag carried in the file's `otherData`); the serve
//!   daemon's `--trace-out` request timeline reuses the same format
//!   with request phases in place of pipeline stages;
//! * [`SERVE_TIMELINE_SCHEMA`] (`visim-serve-timeline-v1`) — the
//!   daemon's flight-recorder timeline
//!   (`results/json/serve_timeline.json`): the bounded ring of
//!   per-interval snapshots (request/hit/miss deltas, per-phase
//!   latency percentiles, in-flight count, store size) the tick
//!   thread sampled, persisted at shutdown.
//!
//! # `visim-results-v2`
//!
//! ```json
//! {
//!   "schema": "visim-results-v2",
//!   "name": "fig1",                  // binary name
//!   "size": "study",                 // workload size label
//!   "git_rev": "abc123…|unknown",
//!   "jobs": 8,                       // worker-pool width used
//!   "wall_seconds": 1.234,           // whole-binary wall clock
//!   "cells": [ { … }, … ],           // one object per (bench × config)
//!   "metrics": { "counters": {…}, "histograms": {…} }
//! }
//! ```
//!
//! Each cell carries `"status": "ok"` with the full simulation payload,
//! or `"status": "failed"` with the `SimError` variant and message, so
//! a consumer can distinguish *drifted* (ok cells outside a fidelity
//! band) from *crashed* (failed cells).
//!
//! Cells produced by a sampled run (`--sample`/`VISIM_SAMPLE`)
//! additionally carry, in their `metrics.counters`:
//!
//! * `cell.sampling.mode` — `1` sampled estimate, `2` exact fallback
//!   (stream unsampleable); absent entirely on exact runs;
//! * `cell.sampling.windows` — detailed windows measured;
//! * `cell.sampling.sampled_insts` — instructions simulated in detail;
//! * `cell.sampling.ci_centipct` — 95% CI half-width on CPI relative
//!   to the estimate, in centi-percent (250 = ±2.5%).

use crate::json::Json;
use crate::metrics::Registry;

/// Schema tag for the figure/sweep/ablation result documents.
pub const RESULTS_SCHEMA: &str = "visim-results-v2";

/// Schema tag for `BENCH_runtime.json` (`scripts/bench.sh`).
pub const BENCH_RUNTIME_SCHEMA: &str = "visim-bench-runtime-v6";

/// Schema tag for the Chrome trace-event files written by `pipetrace`.
pub const TRACE_SCHEMA: &str = "visim-trace-v1";

/// Schema tag for the serve daemon's flight-recorder timeline
/// (`results/json/serve_timeline.json`).
pub const SERVE_TIMELINE_SCHEMA: &str = "visim-serve-timeline-v1";

/// Cell status: the simulation completed and its payload is present.
pub const STATUS_OK: &str = "ok";

/// Cell status: the simulation failed; `error_kind`/`error` are present.
pub const STATUS_FAILED: &str = "failed";

/// The current git revision (`git rev-parse --short=12 HEAD`), or
/// `"unknown"` when git is unavailable — artifacts must still be
/// written in hermetic environments without a `.git` directory.
pub fn git_rev() -> String {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output();
    match out {
        Ok(out) if out.status.success() => {
            let rev = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if rev.is_empty() {
                "unknown".to_string()
            } else {
                rev
            }
        }
        _ => "unknown".to_string(),
    }
}

/// [`git_rev`] computed once per process — for callers on a request
/// path (the serve daemon's health check) that must not fork a git
/// subprocess per probe.
pub fn git_rev_cached() -> &'static str {
    static REV: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    REV.get_or_init(git_rev)
}

/// An accumulating `visim-results-v2` document.
#[derive(Debug, Clone)]
pub struct ResultsDoc {
    name: String,
    size: String,
    jobs: u64,
    cells: Vec<Json>,
    /// Run-level metrics (worker-pool timings, queue depths, …) drained
    /// into the artifact at the end of the run.
    pub metrics: Registry,
}

impl ResultsDoc {
    /// Start a document for the binary `name` at workload size `size`,
    /// run with `jobs` pool workers.
    pub fn new(name: &str, size: &str, jobs: usize) -> Self {
        ResultsDoc {
            name: name.to_string(),
            size: size.to_string(),
            jobs: jobs as u64,
            cells: Vec::new(),
            metrics: Registry::new(),
        }
    }

    /// Append one result cell (see [`ok_cell`] / [`failed_cell`]).
    pub fn push_cell(&mut self, cell: Json) {
        self.cells.push(cell);
    }

    /// Number of cells recorded so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Serialize the complete document. `wall_seconds` is the binary's
    /// whole-process wall clock (measured by the caller so the document
    /// build itself is included).
    pub fn to_json(&self, wall_seconds: f64) -> Json {
        Json::obj(vec![
            ("schema", Json::from(RESULTS_SCHEMA)),
            ("name", Json::from(self.name.as_str())),
            ("size", Json::from(self.size.as_str())),
            ("git_rev", Json::from(git_rev())),
            ("jobs", Json::from(self.jobs)),
            ("wall_seconds", Json::from(wall_seconds)),
            ("cells", Json::Arr(self.cells.clone())),
            ("metrics", self.metrics.to_json()),
        ])
    }
}

/// A successful result cell: `benchmark` + configuration members +
/// the simulation payload members, tagged `"status": "ok"`.
pub fn ok_cell(benchmark: &str, config: Json, payload: Vec<(&str, Json)>) -> Json {
    let mut members = vec![
        ("status".to_string(), Json::from(STATUS_OK)),
        ("benchmark".to_string(), Json::from(benchmark)),
        ("config".to_string(), config),
    ];
    members.extend(payload.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(members)
}

/// A failed result cell: the `SimError` variant name and rendered
/// message, tagged `"status": "failed"` so consumers can distinguish a
/// crashed run from a drifted one.
pub fn failed_cell(benchmark: &str, config: Json, error_kind: &str, error: &str) -> Json {
    Json::obj(vec![
        ("status", Json::from(STATUS_FAILED)),
        ("benchmark", Json::from(benchmark)),
        ("config", config),
        ("error_kind", Json::from(error_kind)),
        ("error", Json::from(error)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_doc_serializes_with_schema_header() {
        let mut doc = ResultsDoc::new("fig1", "tiny", 4);
        doc.push_cell(ok_cell(
            "addition",
            Json::obj(vec![("arch", Json::from("4-way ooo"))]),
            vec![("cycles", Json::from(1234u64))],
        ));
        doc.metrics.add("pool.jobs", 72);
        let j = doc.to_json(0.5);
        assert_eq!(j.get("schema").unwrap(), &Json::from(RESULTS_SCHEMA));
        assert_eq!(j.get("name").and_then(Json::as_str), Some("fig1"));
        assert_eq!(j.get("jobs").and_then(Json::as_u64), Some(4));
        let cells = j.get("cells").and_then(Json::elements).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(cells[0].get("cycles").and_then(Json::as_u64), Some(1234));
        // The document round-trips through the parser.
        let text = j.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn failed_cells_carry_the_error_taxonomy() {
        let c = failed_cell(
            "blend",
            Json::obj(vec![("arch", Json::from("1-way"))]),
            "Workload",
            "fault injected",
        );
        assert_eq!(c.get("status").and_then(Json::as_str), Some("failed"));
        assert_eq!(c.get("error_kind").and_then(Json::as_str), Some("Workload"));
        assert!(c.get("cycles").is_none());
    }

    #[test]
    fn git_rev_is_never_empty() {
        assert!(!git_rev().is_empty());
    }
}
