//! A leveled, structured stderr logger.
//!
//! The workspace historically had two ad-hoc stderr conventions: the
//! figure binaries' TTY progress heartbeat (gated on `VISIM_QUIET`)
//! and bare `eprintln!` diagnostics. The serve daemon needs real
//! leveled logging (slow-request warnings, tick diagnostics), so this
//! module centralizes the policy:
//!
//! * `VISIM_LOG=debug|info|warn|error` selects the minimum level
//!   (default `info`);
//! * `VISIM_QUIET=1` forces `error` — one knob silences heartbeat and
//!   log lines alike, uniformly across binaries and daemon;
//! * every line is `[ {elapsed:>9} {level:5} {component}] message`,
//!   with elapsed seconds since the process first logged, so daemon
//!   logs correlate with its telemetry timeline without timestamps
//!   (the workspace has no clock formatting dependency).
//!
//! Lines go to stderr only: stdout belongs to the artifacts, and the
//! zero-perturbation invariant (byte-identical results regardless of
//! telemetry) depends on that.

use std::io::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

/// Environment variable selecting the minimum log level.
pub const LOG_ENV: &str = "VISIM_LOG";

/// Environment variable that silences everything below `error` when
/// set to `1` (shared with the progress heartbeat).
pub const QUIET_ENV: &str = "VISIM_QUIET";

/// Log severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-request/per-tick detail.
    Debug,
    /// Lifecycle events (startup, resume, progress).
    Info,
    /// Degraded but continuing (slow requests, purged entries).
    Warn,
    /// Failures.
    Error,
}

impl Level {
    /// The fixed-width display name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info ",
            Level::Warn => "warn ",
            Level::Error => "error",
        }
    }

    /// Parse a `VISIM_LOG` value; `None` for unrecognized text.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

fn threshold() -> Level {
    static THRESHOLD: OnceLock<Level> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        if std::env::var(QUIET_ENV).as_deref() == Ok("1") {
            return Level::Error;
        }
        std::env::var(LOG_ENV)
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Info)
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether `level` would be emitted. Callers with expensive message
/// formatting (or side channels like the TTY heartbeat) check this
/// first.
pub fn enabled(level: Level) -> bool {
    level >= threshold()
}

/// Emit one log line at `level` from `component`. A no-op below the
/// configured threshold.
pub fn log(level: Level, component: &str, msg: &str) {
    if !enabled(level) {
        return;
    }
    let elapsed = epoch().elapsed().as_secs_f64();
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "[{elapsed:9.3}s {} {component}] {msg}", level.name());
}

/// [`log`] at [`Level::Debug`].
pub fn debug(component: &str, msg: &str) {
    log(Level::Debug, component, msg);
}

/// [`log`] at [`Level::Info`].
pub fn info(component: &str, msg: &str) {
    log(Level::Info, component, msg);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(component: &str, msg: &str) {
    log(Level::Warn, component, msg);
}

/// [`log`] at [`Level::Error`].
pub fn error(component: &str, msg: &str) {
    log(Level::Error, component, msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse(" INFO "), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn names_are_fixed_width() {
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(l.name().len(), 5, "{l:?}");
        }
    }

    #[test]
    fn logging_below_threshold_is_a_silent_no_op() {
        // The threshold is latched once per process; whatever it is,
        // emitting at every level must not panic.
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            log(l, "test", "probe");
        }
        assert!(enabled(Level::Error), "error is never filtered");
    }
}
