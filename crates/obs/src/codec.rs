//! A minimal byte codec for the versioned on-disk payloads.
//!
//! The result store (`visim::store`) persists simulation payloads —
//! `Summary`, `CpuStats`, `MemStats`, metric registries, `SimError` —
//! in a framed, checksummed binary encoding. JSON cannot serve here:
//! the artifact JSON stores *derived* floating-point views (cycle
//! breakdowns) rather than the exact integer accumulators, so a JSON
//! round-trip would not reproduce byte-identical reports on resume.
//! Instead each owning crate implements `encode_into`/`decode_from`
//! against this writer/reader pair, and every integer round-trips
//! exactly.
//!
//! This module lives in `visim-obs` (the dependency-graph leaf) so the
//! cpu, mem, util, and core crates can all reach it. Framing (magic,
//! version, checksum) is the *caller's* job — see `visim::store` —
//! mirroring the `.vtrc` discipline in `visim-trace`.
//!
//! All integers are little-endian. Strings and vectors are
//! length-prefixed with a `u32`. Decoding is fail-safe: every read
//! returns `Err(reason)` on truncation instead of panicking, so a
//! corrupt entry degrades to a purge-and-recompute, never a crash.

/// An append-only byte buffer with little-endian primitive writers.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes with no length prefix (for magic numbers).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `u64` vector.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u64(v);
        }
    }
}

/// A bounds-checked cursor over an encoded byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read `n` raw bytes (for magic numbers).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], String> {
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in string".to_string())
    }

    /// Read a length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>, String> {
        let n = self.u32()? as usize;
        // Guard the allocation against a corrupt length prefix: the
        // payload must actually hold `n` values.
        if self.remaining() < n.saturating_mul(8) {
            return Err(format!("truncated: u64 vector claims {n} entries"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Assert every byte was consumed (trailing garbage is corruption).
    pub fn done(&self) -> Result<(), String> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after payload", self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_str("hello | world");
        w.put_u64s(&[1, 2, 3]);
        w.put_raw(b"MAGC");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str().unwrap(), "hello | world");
        assert_eq!(r.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.raw(4).unwrap(), b"MAGC");
        r.done().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(r.u64().is_err());
        // A corrupt vector length cannot trigger a huge allocation.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.u64s().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.done().is_err());
    }
}
