//! A lightweight metrics registry: named monotonic counters and
//! fixed-bucket histograms.
//!
//! The simulator cores (pipeline, predictor, cache, MSHR) and the
//! experiment worker pool record into a [`Registry`], and the figure
//! binaries drain it into their JSON artifacts. Storage is ordered
//! (`BTreeMap`) so the serialized form is deterministic.

use std::collections::BTreeMap;

use crate::codec::{ByteReader, ByteWriter};
use crate::json::Json;

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples `<= bounds[i]`; one implicit overflow
/// bucket counts the rest. Sum/count/min/max are tracked exactly, so
/// `mean()` is exact even when the buckets are coarse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds (plus the
    /// implicit overflow bucket).
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Exponential bounds `start, start*2, ...` with `n` buckets —
    /// the default shape for latency-style metrics.
    pub fn exponential(start: u64, n: usize) -> Self {
        let mut bounds = Vec::with_capacity(n);
        let mut b = start.max(1);
        for _ in 0..n {
            bounds.push(b);
            b = b.saturating_mul(2);
        }
        Histogram::new(&bounds)
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Record `n` identical samples at once; equivalent to (and exactly
    /// the same aggregates as) `n` calls to [`Histogram::observe`].
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let ix = self.bounds.partition_point(|&b| b < value);
        self.counts[ix] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from the buckets: the
    /// upper bound of the bucket holding the `ceil(q * count)`-th
    /// sample, clamped into the exact `[min, max]` range (so quantiles
    /// of a one-value histogram are that value, and the overflow
    /// bucket reports the exact max rather than infinity). Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (ix, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let bound = self.bounds.get(ix).copied().unwrap_or(self.max);
                return bound.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one. The bucket layouts must
    /// match (same bounds); merging is used when per-worker or per-run
    /// histograms are combined into one artifact.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram layouts must match");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Append the exact histogram state (bounds, buckets, aggregates —
    /// including the raw `u64::MAX` empty-min sentinel) to `w`. Unlike
    /// [`Histogram::to_json`], which emits derived views, this
    /// round-trips bit-exactly through [`Histogram::decode_from`].
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u64s(&self.bounds);
        w.put_u64s(&self.counts);
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.min);
        w.put_u64(self.max);
    }

    /// Decode a histogram written by [`Histogram::encode_into`],
    /// rejecting structurally impossible layouts.
    pub fn decode_from(r: &mut ByteReader) -> Result<Self, String> {
        let bounds = r.u64s()?;
        let counts = r.u64s()?;
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram bucket mismatch: {} bounds, {} counts",
                bounds.len(),
                counts.len()
            ));
        }
        Ok(Histogram {
            bounds,
            counts,
            count: r.u64()?,
            sum: r.u64()?,
            min: r.u64()?,
            max: r.u64()?,
        })
    }

    /// Serialize: bounds, per-bucket counts (last = overflow), and the
    /// exact aggregates.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bounds", Json::from(self.bounds.clone())),
            ("counts", Json::from(self.counts.clone())),
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("min", Json::from(self.min())),
            ("max", Json::from(self.max())),
            ("mean", Json::from(self.mean())),
        ])
    }
}

/// Named counters + histograms with deterministic iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `by` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set counter `name` to exactly `value` (for snapshot-style stats
    /// exported once at the end of a run).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Current value of a counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record `value` into histogram `name`, creating it with the given
    /// layout on first use.
    pub fn observe_with(&mut self, name: &str, value: u64, mk: impl FnOnce() -> Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(mk)
            .observe(value);
    }

    /// Record `value` into histogram `name` (default exponential
    /// microsecond-style layout on first use).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.observe_with(name, value, || Histogram::exponential(1, 24));
    }

    /// Insert (replacing) a pre-built histogram under `name`.
    pub fn insert_histogram(&mut self, name: &str, hist: Histogram) {
        self.histograms.insert(name.to_string(), hist);
    }

    /// Fold a pre-built histogram into `name` (adopting it when
    /// absent). The layouts must match, as in [`Histogram::merge`].
    pub fn merge_histogram(&mut self, name: &str, hist: &Histogram) {
        match self.histograms.get_mut(name) {
            Some(mine) => mine.merge(hist),
            None => {
                self.histograms.insert(name.to_string(), hist.clone());
            }
        }
    }

    /// The histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate the counters in deterministic name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate the histograms in deterministic name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into this registry: counters add, histograms merge
    /// (or are adopted when absent here).
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Append the full registry (counters and histograms, in the
    /// deterministic `BTreeMap` order) to `w`; the result-store payload
    /// form of the per-cell metrics.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u32(self.counters.len() as u32);
        for (name, v) in &self.counters {
            w.put_str(name);
            w.put_u64(*v);
        }
        w.put_u32(self.histograms.len() as u32);
        for (name, h) in &self.histograms {
            w.put_str(name);
            h.encode_into(w);
        }
    }

    /// Decode a registry written by [`Registry::encode_into`].
    pub fn decode_from(r: &mut ByteReader) -> Result<Self, String> {
        let mut reg = Registry::new();
        let n = r.u32()?;
        for _ in 0..n {
            let name = r.str()?;
            reg.counters.insert(name, r.u64()?);
        }
        let n = r.u32()?;
        for _ in 0..n {
            let name = r.str()?;
            reg.histograms.insert(name, Histogram::decode_from(r)?);
        }
        Ok(reg)
    }

    /// Serialize as `{"counters": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_aggregates() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.min(), 1);
        assert!((h.mean() - 5122.0 / 5.0).abs() < 1e-9);
        let j = h.to_json();
        assert_eq!(
            j.get("counts").unwrap(),
            &Json::from(vec![2u64, 2, 0, 1]),
            "<=10: {{1,10}}, <=100: {{11,100}}, <=1000: none, overflow: 5000"
        );
    }

    #[test]
    fn quantiles_track_the_buckets_and_clamp_to_exact_extremes() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        h.observe(7);
        assert_eq!(h.quantile(0.5), 7, "single value is exact");
        assert_eq!(h.quantile(0.99), 7);
        for v in [1, 2, 3, 50, 60, 70, 80, 500, 5000] {
            h.observe(v);
        }
        // 10 samples: p50 lands in the <=100 bucket, p99 in overflow.
        assert_eq!(h.quantile(0.5), 100);
        assert_eq!(h.quantile(0.99), 5000, "overflow reports exact max");
        assert_eq!(h.quantile(0.0), 10, "q=0 is the first bucket's bound");
    }

    #[test]
    fn registry_iterators_expose_contents_in_name_order() {
        let mut r = Registry::new();
        r.add("z", 1);
        r.add("a", 2);
        r.observe("lat", 7);
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "z"]);
        let hists: Vec<&str> = r.histograms().map(|(k, _)| k).collect();
        assert_eq!(hists, ["lat"]);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = Histogram::exponential(1, 8);
        let mut b = Histogram::exponential(1, 8);
        a.observe(3);
        b.observe(200);
        b.observe(1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 200);
        assert_eq!(a.min(), 1);
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut r = Registry::new();
        r.add("pool.jobs", 2);
        r.add("pool.jobs", 3);
        r.observe("lat", 7);
        let mut other = Registry::new();
        other.add("pool.jobs", 10);
        other.observe("lat", 9);
        other.observe("other", 1);
        r.merge(&other);
        assert_eq!(r.counter("pool.jobs"), 15);
        assert_eq!(r.histogram("lat").unwrap().count(), 2);
        assert_eq!(r.histogram("other").unwrap().count(), 1);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn empty_aggregates_are_zero_not_sentinel() {
        let h = Histogram::exponential(1, 4);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        let j = h.to_json();
        assert_eq!(j.get("min").unwrap(), &Json::U64(0));
    }

    #[test]
    fn registry_binary_codec_round_trips_exactly() {
        let mut r = Registry::new();
        r.add("store.hit", 3);
        r.set("cell.emit_micros", 12_345);
        r.observe("pool.job_run_ns", 7);
        r.observe_with("window", 3, || Histogram::new(&[1, 2, 4]));
        // An empty histogram keeps its u64::MAX min sentinel through
        // the round trip (to_json would mask it as 0).
        r.observe_with("empty-after-merge", 0, || Histogram::exponential(1, 4));
        let mut w = ByteWriter::new();
        r.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut rd = ByteReader::new(&bytes);
        let back = Registry::decode_from(&mut rd).unwrap();
        rd.done().unwrap();
        assert_eq!(back, r);
        // Truncated input degrades to an error, never a panic.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut rd = ByteReader::new(&bytes[..cut]);
            assert!(Registry::decode_from(&mut rd).is_err() || rd.done().is_err());
        }
    }

    #[test]
    fn registry_serializes_deterministically() {
        let mut r = Registry::new();
        r.add("z", 1);
        r.add("a", 2);
        let text = r.to_json().to_compact();
        // BTreeMap order: "a" before "z" regardless of insertion order.
        assert!(text.find("\"a\"").unwrap() < text.find("\"z\"").unwrap());
    }
}
