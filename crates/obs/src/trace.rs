//! Cycle-level event tracing for the pipeline simulator.
//!
//! The paper's headline result (Figure 1) is a per-cycle *attribution*
//! of execution time to Busy / FU stall / L1 hit / L1 miss. The
//! aggregate counters in `visim-cpu` produce the bars, but give no way
//! to see, for any given cycle or instruction, *why* time landed in a
//! bucket. This module is the event-level complement:
//!
//! * [`InstSpan`] — one retired instruction's lifecycle
//!   (fetch → dispatch → issue → complete → retire), recorded as a
//!   whole at retirement so ring-buffer eviction can never orphan half
//!   a span;
//! * [`InstantEvent`] — point events: branch mispredicts, predictor
//!   counter flips, cache hits/misses/evictions, MSHR allocate/drain,
//!   prefetch issue;
//! * [`CycleSample`] — the per-cycle retire count and stall class, the
//!   exact inputs of the paper's §2.3.4 attribution rule.
//!
//! Events land in a bounded [`TraceRing`]; when it is full the oldest
//! event is dropped (and counted). The per-cycle [`Attribution`] and
//! the per-kind instant totals accumulate *before* any eviction, so the
//! trace-derived attribution stays exact even when the ring overflows —
//! that exactness is what the `validate` gate's trace-vs-aggregate
//! invariant checks.
//!
//! [`Trace::chrome_trace`] exports the ring as Chrome trace-event JSON
//! (the format Perfetto and `chrome://tracing` load): one timeline lane
//! per concurrently-live instruction, instant tracks per event family,
//! and an `attribution` counter track. One simulated cycle maps to one
//! microsecond of trace time.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::json::Json;

/// Stall class of a lost retirement slot, mirroring the pipeline's
/// attribution classes (paper §2.3.4 / Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStall {
    /// Waiting on computation (operands, functional units, branch
    /// recovery, empty window).
    FuStall,
    /// Waiting on the memory system but within the L1.
    L1Hit,
    /// Waiting on an access that left the L1.
    L1Miss,
}

impl TraceStall {
    /// Stable artifact name of the class.
    pub fn name(self) -> &'static str {
        match self {
            TraceStall::FuStall => "fu_stall",
            TraceStall::L1Hit => "l1_hit",
            TraceStall::L1Miss => "l1_miss",
        }
    }
}

/// Kind of a point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstantKind {
    /// A conditional or return branch was mispredicted at dispatch.
    BranchMispredict,
    /// A predictor counter crossed the agree/disagree threshold.
    PredictorFlip,
    /// A demand access hit in the L1.
    L1Hit,
    /// A demand access left the L1 (primary or merged miss); `level`
    /// carries where it was finally serviced.
    L1Miss,
    /// A valid line was displaced from the cache named by `level`.
    CacheEvict,
    /// A primary miss allocated an MSHR at the level named by `level`.
    MshrAlloc,
    /// An MSHR entry's fill completed and the entry drained.
    MshrDrain,
    /// A software prefetch entered the memory system.
    PrefetchIssue,
}

impl InstantKind {
    /// Number of instant kinds (size of per-kind count arrays).
    pub const COUNT: usize = 8;

    /// Every kind, in a stable report order.
    pub const ALL: [InstantKind; InstantKind::COUNT] = [
        InstantKind::BranchMispredict,
        InstantKind::PredictorFlip,
        InstantKind::L1Hit,
        InstantKind::L1Miss,
        InstantKind::CacheEvict,
        InstantKind::MshrAlloc,
        InstantKind::MshrDrain,
        InstantKind::PrefetchIssue,
    ];

    /// Stable artifact name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            InstantKind::BranchMispredict => "branch_mispredict",
            InstantKind::PredictorFlip => "predictor_flip",
            InstantKind::L1Hit => "l1_hit",
            InstantKind::L1Miss => "l1_miss",
            InstantKind::CacheEvict => "cache_evict",
            InstantKind::MshrAlloc => "mshr_alloc",
            InstantKind::MshrDrain => "mshr_drain",
            InstantKind::PrefetchIssue => "prefetch_issue",
        }
    }

    fn index(self) -> usize {
        match self {
            InstantKind::BranchMispredict => 0,
            InstantKind::PredictorFlip => 1,
            InstantKind::L1Hit => 2,
            InstantKind::L1Miss => 3,
            InstantKind::CacheEvict => 4,
            InstantKind::MshrAlloc => 5,
            InstantKind::MshrDrain => 6,
            InstantKind::PrefetchIssue => 7,
        }
    }

    /// Timeline track this kind renders on: `(tid, track name)`. The
    /// tids sit *below* [`SPAN_TID0`]: span lanes grow upward without
    /// bound (one per concurrently in-flight instruction), so any fixed
    /// tid above the lane base could collide with a lane.
    fn track(self) -> (u64, &'static str) {
        match self {
            InstantKind::BranchMispredict | InstantKind::PredictorFlip => (2, "branch"),
            InstantKind::L1Hit | InstantKind::L1Miss | InstantKind::CacheEvict => (3, "cache"),
            InstantKind::MshrAlloc | InstantKind::MshrDrain => (4, "mshr"),
            InstantKind::PrefetchIssue => (5, "prefetch"),
        }
    }
}

/// One retired instruction's lifecycle, in cycles.
///
/// Recorded as a unit at retirement: a span in the ring is always
/// complete, so eviction preserves begin/end pairing by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstSpan {
    /// Retirement sequence number (dense program order).
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Operation name (see `visim_isa::Op::name`).
    pub op: &'static str,
    /// Cycle the instruction entered the fetch queue.
    pub fetch: u64,
    /// Cycle it moved into the instruction window.
    pub dispatch: u64,
    /// Cycle it issued to a functional unit or the memory system.
    pub issue: u64,
    /// Cycle its result (or memory fill) completed.
    pub complete: u64,
    /// Cycle it retired.
    pub retire: u64,
}

/// A point event at one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstantEvent {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: InstantKind,
    /// Event argument: an address or line for memory events, the branch
    /// PC for predictor events.
    pub addr: u64,
    /// Cache level, where meaningful: 1 = L1, 2 = L2, 3 = memory,
    /// 0 = not applicable.
    pub level: u8,
}

/// One cycle's retirement outcome: the inputs of the paper's
/// attribution rule (§2.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleSample {
    /// The cycle sampled.
    pub cycle: u64,
    /// Instructions retired this cycle.
    pub retired: u32,
    /// Stall class of the first non-retiring instruction (`None` when
    /// the full retire width was used).
    pub stall: Option<TraceStall>,
}

/// Any event in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A retired instruction's lifecycle.
    Span(InstSpan),
    /// A point event.
    Instant(InstantEvent),
    /// A per-cycle stall-cause sample.
    Sample(CycleSample),
}

/// Exact execution-time attribution in units of `1/width` cycles —
/// the integer form of the Figure 1 breakdown, accumulated from
/// per-cycle samples with the same charging rule as
/// `visim_cpu::CpuStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Attribution {
    /// Retire width (units per cycle).
    pub width: u64,
    /// Cycles sampled.
    pub cycles: u64,
    /// Units spent retiring instructions.
    pub busy_units: u64,
    /// Units lost to computation stalls.
    pub fu_stall_units: u64,
    /// Units lost to memory stalls within the L1.
    pub l1_hit_units: u64,
    /// Units lost to stalls beyond the L1.
    pub l1_miss_units: u64,
}

impl Attribution {
    /// Apply one cycle with the paper's charging rule: `retired` slots
    /// are busy, the remaining `width - retired` are charged to the
    /// stall class of the first non-retiring instruction.
    pub fn account(&mut self, retired: u32, stall: Option<TraceStall>) {
        self.cycles += 1;
        self.busy_units += retired as u64;
        let lost = self.width.saturating_sub(retired as u64);
        if lost == 0 {
            return;
        }
        match stall.unwrap_or(TraceStall::FuStall) {
            TraceStall::FuStall => self.fu_stall_units += lost,
            TraceStall::L1Hit => self.l1_hit_units += lost,
            TraceStall::L1Miss => self.l1_miss_units += lost,
        }
    }

    /// Total units across every class; equals `cycles * width` exactly
    /// when every cycle was sampled.
    pub fn total_units(&self) -> u64 {
        self.busy_units + self.fu_stall_units + self.l1_hit_units + self.l1_miss_units
    }

    /// Serialize for the `pipetrace` artifact cells.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("width", Json::from(self.width)),
            ("cycles", Json::from(self.cycles)),
            ("busy_units", Json::from(self.busy_units)),
            ("fu_stall_units", Json::from(self.fu_stall_units)),
            ("l1_hit_units", Json::from(self.l1_hit_units)),
            ("l1_miss_units", Json::from(self.l1_miss_units)),
            ("total_units", Json::from(self.total_units())),
        ])
    }
}

/// A trace ring shared by the pipeline, predictor, and memory system of
/// one simulation (they are created and dropped together on one
/// thread, so plain `Rc<RefCell<_>>` suffices; the extracted [`Trace`]
/// is ordinary owned data again).
pub type SharedTraceRing = Rc<RefCell<TraceRing>>;

/// Bounded event ring with exact pre-eviction aggregates.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    /// Half-open cycle window `[start, end)` restricting which events
    /// are *stored*; aggregates always cover the whole run.
    window: Option<(u64, u64)>,
    now: u64,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    attr: Attribution,
    instant_counts: [u64; InstantKind::COUNT],
}

impl TraceRing {
    /// A ring holding at most `cap` events (`cap = 0` keeps aggregates
    /// only).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            window: None,
            now: 0,
            events: VecDeque::new(),
            dropped: 0,
            attr: Attribution::default(),
            instant_counts: [0; InstantKind::COUNT],
        }
    }

    /// Convenience: a shareable ring.
    pub fn shared(cap: usize) -> SharedTraceRing {
        Rc::new(RefCell::new(TraceRing::new(cap)))
    }

    /// Set the retire width used by the attribution accumulator (the
    /// pipeline calls this when the ring is attached).
    pub fn set_width(&mut self, width: u32) {
        self.attr.width = width as u64;
    }

    /// Restrict stored events to cycles in `[start, end)`. Spans are
    /// kept if any part of their lifetime overlaps the window.
    pub fn set_window(&mut self, start: u64, end: u64) {
        self.window = Some((start, end));
    }

    /// Advance the ring's notion of the current cycle (the pipeline
    /// calls this at the top of every cycle, so hook sites without
    /// their own clock — predictor updates, cache evictions — can
    /// timestamp against it).
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// The current cycle, as last set by the pipeline.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn in_window(&self, cycle: u64) -> bool {
        match self.window {
            Some((start, end)) => cycle >= start && cycle < end,
            None => true,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Record a completed instruction lifecycle.
    pub fn span(&mut self, span: InstSpan) {
        let keep = match self.window {
            Some((start, end)) => span.fetch < end && span.retire >= start,
            None => true,
        };
        if keep {
            self.push(TraceEvent::Span(span));
        }
    }

    /// Record a point event at the current cycle.
    pub fn instant(&mut self, kind: InstantKind, addr: u64, level: u8) {
        self.instant_at(self.now, kind, addr, level);
    }

    /// Record a point event at an explicit cycle (memory-system events
    /// are often timestamped in the future, e.g. an MSHR drain at its
    /// fill time).
    pub fn instant_at(&mut self, cycle: u64, kind: InstantKind, addr: u64, level: u8) {
        self.instant_counts[kind.index()] += 1;
        if self.in_window(cycle) {
            self.push(TraceEvent::Instant(InstantEvent {
                cycle,
                kind,
                addr,
                level,
            }));
        }
    }

    /// Record the current cycle's retirement outcome. Always feeds the
    /// exact [`Attribution`], regardless of the ring capacity or cycle
    /// window.
    pub fn sample(&mut self, retired: u32, stall: Option<TraceStall>) {
        self.attr.account(retired, stall);
        if self.in_window(self.now) {
            self.push(TraceEvent::Sample(CycleSample {
                cycle: self.now,
                retired,
                stall,
            }));
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped (ring overflow or zero capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The exact attribution accumulated so far.
    pub fn attribution(&self) -> Attribution {
        self.attr
    }

    /// Extract the recorded trace (plain owned data, `Send`).
    pub fn into_trace(self) -> Trace {
        Trace {
            events: self.events.into(),
            dropped: self.dropped,
            attribution: self.attr,
            instant_counts: self.instant_counts,
        }
    }
}

/// A finished trace extracted from a [`TraceRing`].
#[derive(Debug, Clone)]
pub struct Trace {
    /// Retained events, in record order.
    pub events: Vec<TraceEvent>,
    /// Events dropped by ring eviction.
    pub dropped: u64,
    /// Exact per-class attribution over *all* sampled cycles (immune to
    /// eviction and cycle windows).
    pub attribution: Attribution,
    /// Total occurrences per instant kind, indexed like
    /// [`InstantKind::ALL`] (also immune to eviction).
    pub instant_counts: [u64; InstantKind::COUNT],
}

impl Trace {
    /// Total occurrences of one instant kind over the whole run.
    pub fn instant_count(&self, kind: InstantKind) -> u64 {
        self.instant_counts[kind.index()]
    }

    /// Export as Chrome trace-event JSON (the format Perfetto and
    /// `chrome://tracing` load), with `meta` merged into `otherData`.
    ///
    /// Instruction spans are laid out on the fewest timeline lanes such
    /// that spans on a lane never overlap, so every lane's begin/end
    /// events are strictly alternating and balanced; instants render on
    /// per-family tracks and per-cycle samples become an `attribution`
    /// counter track. One cycle maps to one microsecond.
    pub fn chrome_trace(&self, meta: Vec<(&str, Json)>) -> Json {
        let mut spans: Vec<&InstSpan> = Vec::new();
        let mut instants: Vec<&InstantEvent> = Vec::new();
        let mut samples: Vec<&CycleSample> = Vec::new();
        for ev in &self.events {
            match ev {
                TraceEvent::Span(s) => spans.push(s),
                TraceEvent::Instant(i) => instants.push(i),
                TraceEvent::Sample(c) => samples.push(c),
            }
        }
        spans.sort_by_key(|s| (s.fetch, s.seq));
        instants.sort_by_key(|i| i.cycle);

        // Greedy lane assignment: each span takes the first lane free
        // at its fetch cycle and holds it through retirement, so spans
        // on one lane are disjoint and strictly ordered.
        let mut lane_free: Vec<u64> = Vec::new();
        let mut placed: Vec<(u64, &InstSpan)> = Vec::with_capacity(spans.len());
        for s in spans {
            let lane = match lane_free.iter().position(|&free| free <= s.fetch) {
                Some(ix) => ix,
                None => {
                    lane_free.push(0);
                    lane_free.len() - 1
                }
            };
            lane_free[lane] = s.retire + 1;
            placed.push((SPAN_TID0 + lane as u64, s));
        }

        let mut events: Vec<Json> = Vec::new();
        events.push(meta_event("process_name", 0, "visim pipeline"));
        for lane in 0..lane_free.len() {
            events.push(meta_event(
                "thread_name",
                SPAN_TID0 + lane as u64,
                &format!("inst lane {lane}"),
            ));
        }
        let mut named_tracks: Vec<u64> = Vec::new();
        for i in &instants {
            let (tid, name) = i.kind.track();
            if !named_tracks.contains(&tid) {
                named_tracks.push(tid);
                events.push(meta_event("thread_name", tid, name));
            }
        }
        for (tid, s) in &placed {
            events.push(Json::obj(vec![
                ("name", Json::from(s.op)),
                ("cat", Json::from("inst")),
                ("ph", Json::from("B")),
                ("ts", Json::from(s.fetch)),
                ("pid", Json::from(1u64)),
                ("tid", Json::from(*tid)),
                (
                    "args",
                    Json::obj(vec![
                        ("seq", Json::from(s.seq)),
                        ("pc", Json::from(format!("{:#x}", s.pc))),
                        ("dispatch", Json::from(s.dispatch)),
                        ("issue", Json::from(s.issue)),
                        ("complete", Json::from(s.complete)),
                    ]),
                ),
            ]));
            events.push(Json::obj(vec![
                ("ph", Json::from("E")),
                ("ts", Json::from(s.retire)),
                ("pid", Json::from(1u64)),
                ("tid", Json::from(*tid)),
            ]));
        }
        for i in &instants {
            let (tid, _) = i.kind.track();
            events.push(Json::obj(vec![
                ("name", Json::from(i.kind.name())),
                ("cat", Json::from("instant")),
                ("ph", Json::from("i")),
                ("s", Json::from("t")),
                ("ts", Json::from(i.cycle)),
                ("pid", Json::from(1u64)),
                ("tid", Json::from(tid)),
                (
                    "args",
                    Json::obj(vec![
                        ("addr", Json::from(format!("{:#x}", i.addr))),
                        ("level", Json::from(i.level as u64)),
                    ]),
                ),
            ]));
        }
        let width = self.attribution.width;
        for c in &samples {
            let lost = width.saturating_sub(c.retired as u64);
            let charge = |class| match c.stall {
                Some(s) if s == class => lost,
                None | Some(_) => 0,
            };
            events.push(Json::obj(vec![
                ("name", Json::from("attribution")),
                ("ph", Json::from("C")),
                ("ts", Json::from(c.cycle)),
                ("pid", Json::from(1u64)),
                (
                    "args",
                    Json::obj(vec![
                        ("busy", Json::from(c.retired as u64)),
                        ("fu_stall", Json::from(charge(TraceStall::FuStall))),
                        ("l1_hit", Json::from(charge(TraceStall::L1Hit))),
                        ("l1_miss", Json::from(charge(TraceStall::L1Miss))),
                    ]),
                ),
            ]));
        }

        let mut other: Vec<(&str, Json)> = vec![
            ("schema", Json::from(crate::schema::TRACE_SCHEMA)),
            ("clock", Json::from("1 cycle = 1us")),
        ];
        other.extend(meta);
        other.push(("dropped_events", Json::from(self.dropped)));
        other.push(("attribution", self.attribution.to_json()));
        let mut counts = Vec::with_capacity(InstantKind::COUNT);
        for kind in InstantKind::ALL {
            counts.push((kind.name(), Json::from(self.instant_count(kind))));
        }
        other.push(("instant_counts", Json::obj(counts)));

        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ms")),
            ("otherData", Json::obj(other)),
        ])
    }
}

/// First timeline lane tid. Instant tracks use fixed tids 2-5 (below
/// this base), lane tids grow upward from here, one per concurrently
/// in-flight instruction.
const SPAN_TID0: u64 = 10;

fn meta_event(name: &str, tid: u64, value: &str) -> Json {
    Json::obj(vec![
        ("name", Json::from(name)),
        ("ph", Json::from("M")),
        ("pid", Json::from(1u64)),
        ("tid", Json::from(tid)),
        ("args", Json::obj(vec![("name", Json::from(value))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, fetch: u64, retire: u64) -> InstSpan {
        InstSpan {
            seq,
            pc: 0x1000 + 4 * seq,
            op: "int_alu",
            fetch,
            dispatch: fetch + 1,
            issue: fetch + 1,
            complete: retire,
            retire,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = TraceRing::new(2);
        r.set_width(4);
        r.span(span(0, 0, 3));
        r.span(span(1, 1, 4));
        r.span(span(2, 2, 5));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let t = r.into_trace();
        match t.events[0] {
            TraceEvent::Span(s) => assert_eq!(s.seq, 1, "oldest span evicted"),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribution_survives_eviction_and_matches_charging_rule() {
        let mut r = TraceRing::new(1);
        r.set_width(4);
        r.set_now(0);
        r.sample(4, None);
        r.set_now(1);
        r.sample(2, Some(TraceStall::L1Miss));
        r.set_now(2);
        r.sample(0, Some(TraceStall::L1Hit));
        r.set_now(3);
        r.sample(1, None); // lost slots with no stall charge to FuStall
        let a = r.attribution();
        assert_eq!(a.cycles, 4);
        assert_eq!(a.busy_units, 7);
        assert_eq!(a.l1_miss_units, 2);
        assert_eq!(a.l1_hit_units, 4);
        assert_eq!(a.fu_stall_units, 3);
        assert_eq!(a.total_units(), 16);
        assert_eq!(a.total_units(), a.cycles * a.width);
    }

    #[test]
    fn zero_capacity_keeps_aggregates_only() {
        let mut r = TraceRing::new(0);
        r.set_width(1);
        r.sample(1, None);
        r.instant(InstantKind::L1Hit, 0x40, 1);
        assert_eq!(r.len(), 0);
        let t = r.into_trace();
        assert_eq!(t.attribution.cycles, 1);
        assert_eq!(t.instant_count(InstantKind::L1Hit), 1);
        assert!(t.dropped > 0);
    }

    #[test]
    fn cycle_window_filters_events_not_aggregates() {
        let mut r = TraceRing::new(64);
        r.set_width(1);
        r.set_window(10, 20);
        r.span(span(0, 0, 5)); // entirely before the window
        r.span(span(1, 8, 12)); // overlaps
        for cycle in 0..30 {
            r.set_now(cycle);
            r.sample(0, Some(TraceStall::FuStall));
            r.instant(InstantKind::L1Miss, 0x80, 2);
        }
        let t = r.into_trace();
        let spans = t
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Span(_)))
            .count();
        let samples = t
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Sample(_)))
            .count();
        assert_eq!(spans, 1, "only the overlapping span is stored");
        assert_eq!(samples, 10, "samples stored inside [10, 20) only");
        assert_eq!(t.attribution.cycles, 30, "aggregates cover every cycle");
        assert_eq!(t.instant_count(InstantKind::L1Miss), 30);
    }

    /// Per-tid begin/end balance and ordering of an exported trace:
    /// every `B` has a matching `E` on the same tid, and timestamps on
    /// each tid never go backwards.
    pub(crate) fn check_chrome_invariants(doc: &Json) {
        let events = doc
            .get("traceEvents")
            .and_then(Json::elements)
            .expect("traceEvents array");
        let mut per_tid: Vec<(u64, i64, u64)> = Vec::new(); // (tid, depth, last_ts)
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
            if ph == "M" || ph == "C" {
                continue;
            }
            let tid = ev.get("tid").and_then(Json::as_u64).expect("tid");
            let ts = ev.get("ts").and_then(Json::as_u64).expect("ts");
            let entry = match per_tid.iter_mut().find(|(t, _, _)| *t == tid) {
                Some(e) => e,
                None => {
                    per_tid.push((tid, 0, 0));
                    per_tid.last_mut().expect("just pushed")
                }
            };
            assert!(ts >= entry.2, "tid {tid}: ts {ts} < {}", entry.2);
            entry.2 = ts;
            match ph {
                "B" => entry.1 += 1,
                "E" => {
                    entry.1 -= 1;
                    assert!(entry.1 >= 0, "tid {tid}: E without B");
                }
                "i" => {}
                other => panic!("unexpected ph {other}"),
            }
        }
        for (tid, depth, _) in per_tid {
            assert_eq!(depth, 0, "tid {tid}: unbalanced B/E");
        }
    }

    #[test]
    fn chrome_export_is_balanced_and_parses() {
        let mut r = TraceRing::new(256);
        r.set_width(4);
        // Overlapping spans force multiple lanes.
        r.span(span(0, 0, 10));
        r.span(span(1, 2, 6));
        r.span(span(2, 3, 12));
        r.span(span(3, 11, 15));
        r.instant_at(4, InstantKind::BranchMispredict, 0x1004, 0);
        r.instant_at(2, InstantKind::MshrAlloc, 0x40, 1);
        r.set_now(5);
        r.sample(2, Some(TraceStall::L1Miss));
        let t = r.into_trace();
        let doc = t.chrome_trace(vec![("benchmark", Json::from("unit"))]);
        check_chrome_invariants(&doc);
        // Round-trips through the shared JSON parser.
        let reparsed = Json::parse(&doc.to_compact()).expect("valid JSON");
        assert_eq!(reparsed, doc);
        let other = doc.get("otherData").expect("otherData");
        assert_eq!(
            other.get("schema").and_then(Json::as_str),
            Some(crate::schema::TRACE_SCHEMA)
        );
        assert_eq!(other.get("benchmark").and_then(Json::as_str), Some("unit"));
        assert_eq!(
            other
                .get("instant_counts")
                .and_then(|c| c.get("mshr_alloc"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn lanes_reuse_after_retirement() {
        let mut r = TraceRing::new(64);
        r.set_width(1);
        // Strictly sequential spans must share one lane.
        r.span(span(0, 0, 4));
        r.span(span(1, 5, 9));
        r.span(span(2, 10, 14));
        let doc = r.into_trace().chrome_trace(vec![]);
        let events = doc.get("traceEvents").and_then(Json::elements).unwrap();
        let lanes: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .map(|e| e.get("tid").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(lanes, vec![SPAN_TID0; 3]);
    }
}
