//! Emitter-based JPEG codec: the paper's `cjpeg` / `djpeg`
//! (progressive) and `cjpeg-np` / `djpeg-np` (baseline sequential)
//! benchmarks.
//!
//! The codec is algorithmically faithful to the IJG release the paper
//! uses: RGB→YCbCr color conversion, 4:2:0 chroma decimation, the
//! "islow" fixed-point 8×8 DCT, Annex-K quantization with IJG quality
//! scaling, zig-zag ordering, and canonical Huffman entropy coding with
//! the Annex-K default tables (DC-difference prediction, run/size AC
//! coding, 0xFF byte stuffing). The container framing is a compact
//! private header rather than JFIF marker segments, and the progressive
//! mode uses spectral selection only (no successive approximation);
//! both simplifications are documented in DESIGN.md.
//!
//! Two structural properties the paper's analysis depends on are
//! preserved exactly:
//!
//! * **baseline** (`*-np`) is a *blocked pipeline*: each 8×8 block goes
//!   through DCT → quant → entropy coding immediately (small working
//!   set, cache-size-insensitive, §4.1);
//! * **progressive** buffers the *whole image's* DCT coefficients and
//!   makes multiple entropy passes over that image-sized buffer (large
//!   working set that only a display-sized cache captures, §4.1).
//!
//! The VIS variants accelerate the MediaLib-style routines — color
//! conversion, chroma decimation/upsampling, and sample clamp/store —
//! while the DCT and the inherently sequential Huffman coding stay
//! scalar (as §3.2.3 explains, variable-length coding cannot use VIS).

pub mod bits;
pub mod block;
pub mod color;
pub mod decoder;
pub mod encoder;
pub mod huff;

pub use decoder::decode;
pub use encoder::{encode, EncodeParams, JpegStream};
pub use media_kernels::Variant;

use visim_cpu::SimSink;
use visim_trace::Program;

/// An 8-bit planar sample plane in simulated memory (stride == width;
/// widths are multiples of 8 so rows stay VIS-aligned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimPlane {
    /// Simulated base address (8-aligned).
    pub addr: u64,
    /// Width in samples.
    pub w: usize,
    /// Height in samples.
    pub h: usize,
}

impl SimPlane {
    /// Allocate a zeroed plane (with guard bytes for VIS windowed loads
    /// and edge-clamped half-pel interpolation windows).
    pub fn alloc<S: SimSink>(p: &mut Program<S>, w: usize, h: usize) -> Self {
        assert_eq!(w % 8, 0, "plane width must be a multiple of 8");
        let addr = p.mem_mut().alloc_skewed(w * h + 32, 8, 136);
        SimPlane { addr, w, h }
    }

    /// Address of row `y`.
    pub fn row(&self, y: usize) -> u64 {
        self.addr + (y * self.w) as u64
    }

    /// Copy the plane out of simulated memory.
    pub fn to_vec<S: SimSink>(&self, p: &Program<S>) -> Vec<u8> {
        p.mem().bytes(self.addr, self.w * self.h).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_rows_are_contiguous() {
        let mut sink = visim_cpu::CountingSink::new();
        let mut p = Program::new(&mut sink);
        let pl = SimPlane::alloc(&mut p, 16, 4);
        assert_eq!(pl.row(1) - pl.row(0), 16);
        assert_eq!(pl.to_vec(&p).len(), 64);
    }
}
