//! Emitted bit-level I/O: the entropy-coded segment writer and reader.
//!
//! Both keep their state (output pointer, bit accumulator, bit count) in
//! simulated registers and emit every shift/or/store — this serial
//! register dependence chain is exactly why the paper finds the Huffman
//! phases VIS-inapplicable.

use visim_cpu::SimSink;
use visim_trace::{Cond, Program, Val};

/// Emitted bitstream writer state (MSB-first, JPEG 0xFF00 stuffing).
#[derive(Debug, Clone, Copy)]
pub struct BitWriterState {
    /// Output byte pointer.
    pub out: Val,
    /// Bit accumulator (holds < 8 bits between symbols).
    pub acc: Val,
    /// Number of valid bits in `acc`.
    pub nbits: Val,
}

impl BitWriterState {
    /// Start writing at simulated address `out`.
    pub fn new<S: SimSink>(p: &mut Program<S>, out: u64) -> Self {
        BitWriterState {
            out: p.li(out as i64),
            acc: p.li(0),
            nbits: p.li(0),
        }
    }

    /// Append the low `len` bits of `code` (both emitted values; `len`'s
    /// host value drives the byte-drain loop the way a real encoder's
    /// data does).
    pub fn put<S: SimSink>(&mut self, p: &mut Program<S>, code: &Val, len: &Val) {
        self.acc = p.shl(&self.acc, len);
        let masked = {
            // code is already within len bits by construction.
            p.or(&self.acc, code)
        };
        self.acc = masked;
        self.nbits = p.add(&self.nbits, len);
        // Drain whole bytes. The loop condition is a real emitted branch
        // whose outcome depends on accumulated code lengths.
        while p.bcond_i(Cond::Ge, &self.nbits, 8, false) {
            self.nbits = p.addi(&self.nbits, -8);
            let byte = p.shr(&self.acc, &self.nbits);
            let byte = p.andi(&byte, 0xff);
            p.store_u8(&self.out, 0, &byte);
            self.out = p.addi(&self.out, 1);
            // JPEG byte stuffing: 0xFF is followed by 0x00.
            if p.bcond_i(Cond::Eq, &byte, 0xff, false) {
                let z = p.li(0);
                p.store_u8(&self.out, 0, &z);
                self.out = p.addi(&self.out, 1);
            }
            // Clear the drained bits.
            let one = p.li(1);
            let m = p.shl(&one, &self.nbits);
            let m = p.addi(&m, -1);
            self.acc = p.and(&self.acc, &m);
        }
    }

    /// Pad to a byte boundary with 1-bits and return the end address.
    pub fn finish<S: SimSink>(&mut self, p: &mut Program<S>) -> u64 {
        if p.bcond_i(Cond::Gt, &self.nbits, 0, false) {
            let pad = p.li(8);
            let padlen = p.sub(&pad, &self.nbits);
            let one = p.li(1);
            let ones = p.shl(&one, &padlen);
            let ones = p.addi(&ones, -1);
            self.put(p, &ones, &padlen);
        }
        self.out.value() as u64
    }
}

/// Emitted bitstream reader state (MSB-first, removes 0xFF00 stuffing).
#[derive(Debug, Clone, Copy)]
pub struct BitReaderState {
    /// Input byte pointer.
    pub inp: Val,
    /// Bit reservoir.
    pub acc: Val,
    /// Valid bits in the reservoir.
    pub nbits: Val,
}

impl BitReaderState {
    /// Start reading at simulated address `inp`.
    pub fn new<S: SimSink>(p: &mut Program<S>, inp: u64) -> Self {
        BitReaderState {
            inp: p.li(inp as i64),
            acc: p.li(0),
            nbits: p.li(0),
        }
    }

    fn fill<S: SimSink>(&mut self, p: &mut Program<S>, need: i64) {
        while p.bcond_i(Cond::Lt, &self.nbits, need, false) {
            let byte = p.load_u8(&self.inp, 0);
            self.inp = p.addi(&self.inp, 1);
            if p.bcond_i(Cond::Eq, &byte, 0xff, false) {
                // Skip the stuffed zero.
                self.inp = p.addi(&self.inp, 1);
            }
            let acc8 = p.shli(&self.acc, 8);
            self.acc = p.or(&acc8, &byte);
            self.nbits = p.addi(&self.nbits, 8);
        }
    }

    /// Read one bit.
    pub fn bit<S: SimSink>(&mut self, p: &mut Program<S>) -> Val {
        self.fill(p, 1);
        self.nbits = p.addi(&self.nbits, -1);
        let b = p.shr(&self.acc, &self.nbits);
        let b = p.andi(&b, 1);
        let one = p.li(1);
        let m = p.shl(&one, &self.nbits);
        let m = p.addi(&m, -1);
        self.acc = p.and(&self.acc, &m);
        b
    }

    /// Read `n` bits (`n` is a host-known count, e.g. a decoded size
    /// category), emitting a single masked extract.
    pub fn get<S: SimSink>(&mut self, p: &mut Program<S>, n: i64) -> Val {
        if n == 0 {
            return p.li(0);
        }
        self.fill(p, n);
        self.nbits = p.addi(&self.nbits, -n);
        let v = p.shr(&self.acc, &self.nbits);
        let mask = (1i64 << n) - 1;
        let v = p.andi(&v, mask);
        let one = p.li(1);
        let m = p.shl(&one, &self.nbits);
        let m = p.addi(&m, -1);
        self.acc = p.and(&self.acc, &m);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visim_cpu::CountingSink;

    #[test]
    fn emitted_writer_reader_roundtrip() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let buf = p.mem_mut().alloc(256, 8);
        let mut w = BitWriterState::new(&mut p, buf);
        let fields: Vec<(i64, i64)> = vec![
            (0b1, 1),
            (0b0110, 4),
            (0xabc, 12),
            (0xff, 8),
            (0, 3),
            (0x1f, 5),
        ];
        for &(v, n) in &fields {
            let code = p.li(v);
            let len = p.li(n);
            w.put(&mut p, &code, &len);
        }
        let end = w.finish(&mut p);
        assert!(end > buf);
        let mut r = BitReaderState::new(&mut p, buf);
        for &(v, n) in &fields {
            let got = r.get(&mut p, n);
            assert_eq!(got.value(), v, "{n}-bit field");
        }
    }

    #[test]
    fn stuffing_matches_host_bitwriter() {
        // The emitted writer must produce byte-identical output to the
        // host-side reference in media-dsp.
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let buf = p.mem_mut().alloc(64, 8);
        let mut w = BitWriterState::new(&mut p, buf);
        let mut href = media_dsp::BitWriter::with_stuffing();
        for (v, n) in [(0xffu32, 8), (0x3, 2), (0xff, 8), (0x1, 6)] {
            let code = p.li(v as i64);
            let len = p.li(n as i64);
            w.put(&mut p, &code, &len);
            href.put(v, n);
        }
        let end = w.finish(&mut p);
        let want = href.into_bytes();
        let got = p.mem().bytes(buf, (end - buf) as usize).to_vec();
        assert_eq!(got, want);
    }

    #[test]
    fn single_bits_reassemble() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let buf = p.mem_mut().alloc(64, 8);
        let mut w = BitWriterState::new(&mut p, buf);
        let code = p.li(0b1011_0010);
        let len = p.li(8);
        w.put(&mut p, &code, &len);
        w.finish(&mut p);
        let mut r = BitReaderState::new(&mut p, buf);
        let mut v = 0i64;
        for _ in 0..8 {
            let b = r.bit(&mut p);
            v = (v << 1) | b.value();
        }
        assert_eq!(v, 0b1011_0010);
    }
}
