//! The emitted JPEG decoder (`djpeg` / `djpeg-np`).

use media_dsp::quant::{scale_table, CHROMA_Q, LUMA_Q};
use media_dsp::ZIGZAG;
use media_image::Image;
use media_kernels::{SimImage, Variant};
use visim_cpu::SimSink;
use visim_trace::{Program, Val};

use crate::bits::BitReaderState;
use crate::block::{idct, store_block, SimQuant, VisIdct};
use crate::color::{upsample, ycbcr_to_rgb};
use crate::encoder::{scan_script, EntropyTables, JpegStream};
use crate::huff::extend;
use crate::SimPlane;

/// Decode a stream produced by [`crate::encode`] back into an image.
pub fn decode<S: SimSink>(p: &mut Program<S>, stream: &JpegStream, v: Variant) -> Image {
    let out = decode_sim(p, stream, v);
    out.to_image(p)
}

/// Decode into a simulated-memory image.
pub fn decode_sim<S: SimSink>(p: &mut Program<S>, stream: &JpegStream, v: Variant) -> SimImage {
    // Emitted header parse: the decoder trusts its own loads.
    let hb = p.li(stream.addr as i64);
    let m0 = p.load_u8(&hb, 0);
    let m1 = p.load_u8(&hb, 1);
    assert_eq!((m0.value(), m1.value()), (b'V' as i64, b'J' as i64));
    let whi = p.load_u8(&hb, 2);
    let wlo = p.load_u8(&hb, 3);
    let t = p.muli(&whi, 256);
    let wv = p.add(&t, &wlo);
    let hhi = p.load_u8(&hb, 4);
    let hlo = p.load_u8(&hb, 5);
    let t = p.muli(&hhi, 256);
    let hv = p.add(&t, &hlo);
    let q = p.load_u8(&hb, 6);
    let prog = p.load_u8(&hb, 7);
    let (w, h) = (wv.value() as usize, hv.value() as usize);
    let quality = q.value() as u32;
    let progressive = prog.value() != 0;

    let yp = SimPlane::alloc(p, w, h);
    let cbp = SimPlane::alloc(p, w / 2, h / 2);
    let crp = SimPlane::alloc(p, w / 2, h / 2);
    let lq = SimQuant::install(p, &scale_table(&LUMA_Q, quality));
    let cq = SimQuant::install(p, &scale_table(&CHROMA_Q, quality));
    let tables = EntropyTables::install(p);
    let vidct = if v.vis { Some(VisIdct::new(p)) } else { None };
    let mut reader = BitReaderState::new(p, stream.addr + 8);
    let comps: [(&SimPlane, &SimQuant); 3] = [(&yp, &lq), (&cbp, &cq), (&crp, &cq)];

    if progressive {
        // Scans fill image-sized level buffers; blocks reconstruct after.
        let mut bufs = Vec::new();
        for (plane, _) in comps {
            let (wb, hb_) = (plane.w / 8, plane.h / 8);
            bufs.push((p.mem_mut().alloc(wb * hb_ * 128, 8), wb, hb_));
        }
        for (comp, ss, se) in scan_script() {
            let (buf, wb, hb_) = bufs[comp];
            let chan = comp.min(1);
            let mut pred = p.li(0);
            for bi in 0..wb * hb_ {
                let base = p.li((buf + (bi * 128) as u64) as i64);
                if ss == 0 {
                    let (dc, npred) = decode_dc(p, &mut reader, &tables, chan, &pred);
                    pred = npred;
                    p.store_u16(&base, 0, &dc);
                } else {
                    decode_ac_band_to_buffer(p, &mut reader, &tables, chan, &base, ss, se);
                }
            }
        }
        // Reconstruction pass: dequantize + IDCT every block.
        for (comp, &(plane, q)) in comps.iter().enumerate() {
            let (buf, wb, hb_) = bufs[comp];
            for by in 0..hb_ {
                for bx in 0..wb {
                    let base = p.li((buf + ((by * wb + bx) * 128) as u64) as i64);
                    if v.prefetch {
                        p.prefetch(&base, 256);
                        p.prefetch(&base, 320);
                    }
                    let zero = p.li(0);
                    let mut coef = vec![zero; 64];
                    for k in 0..64 {
                        let lvl = p.load_i16(&base, 2 * k as i64);
                        let (raster, val) = q.dequant_one(p, k, &lvl);
                        coef[raster] = val;
                    }
                    if let Some(ctx) = &vidct {
                        ctx.run(p, &coef, plane, bx, by);
                    } else {
                        let px = idct(p, &coef);
                        store_block(p, plane, bx, by, &px);
                    }
                }
            }
        }
    } else {
        let (mw, mh) = (w / 16, h / 16);
        let mut preds = [p.li(0), p.li(0), p.li(0)];
        for my in 0..mh {
            for mx in 0..mw {
                for (comp, &(plane, q)) in comps.iter().enumerate() {
                    let blocks: &[(usize, usize)] = if comp == 0 {
                        &[
                            (2 * mx, 2 * my),
                            (2 * mx + 1, 2 * my),
                            (2 * mx, 2 * my + 1),
                            (2 * mx + 1, 2 * my + 1),
                        ]
                    } else {
                        &[(mx, my)]
                    };
                    let chan = comp.min(1);
                    for &(bx, by) in blocks {
                        let (dc, npred) = decode_dc(p, &mut reader, &tables, chan, &preds[comp]);
                        preds[comp] = npred;
                        let zero = p.li(0);
                        let mut coef = vec![zero; 64];
                        let (raster0, v0) = q.dequant_one(p, 0, &dc);
                        coef[raster0] = v0;
                        decode_ac_into(p, &mut reader, &tables, chan, q, &mut coef);
                        if let Some(ctx) = &vidct {
                            ctx.run(p, &coef, plane, bx, by);
                        } else {
                            let px = idct(p, &coef);
                            store_block(p, plane, bx, by, &px);
                        }
                    }
                }
            }
        }
    }

    // Upsample chroma and convert back to interleaved RGB.
    let cbf = SimPlane::alloc(p, w, h);
    let crf = SimPlane::alloc(p, w, h);
    upsample(p, &cbp, &cbf, v);
    upsample(p, &crp, &crf, v);
    let rgb = SimImage::alloc(p, w, h, 3);
    ycbcr_to_rgb(p, &yp, &cbf, &crf, &rgb, v);
    rgb
}

/// Emit DC decode: returns `(dc_level, new_pred)`.
fn decode_dc<S: SimSink>(
    p: &mut Program<S>,
    r: &mut BitReaderState,
    t: &EntropyTables,
    chan: usize,
    pred: &Val,
) -> (Val, Val) {
    let cat = t.dc[chan].decode(p, r);
    let catv = cat.value();
    let bits = r.get(p, catv);
    let diff = extend(p, &bits, catv);
    let dc = p.add(pred, &diff);
    (dc, dc)
}

/// Emit baseline AC decode of coefficients 1..=63 directly into a
/// dequantized raster block.
fn decode_ac_into<S: SimSink>(
    p: &mut Program<S>,
    r: &mut BitReaderState,
    t: &EntropyTables,
    chan: usize,
    q: &SimQuant,
    coef: &mut [Val],
) {
    let mut k = 1usize;
    while k <= 63 {
        let sym = t.ac[chan].decode(p, r);
        let run = p.shri(&sym, 4);
        let size = p.andi(&sym, 15);
        if size.value() == 0 {
            if run.value() == 15 {
                k += 16; // ZRL
                continue;
            }
            break; // EOB
        }
        k += run.value() as usize;
        let bits = r.get(p, size.value());
        let level = extend(p, &bits, size.value());
        let (raster, val) = q.dequant_one(p, k, &level);
        coef[raster] = val;
        k += 1;
    }
}

/// Emit progressive AC decode of a spectral band into the level buffer.
fn decode_ac_band_to_buffer<S: SimSink>(
    p: &mut Program<S>,
    r: &mut BitReaderState,
    t: &EntropyTables,
    chan: usize,
    base: &Val,
    ss: usize,
    se: usize,
) {
    let mut k = ss;
    while k <= se {
        let sym = t.ac[chan].decode(p, r);
        let run = p.shri(&sym, 4);
        let size = p.andi(&sym, 15);
        if size.value() == 0 {
            if run.value() == 15 {
                k += 16;
                continue;
            }
            break;
        }
        k += run.value() as usize;
        let bits = r.get(p, size.value());
        let level = extend(p, &bits, size.value());
        p.store_u16(base, 2 * k as i64, &level);
        k += 1;
    }
}

#[allow(unused)]
fn zz_check(k: usize) -> usize {
    ZIGZAG[k]
}
