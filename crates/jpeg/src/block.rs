//! Emitted 8×8 block processing: sample load/store, the "islow"
//! fixed-point forward/inverse DCT (mirroring `media_dsp::dct`
//! instruction for instruction), quantization with explicit divides and
//! sign branches, and zig-zag ordering (compile-time constant offsets,
//! as unrolled codec code has).

use media_dsp::{ZIGZAG, ZIGZAG_INV};
use visim_cpu::SimSink;
use visim_trace::{Cond, Program, VVal, Val};

use crate::color::clamp255;
use crate::SimPlane;

const CONST_BITS: i64 = 13;
const PASS1_BITS: i64 = 2;

const FIX: [i64; 12] = [
    2446,  // 0.298631336
    3196,  // 0.390180644
    4433,  // 0.541196100
    6270,  // 0.765366865
    7373,  // 0.899976223
    9633,  // 1.175875602
    12299, // 1.501321110
    15137, // 1.847759065
    16069, // 1.961570560
    16819, // 2.053119869
    20995, // 2.562915447
    25172, // 3.072711026
];

fn fix(i: usize) -> i64 {
    FIX[i]
}

/// Emit `descale(x, n) = (x + (1 << (n-1))) >> n`.
fn descale<S: SimSink>(p: &mut Program<S>, x: &Val, n: i64) -> Val {
    let t = p.addi(x, 1 << (n - 1));
    p.srai(&t, n as u32)
}

/// Load an 8×8 block from `plane` at block coordinates `(bx, by)` and
/// level-shift by −128. Returns row-major sample registers.
pub fn load_block<S: SimSink>(
    p: &mut Program<S>,
    plane: &SimPlane,
    bx: usize,
    by: usize,
) -> Vec<Val> {
    let mut out = Vec::with_capacity(64);
    let mut row = p.li(plane.row(by * 8) as i64 + (bx * 8) as i64);
    for r in 0..8 {
        for c in 0..8i64 {
            let s = p.load_u8(&row, c);
            out.push(p.addi(&s, -128));
        }
        if r != 7 {
            row = p.addi(&row, plane.w as i64);
        }
    }
    out
}

/// Level-shift back by +128, clamp, and store an 8×8 block.
pub fn store_block<S: SimSink>(
    p: &mut Program<S>,
    plane: &SimPlane,
    bx: usize,
    by: usize,
    vals: &[Val],
) {
    assert_eq!(vals.len(), 64);
    let mut row = p.li(plane.row(by * 8) as i64 + (bx * 8) as i64);
    for r in 0..8 {
        for c in 0..8usize {
            let s = p.addi(&vals[r * 8 + c], 128);
            let s = clamp255(p, &s);
            p.store_u8(&row, c as i64, &s);
        }
        if r != 7 {
            row = p.addi(&row, plane.w as i64);
        }
    }
}

/// One emitted 1-D forward DCT pass (the dsp crate's `fdct_1d`).
fn fdct_1d<S: SimSink>(p: &mut Program<S>, d: &[Val; 8], down: i64, up: i64) -> [Val; 8] {
    let t0 = p.add(&d[0], &d[7]);
    let t7 = p.sub(&d[0], &d[7]);
    let t1 = p.add(&d[1], &d[6]);
    let t6 = p.sub(&d[1], &d[6]);
    let t2 = p.add(&d[2], &d[5]);
    let t5 = p.sub(&d[2], &d[5]);
    let t3 = p.add(&d[3], &d[4]);
    let t4 = p.sub(&d[3], &d[4]);

    let t10 = p.add(&t0, &t3);
    let t13 = p.sub(&t0, &t3);
    let t11 = p.add(&t1, &t2);
    let t12 = p.sub(&t1, &t2);

    let s0 = p.add(&t10, &t11);
    let s4 = p.sub(&t10, &t11);
    let (o0, o4) = if up >= 0 {
        (p.shli(&s0, up as u32), p.shli(&s4, up as u32))
    } else {
        (descale(p, &s0, -up), descale(p, &s4, -up))
    };

    let z = p.add(&t12, &t13);
    let z1 = p.muli(&z, fix(2));
    let m = p.muli(&t13, fix(3));
    let s2 = p.add(&z1, &m);
    let o2 = descale(p, &s2, down);
    let m = p.muli(&t12, fix(7));
    let s6 = p.sub(&z1, &m);
    let o6 = descale(p, &s6, down);

    let z1 = p.add(&t4, &t7);
    let z2 = p.add(&t5, &t6);
    let z3 = p.add(&t4, &t6);
    let z4 = p.add(&t5, &t7);
    let zs = p.add(&z3, &z4);
    let z5 = p.muli(&zs, fix(5));

    let m4 = p.muli(&t4, fix(0));
    let m5 = p.muli(&t5, fix(9));
    let m6 = p.muli(&t6, fix(11));
    let m7 = p.muli(&t7, fix(6));
    let z1 = p.muli(&z1, -fix(4));
    let z2 = p.muli(&z2, -fix(10));
    let z3 = p.muli(&z3, -fix(8));
    let z4 = p.muli(&z4, -fix(1));
    let z3 = p.add(&z3, &z5);
    let z4 = p.add(&z4, &z5);

    let s = p.add(&m4, &z1);
    let s = p.add(&s, &z3);
    let o7 = descale(p, &s, down);
    let s = p.add(&m5, &z2);
    let s = p.add(&s, &z4);
    let o5 = descale(p, &s, down);
    let s = p.add(&m6, &z2);
    let s = p.add(&s, &z3);
    let o3 = descale(p, &s, down);
    let s = p.add(&m7, &z1);
    let s = p.add(&s, &z4);
    let o1 = descale(p, &s, down);
    [o0, o1, o2, o3, o4, o5, o6, o7]
}

/// Emitted forward 8×8 DCT; same scaling as [`media_dsp::fdct8x8`].
pub fn fdct<S: SimSink>(p: &mut Program<S>, block: &[Val]) -> Vec<Val> {
    assert_eq!(block.len(), 64);
    let mut tmp: Vec<Val> = block.to_vec();
    for r in 0..8 {
        let d: [Val; 8] = tmp[r * 8..r * 8 + 8].try_into().expect("row of 8");
        let o = fdct_1d(p, &d, CONST_BITS - PASS1_BITS, PASS1_BITS);
        tmp[r * 8..r * 8 + 8].copy_from_slice(&o);
    }
    for c in 0..8 {
        let d: [Val; 8] = std::array::from_fn(|r| tmp[r * 8 + c]);
        let o = fdct_1d(p, &d, CONST_BITS + PASS1_BITS + 3, -(PASS1_BITS + 3));
        for r in 0..8 {
            tmp[r * 8 + c] = o[r];
        }
    }
    tmp
}

/// One emitted 1-D inverse DCT pass.
fn idct_1d<S: SimSink>(p: &mut Program<S>, d: &[Val; 8], down: i64) -> [Val; 8] {
    let z = p.add(&d[2], &d[6]);
    let z1 = p.muli(&z, fix(2));
    let m = p.muli(&d[6], -fix(7));
    let t2 = p.add(&z1, &m);
    let m = p.muli(&d[2], fix(3));
    let t3 = p.add(&z1, &m);

    let s = p.add(&d[0], &d[4]);
    let t0 = p.shli(&s, CONST_BITS as u32);
    let s = p.sub(&d[0], &d[4]);
    let t1 = p.shli(&s, CONST_BITS as u32);

    let t10 = p.add(&t0, &t3);
    let t13 = p.sub(&t0, &t3);
    let t11 = p.add(&t1, &t2);
    let t12 = p.sub(&t1, &t2);

    let z1 = p.add(&d[7], &d[1]);
    let z2 = p.add(&d[5], &d[3]);
    let z3 = p.add(&d[7], &d[3]);
    let z4 = p.add(&d[5], &d[1]);
    let zs = p.add(&z3, &z4);
    let z5 = p.muli(&zs, fix(5));

    let m0 = p.muli(&d[7], fix(0));
    let m1 = p.muli(&d[5], fix(9));
    let m2 = p.muli(&d[3], fix(11));
    let m3 = p.muli(&d[1], fix(6));
    let z1 = p.muli(&z1, -fix(4));
    let z2 = p.muli(&z2, -fix(10));
    let z3 = p.muli(&z3, -fix(8));
    let z4 = p.muli(&z4, -fix(1));
    let z3 = p.add(&z3, &z5);
    let z4 = p.add(&z4, &z5);

    let s = p.add(&m0, &z1);
    let t0f = p.add(&s, &z3);
    let s = p.add(&m1, &z2);
    let t1f = p.add(&s, &z4);
    let s = p.add(&m2, &z2);
    let t2f = p.add(&s, &z3);
    let s = p.add(&m3, &z1);
    let t3f = p.add(&s, &z4);

    let s = p.add(&t10, &t3f);
    let o0 = descale(p, &s, down);
    let s = p.sub(&t10, &t3f);
    let o7 = descale(p, &s, down);
    let s = p.add(&t11, &t2f);
    let o1 = descale(p, &s, down);
    let s = p.sub(&t11, &t2f);
    let o6 = descale(p, &s, down);
    let s = p.add(&t12, &t1f);
    let o2 = descale(p, &s, down);
    let s = p.sub(&t12, &t1f);
    let o5 = descale(p, &s, down);
    let s = p.add(&t13, &t0f);
    let o3 = descale(p, &s, down);
    let s = p.sub(&t13, &t0f);
    let o4 = descale(p, &s, down);
    [o0, o1, o2, o3, o4, o5, o6, o7]
}

/// Emitted inverse 8×8 DCT; same scaling as [`media_dsp::idct8x8`].
pub fn idct<S: SimSink>(p: &mut Program<S>, coef: &[Val]) -> Vec<Val> {
    assert_eq!(coef.len(), 64);
    let mut tmp: Vec<Val> = coef.to_vec();
    for c in 0..8 {
        let d: [Val; 8] = std::array::from_fn(|r| tmp[r * 8 + c]);
        let o = idct_1d(p, &d, CONST_BITS - PASS1_BITS);
        for r in 0..8 {
            tmp[r * 8 + c] = o[r];
        }
    }
    for r in 0..8 {
        let d: [Val; 8] = tmp[r * 8..r * 8 + 8].try_into().expect("row of 8");
        let o = idct_1d(p, &d, CONST_BITS + PASS1_BITS + 3);
        tmp[r * 8..r * 8 + 8].copy_from_slice(&o);
    }
    tmp
}

/// A quantization table in simulated memory (u16 per coefficient, raster
/// order).
#[derive(Debug, Clone, Copy)]
pub struct SimQuant {
    table: u64,
}

impl SimQuant {
    /// Install a (quality-scaled) table.
    pub fn install<S: SimSink>(p: &mut Program<S>, table: &[u16; 64]) -> Self {
        let addr = p.mem_mut().alloc(128, 8);
        for (i, &q) in table.iter().enumerate() {
            p.mem_mut().write_u16(addr + 2 * i as u64, q);
        }
        SimQuant { table: addr }
    }

    /// Emit quantization of raster-order coefficients into zig-zag-order
    /// levels (divide with round-to-nearest, sign handled by a branch —
    /// the non-vectorizable form the paper notes for quantization).
    pub fn quantize<S: SimSink>(&self, p: &mut Program<S>, coef: &[Val]) -> Vec<Val> {
        assert_eq!(coef.len(), 64);
        let tb = p.li(self.table as i64);
        let mut zz = Vec::with_capacity(64);
        for &raster in ZIGZAG.iter() {
            let c = &coef[raster];
            let q = p.load_u16(&tb, 2 * raster as i64);
            let half = p.srai(&q, 1);
            let level = if p.bcond_i(Cond::Ge, c, 0, false) {
                let t = p.add(c, &half);
                p.div(&t, &q)
            } else {
                let z = p.li(0);
                let neg = p.sub(&z, c);
                let t = p.add(&neg, &half);
                let d = p.div(&t, &q);
                p.sub(&z, &d)
            };
            zz.push(level);
        }
        zz
    }

    /// Emit dead-zone quantization (truncate toward zero, the MPEG-2
    /// non-intra rule): small coefficients — and in particular re-coded
    /// quantization noise in residuals — fall to zero.
    pub fn quantize_trunc<S: SimSink>(&self, p: &mut Program<S>, coef: &[Val]) -> Vec<Val> {
        assert_eq!(coef.len(), 64);
        let tb = p.li(self.table as i64);
        let mut zz = Vec::with_capacity(64);
        for &raster in ZIGZAG.iter() {
            let c = &coef[raster];
            let q = p.load_u16(&tb, 2 * raster as i64);
            let level = if p.bcond_i(Cond::Ge, c, 0, false) {
                p.div(c, &q)
            } else {
                let z = p.li(0);
                let neg = p.sub(&z, c);
                let d = p.div(&neg, &q);
                p.sub(&z, &d)
            };
            zz.push(level);
        }
        zz
    }

    /// Emit dequantization of one zig-zag-position level back to a
    /// raster coefficient value; returns `(raster_index, value)`.
    pub fn dequant_one<S: SimSink>(
        &self,
        p: &mut Program<S>,
        k: usize,
        level: &Val,
    ) -> (usize, Val) {
        let raster = ZIGZAG[k];
        let tb = p.li(self.table as i64);
        let q = p.load_u16(&tb, 2 * raster as i64);
        let v = p.mul(level, &q);
        (raster, v)
    }
}

/// Map a raster index to its zig-zag position (compile-time in real
/// codecs; free here).
pub fn zz_of(raster: usize) -> usize {
    ZIGZAG_INV[raster]
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_dsp::quant::LUMA_Q;
    use visim_cpu::CountingSink;

    fn vals<S: SimSink>(p: &mut Program<S>, xs: &[i32]) -> Vec<Val> {
        xs.iter().map(|&x| p.li(x as i64)).collect()
    }

    #[test]
    fn emitted_fdct_matches_host_dct() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let mut block = [0i32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as i32 * 13) % 255) - 128;
        }
        let b = vals(&mut p, &block);
        let got = fdct(&mut p, &b);
        let want = media_dsp::fdct8x8(&block);
        for i in 0..64 {
            assert_eq!(got[i].value(), want[i] as i64, "coef {i}");
        }
    }

    #[test]
    fn emitted_idct_matches_host_idct() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let mut coef = [0i32; 64];
        coef[0] = 480;
        coef[1] = -120;
        coef[8] = 77;
        coef[27] = -33;
        let c = vals(&mut p, &coef);
        let got = idct(&mut p, &c);
        let want = media_dsp::idct8x8(&coef);
        for i in 0..64 {
            assert_eq!(got[i].value(), want[i] as i64, "pixel {i}");
        }
    }

    #[test]
    fn block_load_store_roundtrip() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let plane = SimPlane::alloc(&mut p, 16, 16);
        for i in 0..256u64 {
            p.mem_mut().write_u8(plane.addr + i, (i % 251) as u8);
        }
        let b = load_block(&mut p, &plane, 1, 1);
        let out = SimPlane::alloc(&mut p, 16, 16);
        store_block(&mut p, &out, 1, 1, &b);
        for r in 0..8u64 {
            for c in 0..8u64 {
                let src = p.mem().read_u8(plane.addr + (8 + r) * 16 + 8 + c);
                let dst = p.mem().read_u8(out.addr + (8 + r) * 16 + 8 + c);
                assert_eq!(src, dst);
            }
        }
    }

    #[test]
    fn quantize_matches_host_reference() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let sq = SimQuant::install(&mut p, &LUMA_Q);
        let mut coef = [0i32; 64];
        for (i, v) in coef.iter_mut().enumerate() {
            *v = (i as i32 - 32) * 17;
        }
        let c = vals(&mut p, &coef);
        let zz = sq.quantize(&mut p, &c);
        for (k, level) in zz.iter().enumerate() {
            let raster = media_dsp::ZIGZAG[k];
            let want = media_dsp::quant::quantize(coef[raster], LUMA_Q[raster]);
            assert_eq!(level.value(), want as i64, "zz {k}");
        }
    }

    #[test]
    fn dequant_inverts_scaling() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let sq = SimQuant::install(&mut p, &LUMA_Q);
        let lvl = p.li(-3);
        let (raster, v) = sq.dequant_one(&mut p, 5, &lvl);
        assert_eq!(raster, media_dsp::ZIGZAG[5]);
        assert_eq!(v.value(), -3 * LUMA_Q[raster] as i64);
        assert_eq!(zz_of(raster), 5);
    }

    #[test]
    fn vis_idct_matches_scalar_within_tolerance() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        // A realistic dequantized coefficient block.
        let mut block = [0i32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (((i * 37) % 200) as i32) - 100;
        }
        let f = media_dsp::fdct8x8(&block);
        let coef: Vec<Val> = f.iter().map(|&c| p.li(c as i64)).collect();
        // Scalar reference path.
        let want = media_dsp::idct8x8(&f);
        // VIS path into a plane.
        let plane = SimPlane::alloc(&mut p, 16, 16);
        idct_store_vis(&mut p, &coef, &plane, 1, 1);
        for r in 0..8 {
            for c in 0..8usize {
                let got = p.mem().read_u8(plane.row(8 + r) + 8 + c as u64) as i32;
                let exp = (want[r * 8 + c] + 128).clamp(0, 255);
                assert!(
                    (got - exp).abs() <= 3,
                    "pixel ({r},{c}): vis {got} vs scalar {exp}"
                );
            }
        }
        // The VIS path must actually be packed work.
        let st = sink.finish();
        assert!(st.mix[3] > 200, "VIS ops: {}", st.mix[3]);
    }

    #[test]
    fn vis_idct_dc_only_block() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let zero = p.li(0);
        let mut coef = vec![zero; 64];
        coef[0] = p.li(400); // DC=400 -> pixel 400/8 + 128 = 178
        let plane = SimPlane::alloc(&mut p, 8, 8);
        idct_store_vis(&mut p, &coef, &plane, 0, 0);
        for i in 0..64u64 {
            let v = p.mem().read_u8(plane.addr + i) as i32;
            assert!((v - 178).abs() <= 2, "sample {i}: {v}");
        }
    }

    #[test]
    fn dct_roundtrip_through_emitted_pipeline() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let mut block = [0i32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (((i * 29) % 200) as i32) - 100;
        }
        let b = vals(&mut p, &block);
        let f = fdct(&mut p, &b);
        let back = idct(&mut p, &f);
        for i in 0..64 {
            assert!(
                (back[i].value() - block[i] as i64).abs() <= 2,
                "pixel {i}: {} vs {}",
                back[i].value(),
                block[i]
            );
        }
    }
}

// ---------------------------------------------------------------------
// VIS packed IDCT (the MediaLib-style 16-bit SIMD inverse DCT).
// ---------------------------------------------------------------------

/// The islow constants rounded to Q8 for packed 16-bit multiplies.
const FIXQ8: [i64; 12] = [
    76,  // 0.298631336
    100, // 0.390180644
    139, // 0.541196100
    196, // 0.765366865
    230, // 0.899976223
    301, // 1.175875602
    384, // 1.501321110
    473, // 1.847759065
    502, // 1.961570560
    526, // 2.053119869
    656, // 2.562915447
    787, // 3.072711026
];

/// One packed row-major 8×8 block: 16 vectors, `[lo(row 0), hi(row 0),
/// lo(row 1), ...]` where `lo` holds columns 0-3 and `hi` columns 4-7.
type PackedBlock = Vec<VVal>;

/// Q8 lane multiply by a broadcast constant: the 3-instruction
/// `fmul8sux16 + fmul8ulx16 + fpadd16` emulation.
fn vmulq8c<S: SimSink>(p: &mut Program<S>, a: &VVal, c: &VVal) -> VVal {
    let s = p.vmul8sux16(a, c);
    let u = p.vmul8ulx16(a, c);
    p.vadd16(&s, &u)
}

/// 8×8 16-bit lane transpose via merge sequences (the cost of the real
/// `fpmerge` network, with host-computed lane contents).
fn vtranspose<S: SimSink>(p: &mut Program<S>, v: &[VVal]) -> PackedBlock {
    assert_eq!(v.len(), 16);
    // Host-side lane matrix.
    let mut m = [[0i16; 8]; 8];
    for (r, row) in m.iter_mut().enumerate() {
        let lo = v[2 * r].lanes16();
        let hi = v[2 * r + 1].lanes16();
        row[..4].copy_from_slice(&lo[..4]);
        row[4..].copy_from_slice(&hi[..4]);
    }
    let mut out = Vec::with_capacity(16);
    // `r` walks the columns of `m` (the transpose axis), so there is no
    // row slice to iterate over.
    #[allow(clippy::needless_range_loop)]
    for r in 0..8 {
        for half in 0..2 {
            let mut lanes = [0i16; 4];
            for (k, lane) in lanes.iter_mut().enumerate() {
                *lane = m[half * 4 + k][r];
            }
            let bits = visim_isa::vis::pack16(lanes);
            // Each output vector costs two merge-class instructions in
            // the real fpmerge network.
            let srcs = [
                &v[(half * 8) % 16],
                &v[(half * 8 + 2) % 16],
                &v[(half * 8 + 4) % 16],
            ];
            out.push(p.vshuffle_composite(&srcs, 2, bits));
        }
    }
    out
}

/// One packed 1-D islow inverse-DCT pass, lane-wise over eight vectors
/// (natural Q0 scaling: DC-only input reproduces its value).
fn idct_1d_vis<S: SimSink>(p: &mut Program<S>, d: &[&VVal; 8], k: &[VVal; 12]) -> Vec<VVal> {
    let s26 = p.vadd16(d[2], d[6]);
    let z1 = vmulq8c(p, &s26, &k[2]);
    let m6 = vmulq8c(p, d[6], &k[7]);
    let t2 = p.vsub16(&z1, &m6);
    let m2 = vmulq8c(p, d[2], &k[3]);
    let t3 = p.vadd16(&z1, &m2);
    let t0 = p.vadd16(d[0], d[4]);
    let t1 = p.vsub16(d[0], d[4]);
    let t10 = p.vadd16(&t0, &t3);
    let t13 = p.vsub16(&t0, &t3);
    let t11 = p.vadd16(&t1, &t2);
    let t12 = p.vsub16(&t1, &t2);

    let z1s = p.vadd16(d[7], d[1]);
    let z2s = p.vadd16(d[5], d[3]);
    let z3s = p.vadd16(d[7], d[3]);
    let z4s = p.vadd16(d[5], d[1]);
    let z34 = p.vadd16(&z3s, &z4s);
    let z5 = vmulq8c(p, &z34, &k[5]);
    let m0 = vmulq8c(p, d[7], &k[0]);
    let m1 = vmulq8c(p, d[5], &k[9]);
    let m2o = vmulq8c(p, d[3], &k[11]);
    let m3 = vmulq8c(p, d[1], &k[6]);
    let z1m = vmulq8c(p, &z1s, &k[4]);
    let z2m = vmulq8c(p, &z2s, &k[10]);
    let z3m = vmulq8c(p, &z3s, &k[8]);
    let z4m = vmulq8c(p, &z4s, &k[1]);
    let z3f = p.vsub16(&z5, &z3m);
    let z4f = p.vsub16(&z5, &z4m);
    let a = p.vsub16(&m0, &z1m);
    let t0f = p.vadd16(&a, &z3f);
    let a = p.vsub16(&m1, &z2m);
    let t1f = p.vadd16(&a, &z4f);
    let a = p.vsub16(&m2o, &z2m);
    let t2f = p.vadd16(&a, &z3f);
    let a = p.vsub16(&m3, &z1m);
    let t3f = p.vadd16(&a, &z4f);

    vec![
        p.vadd16(&t10, &t3f),
        p.vadd16(&t11, &t2f),
        p.vadd16(&t12, &t1f),
        p.vadd16(&t13, &t0f),
        p.vsub16(&t13, &t0f),
        p.vsub16(&t12, &t1f),
        p.vsub16(&t11, &t2f),
        p.vsub16(&t10, &t3f),
    ]
}

/// Packed (MediaLib-style) inverse DCT context: one reusable scratch
/// block and the twelve hoisted Q8 constant vectors (hoisted per image,
/// as a real codec does).
#[derive(Debug, Clone, Copy)]
pub struct VisIdct {
    scratch: u64,
    k: [VVal; 12],
    bias: VVal,
}

impl VisIdct {
    /// Allocate the scratch block and materialize the constants.
    pub fn new<S: SimSink>(p: &mut Program<S>) -> Self {
        let scratch = p.mem_mut().alloc(128, 8);
        let k: [VVal; 12] =
            std::array::from_fn(|i| p.vli(visim_isa::vis::pack16([FIXQ8[i] as i16; 4])));
        let bias = p.vli(visim_isa::vis::pack16([1024; 4]));
        VisIdct { scratch, k, bias }
    }

    /// Run the packed IDCT for one intra block; see [`idct_store_vis`].
    pub fn run<S: SimSink>(
        &self,
        p: &mut Program<S>,
        coef: &[Val],
        plane: &SimPlane,
        bx: usize,
        by: usize,
    ) {
        idct_store_vis_with(p, self, coef, plane, bx, by)
    }
}

/// One-shot convenience wrapper around [`VisIdct`] (tests and callers
/// that only transform a single block).
pub fn idct_store_vis<S: SimSink>(
    p: &mut Program<S>,
    coef: &[Val],
    plane: &SimPlane,
    bx: usize,
    by: usize,
) {
    let ctx = VisIdct::new(p);
    ctx.run(p, coef, plane, bx, by)
}

/// Packed (MediaLib-style) inverse DCT + level shift + saturating store
/// of an intra block: spills the raster coefficients to the context's
/// scratch block, runs two lane-wise 16-bit islow passes with a merge
/// transpose between, then packs `(v + 1024) / 8` — i.e.
/// `clamp(pixel + 128)` — straight into the plane.
///
/// Precision: Q8 constants round each product to ±0.5, so outputs can
/// differ from the scalar islow path by ±2 — within the paper's
/// "visually imperceptible" criterion (§2.3.2), verified by PSNR tests.
fn idct_store_vis_with<S: SimSink>(
    p: &mut Program<S>,
    ctx: &VisIdct,
    coef: &[Val],
    plane: &SimPlane,
    bx: usize,
    by: usize,
) {
    assert_eq!(coef.len(), 64);
    // Spill the coefficient block (codecs keep it in memory anyway).
    let sb = p.li(ctx.scratch as i64);
    for (kix, c) in coef.iter().enumerate() {
        p.store_u16(&sb, 2 * kix as i64, c);
    }
    // Load as packed rows.
    let mut rows: PackedBlock = Vec::with_capacity(16);
    for r in 0..8i64 {
        rows.push(p.loadv(&sb, r * 16));
        rows.push(p.loadv(&sb, r * 16 + 8));
    }
    let k = ctx.k;

    // Column pass (lanes are columns).
    let lo: Vec<VVal> = (0..8).map(|r| rows[2 * r]).collect();
    let hi: Vec<VVal> = (0..8).map(|r| rows[2 * r + 1]).collect();
    let lo_refs: [&VVal; 8] = std::array::from_fn(|i| &lo[i]);
    let hi_refs: [&VVal; 8] = std::array::from_fn(|i| &hi[i]);
    let c_lo = idct_1d_vis(p, &lo_refs, &k);
    let c_hi = idct_1d_vis(p, &hi_refs, &k);
    let mut inter: PackedBlock = Vec::with_capacity(16);
    for r in 0..8 {
        inter.push(c_lo[r]);
        inter.push(c_hi[r]);
    }
    // Transpose, row pass, transpose back.
    let t = vtranspose(p, &inter);
    let lo: Vec<VVal> = (0..8).map(|r| t[2 * r]).collect();
    let hi: Vec<VVal> = (0..8).map(|r| t[2 * r + 1]).collect();
    let lo_refs: [&VVal; 8] = std::array::from_fn(|i| &lo[i]);
    let hi_refs: [&VVal; 8] = std::array::from_fn(|i| &hi[i]);
    let r_lo = idct_1d_vis(p, &lo_refs, &k);
    let r_hi = idct_1d_vis(p, &hi_refs, &k);
    let mut back: PackedBlock = Vec::with_capacity(16);
    for r in 0..8 {
        back.push(r_lo[r]);
        back.push(r_hi[r]);
    }
    let out = vtranspose(p, &back);

    // Level shift + /8 + saturate + store: (v + 1024) packed at scale 4
    // yields clamp((v + 1024) / 8) = clamp(pixel + 128).
    p.set_gsr_scale(4);
    let bias = ctx.bias;
    for r in 0..8 {
        let lo = p.vadd16(&out[2 * r], &bias);
        let hi = p.vadd16(&out[2 * r + 1], &bias);
        let bytes = p.vpack16_pair(&lo, &hi);
        let row = p.li(plane.row(by * 8 + r) as i64 + (bx * 8) as i64);
        p.storev(&row, 0, &bytes);
    }
}
