//! Color conversion and chroma resampling (the MediaLib-style routines
//! the paper swapped in for the VIS experiments, §2.3.1).
//!
//! Encoder: interleaved RGB → full-resolution planar YCbCr → 2×2-mean
//! chroma decimation to 4:2:0. Decoder: chroma replication upsample →
//! planar YCbCr → interleaved RGB with saturation.
//!
//! The scalar variants clamp with data-dependent branches; the VIS
//! variants use `fmul8x16au`/`fmul8sux16`-based fixed-point arithmetic,
//! `fpack16` saturation, and merge/align rearrangement sequences
//! (modelled by [`Program::vshuffle_composite`] at the instruction cost
//! of the real MediaLib shuffles).

use media_kernels::{SimImage, Variant};
use visim_cpu::SimSink;
use visim_isa::vis;
use visim_trace::{Cond, Program, VVal, Val};

use crate::SimPlane;

/// Full set of planes produced by the encoder front end.
#[derive(Debug, Clone, Copy)]
pub struct Planes {
    /// Luma at full resolution.
    pub y: SimPlane,
    /// Cb at quarter resolution (4:2:0).
    pub cb: SimPlane,
    /// Cr at quarter resolution.
    pub cr: SimPlane,
}

/// Emit `clamp(v, 0, 255)` with explicit branches (scalar code path).
pub fn clamp255<S: SimSink>(p: &mut Program<S>, v: &Val) -> Val {
    let mut out = *v;
    if p.bcond_i(Cond::Lt, &out, 0, false) {
        out = p.li(0);
    }
    if p.bcond_i(Cond::Gt, &out, 255, false) {
        out = p.li(255);
    }
    out
}

/// The 16×16-bit Q8 lane multiply VIS emulates with
/// `fmul8sux16 + fmul8ulx16 + fpadd16`.
fn vmulq8<S: SimSink>(p: &mut Program<S>, a: &VVal, c: &VVal) -> VVal {
    let s = p.vmul8sux16(a, c);
    let u = p.vmul8ulx16(a, c);
    p.vadd16(&s, &u)
}

/// RGB → planar full-resolution YCbCr, then 4:2:0 decimation.
pub fn rgb_to_ycbcr420<S: SimSink>(p: &mut Program<S>, rgb: &SimImage, v: Variant) -> Planes {
    assert_eq!(rgb.bands, 3, "color conversion expects RGB");
    let (w, h) = (rgb.width, rgb.height);
    assert!(
        w % 16 == 0 && h % 16 == 0,
        "4:2:0 MCUs need 16x16 multiples"
    );
    let yp = SimPlane::alloc(p, w, h);
    let cbf = SimPlane::alloc(p, w, h);
    let crf = SimPlane::alloc(p, w, h);
    if v.vis {
        convert_vis(p, rgb, &yp, &cbf, &crf);
    } else {
        convert_scalar(p, rgb, &yp, &cbf, &crf);
    }
    let cb = SimPlane::alloc(p, w / 2, h / 2);
    let cr = SimPlane::alloc(p, w / 2, h / 2);
    decimate(p, &cbf, &cb, v);
    decimate(p, &crf, &cr, v);
    Planes { y: yp, cb, cr }
}

fn convert_scalar<S: SimSink>(
    p: &mut Program<S>,
    rgb: &SimImage,
    yp: &SimPlane,
    cbf: &SimPlane,
    crf: &SimPlane,
) {
    let mut rin = p.li(rgb.addr as i64);
    let mut ry = p.li(yp.addr as i64);
    let mut rcb = p.li(cbf.addr as i64);
    let mut rcr = p.li(crf.addr as i64);
    let n = (rgb.width * 3) as i64;
    p.loop_range(0, rgb.height as i64, 1, |p, _| {
        let mut oy = ry;
        let mut ocb = rcb;
        let mut ocr = rcr;
        p.loop_range(0, n, 3, |p, i| {
            let r = p.load_u8_idx(&rin, i, 0);
            let g = p.load_u8_idx(&rin, i, 1);
            let b = p.load_u8_idx(&rin, i, 2);
            let t1 = p.muli(&r, 77);
            let t2 = p.muli(&g, 150);
            let t3 = p.muli(&b, 29);
            let s = p.add(&t1, &t2);
            let s = p.add(&s, &t3);
            let s = p.addi(&s, 128);
            let y = p.srai(&s, 8);
            p.store_u8(&oy, 0, &y);
            let t1 = p.muli(&r, -43);
            let t2 = p.muli(&g, -85);
            let t3 = p.muli(&b, 128);
            let s = p.add(&t1, &t2);
            let s = p.add(&s, &t3);
            let s = p.addi(&s, 128);
            let cb = p.srai(&s, 8);
            let cb = p.addi(&cb, 128);
            p.store_u8(&ocb, 0, &cb);
            let t1 = p.muli(&r, 128);
            let t2 = p.muli(&g, -107);
            let t3 = p.muli(&b, -21);
            let s = p.add(&t1, &t2);
            let s = p.add(&s, &t3);
            let s = p.addi(&s, 128);
            let cr = p.srai(&s, 8);
            let cr = p.addi(&cr, 128);
            p.store_u8(&ocr, 0, &cr);
            oy = p.addi(&oy, 1);
            ocb = p.addi(&ocb, 1);
            ocr = p.addi(&ocr, 1);
        });
        rin = p.addi(&rin, rgb.stride as i64);
        ry = p.addi(&ry, yp.w as i64);
        rcb = p.addi(&rcb, cbf.w as i64);
        rcr = p.addi(&rcr, crf.w as i64);
    });
}

/// Host-side helper: the deinterleaved channel bytes of a 24-byte chunk.
fn deinterleave_bits(d0: u64, d1: u64, d2: u64, channel: usize) -> u64 {
    let mut bytes = [0u8; 24];
    bytes[..8].copy_from_slice(&d0.to_le_bytes());
    bytes[8..16].copy_from_slice(&d1.to_le_bytes());
    bytes[16..].copy_from_slice(&d2.to_le_bytes());
    let mut out = [0u8; 8];
    for (k, o) in out.iter_mut().enumerate() {
        *o = bytes[3 * k + channel];
    }
    u64::from_le_bytes(out)
}

fn convert_vis<S: SimSink>(
    p: &mut Program<S>,
    rgb: &SimImage,
    yp: &SimPlane,
    cbf: &SimPlane,
    crf: &SimPlane,
) {
    p.set_gsr_scale(3);
    // Coefficients scaled by 16 so fmul8x16au leaves Q4 lanes.
    let cyr = p.li(77 * 16);
    let cyg = p.li(150 * 16);
    let cyb = p.li(29 * 16);
    let cbr = p.li(-43 * 16);
    let cbg = p.li(-85 * 16);
    let cbb = p.li(128 * 16);
    let crr = p.li(128 * 16);
    let crg = p.li(-107 * 16);
    let crb = p.li(-21 * 16);
    let k128 = p.vli(vis::pack16([128 << 4; 4]));
    let mut rin = p.li(rgb.addr as i64);
    let mut ry = p.li(yp.addr as i64);
    let mut rcb = p.li(cbf.addr as i64);
    let mut rcr = p.li(crf.addr as i64);
    let w = rgb.width as i64;
    p.loop_range(0, rgb.height as i64, 1, |p, _| {
        p.loop_range(0, w, 8, |p, px| {
            let i3 = px.value() * 3;
            let d0 = p.loadv(&rin, i3);
            let d1 = p.loadv(&rin, i3 + 8);
            let d2 = p.loadv(&rin, i3 + 16);
            // MediaLib-style merge deinterleave: 4 rearrangement ops per
            // channel.
            let r8 = {
                let bits = deinterleave_bits(d0.bits(), d1.bits(), d2.bits(), 0);
                p.vshuffle_composite(&[&d0, &d1, &d2], 4, bits)
            };
            let g8 = {
                let bits = deinterleave_bits(d0.bits(), d1.bits(), d2.bits(), 1);
                p.vshuffle_composite(&[&d0, &d1, &d2], 4, bits)
            };
            let b8 = {
                let bits = deinterleave_bits(d0.bits(), d1.bits(), d2.bits(), 2);
                p.vshuffle_composite(&[&d0, &d1, &d2], 4, bits)
            };
            let channel =
                |p: &mut Program<S>, cr_c: &Val, cg_c: &Val, cb_c: &Val, bias: bool| -> VVal {
                    let mut halves = Vec::with_capacity(2);
                    for hi in [false, true] {
                        let m1 = if hi {
                            p.vmul8x16au_hi(&r8, cr_c)
                        } else {
                            p.vmul8x16au(&r8, cr_c)
                        };
                        let m2 = if hi {
                            p.vmul8x16au_hi(&g8, cg_c)
                        } else {
                            p.vmul8x16au(&g8, cg_c)
                        };
                        let m3 = if hi {
                            p.vmul8x16au_hi(&b8, cb_c)
                        } else {
                            p.vmul8x16au(&b8, cb_c)
                        };
                        let s = p.vadd16(&m1, &m2);
                        let mut s = p.vadd16(&s, &m3);
                        if bias {
                            s = p.vadd16(&s, &k128);
                        }
                        halves.push(s);
                    }
                    p.vpack16_pair(&halves[0], &halves[1])
                };
            let y8 = channel(p, &cyr, &cyg, &cyb, false);
            p.storev_idx(&ry, px, 0, &y8);
            let cb8 = channel(p, &cbr, &cbg, &cbb, true);
            p.storev_idx(&rcb, px, 0, &cb8);
            let cr8 = channel(p, &crr, &crg, &crb, true);
            p.storev_idx(&rcr, px, 0, &cr8);
        });
        rin = p.addi(&rin, rgb.stride as i64);
        ry = p.addi(&ry, yp.w as i64);
        rcb = p.addi(&rcb, cbf.w as i64);
        rcr = p.addi(&rcr, crf.w as i64);
    });
}

/// 2×2-mean decimation of a full-resolution plane into a half-resolution
/// plane.
pub fn decimate<S: SimSink>(p: &mut Program<S>, full: &SimPlane, half: &SimPlane, v: Variant) {
    assert_eq!(full.w / 2, half.w);
    assert_eq!(full.h / 2, half.h);
    let mut r0 = p.li(full.addr as i64);
    let mut r1 = p.li(full.addr as i64 + full.w as i64);
    let mut ro = p.li(half.addr as i64);
    let wout = half.w as i64;
    if v.vis {
        p.set_gsr_scale(1); // lanes hold 4*out*16; (v<<1)>>7 = v>>6
                            // Latch a 2-byte (one-lane) shift in the GSR for the horizontal
                            // pair adds.
        let two = p.li(2);
        p.valignaddr(&two, 0);
    }
    p.loop_range(0, half.h as i64, 1, |p, _| {
        if v.vis {
            p.loop_range(0, wout, 8, |p, o| {
                let i = o.value() * 2;
                let a0 = p.loadv(&r0, i);
                let a1 = p.loadv(&r0, i + 8);
                let b0 = p.loadv(&r1, i);
                let b1 = p.loadv(&r1, i + 8);
                // Vertical sums in Q4 lanes (columns 0..15).
                let mut sums = Vec::with_capacity(4);
                for (a, b) in [(a0, b0), (a1, b1)] {
                    let al = p.vexpand_lo(&a);
                    let bl = p.vexpand_lo(&b);
                    sums.push(p.vadd16(&al, &bl));
                    let ah = p.vexpand_hi(&a);
                    let bh = p.vexpand_hi(&b);
                    sums.push(p.vadd16(&ah, &bh));
                }
                // Horizontal pair add: shift one 16-bit lane and add.
                let zero = p.vli(0);
                let mut packed = Vec::with_capacity(4);
                for k in 0..4 {
                    let next = if k + 1 < 4 { sums[k + 1] } else { zero };
                    let sh = p.valigndata(&sums[k], &next);
                    let hs = p.vadd16(&sums[k], &sh);
                    packed.push(p.vpack16(&hs)); // bytes 0,2 valid
                }
                // Compact the valid bytes of the four packs into eight.
                let host = |pk: &VVal, lane: usize| pk.lanes8()[lane];
                let mut out_bytes = [0u8; 8];
                for k in 0..4 {
                    out_bytes[2 * k] = host(&packed[k], 0);
                    out_bytes[2 * k + 1] = host(&packed[k], 2);
                }
                let c1 = p.vshuffle_composite(&[&packed[0], &packed[1]], 2, 0);
                let c2 = p.vshuffle_composite(&[&packed[2], &packed[3]], 2, 0);
                let out = p.vshuffle_composite(&[&c1, &c2], 1, u64::from_le_bytes(out_bytes));
                p.storev_idx(&ro, o, 0, &out);
            });
        } else {
            p.loop_range(0, wout, 1, |p, o| {
                let i = o.value() * 2;
                let a = p.load_u8(&r0, i);
                let b = p.load_u8(&r0, i + 1);
                let c = p.load_u8(&r1, i);
                let d = p.load_u8(&r1, i + 1);
                let s = p.add(&a, &b);
                let s2 = p.add(&c, &d);
                let s = p.add(&s, &s2);
                let s = p.addi(&s, 2);
                let m = p.srai(&s, 2);
                p.store_u8_idx(&ro, o, 0, &m);
            });
        }
        r0 = p.addi(&r0, 2 * full.w as i64);
        r1 = p.addi(&r1, 2 * full.w as i64);
        ro = p.addi(&ro, half.w as i64);
    });
}

/// Replicate-upsample a half-resolution plane to full resolution.
pub fn upsample<S: SimSink>(p: &mut Program<S>, half: &SimPlane, full: &SimPlane, v: Variant) {
    assert_eq!(full.w / 2, half.w);
    assert_eq!(full.h / 2, half.h);
    let mut ri = p.li(half.addr as i64);
    let mut o0 = p.li(full.addr as i64);
    let mut o1 = p.li(full.addr as i64 + full.w as i64);
    let win = half.w as i64;
    p.loop_range(0, half.h as i64, 1, |p, _| {
        if v.vis {
            p.loop_range(0, win, 8, |p, i| {
                let x = p.loadv_idx(&ri, i, 0);
                let lo = p.vmerge_lo(&x, &x); // a0a0a1a1a2a2a3a3
                let hi = p.vmerge_hi(&x, &x);
                let o = i.value() * 2;
                p.storev(&o0, o, &lo);
                p.storev(&o0, o + 8, &hi);
                p.storev(&o1, o, &lo);
                p.storev(&o1, o + 8, &hi);
            });
        } else {
            p.loop_range(0, win, 1, |p, i| {
                let x = p.load_u8_idx(&ri, i, 0);
                let o = i.value() * 2;
                p.store_u8(&o0, o, &x);
                p.store_u8(&o0, o + 1, &x);
                p.store_u8(&o1, o, &x);
                p.store_u8(&o1, o + 1, &x);
            });
        }
        ri = p.addi(&ri, half.w as i64);
        o0 = p.addi(&o0, 2 * full.w as i64);
        o1 = p.addi(&o1, 2 * full.w as i64);
    });
}

/// Host-side helper: interleave three channel chunks into 24 RGB bytes.
fn interleave_bits(r: u64, g: u64, b: u64) -> [u8; 24] {
    let (r, g, b) = (r.to_le_bytes(), g.to_le_bytes(), b.to_le_bytes());
    let mut out = [0u8; 24];
    for k in 0..8 {
        out[3 * k] = r[k];
        out[3 * k + 1] = g[k];
        out[3 * k + 2] = b[k];
    }
    out
}

/// Planar YCbCr (full-resolution chroma) → interleaved RGB.
pub fn ycbcr_to_rgb<S: SimSink>(
    p: &mut Program<S>,
    yp: &SimPlane,
    cbf: &SimPlane,
    crf: &SimPlane,
    out: &SimImage,
    v: Variant,
) {
    assert_eq!(out.bands, 3);
    assert_eq!((out.width, out.height), (yp.w, yp.h));
    let mut ry = p.li(yp.addr as i64);
    let mut rcb = p.li(cbf.addr as i64);
    let mut rcr = p.li(crf.addr as i64);
    let mut ro = p.li(out.addr as i64);
    let w = yp.w as i64;
    let vis_consts = if v.vis {
        p.set_gsr_scale(3);
        Some((
            p.vli(vis::pack16([128 << 4; 4])), // chroma bias in Q4
            p.vli(vis::pack16([359; 4])),
            p.vli(vis::pack16([88; 4])),
            p.vli(vis::pack16([183; 4])),
            p.vli(vis::pack16([454; 4])),
        ))
    } else {
        None
    };
    p.loop_range(0, yp.h as i64, 1, |p, _| {
        if let Some((k128, c359, c88, c183, c454)) = &vis_consts {
            p.loop_range(0, w, 8, |p, px| {
                let y8 = p.loadv_idx(&ry, px, 0);
                let cb8 = p.loadv_idx(&rcb, px, 0);
                let cr8 = p.loadv_idx(&rcr, px, 0);
                let mut chans = Vec::with_capacity(3);
                let mut halves_r = Vec::new();
                let mut halves_g = Vec::new();
                let mut halves_b = Vec::new();
                for hi in [false, true] {
                    let yq = if hi {
                        p.vexpand_hi(&y8)
                    } else {
                        p.vexpand_lo(&y8)
                    };
                    let cbq = if hi {
                        p.vexpand_hi(&cb8)
                    } else {
                        p.vexpand_lo(&cb8)
                    };
                    let crq = if hi {
                        p.vexpand_hi(&cr8)
                    } else {
                        p.vexpand_lo(&cr8)
                    };
                    let cbd = p.vsub16(&cbq, k128);
                    let crd = p.vsub16(&crq, k128);
                    let rr = vmulq8(p, &crd, c359);
                    halves_r.push(p.vadd16(&yq, &rr));
                    let g1 = vmulq8(p, &cbd, c88);
                    let g2 = vmulq8(p, &crd, c183);
                    let gs = p.vadd16(&g1, &g2);
                    halves_g.push(p.vsub16(&yq, &gs));
                    let bb = vmulq8(p, &cbd, c454);
                    halves_b.push(p.vadd16(&yq, &bb));
                }
                chans.push(p.vpack16_pair(&halves_r[0], &halves_r[1]));
                chans.push(p.vpack16_pair(&halves_g[0], &halves_g[1]));
                chans.push(p.vpack16_pair(&halves_b[0], &halves_b[1]));
                // Interleave 3 channel chunks into 24 bytes (MediaLib
                // merge sequence: 4 ops per output chunk).
                let bytes = interleave_bits(chans[0].bits(), chans[1].bits(), chans[2].bits());
                let o = px.value() * 3;
                for (k, chunk) in bytes.chunks_exact(8).enumerate() {
                    let bits = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                    let c = p.vshuffle_composite(&[&chans[0], &chans[1], &chans[2]], 4, bits);
                    p.storev(&ro, o + 8 * k as i64, &c);
                }
            });
        } else {
            p.loop_range(0, w, 1, |p, px| {
                let y = p.load_u8_idx(&ry, px, 0);
                let cb = p.load_u8_idx(&rcb, px, 0);
                let cr = p.load_u8_idx(&rcr, px, 0);
                let cbd = p.addi(&cb, -128);
                let crd = p.addi(&cr, -128);
                let t = p.muli(&crd, 359);
                let t = p.srai(&t, 8);
                let r = p.add(&y, &t);
                let r = clamp255(p, &r);
                let t1 = p.muli(&cbd, 88);
                let t2 = p.muli(&crd, 183);
                let t = p.add(&t1, &t2);
                let t = p.srai(&t, 8);
                let g = p.sub(&y, &t);
                let g = clamp255(p, &g);
                let t = p.muli(&cbd, 454);
                let t = p.srai(&t, 8);
                let b = p.add(&y, &t);
                let b = clamp255(p, &b);
                let o = px.value() * 3;
                p.store_u8(&ro, o, &r);
                p.store_u8(&ro, o + 1, &g);
                p.store_u8(&ro, o + 2, &b);
            });
        }
        ry = p.addi(&ry, yp.w as i64);
        rcb = p.addi(&rcb, cbf.w as i64);
        rcr = p.addi(&rcr, crf.w as i64);
        ro = p.addi(&ro, out.stride as i64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_image::synth;
    use visim_cpu::CountingSink;

    fn roundtrip(v: Variant) -> (media_image::Image, media_image::Image, visim_cpu::CpuStats) {
        let (w, h) = (32, 16);
        let img = synth::still(w, h, 3, 77);
        let mut sink = CountingSink::new();
        let (src, back) = {
            let mut p = Program::new(&mut sink);
            let rgb = SimImage::from_image(&mut p, &img);
            let planes = rgb_to_ycbcr420(&mut p, &rgb, v);
            // Upsample chroma and convert back.
            let cbf = SimPlane::alloc(&mut p, w, h);
            let crf = SimPlane::alloc(&mut p, w, h);
            upsample(&mut p, &planes.cb, &cbf, v);
            upsample(&mut p, &planes.cr, &crf, v);
            let out = SimImage::alloc(&mut p, w, h, 3);
            ycbcr_to_rgb(&mut p, &planes.y, &cbf, &crf, &out, v);
            (rgb.to_image(&p), out.to_image(&p))
        };
        (src, back, sink.finish())
    }

    #[test]
    fn scalar_color_roundtrip_is_close() {
        let (src, back, _) = roundtrip(Variant::SCALAR);
        // Chroma subsampling is lossy; luma-dominant PSNR stays high.
        let psnr = src.psnr(&back);
        assert!(psnr > 24.0, "roundtrip PSNR {psnr:.1}");
    }

    #[test]
    fn vis_color_matches_scalar_visually() {
        let (_, s, cs) = roundtrip(Variant::SCALAR);
        let (_, v, cv) = roundtrip(Variant::VIS);
        let diff = s.mean_abs_diff(&v);
        assert!(diff < 3.0, "VIS color path diff {diff:.2}");
        assert!(
            cv.retired * 2 < cs.retired,
            "VIS halves the color path: {} vs {}",
            cv.retired,
            cs.retired
        );
        assert!(cv.vis_overhead > 0, "shuffle sequences counted as overhead");
    }

    #[test]
    fn gray_input_produces_neutral_chroma() {
        let (w, h) = (16, 16);
        let mut img = media_image::Image::new(w, h, 3);
        for v in img.data_mut() {
            *v = 120;
        }
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let rgb = SimImage::from_image(&mut p, &img);
        let planes = rgb_to_ycbcr420(&mut p, &rgb, Variant::SCALAR);
        let cb = planes.cb.to_vec(&p);
        let cr = planes.cr.to_vec(&p);
        for &v in cb.iter().chain(cr.iter()) {
            assert!((v as i32 - 128).abs() <= 1, "neutral chroma, got {v}");
        }
        let y = planes.y.to_vec(&p);
        for &v in &y {
            assert!((v as i32 - 120).abs() <= 2, "gray luma, got {v}");
        }
    }

    #[test]
    fn decimate_averages_quads() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let full = SimPlane::alloc(&mut p, 16, 4);
        for y in 0..4u64 {
            for x in 0..16u64 {
                p.mem_mut()
                    .write_u8(full.addr + y * 16 + x, (10 * y + x) as u8);
            }
        }
        let half = SimPlane::alloc(&mut p, 8, 2);
        decimate(&mut p, &full, &half, Variant::SCALAR);
        let out = half.to_vec(&p);
        // Quad (0,0): 0,1,10,11 -> mean 5.5 -> 6 (round-half-up).
        assert_eq!(out[0], 6);
        let halfv = SimPlane::alloc(&mut p, 8, 2);
        decimate(&mut p, &full, &halfv, Variant::VIS);
        let outv = halfv.to_vec(&p);
        for i in 0..out.len() {
            assert!(
                (out[i] as i32 - outv[i] as i32).abs() <= 1,
                "VIS decimate sample {i}: {} vs {}",
                out[i],
                outv[i]
            );
        }
    }

    #[test]
    fn upsample_replicates() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let half = SimPlane::alloc(&mut p, 8, 2);
        for i in 0..16u64 {
            p.mem_mut().write_u8(half.addr + i, i as u8);
        }
        for v in [Variant::SCALAR, Variant::VIS] {
            let full = SimPlane::alloc(&mut p, 16, 4);
            upsample(&mut p, &half, &full, v);
            let out = full.to_vec(&p);
            for y in 0..4usize {
                for x in 0..16usize {
                    let want = ((y / 2) * 8 + x / 2) as u8;
                    assert_eq!(out[y * 16 + x], want, "{v:?} ({x},{y})");
                }
            }
        }
    }
}
