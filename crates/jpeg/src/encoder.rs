//! The emitted JPEG encoder (`cjpeg` / `cjpeg-np`).

use media_dsp::huffman::{ac_chroma, ac_luma, dc_chroma, dc_luma};
use media_dsp::quant::{scale_table, CHROMA_Q, LUMA_Q};
use media_image::Image;
use media_kernels::{SimImage, Variant};
use visim_cpu::SimSink;
use visim_trace::{Cond, Program, Val};

use crate::bits::BitWriterState;
use crate::block::{fdct, load_block, SimQuant};
use crate::color::rgb_to_ycbcr420;
use crate::huff::{extend_bits, SimCategory, SimHuff};
use crate::SimPlane;

/// Encoder parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeParams {
    /// IJG-style quality, 1..=100.
    pub quality: u32,
    /// Progressive (spectral-selection) mode — the paper's `cjpeg`
    /// versus the baseline `cjpeg-np`.
    pub progressive: bool,
}

impl Default for EncodeParams {
    fn default() -> Self {
        EncodeParams {
            quality: 75,
            progressive: false,
        }
    }
}

/// An encoded stream resident in simulated memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JpegStream {
    /// Start of the stream (header byte 0).
    pub addr: u64,
    /// Total length in bytes.
    pub len: usize,
    /// Image width (also recoverable from the header).
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Quality used.
    pub quality: u32,
    /// Progressive flag.
    pub progressive: bool,
}

/// The progressive spectral-selection scan script (component, ss, se);
/// `ss == 0` marks a DC scan. Mirrors the flavor of the IJG default
/// script without successive approximation.
pub(crate) fn scan_script() -> Vec<(usize, usize, usize)> {
    vec![
        (0, 0, 0), // DC Y
        (1, 0, 0), // DC Cb
        (2, 0, 0), // DC Cr
        (0, 1, 5), // AC Y low band
        (0, 6, 63),
        (1, 1, 63),
        (2, 1, 63),
    ]
}

/// Shared entropy-coding context.
pub(crate) struct EntropyTables {
    pub dc: [SimHuff; 2], // luma, chroma
    pub ac: [SimHuff; 2],
    pub cat: SimCategory,
}

impl EntropyTables {
    pub fn install<S: SimSink>(p: &mut Program<S>) -> Self {
        EntropyTables {
            dc: [
                SimHuff::install(p, &dc_luma()),
                SimHuff::install(p, &dc_chroma()),
            ],
            ac: [
                SimHuff::install(p, &ac_luma()),
                SimHuff::install(p, &ac_chroma()),
            ],
            cat: SimCategory::install(p),
        }
    }

    fn chan(&self, comp: usize) -> usize {
        usize::from(comp != 0)
    }
}

/// Encode `img` into a simulated-memory stream.
pub fn encode<S: SimSink>(
    p: &mut Program<S>,
    img: &Image,
    params: EncodeParams,
    v: Variant,
) -> JpegStream {
    let rgb = SimImage::from_image(p, img);
    encode_sim(p, &rgb, params, v)
}

/// Encode an image already resident in simulated memory.
pub fn encode_sim<S: SimSink>(
    p: &mut Program<S>,
    rgb: &SimImage,
    params: EncodeParams,
    v: Variant,
) -> JpegStream {
    let (w, h) = (rgb.width, rgb.height);
    let planes = rgb_to_ycbcr420(p, rgb, v);
    let lq = SimQuant::install(p, &scale_table(&LUMA_Q, params.quality));
    let cq = SimQuant::install(p, &scale_table(&CHROMA_Q, params.quality));
    let tables = EntropyTables::install(p);

    // Output buffer and emitted header. Worst case (quality 100 on
    // noise) can exceed the raw size once byte stuffing is included,
    // so size for twice the raw image.
    let cap = w * h * 6 + 8192;
    let out = p.mem_mut().alloc(cap, 8);
    let ob = p.li(out as i64);
    let hdr = [
        b'V' as i64,
        b'J' as i64,
        (w / 256) as i64,
        (w % 256) as i64,
        (h / 256) as i64,
        (h % 256) as i64,
        params.quality as i64,
        params.progressive as i64,
    ];
    for (i, b) in hdr.iter().enumerate() {
        let bv = p.li(*b);
        p.store_u8(&ob, i as i64, &bv);
    }

    let mut writer = BitWriterState::new(p, out + 8);
    let comps: [(&SimPlane, &SimQuant); 3] =
        [(&planes.y, &lq), (&planes.cb, &cq), (&planes.cr, &cq)];

    if params.progressive {
        // Pass 1: DCT + quantize every block of every component into
        // image-sized coefficient buffers (the large working set of
        // §4.1).
        let mut bufs = Vec::new();
        for (plane, q) in comps {
            let (wb, hb) = (plane.w / 8, plane.h / 8);
            let buf = p.mem_mut().alloc(wb * hb * 64 * 2, 8);
            for by in 0..hb {
                for bx in 0..wb {
                    let samples = load_block(p, plane, bx, by);
                    let coef = fdct(p, &samples);
                    let zz = q.quantize(p, &coef);
                    let base = p.li((buf + ((by * wb + bx) * 128) as u64) as i64);
                    for (k, level) in zz.iter().enumerate() {
                        p.store_u16(&base, 2 * k as i64, level);
                    }
                }
            }
            bufs.push((buf, wb, hb));
        }
        // Entropy scans: each is a full pass over a coefficient buffer.
        for (comp, ss, se) in scan_script() {
            let (buf, wb, hb) = bufs[comp];
            let chan = tables.chan(comp);
            let mut pred = p.li(0);
            for bi in 0..wb * hb {
                let base = p.li((buf + (bi * 128) as u64) as i64);
                if v.prefetch {
                    // Prefetch the next blocks' coefficient lines (the
                    // paper's small cjpeg/djpeg prefetching win).
                    p.prefetch(&base, 256);
                    p.prefetch(&base, 320);
                }
                if ss == 0 {
                    let dc = p.load_i16(&base, 0);
                    pred = encode_dc(p, &mut writer, &tables, chan, &dc, &pred);
                } else {
                    let levels: Vec<Val> =
                        (ss..=se).map(|k| p.load_i16(&base, 2 * k as i64)).collect();
                    encode_ac_band(p, &mut writer, &tables, chan, &levels);
                }
            }
        }
    } else {
        // Baseline: one interleaved blocked pipeline over 16x16 MCUs.
        let (mw, mh) = (w / 16, h / 16);
        let mut preds = [p.li(0), p.li(0), p.li(0)];
        for my in 0..mh {
            for mx in 0..mw {
                for (comp, &(plane, q)) in comps.iter().enumerate() {
                    let blocks: &[(usize, usize)] = if comp == 0 {
                        &[
                            (2 * mx, 2 * my),
                            (2 * mx + 1, 2 * my),
                            (2 * mx, 2 * my + 1),
                            (2 * mx + 1, 2 * my + 1),
                        ]
                    } else {
                        &[(mx, my)]
                    };
                    let chan = tables.chan(comp);
                    for &(bx, by) in blocks {
                        let samples = load_block(p, plane, bx, by);
                        let coef = fdct(p, &samples);
                        let zz = q.quantize(p, &coef);
                        preds[comp] =
                            encode_dc(p, &mut writer, &tables, chan, &zz[0], &preds[comp]);
                        encode_ac_band(p, &mut writer, &tables, chan, &zz[1..]);
                    }
                }
            }
        }
    }

    let end = writer.finish(p);
    JpegStream {
        addr: out,
        len: (end - out) as usize,
        width: w,
        height: h,
        quality: params.quality,
        progressive: params.progressive,
    }
}

/// Emit DC-difference coding of `dc` against `pred`; returns the new
/// predictor.
pub(crate) fn encode_dc<S: SimSink>(
    p: &mut Program<S>,
    w: &mut BitWriterState,
    t: &EntropyTables,
    chan: usize,
    dc: &Val,
    pred: &Val,
) -> Val {
    let diff = p.sub(dc, pred);
    let (cat, _) = t.cat.of(p, &diff);
    t.dc[chan].encode(p, w, &cat);
    if cat.value() > 0 {
        let bits = extend_bits(p, &diff, &cat);
        w.put(p, &bits, &cat);
    }
    *dc
}

/// Emit run/size AC coding of a zig-zag band (levels in band order).
pub(crate) fn encode_ac_band<S: SimSink>(
    p: &mut Program<S>,
    w: &mut BitWriterState,
    t: &EntropyTables,
    chan: usize,
    levels: &[Val],
) {
    let mut run = p.li(0);
    let mut wrote_any_after_run = true;
    for level in levels {
        // The per-coefficient zero test: the data-dependent branch the
        // paper's Huffman analysis hinges on.
        if p.bcond_i(Cond::Eq, level, 0, false) {
            run = p.addi(&run, 1);
            wrote_any_after_run = false;
            continue;
        }
        while run.value() >= 16 {
            let zrl = p.li(0xf0);
            t.ac[chan].encode(p, w, &zrl);
            run = p.addi(&run, -16);
        }
        let (cat, _) = t.cat.of(p, level);
        let r4 = p.shli(&run, 4);
        let sym = p.or(&r4, &cat);
        t.ac[chan].encode(p, w, &sym);
        let bits = extend_bits(p, level, &cat);
        w.put(p, &bits, &cat);
        run = p.li(0);
        wrote_any_after_run = true;
    }
    if !wrote_any_after_run {
        let eob = p.li(0x00);
        t.ac[chan].encode(p, w, &eob);
    }
}
