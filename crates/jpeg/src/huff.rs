//! Emitted Huffman entropy coding over in-memory tables.
//!
//! The encoder's code/length tables and the decoder's canonical
//! min/max/valptr tables live in *simulated* memory and every table
//! access is an emitted load — these are the "small data structures"
//! (§4.1) that make up the codecs' first-level working sets.

use media_dsp::huffman::HuffTable;
use visim_cpu::SimSink;
use visim_trace::{Cond, Program, Val};

use crate::bits::{BitReaderState, BitWriterState};

/// A Huffman table materialized in simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct SimHuff {
    code: u64,    // 256 x u16
    len: u64,     // 256 x u8
    mincode: u64, // 17 x i32
    maxcode: u64, // 17 x i32
    valptr: u64,  // 17 x i32
    vals: u64,    // up to 256 x u8
}

impl SimHuff {
    /// Copy `table` into simulated memory (host-side setup).
    pub fn install<S: SimSink>(p: &mut Program<S>, table: &HuffTable) -> Self {
        let mem = p.mem_mut();
        let code = mem.alloc(512, 8);
        let len = mem.alloc(256, 8);
        for sym in 0..=255u8 {
            if let Some((c, l)) = table.try_code(sym) {
                mem.write_u16(code + 2 * sym as u64, c as u16);
                mem.write_u8(len + sym as u64, l as u8);
            }
        }
        let (minc, maxc, vp, vals) = table.decode_tables();
        let mincode = mem.alloc(17 * 4, 8);
        let maxcode = mem.alloc(17 * 4, 8);
        let valptr = mem.alloc(17 * 4, 8);
        let vals_a = mem.alloc(vals.len().max(1), 8);
        for i in 0..17 {
            mem.write_u32(mincode + 4 * i as u64, minc[i] as u32);
            mem.write_u32(maxcode + 4 * i as u64, maxc[i] as u32);
            mem.write_u32(valptr + 4 * i as u64, vp[i] as u32);
        }
        mem.write_bytes(vals_a, vals);
        SimHuff {
            code,
            len,
            mincode,
            maxcode,
            valptr,
            vals: vals_a,
        }
    }

    /// Emit the encoding of `sym` into `w` and return the code length.
    pub fn encode<S: SimSink>(&self, p: &mut Program<S>, w: &mut BitWriterState, sym: &Val) -> Val {
        let cbase = p.li(self.code as i64);
        let lbase = p.li(self.len as i64);
        let ix2 = p.shli(sym, 1);
        let code = p.load_u16_idx(&cbase, &ix2, 0);
        let len = p.load_u8_idx(&lbase, sym, 0);
        debug_assert!(len.value() > 0, "symbol {} has no code", sym.value());
        w.put(p, &code, &len);
        len
    }

    /// Emit the decoding of one symbol from `r` (the canonical
    /// bit-serial walk: one emitted branch per code length, exactly the
    /// "inherently sequential" behaviour of §3.2.3).
    pub fn decode<S: SimSink>(&self, p: &mut Program<S>, r: &mut BitReaderState) -> Val {
        let maxb = p.li(self.maxcode as i64);
        let mut code = p.li(0);
        for l in 1..=16i64 {
            let b = r.bit(p);
            let c2 = p.shli(&code, 1);
            code = p.or(&c2, &b);
            let maxc = p.load_i32(&maxb, 4 * l);
            if p.bcond(Cond::Le, &code, &maxc, false) && maxc.value() >= 0 {
                let minb = p.li(self.mincode as i64);
                let minc = p.load_i32(&minb, 4 * l);
                let off = p.sub(&code, &minc);
                let vpb = p.li(self.valptr as i64);
                let vp = p.load_i32(&vpb, 4 * l);
                let ix = p.add(&vp, &off);
                let vb = p.li(self.vals as i64);
                return p.load_u8_idx(&vb, &ix, 0);
            }
        }
        panic!("invalid huffman code in simulated stream");
    }
}

/// A 256-entry magnitude-category table in simulated memory, plus the
/// emitted category computation (abs + table lookup, with a rare branch
/// for values above 255 — the jpeglib approach).
#[derive(Debug, Clone, Copy)]
pub struct SimCategory {
    table: u64,
}

impl SimCategory {
    /// Install the category table.
    pub fn install<S: SimSink>(p: &mut Program<S>) -> Self {
        let addr = p.mem_mut().alloc(256, 8);
        for v in 0..256u64 {
            let bits = 32 - (v as u32).leading_zeros();
            p.mem_mut().write_u8(addr + v, bits as u8);
        }
        SimCategory { table: addr }
    }

    /// Emit `(category, abs_value)` of `v`.
    pub fn of<S: SimSink>(&self, p: &mut Program<S>, v: &Val) -> (Val, Val) {
        let mut av = *v;
        if p.bcond_i(Cond::Lt, v, 0, false) {
            let z = p.li(0);
            av = p.sub(&z, v);
        }
        let tb = p.li(self.table as i64);
        let cat = if p.bcond_i(Cond::Lt, &av, 256, false) {
            p.load_u8_idx(&tb, &av, 0)
        } else {
            let hi = p.shri(&av, 8);
            let c = p.load_u8_idx(&tb, &hi, 0);
            p.addi(&c, 8)
        };
        (cat, av)
    }
}

/// Emit the JPEG signed-magnitude "extend" bits of `v` for category
/// `cat` (ones-complement negatives), ready for [`BitWriterState::put`].
pub fn extend_bits<S: SimSink>(p: &mut Program<S>, v: &Val, cat: &Val) -> Val {
    if p.bcond_i(Cond::Ge, v, 0, false) {
        *v
    } else {
        // v - 1 + (1 << cat)
        let one = p.li(1);
        let pw = p.shl(&one, cat);
        let t = p.add(v, &pw);
        p.addi(&t, -1)
    }
}

/// Emit the inverse of [`extend_bits`]: reconstruct the signed value
/// from `bits` in category `cat` (host-known `cat`).
pub fn extend<S: SimSink>(p: &mut Program<S>, bits: &Val, cat: i64) -> Val {
    if cat == 0 {
        return p.li(0);
    }
    let half = 1i64 << (cat - 1);
    if p.bcond_i(Cond::Lt, bits, half, false) {
        p.addi(bits, 1 - (1i64 << cat))
    } else {
        *bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_dsp::huffman;
    use visim_cpu::CountingSink;

    #[test]
    fn emitted_encode_decode_roundtrip() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let table = huffman::ac_luma();
        let sh = SimHuff::install(&mut p, &table);
        let buf = p.mem_mut().alloc(512, 8);
        let mut w = BitWriterState::new(&mut p, buf);
        let syms = [0x01u8, 0x00, 0xf0, 0x53, 0x22, 0xfa, 0x11];
        for &s in &syms {
            let sv = p.li(s as i64);
            sh.encode(&mut p, &mut w, &sv);
        }
        w.finish(&mut p);
        let mut r = BitReaderState::new(&mut p, buf);
        for &s in &syms {
            let got = sh.decode(&mut p, &mut r);
            assert_eq!(got.value(), s as i64);
        }
    }

    #[test]
    fn emitted_bytes_match_host_encoder() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let table = huffman::dc_luma();
        let sh = SimHuff::install(&mut p, &table);
        let buf = p.mem_mut().alloc(128, 8);
        let mut w = BitWriterState::new(&mut p, buf);
        let mut href = media_dsp::BitWriter::with_stuffing();
        for s in 0..=11u8 {
            let sv = p.li(s as i64);
            sh.encode(&mut p, &mut w, &sv);
            table.encode(&mut href, s);
        }
        let end = w.finish(&mut p);
        let want = href.into_bytes();
        let got = p.mem().bytes(buf, (end - buf) as usize).to_vec();
        assert_eq!(got, want);
    }

    #[test]
    fn category_and_extend_roundtrip() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let cat = SimCategory::install(&mut p);
        for v in [-2047i64, -300, -1, 0, 1, 2, 255, 256, 1023, 2047] {
            let vv = p.li(v);
            let (c, _av) = cat.of(&mut p, &vv);
            assert_eq!(c.value() as u32, huffman::magnitude(v as i32), "v={v}");
            let bits = extend_bits(&mut p, &vv, &c);
            assert_eq!(
                bits.value() as u32,
                huffman::extend_bits(v as i32, c.value() as u32)
            );
            let back = extend(&mut p, &bits, c.value());
            assert_eq!(back.value(), v, "v={v}");
        }
    }
}
