//! End-to-end JPEG codec tests: the emitted encoder and decoder must
//! round-trip real images at sensible quality, in all four
//! benchmark configurations (baseline/progressive × scalar/VIS).

use media_image::synth;
use media_jpeg::{decode, encode, EncodeParams, Variant};
use visim_cpu::{CountingSink, CpuStats};
use visim_trace::Program;

fn roundtrip(
    w: usize,
    h: usize,
    quality: u32,
    progressive: bool,
    v: Variant,
) -> (media_image::Image, media_image::Image, usize, CpuStats) {
    let img = synth::still(w, h, 3, 42);
    let mut sink = CountingSink::new();
    let (back, len) = {
        let mut p = Program::new(&mut sink);
        let stream = encode(
            &mut p,
            &img,
            EncodeParams {
                quality,
                progressive,
            },
            v,
        );
        let back = decode(&mut p, &stream, v);
        (back, stream.len)
    };
    (img, back, len, sink.finish())
}

#[test]
fn baseline_roundtrip_is_faithful() {
    let (img, back, len, _) = roundtrip(48, 32, 90, false, Variant::SCALAR);
    assert_eq!(back.width(), 48);
    assert_eq!(back.height(), 32);
    let psnr = img.psnr(&back);
    assert!(psnr > 26.0, "q90 PSNR {psnr:.1} dB");
    assert!(len > 100, "stream is non-trivial: {len}");
    assert!(len < 48 * 32 * 3, "stream compresses: {len}");
}

#[test]
fn progressive_decodes_to_the_same_image_as_baseline() {
    let (_, b, _, _) = roundtrip(48, 32, 85, false, Variant::SCALAR);
    let (_, pr, _, _) = roundtrip(48, 32, 85, true, Variant::SCALAR);
    // Same quantization and DCT: identical reconstruction.
    assert_eq!(b, pr, "scan order must not change pixels");
}

#[test]
fn lower_quality_means_smaller_streams_and_lower_psnr() {
    let (img, hi, len_hi, _) = roundtrip(48, 32, 92, false, Variant::SCALAR);
    let (_, lo, len_lo, _) = roundtrip(48, 32, 25, false, Variant::SCALAR);
    assert!(len_lo < len_hi, "{len_lo} vs {len_hi}");
    assert!(img.psnr(&hi) > img.psnr(&lo));
}

#[test]
fn vis_variant_is_visually_identical_and_cheaper() {
    let (_, s, _, cs) = roundtrip(48, 32, 85, false, Variant::SCALAR);
    let (_, v, _, cv) = roundtrip(48, 32, 85, false, Variant::VIS);
    let diff = s.mean_abs_diff(&v);
    assert!(diff < 3.0, "VIS decode diff {diff}");
    // The paper's cjpeg/djpeg see modest VIS gains (Huffman dominates):
    // instruction count drops but far less than for the kernels.
    let ratio = cv.retired as f64 / cs.retired as f64;
    assert!(ratio < 0.95, "some VIS benefit: {ratio:.2}");
    assert!(ratio > 0.4, "but Huffman/DCT stay scalar: {ratio:.2}");
    assert!(cv.mix[3] > 0, "VIS instructions present");
}

#[test]
fn progressive_emits_more_memory_traffic_than_baseline() {
    let (_, _, _, cb) = roundtrip(48, 32, 85, false, Variant::SCALAR);
    let (_, _, _, cp) = roundtrip(48, 32, 85, true, Variant::SCALAR);
    // The multi-pass coefficient buffer shows up as extra loads/stores.
    assert!(
        cp.mix[2] > cb.mix[2],
        "progressive re-reads its coefficient buffer: {} vs {}",
        cp.mix[2],
        cb.mix[2]
    );
}

#[test]
fn streams_differ_between_modes_but_decode_consistently() {
    let img = synth::still(32, 16, 3, 9);
    let mut sink = CountingSink::new();
    let mut p = Program::new(&mut sink);
    let s1 = encode(&mut p, &img, EncodeParams::default(), Variant::SCALAR);
    let s2 = encode(
        &mut p,
        &img,
        EncodeParams {
            quality: 75,
            progressive: true,
        },
        Variant::SCALAR,
    );
    assert!(s2.len >= s1.len / 2, "same data, different framing");
    let d1 = decode(&mut p, &s1, Variant::SCALAR);
    let d2 = decode(&mut p, &s2, Variant::SCALAR);
    assert_eq!(d1, d2);
}

#[test]
fn flat_image_compresses_extremely_well() {
    let mut img = media_image::Image::new(32, 16, 3);
    for v in img.data_mut() {
        *v = 200;
    }
    let mut sink = CountingSink::new();
    let mut p = Program::new(&mut sink);
    let stream = encode(&mut p, &img, EncodeParams::default(), Variant::SCALAR);
    assert!(
        stream.len < 200,
        "flat image needs almost no bits: {}",
        stream.len
    );
    let back = decode(&mut p, &stream, Variant::SCALAR);
    assert!(img.mean_abs_diff(&back) < 3.0);
}
