//! Property tests: the JPEG codec must round-trip arbitrary images at
//! arbitrary quality in every mode/variant combination.

use media_jpeg::{decode, encode, EncodeParams, Variant};
use visim_cpu::CountingSink;
use visim_trace::Program;
use visim_util::prop::{self, Config};
use visim_util::{prop_assert, prop_assert_eq};

#[test]
fn roundtrip_psnr_is_bounded() {
    prop::check(
        Config::cases(12),
        |rng| {
            (
                rng.gen_range(1usize..4),
                rng.gen_range(1usize..3),
                rng.u64(),
                rng.gen_range(30u32..95),
                rng.bool(),
                rng.bool(),
            )
        },
        |&(wu, hu, seed, quality, progressive, vis)| {
            if wu == 0 || hu == 0 || !(30..95).contains(&quality) {
                return Ok(());
            }
            let (w, h) = (wu * 16, hu * 16);
            let img = media_image::synth::still(w, h, 3, seed);
            let variant = if vis { Variant::VIS } else { Variant::SCALAR };
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let stream = encode(
                &mut p,
                &img,
                EncodeParams {
                    quality,
                    progressive,
                },
                variant,
            );
            prop_assert!(stream.len > 8, "stream has content");
            prop_assert!(stream.len < w * h * 3 + 4096, "stream fits its buffer");
            let back = decode(&mut p, &stream, variant);
            prop_assert_eq!(back.width(), w);
            prop_assert_eq!(back.height(), h);
            let psnr = img.psnr(&back);
            // Chroma subsampling bounds the ceiling; quality bounds the floor.
            prop_assert!(psnr > 18.0, "PSNR {psnr:.1} at q{quality}");
            Ok(())
        },
    );
}

/// Progressive and baseline scans of the same data reconstruct the
/// same pixels (they reorder bits, not information).
#[test]
fn scan_order_is_lossless() {
    prop::check(
        Config::cases(12),
        |rng| (rng.u64(), rng.gen_range(40u32..90)),
        |&(seed, quality)| {
            if !(40..90).contains(&quality) {
                return Ok(());
            }
            let img = media_image::synth::still(32, 16, 3, seed);
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let base = encode(
                &mut p,
                &img,
                EncodeParams {
                    quality,
                    progressive: false,
                },
                Variant::SCALAR,
            );
            let prog = encode(
                &mut p,
                &img,
                EncodeParams {
                    quality,
                    progressive: true,
                },
                Variant::SCALAR,
            );
            let a = decode(&mut p, &base, Variant::SCALAR);
            let b = decode(&mut p, &prog, Variant::SCALAR);
            prop_assert!(a == b, "scan orders reconstruct different pixels");
            Ok(())
        },
    );
}
