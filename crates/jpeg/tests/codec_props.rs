//! Property tests: the JPEG codec must round-trip arbitrary images at
//! arbitrary quality in every mode/variant combination.

use media_jpeg::{decode, encode, EncodeParams, Variant};
use proptest::prelude::*;
use visim_cpu::CountingSink;
use visim_trace::Program;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn roundtrip_psnr_is_bounded(
        wu in 1usize..4,
        hu in 1usize..3,
        seed in any::<u64>(),
        quality in 30u32..95,
        progressive in any::<bool>(),
        vis in any::<bool>(),
    ) {
        let (w, h) = (wu * 16, hu * 16);
        let img = media_image::synth::still(w, h, 3, seed);
        let variant = if vis { Variant::VIS } else { Variant::SCALAR };
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let stream = encode(
            &mut p,
            &img,
            EncodeParams { quality, progressive },
            variant,
        );
        prop_assert!(stream.len > 8, "stream has content");
        prop_assert!(stream.len < w * h * 3 + 4096, "stream fits its buffer");
        let back = decode(&mut p, &stream, variant);
        prop_assert_eq!(back.width(), w);
        prop_assert_eq!(back.height(), h);
        let psnr = img.psnr(&back);
        // Chroma subsampling bounds the ceiling; quality bounds the floor.
        prop_assert!(psnr > 18.0, "PSNR {psnr:.1} at q{quality}");
    }

    /// Progressive and baseline scans of the same data reconstruct the
    /// same pixels (they reorder bits, not information).
    #[test]
    fn scan_order_is_lossless(seed in any::<u64>(), quality in 40u32..90) {
        let img = media_image::synth::still(32, 16, 3, seed);
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let base = encode(
            &mut p,
            &img,
            EncodeParams { quality, progressive: false },
            Variant::SCALAR,
        );
        let prog = encode(
            &mut p,
            &img,
            EncodeParams { quality, progressive: true },
            Variant::SCALAR,
        );
        let a = decode(&mut p, &base, Variant::SCALAR);
        let b = decode(&mut p, &prog, Variant::SCALAR);
        prop_assert_eq!(a, b);
    }
}
