//! End-to-end daemon tests: single-flight coalescing across concurrent
//! clients, crash recovery through the store + journal, and the
//! transient-fault retry path — all against the real binary over real
//! TCP connections.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use visim_obs::Json;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("visim-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn the daemon in `dir` on an ephemeral port and return the child
/// plus the bound address (polled from the `--addr-file`).
fn spawn_daemon(dir: &Path, envs: &[(&str, &str)]) -> (Child, String) {
    let addr_file = dir.join("addr.txt");
    std::fs::remove_file(&addr_file).ok();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_visim-serve"));
    cmd.arg("--addr-file")
        .arg(&addr_file)
        .current_dir(dir)
        .env("VISIM_JOBS", "2")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let child = cmd.spawn().expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(line) = std::fs::read_to_string(&addr_file) {
            if line.ends_with('\n') {
                let event = Json::parse(line.trim()).expect("listening event parses");
                assert_eq!(event.get("event").and_then(Json::as_str), Some("listening"));
                break event
                    .get("addr")
                    .and_then(Json::as_str)
                    .expect("listening event carries the address")
                    .to_string();
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its address");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

/// The `journal_prior` member of the daemon's listening event.
fn journal_prior(dir: &Path) -> u64 {
    let line = std::fs::read_to_string(dir.join("addr.txt")).unwrap();
    Json::parse(line.trim())
        .unwrap()
        .get("journal_prior")
        .and_then(Json::as_u64)
        .expect("listening event carries journal_prior")
}

/// Connect, send one request line, and stream events until (and
/// including) the one `stop` accepts.
fn request(addr: &str, line: &str, mut stop: impl FnMut(&Json) -> bool) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut events = Vec::new();
    for event_line in BufReader::new(stream).lines() {
        let event = Json::parse(&event_line.expect("event line")).expect("event parses");
        let is_stop = stop(&event);
        events.push(event);
        if is_stop {
            break;
        }
    }
    events
}

fn is_done(event: &Json) -> bool {
    event.get("event").and_then(Json::as_str) == Some("done")
}

fn counter(event: &Json, name: &str) -> u64 {
    event.get(name).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

fn shutdown(addr: &str, mut child: Child) {
    request(addr, "{\"op\":\"shutdown\"}", |e| {
        e.get("event").and_then(Json::as_str) == Some("bye")
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("daemon did not exit after shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_clients_on_one_cell_simulate_exactly_once() {
    let dir = scratch_dir("coalesce");
    let (child, addr) = spawn_daemon(&dir, &[]);
    let req = "{\"op\":\"cell\",\"name\":\"fig2\",\"label\":\"conv/base\",\"size\":\"tiny\"}";
    let dones: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.as_str();
                s.spawn(move || {
                    let events = request(addr, req, is_done);
                    events.into_iter().find(is_done).expect("done event")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let (mut hits, mut misses, mut coalesced) = (0, 0, 0);
    for done in &dones {
        assert_eq!(counter(done, "ok"), 1, "{done:?}");
        assert_eq!(counter(done, "failed"), 0, "{done:?}");
        hits += counter(done, "hits");
        misses += counter(done, "misses");
        coalesced += counter(done, "coalesced");
    }
    // Whatever the interleaving — all four racing, or some arriving
    // after the store already has the cell — exactly one client can
    // miss: the in-flight table coalesces the racers and the store
    // serves the stragglers.
    assert_eq!(misses, 1, "exactly one simulation ran: {dones:?}");
    assert_eq!(hits + coalesced, 3, "the rest shared it: {dones:?}");
    shutdown(&addr, child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_daemon_resumes_from_store_and_journal_on_restart() {
    let dir = scratch_dir("kill");
    let (mut child, addr) = spawn_daemon(&dir, &[]);
    // Submit a full manifest and kill the daemon after three cells have
    // durably completed (each cell event is sent only after the cell
    // was stored and journaled).
    let seen = request(
        &addr,
        "{\"op\":\"manifest\",\"name\":\"fig2\",\"size\":\"tiny\"}",
        |e| e.get("event").and_then(Json::as_str) == Some("cell") && counter(e, "done") >= 3,
    );
    assert!(
        seen.iter()
            .any(|e| e.get("event").and_then(Json::as_str) == Some("cell")),
        "saw cell progress before the kill: {seen:?}"
    );
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the daemon");

    // Restart over the same store: the journal reports the recovered
    // cells and the resubmitted manifest converges without failures,
    // serving at least the pre-kill cells straight from the store.
    let (child, addr) = spawn_daemon(&dir, &[]);
    assert!(
        journal_prior(&dir) >= 3,
        "restart reports the journaled progress"
    );
    let events = request(
        &addr,
        "{\"op\":\"manifest\",\"name\":\"fig2\",\"size\":\"tiny\"}",
        is_done,
    );
    let done = events.iter().find(|e| is_done(e)).expect("done event");
    assert_eq!(counter(done, "ok"), 24, "{done:?}");
    assert_eq!(counter(done, "failed"), 0, "{done:?}");
    assert!(
        counter(done, "hits") >= 3,
        "pre-kill cells came from the store: {done:?}"
    );
    shutdown(&addr, child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_fault_is_retried_behind_the_daemon() {
    let dir = scratch_dir("fault");
    // Fire one injected transient fault on conv's first attempt; the
    // bounded-retry policy inside the cell runner must absorb it.
    let (child, addr) = spawn_daemon(&dir, &[("VISIM_FAULT", "cell.transient:conv:0")]);
    let events = request(
        &addr,
        "{\"op\":\"cell\",\"name\":\"fig2\",\"label\":\"conv/base\",\"size\":\"tiny\"}",
        is_done,
    );
    let cell = events
        .iter()
        .find(|e| e.get("event").and_then(Json::as_str) == Some("cell"))
        .expect("cell event");
    assert_eq!(
        cell.get("status").and_then(Json::as_str),
        Some("ok"),
        "retry recovered the injected fault: {cell:?}"
    );
    let done = events.iter().find(|e| is_done(e)).expect("done event");
    assert_eq!(counter(done, "failed"), 0, "{done:?}");
    shutdown(&addr, child);
    std::fs::remove_dir_all(&dir).ok();
}

/// The named member of a nested object (`event.paths.hit.count`-style,
/// two levels).
fn nested(event: &Json, outer: &str, inner: &str, leaf: &str) -> u64 {
    event
        .get(outer)
        .and_then(|o| o.get(inner))
        .and_then(|i| i.get(leaf))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn telemetry_invariants_hold_over_a_cold_then_warm_manifest() {
    let dir = scratch_dir("telemetry");
    let (child, addr) = spawn_daemon(&dir, &[]);
    let manifest = "{\"op\":\"manifest\",\"name\":\"fig2\",\"size\":\"tiny\"}";
    for _ in 0..2 {
        let events = request(&addr, manifest, is_done);
        let done = events.iter().find(|e| is_done(e)).expect("done event");
        assert_eq!(counter(done, "failed"), 0, "{done:?}");
    }
    let events = request(&addr, "{\"op\":\"stats\"}", |e| {
        e.get("event").and_then(Json::as_str) == Some("stats")
    });
    let stats = events.last().expect("stats event");
    assert_eq!(
        stats.get("schema").and_then(Json::as_str),
        Some("visim-serve-v2")
    );
    let serve = |k: &str| {
        stats
            .get("serve")
            .and_then(|s| s.get(k))
            .and_then(Json::as_u64)
            .expect(k)
    };
    assert_eq!(serve("requests"), 48, "two 24-cell manifests: {stats:?}");
    assert_eq!(serve("hits"), 24, "warm pass all hits: {stats:?}");
    assert_eq!(serve("misses"), 24, "cold pass all misses: {stats:?}");
    assert_eq!(serve("failures"), 0);
    assert_eq!(serve("in_flight"), 0, "nothing in flight at rest");
    assert_eq!(serve("hit_ratio_pct"), 50);

    // Conservation: every request is classified onto exactly one
    // serving path, so the path latency histogram counts sum to the
    // request counter.
    let paths_total = nested(stats, "paths", "hit", "count")
        + nested(stats, "paths", "miss", "count")
        + nested(stats, "paths", "coalesced", "count");
    assert_eq!(paths_total, serve("requests"), "{stats:?}");

    // Every always-on phase observed work (coalesce_wait legitimately
    // stays empty without concurrent identical requests).
    for phase in ["read_parse", "queue_wait", "store_lookup", "respond"] {
        assert!(
            nested(stats, "phases", phase, "count") > 0,
            "phase {phase} never observed: {stats:?}"
        );
    }
    assert_eq!(
        nested(stats, "phases", "simulate", "count"),
        24,
        "only the cold pass simulated: {stats:?}"
    );
    assert_eq!(
        nested(stats, "phases", "store_lookup", "count"),
        48,
        "every cell consulted the store: {stats:?}"
    );

    // The store-served path must be far faster than simulation: a warm
    // hit's p99 stays under the miss path's p50.
    let hit_p99 = nested(stats, "paths", "hit", "p99_ns");
    let miss_p50 = nested(stats, "paths", "miss", "p50_ns");
    assert!(hit_p99 > 0 && miss_p50 > 0, "{stats:?}");
    assert!(
        hit_p99 < miss_p50,
        "warm hits (p99 {hit_p99}ns) must undercut cold misses (p50 {miss_p50}ns)"
    );
    shutdown(&addr, child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_streams_ticked_snapshots_and_the_timeline_persists() {
    let dir = scratch_dir("watch");
    // Fast recorder tick so the bounded watch finishes quickly.
    let (child, addr) = spawn_daemon(&dir, &[("VISIM_TICK_MS", "50")]);
    let events = request(&addr, "{\"op\":\"watch\",\"count\":3}", is_done);
    let snapshots: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("snapshot"))
        .collect();
    assert_eq!(snapshots.len(), 3, "{events:?}");
    let done = events.iter().find(|e| is_done(e)).expect("done event");
    assert_eq!(counter(done, "snapshots"), 3, "{done:?}");
    let times: Vec<u64> = snapshots
        .iter()
        .map(|s| s.get("t_ms").and_then(Json::as_u64).expect("t_ms"))
        .collect();
    assert!(times.is_sorted(), "snapshot clock goes forward: {times:?}");
    for s in &snapshots {
        assert!(s.get("requests").is_some(), "{s:?}");
        assert!(s.get("in_flight").is_some(), "{s:?}");
        assert!(s.get("hit_ratio_pct").is_some(), "{s:?}");
    }
    shutdown(&addr, child);

    // Shutdown persisted the flight recorder; the bundled checker
    // accepts the artifact.
    let timeline = dir.join("results/json/serve_timeline.json");
    let text = std::fs::read_to_string(&timeline).expect("timeline written at shutdown");
    let doc = Json::parse(&text).expect("timeline parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("visim-serve-timeline-v1")
    );
    let check = Command::new(env!("CARGO_BIN_EXE_visim-serve"))
        .arg("--check-timeline")
        .arg(&timeline)
        .output()
        .expect("checker runs");
    assert!(
        check.status.success(),
        "--check-timeline rejected the artifact: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ping_answers_a_health_check() {
    let dir = scratch_dir("health");
    let (child, addr) = spawn_daemon(&dir, &[]);
    let events = request(&addr, "{\"op\":\"ping\"}", |e| {
        e.get("event").and_then(Json::as_str) == Some("pong")
    });
    let pong = events.last().expect("pong event");
    assert_eq!(
        pong.get("schema").and_then(Json::as_str),
        Some("visim-serve-v2")
    );
    assert!(
        pong.get("uptime_seconds").and_then(Json::as_f64).is_some(),
        "{pong:?}"
    );
    let rev = pong.get("git_rev").and_then(Json::as_str).expect("git_rev");
    assert!(!rev.is_empty());
    assert_eq!(counter(pong, "in_flight"), 0, "{pong:?}");
    shutdown(&addr, child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_requests_get_error_events_not_disconnects() {
    let dir = scratch_dir("badreq");
    let (child, addr) = spawn_daemon(&dir, &[]);
    for bad in [
        "not json",
        "{\"op\":\"warp\"}",
        "{\"op\":\"manifest\",\"name\":\"nope\"}",
        "{\"op\":\"cell\",\"name\":\"fig2\",\"label\":\"nope\",\"size\":\"tiny\"}",
        "{\"op\":\"manifest\",\"name\":\"fig2\",\"size\":\"huge\"}",
    ] {
        let events = request(&addr, bad, |e| {
            e.get("event").and_then(Json::as_str) == Some("error")
        });
        let last = events.last().expect("error event");
        assert!(
            last.get("error").and_then(Json::as_str).is_some(),
            "{bad} -> {last:?}"
        );
    }
    // The daemon is still healthy afterwards.
    let events = request(&addr, "{\"op\":\"ping\"}", |e| {
        e.get("event").and_then(Json::as_str) == Some("pong")
    });
    assert_eq!(events.len(), 1);
    shutdown(&addr, child);
    std::fs::remove_dir_all(&dir).ok();
}
