//! End-to-end daemon tests: single-flight coalescing across concurrent
//! clients, crash recovery through the store + journal, and the
//! transient-fault retry path — all against the real binary over real
//! TCP connections.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use visim_obs::Json;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("visim-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn the daemon in `dir` on an ephemeral port and return the child
/// plus the bound address (polled from the `--addr-file`).
fn spawn_daemon(dir: &Path, envs: &[(&str, &str)]) -> (Child, String) {
    let addr_file = dir.join("addr.txt");
    std::fs::remove_file(&addr_file).ok();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_visim-serve"));
    cmd.arg("--addr-file")
        .arg(&addr_file)
        .current_dir(dir)
        .env("VISIM_JOBS", "2")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let child = cmd.spawn().expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(line) = std::fs::read_to_string(&addr_file) {
            if line.ends_with('\n') {
                let event = Json::parse(line.trim()).expect("listening event parses");
                assert_eq!(event.get("event").and_then(Json::as_str), Some("listening"));
                break event
                    .get("addr")
                    .and_then(Json::as_str)
                    .expect("listening event carries the address")
                    .to_string();
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its address");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

/// The `journal_prior` member of the daemon's listening event.
fn journal_prior(dir: &Path) -> u64 {
    let line = std::fs::read_to_string(dir.join("addr.txt")).unwrap();
    Json::parse(line.trim())
        .unwrap()
        .get("journal_prior")
        .and_then(Json::as_u64)
        .expect("listening event carries journal_prior")
}

/// Connect, send one request line, and stream events until (and
/// including) the one `stop` accepts.
fn request(addr: &str, line: &str, mut stop: impl FnMut(&Json) -> bool) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut events = Vec::new();
    for event_line in BufReader::new(stream).lines() {
        let event = Json::parse(&event_line.expect("event line")).expect("event parses");
        let is_stop = stop(&event);
        events.push(event);
        if is_stop {
            break;
        }
    }
    events
}

fn is_done(event: &Json) -> bool {
    event.get("event").and_then(Json::as_str) == Some("done")
}

fn counter(event: &Json, name: &str) -> u64 {
    event.get(name).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

fn shutdown(addr: &str, mut child: Child) {
    request(addr, "{\"op\":\"shutdown\"}", |e| {
        e.get("event").and_then(Json::as_str) == Some("bye")
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        if Instant::now() > deadline {
            child.kill().ok();
            panic!("daemon did not exit after shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_clients_on_one_cell_simulate_exactly_once() {
    let dir = scratch_dir("coalesce");
    let (child, addr) = spawn_daemon(&dir, &[]);
    let req = "{\"op\":\"cell\",\"name\":\"fig2\",\"label\":\"conv/base\",\"size\":\"tiny\"}";
    let dones: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.as_str();
                s.spawn(move || {
                    let events = request(addr, req, is_done);
                    events.into_iter().find(is_done).expect("done event")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let (mut hits, mut misses, mut coalesced) = (0, 0, 0);
    for done in &dones {
        assert_eq!(counter(done, "ok"), 1, "{done:?}");
        assert_eq!(counter(done, "failed"), 0, "{done:?}");
        hits += counter(done, "hits");
        misses += counter(done, "misses");
        coalesced += counter(done, "coalesced");
    }
    // Whatever the interleaving — all four racing, or some arriving
    // after the store already has the cell — exactly one client can
    // miss: the in-flight table coalesces the racers and the store
    // serves the stragglers.
    assert_eq!(misses, 1, "exactly one simulation ran: {dones:?}");
    assert_eq!(hits + coalesced, 3, "the rest shared it: {dones:?}");
    shutdown(&addr, child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_daemon_resumes_from_store_and_journal_on_restart() {
    let dir = scratch_dir("kill");
    let (mut child, addr) = spawn_daemon(&dir, &[]);
    // Submit a full manifest and kill the daemon after three cells have
    // durably completed (each cell event is sent only after the cell
    // was stored and journaled).
    let seen = request(
        &addr,
        "{\"op\":\"manifest\",\"name\":\"fig2\",\"size\":\"tiny\"}",
        |e| e.get("event").and_then(Json::as_str) == Some("cell") && counter(e, "done") >= 3,
    );
    assert!(
        seen.iter()
            .any(|e| e.get("event").and_then(Json::as_str) == Some("cell")),
        "saw cell progress before the kill: {seen:?}"
    );
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the daemon");

    // Restart over the same store: the journal reports the recovered
    // cells and the resubmitted manifest converges without failures,
    // serving at least the pre-kill cells straight from the store.
    let (child, addr) = spawn_daemon(&dir, &[]);
    assert!(
        journal_prior(&dir) >= 3,
        "restart reports the journaled progress"
    );
    let events = request(
        &addr,
        "{\"op\":\"manifest\",\"name\":\"fig2\",\"size\":\"tiny\"}",
        is_done,
    );
    let done = events.iter().find(|e| is_done(e)).expect("done event");
    assert_eq!(counter(done, "ok"), 24, "{done:?}");
    assert_eq!(counter(done, "failed"), 0, "{done:?}");
    assert!(
        counter(done, "hits") >= 3,
        "pre-kill cells came from the store: {done:?}"
    );
    shutdown(&addr, child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_fault_is_retried_behind_the_daemon() {
    let dir = scratch_dir("fault");
    // Fire one injected transient fault on conv's first attempt; the
    // bounded-retry policy inside the cell runner must absorb it.
    let (child, addr) = spawn_daemon(&dir, &[("VISIM_FAULT", "cell.transient:conv:0")]);
    let events = request(
        &addr,
        "{\"op\":\"cell\",\"name\":\"fig2\",\"label\":\"conv/base\",\"size\":\"tiny\"}",
        is_done,
    );
    let cell = events
        .iter()
        .find(|e| e.get("event").and_then(Json::as_str) == Some("cell"))
        .expect("cell event");
    assert_eq!(
        cell.get("status").and_then(Json::as_str),
        Some("ok"),
        "retry recovered the injected fault: {cell:?}"
    );
    let done = events.iter().find(|e| is_done(e)).expect("done event");
    assert_eq!(counter(done, "failed"), 0, "{done:?}");
    shutdown(&addr, child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_requests_get_error_events_not_disconnects() {
    let dir = scratch_dir("badreq");
    let (child, addr) = spawn_daemon(&dir, &[]);
    for bad in [
        "not json",
        "{\"op\":\"warp\"}",
        "{\"op\":\"manifest\",\"name\":\"nope\"}",
        "{\"op\":\"cell\",\"name\":\"fig2\",\"label\":\"nope\",\"size\":\"tiny\"}",
        "{\"op\":\"manifest\",\"name\":\"fig2\",\"size\":\"huge\"}",
    ] {
        let events = request(&addr, bad, |e| {
            e.get("event").and_then(Json::as_str) == Some("error")
        });
        let last = events.last().expect("error event");
        assert!(
            last.get("error").and_then(Json::as_str).is_some(),
            "{bad} -> {last:?}"
        );
    }
    // The daemon is still healthy afterwards.
    let events = request(&addr, "{\"op\":\"ping\"}", |e| {
        e.get("event").and_then(Json::as_str) == Some("pong")
    });
    assert_eq!(events.len(), 1);
    shutdown(&addr, child);
    std::fs::remove_dir_all(&dir).ok();
}
