//! The newline-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line with an `"op"` member;
//! every reply is a stream of JSON event objects, one per line, ending
//! with a terminal event (`done`, `pong`, `stats`, `bye`, or `error`).
//! The protocol is deliberately line-oriented so `nc` and shell scripts
//! can speak it; the [`crate::client`] module is a convenience, not a
//! requirement.

use visim::bench::WorkloadSize;
use visim_obs::Json;

/// Where a request's manifest comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestSource {
    /// One of the eight embedded manifests, by name (`"fig1"`, …).
    Builtin(String),
    /// A `visim-manifest-v1` file readable by the *daemon* (the path
    /// is resolved in the daemon's working directory, not the
    /// client's).
    Path(String),
}

impl ManifestSource {
    /// The JSON member encoding this source.
    fn member(&self) -> (&'static str, Json) {
        match self {
            ManifestSource::Builtin(name) => ("name", Json::from(name.as_str())),
            ManifestSource::Path(path) => ("path", Json::from(path.as_str())),
        }
    }

    /// Decode from a request object: `"name"` wins over `"path"`.
    fn from_json(obj: &Json) -> Result<ManifestSource, String> {
        if let Some(name) = obj.get("name").and_then(Json::as_str) {
            return Ok(ManifestSource::Builtin(name.to_string()));
        }
        if let Some(path) = obj.get("path").and_then(Json::as_str) {
            return Ok(ManifestSource::Path(path.to_string()));
        }
        Err("manifest request needs a \"name\" or \"path\" member".into())
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; the daemon answers `pong`.
    Ping,
    /// Counter snapshot: the `serve.*` counters plus a store scan.
    Stats,
    /// Stream flight-recorder snapshots: one `snapshot` event per
    /// recorder tick (plus one immediate snapshot on subscribe), then a
    /// terminal `done` event after `count` snapshots (`0` = unbounded —
    /// the stream ends when the daemon shuts down).
    Watch {
        /// Snapshots to deliver before the terminal `done` (0 = until
        /// shutdown).
        count: u64,
    },
    /// Graceful shutdown: the daemon answers `bye`, drains in-flight
    /// connections, writes its results document, and exits.
    Shutdown,
    /// Run a whole manifest; the daemon streams one `cell` event per
    /// finished cell and a terminal `done` event.
    Manifest {
        /// The manifest to run.
        source: ManifestSource,
        /// Workload size name (`tiny`/`study`/`paper`).
        size: String,
    },
    /// Run a single cell of a manifest, selected by its label.
    Cell {
        /// The manifest defining the cell.
        source: ManifestSource,
        /// The cell's label within the manifest.
        label: String,
        /// Workload size name.
        size: String,
    },
}

impl Request {
    /// Parse one request line. Errors name what was malformed so the
    /// daemon can echo them back in an `error` event.
    pub fn parse(line: &str) -> Result<Request, String> {
        let obj = Json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let op = obj
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request object needs a string \"op\" member")?;
        let size = || {
            obj.get("size")
                .and_then(Json::as_str)
                .unwrap_or("study")
                .to_string()
        };
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "watch" => Ok(Request::Watch {
                count: obj.get("count").and_then(Json::as_u64).unwrap_or(0),
            }),
            "shutdown" => Ok(Request::Shutdown),
            "manifest" => Ok(Request::Manifest {
                source: ManifestSource::from_json(&obj)?,
                size: size(),
            }),
            "cell" => Ok(Request::Cell {
                source: ManifestSource::from_json(&obj)?,
                label: obj
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("cell request needs a string \"label\" member")?
                    .to_string(),
                size: size(),
            }),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Encode as one request line (no trailing newline).
    pub fn to_line(&self) -> String {
        let obj = match self {
            Request::Ping => Json::obj(vec![("op", Json::from("ping"))]),
            Request::Stats => Json::obj(vec![("op", Json::from("stats"))]),
            Request::Watch { count } => Json::obj(vec![
                ("op", Json::from("watch")),
                ("count", Json::from(*count)),
            ]),
            Request::Shutdown => Json::obj(vec![("op", Json::from("shutdown"))]),
            Request::Manifest { source, size } => Json::obj(vec![
                ("op", Json::from("manifest")),
                source.member(),
                ("size", Json::from(size.as_str())),
            ]),
            Request::Cell {
                source,
                label,
                size,
            } => Json::obj(vec![
                ("op", Json::from("cell")),
                source.member(),
                ("label", Json::from(label.as_str())),
                ("size", Json::from(size.as_str())),
            ]),
        };
        obj.to_compact()
    }
}

/// Resolve a workload-size name, the same three names the figure
/// binaries accept.
pub fn size_from_name(name: &str) -> Result<WorkloadSize, String> {
    match name {
        "tiny" => Ok(WorkloadSize::tiny()),
        "study" => Ok(WorkloadSize::study()),
        "paper" => Ok(WorkloadSize::paper()),
        other => Err(format!("unknown size {other:?}, expected tiny|study|paper")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Watch { count: 0 },
            Request::Watch { count: 12 },
            Request::Shutdown,
            Request::Manifest {
                source: ManifestSource::Builtin("fig2".into()),
                size: "tiny".into(),
            },
            Request::Cell {
                source: ManifestSource::Path("m.json".into()),
                label: "conv/vis".into(),
                size: "study".into(),
            },
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one line per request: {line}");
            assert_eq!(Request::parse(&line).as_ref(), Ok(&req), "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_described_not_panicked() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"manifest\"}",
            "{\"op\":\"cell\",\"name\":\"fig1\"}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn size_defaults_to_study_and_rejects_unknown_names() {
        match Request::parse("{\"op\":\"manifest\",\"name\":\"fig1\"}") {
            Ok(Request::Manifest { size, .. }) => assert_eq!(size, "study"),
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(size_from_name("tiny").is_ok());
        assert!(size_from_name("huge").is_err());
    }
}
