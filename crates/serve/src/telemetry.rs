//! Live telemetry for the daemon: the process-wide [`LiveRegistry`],
//! the flight-recorder snapshot ring, the request-trace collector
//! behind `--trace-out`, and the slow-request threshold.
//!
//! The daemon records request-lifecycle phases into the live registry
//! (the store-lookup and simulate phases are recorded inside
//! `visim::experiment`, which shares the metric names via
//! [`visim_obs::live::names`]); a tick thread samples the whole state
//! into the bounded [`SnapshotRing`]; `watch` clients stream new
//! snapshots off the ring; and at shutdown the ring persists as
//! `results/json/serve_timeline.json` under
//! [`SERVE_TIMELINE_SCHEMA`](visim_obs::schema::SERVE_TIMELINE_SCHEMA).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use visim_obs::live::LiveRegistry;
use visim_obs::schema::SERVE_TIMELINE_SCHEMA;
use visim_obs::trace::InstSpan;
use visim_obs::Json;

/// Environment variable: slow-request warning threshold in
/// milliseconds (default 1000; `0` disables the slow-request log).
pub const SLOW_MS_ENV: &str = "VISIM_SLOW_MS";

/// Environment variable: flight-recorder sampling interval in
/// milliseconds (default 1000, floored at 10).
pub const TICK_MS_ENV: &str = "VISIM_TICK_MS";

/// Snapshots retained by the flight recorder: at the default one-
/// second tick this is 12 minutes of history; older snapshots fall
/// off the front (the ring is evidence of *recent* behaviour, the
/// store and journal carry the durable record).
pub const RING_CAPACITY: usize = 720;

/// The daemon's live metrics registry (request-phase and per-path
/// latency histograms, plus the worker pool's batch stats).
pub fn live() -> &'static std::sync::Arc<LiveRegistry> {
    static LIVE: OnceLock<std::sync::Arc<LiveRegistry>> = OnceLock::new();
    LIVE.get_or_init(|| std::sync::Arc::new(LiveRegistry::new()))
}

/// The instant the daemon started serving; phases and snapshots are
/// timestamped against it. Latched by the first caller.
pub fn started() -> Instant {
    static STARTED: OnceLock<Instant> = OnceLock::new();
    *STARTED.get_or_init(Instant::now)
}

/// Uptime in whole milliseconds.
pub fn uptime_ms() -> u64 {
    started().elapsed().as_millis() as u64
}

/// The slow-request threshold in nanoseconds (`None` = disabled).
pub fn slow_threshold_ns() -> Option<u64> {
    static SLOW: OnceLock<Option<u64>> = OnceLock::new();
    *SLOW.get_or_init(|| {
        let ms = std::env::var(SLOW_MS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(1_000);
        (ms > 0).then(|| ms.saturating_mul(1_000_000))
    })
}

/// The flight-recorder tick interval.
pub fn tick_interval() -> Duration {
    static TICK: OnceLock<u64> = OnceLock::new();
    let ms = *TICK.get_or_init(|| {
        std::env::var(TICK_MS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .unwrap_or(1_000)
            .max(10)
    });
    Duration::from_millis(ms)
}

/// A bounded ring of telemetry snapshots with sequence numbers, shared
/// between the tick thread (producer), `watch` connections (blocking
/// consumers), and the shutdown path (drains everything into the
/// timeline artifact).
pub struct SnapshotRing {
    inner: Mutex<RingState>,
    cv: Condvar,
}

struct RingState {
    /// `(seq, snapshot)` pairs, seq strictly increasing from 1.
    items: VecDeque<(u64, Json)>,
    next_seq: u64,
    /// Total snapshots ever pushed (== evicted + retained).
    pushed: u64,
}

impl SnapshotRing {
    /// An empty ring.
    pub fn new() -> Self {
        SnapshotRing {
            inner: Mutex::new(RingState {
                items: VecDeque::new(),
                next_seq: 1,
                pushed: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Append one snapshot (evicting the oldest past capacity) and
    /// wake every waiting watcher. Returns the snapshot's sequence
    /// number.
    pub fn push(&self, snapshot: Json) -> u64 {
        let mut st = self.inner.lock().expect("snapshot ring lock");
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pushed += 1;
        if st.items.len() == RING_CAPACITY {
            st.items.pop_front();
        }
        st.items.push_back((seq, snapshot));
        drop(st);
        self.cv.notify_all();
        seq
    }

    /// Block (up to `timeout`) for snapshots newer than `after`, and
    /// return them oldest-first with their sequence numbers. An empty
    /// vector means the timeout elapsed — callers re-check their stop
    /// condition and wait again.
    pub fn wait_newer(&self, after: u64, timeout: Duration) -> Vec<(u64, Json)> {
        let mut st = self.inner.lock().expect("snapshot ring lock");
        if st.items.back().is_none_or(|(seq, _)| *seq <= after) {
            let (lock, _timed_out) = self
                .cv
                .wait_timeout(st, timeout)
                .expect("snapshot ring wait");
            st = lock;
        }
        st.items
            .iter()
            .filter(|(seq, _)| *seq > after)
            .map(|(seq, s)| (*seq, s.clone()))
            .collect()
    }

    /// The sequence number of the most recent snapshot ever pushed
    /// (0 before the first) — where a new `watch` subscriber starts, so
    /// it streams from *now* instead of replaying retained history.
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().expect("snapshot ring lock").next_seq - 1
    }

    /// Every retained snapshot, oldest first, plus the total ever
    /// pushed (retained + evicted).
    pub fn drain_all(&self) -> (Vec<Json>, u64) {
        let st = self.inner.lock().expect("snapshot ring lock");
        (st.items.iter().map(|(_, s)| s.clone()).collect(), st.pushed)
    }
}

impl Default for SnapshotRing {
    fn default() -> Self {
        SnapshotRing::new()
    }
}

/// The daemon's flight-recorder ring.
pub fn ring() -> &'static SnapshotRing {
    static RING: OnceLock<SnapshotRing> = OnceLock::new();
    RING.get_or_init(SnapshotRing::new)
}

/// Build the `visim-serve-timeline-v1` document from the recorder
/// state. `snapshots` is the retained ring (oldest first), `sampled`
/// the total ever pushed.
pub fn timeline_doc(snapshots: Vec<Json>, sampled: u64, tick: Duration) -> Json {
    Json::obj(vec![
        ("schema", Json::from(SERVE_TIMELINE_SCHEMA)),
        ("name", Json::from("serve")),
        ("git_rev", Json::from(visim_obs::schema::git_rev())),
        ("tick_ms", Json::from(tick.as_millis() as u64)),
        ("sampled", Json::from(sampled)),
        ("retained", Json::from(snapshots.len())),
        ("snapshots", Json::Arr(snapshots)),
    ])
}

/// Validate a serialized timeline document: parses, carries the
/// current schema tag, and its `snapshots` member is an array matching
/// `retained`. Returns a one-line summary for the `--check-timeline`
/// CLI.
pub fn check_timeline_text(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("timeline does not parse: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("timeline has no schema tag")?;
    if schema != SERVE_TIMELINE_SCHEMA {
        return Err(format!(
            "timeline schema is {schema:?}, expected {SERVE_TIMELINE_SCHEMA:?}"
        ));
    }
    let snapshots = doc
        .get("snapshots")
        .and_then(Json::elements)
        .ok_or("timeline has no snapshots array")?;
    let retained = doc
        .get("retained")
        .and_then(Json::as_u64)
        .ok_or("timeline has no retained count")?;
    if snapshots.len() as u64 != retained {
        return Err(format!(
            "timeline retains {} snapshots but claims {retained}",
            snapshots.len()
        ));
    }
    for (ix, s) in snapshots.iter().enumerate() {
        if s.get("t_ms").and_then(Json::as_u64).is_none() {
            return Err(format!("snapshot {ix} has no t_ms"));
        }
    }
    Ok(format!(
        "serve_timeline: schema {SERVE_TIMELINE_SCHEMA}, {} snapshot(s) retained of {} sampled",
        snapshots.len(),
        doc.get("sampled").and_then(Json::as_u64).unwrap_or(0)
    ))
}

/// Request spans collected for `--trace-out`. `None` until the flag
/// arms it; the daemon then records one [`InstSpan`] per finished cell
/// request (timestamps in microseconds since daemon start, one span
/// lane per concurrently in-flight request in the exported trace).
static SPANS: Mutex<Option<Vec<InstSpan>>> = Mutex::new(None);

/// Arm request-trace collection (the `--trace-out` flag).
pub fn enable_trace() {
    let mut guard = SPANS.lock().expect("trace spans lock");
    if guard.is_none() {
        *guard = Some(Vec::new());
    }
}

/// Whether `--trace-out` armed the collector (hot paths skip the
/// timestamp bookkeeping entirely when it did not).
pub fn trace_enabled() -> bool {
    SPANS.lock().expect("trace spans lock").is_some()
}

/// Record one request's lifecycle span, if collection is armed.
pub fn record_span(span: InstSpan) {
    if let Some(spans) = SPANS.lock().expect("trace spans lock").as_mut() {
        spans.push(span);
    }
}

/// Export the collected request spans as a Chrome trace-event /
/// Perfetto JSON document (1 µs of request time = 1 trace µs). `None`
/// when collection was never armed.
pub fn trace_doc() -> Option<Json> {
    let spans = SPANS.lock().expect("trace spans lock").take()?;
    let mut trace_ring = visim_obs::trace::TraceRing::new(spans.len().max(1));
    for span in &spans {
        trace_ring.span(*span);
    }
    Some(trace_ring.into_trace().chrome_trace(vec![
        ("tool", Json::from("visim-serve")),
        ("clock_note", Json::from("1us = 1us of request wall time")),
        ("spans", Json::from(spans.len() as u64)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pushes_wakes_waiters_and_bounds_history() {
        let ring = SnapshotRing::new();
        assert!(ring.wait_newer(0, Duration::from_millis(10)).is_empty());
        let s1 = ring.push(Json::obj(vec![("t_ms", Json::from(1u64))]));
        let s2 = ring.push(Json::obj(vec![("t_ms", Json::from(2u64))]));
        assert_eq!((s1, s2), (1, 2));
        let fresh = ring.wait_newer(s1, Duration::from_millis(10));
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].0, s2);
        // A waiter blocked before the push sees it arrive.
        std::thread::scope(|s| {
            let r = &ring;
            let waiter = s.spawn(move || r.wait_newer(2, Duration::from_secs(10)));
            std::thread::sleep(Duration::from_millis(30));
            r.push(Json::obj(vec![("t_ms", Json::from(3u64))]));
            let got = waiter.join().unwrap();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].0, 3);
        });
        for t in 0..(RING_CAPACITY as u64 + 10) {
            ring.push(Json::obj(vec![("t_ms", Json::from(t))]));
        }
        let (all, pushed) = ring.drain_all();
        assert_eq!(all.len(), RING_CAPACITY);
        assert_eq!(pushed, 3 + RING_CAPACITY as u64 + 10);
    }

    #[test]
    fn timeline_doc_round_trips_through_the_checker() {
        let doc = timeline_doc(
            vec![
                Json::obj(vec![("t_ms", Json::from(10u64))]),
                Json::obj(vec![("t_ms", Json::from(20u64))]),
            ],
            5,
            Duration::from_millis(250),
        );
        let summary = check_timeline_text(&doc.to_pretty()).expect("valid timeline");
        assert!(summary.contains("2 snapshot(s) retained of 5"), "{summary}");
        assert!(check_timeline_text("not json").is_err());
        assert!(check_timeline_text("{\"schema\":\"other\"}").is_err());
        let mut bad = doc.to_pretty();
        bad = bad.replace("\"retained\": 2", "\"retained\": 7");
        assert!(check_timeline_text(&bad).is_err(), "retained mismatch");
    }

    #[test]
    fn trace_collection_is_off_until_armed() {
        // Not armed in this process yet: record is a no-op, doc absent.
        if !trace_enabled() {
            record_span(sample_span(1));
            assert!(trace_doc().is_none());
        }
        enable_trace();
        record_span(sample_span(2));
        let doc = trace_doc().expect("armed collector exports");
        let events = doc
            .get("traceEvents")
            .and_then(Json::elements)
            .expect("chrome trace events");
        assert!(events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("miss")
                && e.get("ph").and_then(Json::as_str) == Some("B")
        }));
    }

    fn sample_span(seq: u64) -> InstSpan {
        InstSpan {
            seq,
            pc: seq,
            op: "miss",
            fetch: 10,
            dispatch: 11,
            issue: 12,
            complete: 40,
            retire: 41,
        }
    }
}
