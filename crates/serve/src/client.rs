//! The bundled client: connect, send one request, relay the event
//! stream to stdout, and turn the terminal event into an exit code.
//!
//! Scripts and tests use this instead of hand-rolling the protocol;
//! `scripts/verify.sh` drives its serve gate entirely through
//! `visim-serve client`.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;

use visim_obs::Json;

use crate::proto::Request;

/// Send `request` to the daemon at `addr`, print every event line the
/// daemon streams back, and return the process exit code: 0 when the
/// terminal event reports success, 1 when a run finished with failed
/// cells or the daemon reported an error, and an `Err` for transport
/// problems.
pub fn run(addr: &str, request: &Request) -> Result<i32, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut line = request.to_line();
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;
    for event_line in BufReader::new(stream).lines() {
        let event_line = event_line.map_err(|e| format!("read: {e}"))?;
        if event_line.is_empty() {
            continue;
        }
        println!("{event_line}");
        let event = Json::parse(&event_line).map_err(|e| format!("bad event line: {e}"))?;
        match event.get("event").and_then(Json::as_str) {
            Some("done") => {
                let failed = event.get("failed").and_then(Json::as_u64).unwrap_or(0);
                return Ok(if failed == 0 { 0 } else { 1 });
            }
            Some("pong" | "stats" | "bye") => return Ok(0),
            Some("error") => return Ok(1),
            // `listening`, `start`, and `cell` events keep streaming.
            _ => {}
        }
    }
    Err("daemon closed the connection before a terminal event".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_to_a_dead_daemon_is_a_transport_error() {
        // Port 1 on localhost is essentially never listening.
        let err = run("127.0.0.1:1", &Request::Ping).unwrap_err();
        assert!(err.starts_with("connect"), "{err}");
    }
}
