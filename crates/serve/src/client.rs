//! The bundled client: connect, send one request, relay the event
//! stream to stdout, and turn the terminal event into an exit code.
//!
//! Scripts and tests use this instead of hand-rolling the protocol;
//! `scripts/verify.sh` drives its serve gate entirely through
//! `visim-serve client`. Telemetry events (`stats`, `snapshot`,
//! `pong`) additionally have a human rendering ([`Render::Human`]) so
//! `stats` reads as a table and `watch` as a live dashboard line per
//! tick; `--json` keeps the raw event lines for scripts.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;

use visim_obs::Json;

use crate::proto::Request;

/// How the event stream is printed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Render {
    /// Relay raw event lines verbatim (what scripts parse).
    Raw,
    /// Render telemetry events (`stats`, `snapshot`, `pong`) for
    /// humans; everything else relays raw.
    Human,
}

/// Send `request` to the daemon at `addr`, print every event the
/// daemon streams back (raw lines), and return the process exit code:
/// 0 when the terminal event reports success, 1 when a run finished
/// with failed cells or the daemon reported an error, and an `Err` for
/// transport problems.
pub fn run(addr: &str, request: &Request) -> Result<i32, String> {
    run_with(addr, request, Render::Raw)
}

/// [`run`], with an explicit rendering mode.
pub fn run_with(addr: &str, request: &Request, render: Render) -> Result<i32, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut line = request.to_line();
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;
    for event_line in BufReader::new(stream).lines() {
        let event_line = event_line.map_err(|e| format!("read: {e}"))?;
        if event_line.is_empty() {
            continue;
        }
        let event = Json::parse(&event_line).map_err(|e| format!("bad event line: {e}"))?;
        let kind = event.get("event").and_then(Json::as_str).unwrap_or("");
        match (render, kind) {
            (Render::Human, "stats") => print!("{}", render_stats(&event)),
            (Render::Human, "snapshot") => println!("{}", render_snapshot(&event)),
            (Render::Human, "pong") => println!("{}", render_pong(&event)),
            (Render::Human, "done") if event.get("snapshots").is_some() => println!(
                "watched {} snapshot(s)",
                event.get("snapshots").and_then(Json::as_u64).unwrap_or(0)
            ),
            _ => println!("{event_line}"),
        }
        match kind {
            "done" => {
                let failed = event.get("failed").and_then(Json::as_u64).unwrap_or(0);
                return Ok(if failed == 0 { 0 } else { 1 });
            }
            "pong" | "stats" | "bye" => return Ok(0),
            "error" => return Ok(1),
            // `listening`, `start`, `cell`, and `snapshot` events keep
            // streaming.
            _ => {}
        }
    }
    Err("daemon closed the connection before a terminal event".into())
}

/// A nanosecond quantity at human scale (`843ns`, `12.3us`, `4.5ms`,
/// `1.20s`).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Append one table row per entry of a `phases`/`paths` group object.
fn latency_rows(group: Option<&Json>, kind: &str, out: &mut String) {
    let Some(Json::Obj(members)) = group else {
        return;
    };
    for (name, row) in members {
        let cell = |k: &str| row.get(k).and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "  {kind:<5} {name:<13} {:>7}  p50 {:>8}  p90 {:>8}  p99 {:>8}  max {:>8}\n",
            cell("count"),
            fmt_ns(cell("p50_ns")),
            fmt_ns(cell("p90_ns")),
            fmt_ns(cell("p99_ns")),
            fmt_ns(cell("max_ns")),
        ));
    }
}

/// Human rendering of the `stats` event: a serve-counter headline, one
/// latency row per observed phase and path, and the store size.
fn render_stats(event: &Json) -> String {
    let serve = |k: &str| {
        event
            .get("serve")
            .and_then(|s| s.get(k))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let uptime = event
        .get("uptime_seconds")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let mut out = format!(
        "up {uptime:.1}s  requests {}: {} hits, {} misses, {} coalesced, {} failed  \
         (hit ratio {}%, {} in flight)\n",
        serve("requests"),
        serve("hits"),
        serve("misses"),
        serve("coalesced"),
        serve("failures"),
        serve("hit_ratio_pct"),
        serve("in_flight"),
    );
    latency_rows(event.get("phases"), "phase", &mut out);
    latency_rows(event.get("paths"), "path", &mut out);
    if let Some(store) = event.get("store") {
        let cell = |k: &str| store.get(k).and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "  store: {} entries, {:.1} MB, {} invalid\n",
            cell("entries"),
            cell("bytes") as f64 / 1e6,
            cell("invalid"),
        ));
    }
    out
}

/// Human rendering of one flight-recorder `snapshot`: a single
/// dashboard line.
fn render_snapshot(event: &Json) -> String {
    let cell = |k: &str| event.get(k).and_then(Json::as_u64).unwrap_or(0);
    let mut line = format!(
        "t+{:7.1}s  requests {:>6}  hit {:>3}%  in-flight {:>2}",
        cell("t_ms") as f64 / 1e3,
        cell("requests"),
        cell("hit_ratio_pct"),
        cell("in_flight"),
    );
    if let Some(p99) = event
        .get("phases")
        .and_then(|p| p.get("simulate"))
        .and_then(|s| s.get("p99_ns"))
        .and_then(Json::as_u64)
    {
        line.push_str(&format!("  simulate p99 {:>8}", fmt_ns(p99)));
    }
    if event.get("store_entries").is_some() {
        line.push_str(&format!(
            "  store {} cells / {:.1} MB",
            cell("store_entries"),
            cell("store_bytes") as f64 / 1e6,
        ));
    }
    line
}

/// Human rendering of the health-check `pong`.
fn render_pong(event: &Json) -> String {
    format!(
        "pong: schema {}, rev {}, up {:.1}s, {} in flight",
        event.get("schema").and_then(Json::as_str).unwrap_or("?"),
        event.get("git_rev").and_then(Json::as_str).unwrap_or("?"),
        event
            .get("uptime_seconds")
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        event.get("in_flight").and_then(Json::as_u64).unwrap_or(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_to_a_dead_daemon_is_a_transport_error() {
        // Port 1 on localhost is essentially never listening.
        let err = run("127.0.0.1:1", &Request::Ping).unwrap_err();
        assert!(err.starts_with("connect"), "{err}");
    }

    #[test]
    fn nanoseconds_render_at_human_scale() {
        assert_eq!(fmt_ns(843), "843ns");
        assert_eq!(fmt_ns(12_340), "12.3us");
        assert_eq!(fmt_ns(4_500_000), "4.5ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }

    #[test]
    fn stats_and_snapshot_render_the_telemetry_members() {
        let stats = Json::parse(
            r#"{"event":"stats","schema":"visim-serve-v2","uptime_seconds":2.5,
                "serve":{"requests":48,"hits":24,"misses":24,"coalesced":0,
                         "failures":0,"in_flight":0,"hit_ratio_pct":50},
                "phases":{"simulate":{"count":24,"p50_ns":2000000,"p90_ns":3000000,
                          "p99_ns":4000000,"max_ns":5000000}},
                "paths":{"hit":{"count":24,"p50_ns":30000,"p90_ns":40000,
                         "p99_ns":50000,"max_ns":60000}},
                "store":{"entries":24,"bytes":1200000,"invalid":0}}"#,
        )
        .unwrap();
        let text = render_stats(&stats);
        assert!(text.contains("requests 48: 24 hits, 24 misses"), "{text}");
        assert!(text.contains("hit ratio 50%"), "{text}");
        assert!(text.contains("phase simulate"), "{text}");
        assert!(text.contains("path  hit"), "{text}");
        assert!(text.contains("p99    4.0ms"), "{text}");
        assert!(text.contains("store: 24 entries, 1.2 MB"), "{text}");

        let snap = Json::parse(
            r#"{"event":"snapshot","t_ms":1500,"requests":48,"hits":24,
                "misses":24,"coalesced":0,"failures":0,"hit_ratio_pct":50,
                "in_flight":2,
                "phases":{"simulate":{"count":24,"p50_ns":2000000,
                          "p90_ns":3000000,"p99_ns":4000000,"max_ns":5000000}},
                "store_entries":24,"store_bytes":1200000}"#,
        )
        .unwrap();
        let line = render_snapshot(&snap);
        assert!(line.contains("t+    1.5s"), "{line}");
        assert!(line.contains("requests     48"), "{line}");
        assert!(line.contains("hit  50%"), "{line}");
        assert!(line.contains("simulate p99    4.0ms"), "{line}");
        assert!(line.contains("store 24 cells / 1.2 MB"), "{line}");
    }

    #[test]
    fn pong_renders_the_health_fields() {
        let pong = Json::parse(
            r#"{"event":"pong","schema":"visim-serve-v2","uptime_seconds":9.5,
                "git_rev":"abc123def456","in_flight":1}"#,
        )
        .unwrap();
        let line = render_pong(&pong);
        assert_eq!(
            line,
            "pong: schema visim-serve-v2, rev abc123def456, up 9.5s, 1 in flight"
        );
    }
}
