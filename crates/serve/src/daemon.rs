//! The daemon: TCP accept loop, per-connection protocol handling, and
//! the single-flight cell executor over the result store.
//!
//! Threading model: one OS thread per connection (clients are few and
//! long-lived), with each manifest request fanning its cells out over
//! the experiment worker pool (`VISIM_JOBS` workers, scoped threads —
//! concurrent manifests each get their own pool scope and share the
//! process-wide pool metrics). Cell deduplication happens *across*
//! connections through the single-flight table, so two clients
//! submitting overlapping manifests never simulate a cell twice.
//!
//! Telemetry: every cell request is timed through its lifecycle phases
//! (read/parse → store lookup → coalesce wait → queue wait → simulate
//! → respond) into the process-wide [`crate::telemetry::live`]
//! registry; a tick thread samples the whole state into the flight
//! recorder every `VISIM_TICK_MS`; `watch` clients stream those
//! snapshots; and at shutdown the recorder persists as
//! `results/json/serve_timeline.json` (plus, with `--trace-out`, a
//! Chrome-trace request timeline). None of this touches the figure
//! binaries: the live sink is installed here, by the daemon only.

use std::collections::BTreeMap;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use visim::bench::WorkloadSize;
use visim::manifest::{CellSpec, Manifest};
use visim::{experiment, journal, store};
use visim_obs::live::names;
use visim_obs::log;
use visim_obs::schema::ResultsDoc;
use visim_obs::trace::InstSpan;
use visim_obs::{Histogram, Json};

use crate::proto::{size_from_name, ManifestSource, Request};
use crate::telemetry;
use crate::SERVE_SCHEMA;

/// Requests received, counted per cell (a manifest of 24 cells is 24
/// requests). Exported as `serve.requests`.
static REQUESTS: AtomicU64 = AtomicU64::new(0);
/// Cells served straight from the result store (`serve.hits`).
static HITS: AtomicU64 = AtomicU64::new(0);
/// Cells that had to be simulated (`serve.misses`).
static MISSES: AtomicU64 = AtomicU64::new(0);
/// Cells that joined another request's in-flight simulation
/// (`serve.coalesced`).
static COALESCED: AtomicU64 = AtomicU64::new(0);
/// Cells whose simulation failed, for the journal's end marker.
static FAILURES: AtomicU64 = AtomicU64::new(0);

/// Graceful-shutdown latch, set by the `shutdown` op.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// One in-flight cell simulation: the leader fills `slot` and notifies;
/// followers wait on `cv`.
struct Flight {
    slot: Mutex<Option<CellResult>>,
    cv: Condvar,
}

/// The single-flight table, keyed on [`CellSpec::identity`]. BTreeMap
/// because its `new` is `const` — the table predates any thread.
static FLIGHTS: Mutex<BTreeMap<String, Arc<Flight>>> = Mutex::new(BTreeMap::new());

/// The outcome of one cell, shared verbatim between the leader and any
/// coalesced followers.
#[derive(Debug, Clone)]
struct CellResult {
    /// `false` means the simulation failed.
    ok: bool,
    /// The error text when `!ok`.
    error: Option<String>,
    /// Whether the result came from the store (leader's perspective;
    /// followers report `coalesced` instead).
    from_store: bool,
    /// Small headline payload members for the `cell` event.
    payload: Vec<(String, Json)>,
}

/// Execute `compute` under single-flight: the first requester of `key`
/// runs it, everyone else arriving before completion waits and shares
/// the result. Returns the result plus whether *this* caller coalesced.
fn single_flight(key: String, compute: impl FnOnce() -> CellResult) -> (CellResult, bool) {
    let flight = {
        let mut map = FLIGHTS.lock().expect("flight table lock");
        if let Some(f) = map.get(&key) {
            Arc::clone(f)
        } else {
            let f = Arc::new(Flight {
                slot: Mutex::new(None),
                cv: Condvar::new(),
            });
            map.insert(key.clone(), Arc::clone(&f));
            drop(map);
            // Leader: simulate outside the table lock, publish, then
            // retire the flight so later requests go to the store.
            let result = compute();
            *f.slot.lock().expect("flight slot lock") = Some(result.clone());
            f.cv.notify_all();
            FLIGHTS.lock().expect("flight table lock").remove(&key);
            return (result, false);
        }
    };
    let waited = Instant::now();
    let mut slot = flight.slot.lock().expect("flight slot lock");
    while slot.is_none() {
        slot = flight.cv.wait(slot).expect("flight slot wait");
    }
    telemetry::live().observe_latency_ns(
        names::PHASE_COALESCE_WAIT,
        waited.elapsed().as_nanos() as u64,
    );
    (slot.clone().expect("flight slot filled"), true)
}

/// Cells currently in flight (single-flight leaders that have not yet
/// published their result).
fn in_flight_count() -> u64 {
    FLIGHTS.lock().expect("flight table lock").len() as u64
}

/// Run one cell through the store-aware experiment runners. The store
/// lookup, checksum validation, stale purge, fault injection, retry,
/// and journal recording all live in `visim::experiment`; this function
/// only adapts the three cell kinds onto one result shape.
fn run_spec(spec: &CellSpec, size: &WorkloadSize) -> CellResult {
    let ok = |from_store: bool, payload: Vec<(String, Json)>| CellResult {
        ok: true,
        error: None,
        from_store,
        payload,
    };
    let failed = |e: &dyn std::fmt::Display| CellResult {
        ok: false,
        error: Some(e.to_string()),
        from_store: false,
        payload: Vec::new(),
    };
    match spec {
        CellSpec::Timed {
            bench,
            cpu,
            mem,
            variant,
            ..
        } => {
            match experiment::try_run_timed_cfg(*bench, cpu.clone(), mem.clone(), size, *variant) {
                Ok(summary) => ok(
                    summary.metrics.counter("cell.store_hit") == 1,
                    vec![("cycles".to_string(), Json::from(summary.cycles()))],
                ),
                Err(e) => failed(&e),
            }
        }
        CellSpec::Counted { bench, variant, .. } => {
            match experiment::try_run_counted_with_origin(*bench, size, *variant) {
                Ok((stats, from_store)) => ok(
                    from_store,
                    vec![("retired".to_string(), Json::from(stats.retired))],
                ),
                Err(e) => failed(&e),
            }
        }
        CellSpec::Kernel { kernel, .. } => match visim::kernels14::try_kernel_cell(*kernel, size) {
            Ok(cell) => ok(
                cell.from_store,
                vec![
                    (
                        "scalar_cycles".to_string(),
                        Json::from(cell.timed_base.cycles()),
                    ),
                    (
                        "vis_cycles".to_string(),
                        Json::from(cell.timed_vis.cycles()),
                    ),
                ],
            ),
            Err(e) => failed(&e),
        },
    }
}

/// Write one event line to the (shared) client stream. Write errors are
/// ignored: a client that hung up mid-manifest must not abort the
/// simulations — their results still land in the store for the next
/// requester.
fn send(stream: &Mutex<TcpStream>, event: &Json) {
    let mut line = event.to_compact();
    line.push('\n');
    let mut guard = stream.lock().expect("client stream lock");
    let _ = guard.write_all(line.as_bytes());
    let _ = guard.flush();
}

/// Per-request tally, reported in the terminal `done` event (the
/// `serve.*` counters aggregate the same quantities daemon-wide).
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    failed: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    done: AtomicU64,
}

/// Run `specs` over the worker pool, streaming a `cell` event per
/// completion, and return the tally for the `done` event.
///
/// This is where the request lifecycle is stitched together: each cell
/// gets a daemon-wide request id, its queue wait, serving path (hit /
/// miss / coalesced), respond time, and end-to-end latency land in the
/// live registry (the store-lookup and simulate phases are recorded
/// inside `visim::experiment`), slow requests are logged, and — when
/// `--trace-out` armed the collector — the whole lifecycle becomes one
/// trace span.
fn run_cells(specs: Vec<CellSpec>, size: &WorkloadSize, stream: &Mutex<TcpStream>) -> Tally {
    let total = specs.len();
    let tally = Tally::default();
    let live = telemetry::live();
    let tracing = telemetry::trace_enabled();
    let slow_ns = telemetry::slow_threshold_ns();
    let epoch = telemetry::started();
    let work: Vec<_> = specs
        .into_iter()
        .map(|spec| {
            let tally = &tally;
            let enqueued = Instant::now();
            move || {
                let id = REQUESTS.fetch_add(1, Ordering::Relaxed) + 1;
                let begun = Instant::now();
                live.observe_latency_ns(
                    names::PHASE_QUEUE_WAIT,
                    begun.duration_since(enqueued).as_nanos() as u64,
                );
                let identity = spec.identity(size);
                let (result, coalesced) = single_flight(identity, || run_spec(&spec, size));
                let served = Instant::now();
                let (path, path_op) = if coalesced {
                    COALESCED.fetch_add(1, Ordering::Relaxed);
                    tally.coalesced.fetch_add(1, Ordering::Relaxed);
                    (names::PATH_COALESCED, "coalesced")
                } else if result.from_store {
                    HITS.fetch_add(1, Ordering::Relaxed);
                    tally.hits.fetch_add(1, Ordering::Relaxed);
                    (names::PATH_HIT, "hit")
                } else {
                    MISSES.fetch_add(1, Ordering::Relaxed);
                    tally.misses.fetch_add(1, Ordering::Relaxed);
                    (names::PATH_MISS, "miss")
                };
                if result.ok {
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    FAILURES.fetch_add(1, Ordering::Relaxed);
                    tally.failed.fetch_add(1, Ordering::Relaxed);
                }
                let done = tally.done.fetch_add(1, Ordering::Relaxed) + 1;
                let mut members = vec![
                    ("event", Json::from("cell")),
                    ("label", Json::from(spec.label())),
                    (
                        "status",
                        Json::from(if result.ok { "ok" } else { "failed" }),
                    ),
                    ("from_store", Json::Bool(result.from_store)),
                    ("coalesced", Json::Bool(coalesced)),
                    ("done", Json::from(done)),
                    ("total", Json::from(total)),
                ];
                for (k, v) in &result.payload {
                    members.push((k.as_str(), v.clone()));
                }
                if let Some(e) = &result.error {
                    members.push(("error", Json::from(e.as_str())));
                }
                send(stream, &Json::obj(members));
                let finished = Instant::now();
                live.observe_latency_ns(
                    names::PHASE_RESPOND,
                    finished.duration_since(served).as_nanos() as u64,
                );
                let total_ns = finished.duration_since(enqueued).as_nanos() as u64;
                live.observe_latency_ns(path, total_ns);
                if slow_ns.is_some_and(|t| total_ns >= t) {
                    log::warn(
                        "serve",
                        &format!(
                            "slow request #{id} {} ({path_op}): {:.1} ms end to end",
                            spec.label(),
                            total_ns as f64 / 1e6
                        ),
                    );
                }
                if tracing {
                    let us = |t: Instant| t.duration_since(epoch).as_micros() as u64;
                    telemetry::record_span(InstSpan {
                        seq: id,
                        pc: id,
                        op: if result.ok { path_op } else { "failed" },
                        fetch: us(enqueued),
                        dispatch: us(begun),
                        issue: us(begun),
                        complete: us(served),
                        retire: us(finished),
                    });
                }
            }
        })
        .collect();
    experiment::run_parallel(work);
    tally
}

/// Resolve a request's manifest source against the embedded set or the
/// daemon's filesystem.
fn resolve_manifest(source: &ManifestSource) -> Result<Manifest, String> {
    match source {
        ManifestSource::Builtin(name) => Manifest::builtin(name).ok_or_else(|| {
            format!(
                "unknown builtin manifest {name:?}; have: {}",
                Manifest::builtin_names().join(", ")
            )
        }),
        ManifestSource::Path(path) => Manifest::load_file(path),
    }
}

/// Handle a `manifest` or `cell` request end to end: resolve, run,
/// stream, and send the terminal `done` event.
fn handle_run(
    source: &ManifestSource,
    only_label: Option<&str>,
    size_name: &str,
    stream: &Mutex<TcpStream>,
) -> Result<(), String> {
    let manifest = resolve_manifest(source)?;
    let size = size_from_name(size_name)?;
    let mut specs = manifest.cells();
    if let Some(label) = only_label {
        specs.retain(|s| s.label() == label);
        if specs.is_empty() {
            return Err(format!(
                "manifest {} has no cell labeled {label:?}",
                manifest.name
            ));
        }
    }
    send(
        stream,
        &Json::obj(vec![
            ("event", Json::from("start")),
            ("manifest", Json::from(manifest.name.as_str())),
            ("size", Json::from(size_name)),
            ("cells", Json::from(specs.len())),
        ]),
    );
    let tally = run_cells(specs, &size, stream);
    send(
        stream,
        &Json::obj(vec![
            ("event", Json::from("done")),
            ("manifest", Json::from(manifest.name.as_str())),
            ("cells", Json::from(tally.done.load(Ordering::Relaxed))),
            ("ok", Json::from(tally.ok.load(Ordering::Relaxed))),
            ("failed", Json::from(tally.failed.load(Ordering::Relaxed))),
            ("hits", Json::from(tally.hits.load(Ordering::Relaxed))),
            ("misses", Json::from(tally.misses.load(Ordering::Relaxed))),
            (
                "coalesced",
                Json::from(tally.coalesced.load(Ordering::Relaxed)),
            ),
        ]),
    );
    Ok(())
}

/// Integer hit ratio in percent (hits × 100 / requests), 0 before the
/// first request. Kept integral so shell gates can grep it exactly.
fn hit_ratio_pct(hits: u64, requests: u64) -> u64 {
    (hits * 100).checked_div(requests).unwrap_or(0)
}

/// Latency percentiles of one live histogram, for the `stats` and
/// `snapshot` events.
fn percentiles_json(h: &Histogram) -> Json {
    Json::obj(vec![
        ("count", Json::from(h.count())),
        ("p50_ns", Json::from(h.quantile(0.50))),
        ("p90_ns", Json::from(h.quantile(0.90))),
        ("p99_ns", Json::from(h.quantile(0.99))),
        ("max_ns", Json::from(h.max())),
    ])
}

/// One object member per *observed* metric in `group` (phases or
/// paths), keyed by short name — empty histograms are omitted rather
/// than reported as zeros.
fn latency_group_json(group: &[&str]) -> Json {
    let live = telemetry::live();
    let mut members = Vec::new();
    for name in group {
        if let Some(h) = live.histogram(name) {
            if h.count() > 0 {
                members.push((names::short(name).to_string(), percentiles_json(&h)));
            }
        }
    }
    Json::Obj(members)
}

/// The `stats` event body: the daemon-wide serve counters, per-phase
/// and per-path latency percentiles from the live registry, and a
/// (checksumming) store scan.
fn stats_event() -> Json {
    let requests = REQUESTS.load(Ordering::Relaxed);
    let hits = HITS.load(Ordering::Relaxed);
    let mut members = vec![
        ("event", Json::from("stats")),
        ("schema", Json::from(SERVE_SCHEMA)),
        (
            "uptime_seconds",
            Json::from(telemetry::started().elapsed().as_secs_f64()),
        ),
        (
            "serve",
            Json::obj(vec![
                ("requests", Json::from(requests)),
                ("hits", Json::from(hits)),
                ("misses", Json::from(MISSES.load(Ordering::Relaxed))),
                ("coalesced", Json::from(COALESCED.load(Ordering::Relaxed))),
                ("failures", Json::from(FAILURES.load(Ordering::Relaxed))),
                ("in_flight", Json::from(in_flight_count())),
                ("hit_ratio_pct", Json::from(hit_ratio_pct(hits, requests))),
            ]),
        ),
        ("phases", latency_group_json(&names::PHASES)),
        ("paths", latency_group_json(&names::PATHS)),
    ];
    if let Some(stats) = store::stats() {
        members.push((
            "store",
            Json::obj(vec![
                ("entries", Json::from(stats.entries)),
                ("bytes", Json::from(stats.bytes)),
                ("invalid", Json::from(stats.invalid)),
            ]),
        ));
    }
    Json::obj(members)
}

/// The health-check `pong`: schema plus enough to tell *which* daemon
/// answered and whether it is busy. Uses the cached git rev — a probe
/// must not fork a subprocess.
fn pong_event() -> Json {
    Json::obj(vec![
        ("event", Json::from("pong")),
        ("schema", Json::from(SERVE_SCHEMA)),
        (
            "uptime_seconds",
            Json::from(telemetry::started().elapsed().as_secs_f64()),
        ),
        ("git_rev", Json::from(visim_obs::schema::git_rev_cached())),
        ("in_flight", Json::from(in_flight_count())),
    ])
}

/// One flight-recorder snapshot of the daemon's current state. Runs on
/// the tick thread (and once at shutdown), so it only uses cheap
/// probes: atomic counter loads, live-histogram clones, and the
/// metadata-only store scan ([`store::quick_scan`], no checksumming).
fn snapshot_json() -> Json {
    let requests = REQUESTS.load(Ordering::Relaxed);
    let hits = HITS.load(Ordering::Relaxed);
    let mut members = vec![
        ("event", Json::from("snapshot")),
        ("t_ms", Json::from(telemetry::uptime_ms())),
        ("requests", Json::from(requests)),
        ("hits", Json::from(hits)),
        ("misses", Json::from(MISSES.load(Ordering::Relaxed))),
        ("coalesced", Json::from(COALESCED.load(Ordering::Relaxed))),
        ("failures", Json::from(FAILURES.load(Ordering::Relaxed))),
        ("hit_ratio_pct", Json::from(hit_ratio_pct(hits, requests))),
        ("in_flight", Json::from(in_flight_count())),
        ("phases", latency_group_json(&names::PHASES)),
    ];
    if let Some(h) = telemetry::live().histogram("pool.queue_depth") {
        members.push(("queue_depth_max", Json::from(h.max())));
    }
    if let Some((entries, bytes)) = store::quick_scan() {
        members.push(("store_entries", Json::from(entries)));
        members.push(("store_bytes", Json::from(bytes)));
    }
    Json::obj(members)
}

/// Like [`send`] but reports whether the client is still reachable, so
/// streaming loops can stop instead of spinning against a dead socket.
fn send_ok(stream: &Mutex<TcpStream>, event: &Json) -> bool {
    let mut line = event.to_compact();
    line.push('\n');
    let mut guard = stream.lock().expect("client stream lock");
    guard.write_all(line.as_bytes()).is_ok() && guard.flush().is_ok()
}

/// Stream flight-recorder snapshots to a `watch` subscriber: one
/// immediate snapshot (not pushed to the ring — watchers must not
/// perturb the recorded timeline), then every ring tick as it lands,
/// until `count` snapshots were delivered (`0` = until shutdown), the
/// client hangs up, or the daemon shuts down. Ends with a `done` event
/// carrying the delivered count.
fn handle_watch(count: u64, stream: &Mutex<TcpStream>) {
    let ring = telemetry::ring();
    let mut last = ring.last_seq();
    if !send_ok(stream, &snapshot_json()) {
        return;
    }
    let mut sent = 1u64;
    'stream: while (count == 0 || sent < count) && !SHUTDOWN.load(Ordering::SeqCst) {
        for (seq, snap) in ring.wait_newer(last, Duration::from_millis(250)) {
            last = seq;
            if !send_ok(stream, &snap) {
                return;
            }
            sent += 1;
            if count != 0 && sent >= count {
                break 'stream;
            }
        }
    }
    send(
        stream,
        &Json::obj(vec![
            ("event", Json::from("done")),
            ("snapshots", Json::from(sent)),
        ]),
    );
}

/// Serve one client connection until it closes or asks for shutdown.
fn handle_conn(stream: TcpStream, daemon_addr: std::net::SocketAddr) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let stream = Mutex::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let accepted = Instant::now();
        let parsed = Request::parse(&line);
        telemetry::live().observe_latency_ns(
            names::PHASE_READ_PARSE,
            accepted.elapsed().as_nanos() as u64,
        );
        let outcome = match parsed {
            Ok(Request::Ping) => {
                send(&stream, &pong_event());
                Ok(())
            }
            Ok(Request::Stats) => {
                send(&stream, &stats_event());
                Ok(())
            }
            Ok(Request::Watch { count }) => {
                handle_watch(count, &stream);
                Ok(())
            }
            Ok(Request::Shutdown) => {
                log::info("serve", "shutdown requested");
                send(&stream, &Json::obj(vec![("event", Json::from("bye"))]));
                SHUTDOWN.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the latch.
                let _ = TcpStream::connect(daemon_addr);
                return;
            }
            Ok(Request::Manifest { source, size }) => handle_run(&source, None, &size, &stream),
            Ok(Request::Cell {
                source,
                label,
                size,
            }) => handle_run(&source, Some(&label), &size, &stream),
            Err(e) => Err(e),
        };
        if let Err(e) = outcome {
            send(
                &stream,
                &Json::obj(vec![
                    ("event", Json::from("error")),
                    ("error", Json::from(e.as_str())),
                ]),
            );
        }
    }
}

/// Daemon configuration from the CLI.
pub struct DaemonConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// When set, the `listening` event line is also written here
    /// (atomically), so scripts can poll one file instead of parsing
    /// the daemon's stdout.
    pub addr_file: Option<String>,
    /// When set, every request's lifecycle span is collected and
    /// exported to this path at shutdown as a Chrome trace-event /
    /// Perfetto file (one lane per concurrently in-flight request).
    pub trace_out: Option<String>,
}

/// Run the daemon until a client sends `shutdown`. On exit, writes the
/// run's results document (`results/json/serve.json`: pool, store,
/// fault, retry, and `serve.*` metrics plus the store's size), the
/// flight-recorder timeline (`results/json/serve_timeline.json`), the
/// request trace when `--trace-out` asked for one, and closes the
/// journal.
pub fn run(cfg: &DaemonConfig) -> Result<(), String> {
    let started = Instant::now();
    // Latch the telemetry epoch and wire the experiment layer's phase
    // timings (store lookup, simulate) into the daemon's live registry.
    telemetry::started();
    experiment::install_live_metrics(Some(Arc::clone(telemetry::live())));
    if cfg.trace_out.is_some() {
        telemetry::enable_trace();
    }
    // The daemon is store-first by definition: every lookup path goes
    // through the store before any simulation is scheduled.
    store::set_cli_resume();
    let journal_prior = journal::begin("serve", "daemon").unwrap_or(0);
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))
        .map_err(|e| format!("bind 127.0.0.1:{}: {e}", cfg.port))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let listening = Json::obj(vec![
        ("event", Json::from("listening")),
        ("schema", Json::from(SERVE_SCHEMA)),
        ("addr", Json::from(addr.to_string())),
        ("pid", Json::from(u64::from(std::process::id()))),
        ("journal_prior", Json::from(journal_prior)),
    ]);
    println!("{}", listening.to_compact());
    let _ = std::io::stdout().flush();
    if let Some(path) = &cfg.addr_file {
        let mut line = listening.to_compact();
        line.push('\n');
        visim_util::atomic::write_atomic(path, line.as_bytes())
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    log::info(
        "serve",
        &format!(
            "listening on {addr} (pid {}, {} journal entries recovered)",
            std::process::id(),
            journal_prior
        ),
    );
    // The flight recorder's tick thread: sample the daemon state into
    // the snapshot ring every VISIM_TICK_MS until shutdown. Detached —
    // it holds no locks across its sleep and the process outlives it
    // only briefly after the latch flips.
    let tick = telemetry::tick_interval();
    std::thread::spawn(move || {
        while !SHUTDOWN.load(Ordering::SeqCst) {
            std::thread::sleep(tick);
            if SHUTDOWN.load(Ordering::SeqCst) {
                break;
            }
            telemetry::ring().push(snapshot_json());
        }
    });
    let mut conns = Vec::new();
    for conn in listener.incoming() {
        if SHUTDOWN.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        conns.push(std::thread::spawn(move || handle_conn(stream, addr)));
    }
    // Drain in-flight connections so the doc sees their final counters.
    for handle in conns {
        let _ = handle.join();
    }
    // Final flight-recorder sample, so even a daemon shut down inside
    // its first tick retains at least one snapshot.
    telemetry::ring().push(snapshot_json());
    let mut doc = ResultsDoc::new("serve", "daemon", experiment::jobs());
    doc.metrics.merge(&experiment::drain_pool_metrics());
    doc.metrics
        .set("serve.requests", REQUESTS.load(Ordering::Relaxed));
    doc.metrics.set("serve.hits", HITS.load(Ordering::Relaxed));
    doc.metrics
        .set("serve.misses", MISSES.load(Ordering::Relaxed));
    doc.metrics
        .set("serve.coalesced", COALESCED.load(Ordering::Relaxed));
    doc.metrics
        .set("serve.failures", FAILURES.load(Ordering::Relaxed));
    // The request-lifecycle latency histograms ride along in the run
    // document (`serve.phase.*`, `serve.lat.*`); the pool histograms
    // already arrived through drain_pool_metrics, so only serve-side
    // metrics are taken from the live registry.
    let live_snapshot = telemetry::live().snapshot();
    for (name, h) in live_snapshot.histograms() {
        if name.starts_with("serve.") {
            doc.metrics.merge_histogram(name, h);
        }
    }
    let mut text = doc.to_json(started.elapsed().as_secs_f64()).to_pretty();
    text.push('\n');
    visim_util::atomic::write_atomic("results/json/serve.json", text.as_bytes())
        .map_err(|e| format!("write results/json/serve.json: {e}"))?;
    let (snapshots, sampled) = telemetry::ring().drain_all();
    let retained = snapshots.len();
    let mut text = telemetry::timeline_doc(snapshots, sampled, tick).to_pretty();
    text.push('\n');
    visim_util::atomic::write_atomic("results/json/serve_timeline.json", text.as_bytes())
        .map_err(|e| format!("write results/json/serve_timeline.json: {e}"))?;
    if let Some(path) = &cfg.trace_out {
        if let Some(trace) = telemetry::trace_doc() {
            let mut text = trace.to_pretty();
            text.push('\n');
            visim_util::atomic::write_atomic(path, text.as_bytes())
                .map_err(|e| format!("write {path}: {e}"))?;
            log::info("serve", &format!("request trace written to {path}"));
        }
    }
    journal::finish(FAILURES.load(Ordering::Relaxed));
    log::info(
        "serve",
        &format!(
            "shutdown after {:.1}s: {} requests ({} hits, {} misses, {} coalesced, {} failed), \
             {retained} timeline snapshot(s) retained",
            started.elapsed().as_secs_f64(),
            REQUESTS.load(Ordering::Relaxed),
            HITS.load(Ordering::Relaxed),
            MISSES.load(Ordering::Relaxed),
            COALESCED.load(Ordering::Relaxed),
            FAILURES.load(Ordering::Relaxed),
        ),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flight_leader_runs_once_and_followers_share() {
        let key = "test|cell".to_string();
        let result = CellResult {
            ok: true,
            error: None,
            from_store: false,
            payload: vec![("cycles".to_string(), Json::from(7u64))],
        };
        // Sequential callers never coalesce: the flight retires as the
        // leader returns.
        let (r1, c1) = single_flight(key.clone(), || result.clone());
        assert!(r1.ok && !c1);
        let (_r2, c2) = single_flight(key, || result.clone());
        assert!(!c2, "no in-flight leader to join");
        assert!(FLIGHTS.lock().unwrap().is_empty(), "flights retire");
    }

    #[test]
    fn concurrent_followers_coalesce_onto_one_computation() {
        use std::sync::atomic::AtomicUsize;
        let computed = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(4);
        let coalesced_total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    barrier.wait();
                    let (r, coalesced) = single_flight("race|cell".to_string(), || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the
                        // other threads to arrive and become followers.
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        CellResult {
                            ok: true,
                            error: None,
                            from_store: false,
                            payload: Vec::new(),
                        }
                    });
                    assert!(r.ok);
                    if coalesced {
                        coalesced_total.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        let runs = computed.load(Ordering::SeqCst);
        let joined = coalesced_total.load(Ordering::SeqCst);
        assert_eq!(runs + joined, 4, "every caller either led or joined");
        assert!(runs >= 1, "someone computed");
        assert!(
            joined >= 4 - runs,
            "followers that arrived in-flight coalesced"
        );
    }
}
