//! The daemon: TCP accept loop, per-connection protocol handling, and
//! the single-flight cell executor over the result store.
//!
//! Threading model: one OS thread per connection (clients are few and
//! long-lived), with each manifest request fanning its cells out over
//! the experiment worker pool (`VISIM_JOBS` workers, scoped threads —
//! concurrent manifests each get their own pool scope and share the
//! process-wide pool metrics). Cell deduplication happens *across*
//! connections through the single-flight table, so two clients
//! submitting overlapping manifests never simulate a cell twice.

use std::collections::BTreeMap;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use visim::bench::WorkloadSize;
use visim::manifest::{CellSpec, Manifest};
use visim::{experiment, journal, store};
use visim_obs::schema::ResultsDoc;
use visim_obs::Json;

use crate::proto::{size_from_name, ManifestSource, Request};
use crate::SERVE_SCHEMA;

/// Requests received, counted per cell (a manifest of 24 cells is 24
/// requests). Exported as `serve.requests`.
static REQUESTS: AtomicU64 = AtomicU64::new(0);
/// Cells served straight from the result store (`serve.hits`).
static HITS: AtomicU64 = AtomicU64::new(0);
/// Cells that had to be simulated (`serve.misses`).
static MISSES: AtomicU64 = AtomicU64::new(0);
/// Cells that joined another request's in-flight simulation
/// (`serve.coalesced`).
static COALESCED: AtomicU64 = AtomicU64::new(0);
/// Cells whose simulation failed, for the journal's end marker.
static FAILURES: AtomicU64 = AtomicU64::new(0);

/// Graceful-shutdown latch, set by the `shutdown` op.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// One in-flight cell simulation: the leader fills `slot` and notifies;
/// followers wait on `cv`.
struct Flight {
    slot: Mutex<Option<CellResult>>,
    cv: Condvar,
}

/// The single-flight table, keyed on [`CellSpec::identity`]. BTreeMap
/// because its `new` is `const` — the table predates any thread.
static FLIGHTS: Mutex<BTreeMap<String, Arc<Flight>>> = Mutex::new(BTreeMap::new());

/// The outcome of one cell, shared verbatim between the leader and any
/// coalesced followers.
#[derive(Debug, Clone)]
struct CellResult {
    /// `false` means the simulation failed.
    ok: bool,
    /// The error text when `!ok`.
    error: Option<String>,
    /// Whether the result came from the store (leader's perspective;
    /// followers report `coalesced` instead).
    from_store: bool,
    /// Small headline payload members for the `cell` event.
    payload: Vec<(String, Json)>,
}

/// Execute `compute` under single-flight: the first requester of `key`
/// runs it, everyone else arriving before completion waits and shares
/// the result. Returns the result plus whether *this* caller coalesced.
fn single_flight(key: String, compute: impl FnOnce() -> CellResult) -> (CellResult, bool) {
    let flight = {
        let mut map = FLIGHTS.lock().expect("flight table lock");
        if let Some(f) = map.get(&key) {
            Arc::clone(f)
        } else {
            let f = Arc::new(Flight {
                slot: Mutex::new(None),
                cv: Condvar::new(),
            });
            map.insert(key.clone(), Arc::clone(&f));
            drop(map);
            // Leader: simulate outside the table lock, publish, then
            // retire the flight so later requests go to the store.
            let result = compute();
            *f.slot.lock().expect("flight slot lock") = Some(result.clone());
            f.cv.notify_all();
            FLIGHTS.lock().expect("flight table lock").remove(&key);
            return (result, false);
        }
    };
    let mut slot = flight.slot.lock().expect("flight slot lock");
    while slot.is_none() {
        slot = flight.cv.wait(slot).expect("flight slot wait");
    }
    (slot.clone().expect("flight slot filled"), true)
}

/// Run one cell through the store-aware experiment runners. The store
/// lookup, checksum validation, stale purge, fault injection, retry,
/// and journal recording all live in `visim::experiment`; this function
/// only adapts the three cell kinds onto one result shape.
fn run_spec(spec: &CellSpec, size: &WorkloadSize) -> CellResult {
    let ok = |from_store: bool, payload: Vec<(String, Json)>| CellResult {
        ok: true,
        error: None,
        from_store,
        payload,
    };
    let failed = |e: &dyn std::fmt::Display| CellResult {
        ok: false,
        error: Some(e.to_string()),
        from_store: false,
        payload: Vec::new(),
    };
    match spec {
        CellSpec::Timed {
            bench,
            cpu,
            mem,
            variant,
            ..
        } => {
            match experiment::try_run_timed_cfg(*bench, cpu.clone(), mem.clone(), size, *variant) {
                Ok(summary) => ok(
                    summary.metrics.counter("cell.store_hit") == 1,
                    vec![("cycles".to_string(), Json::from(summary.cycles()))],
                ),
                Err(e) => failed(&e),
            }
        }
        CellSpec::Counted { bench, variant, .. } => {
            match experiment::try_run_counted_with_origin(*bench, size, *variant) {
                Ok((stats, from_store)) => ok(
                    from_store,
                    vec![("retired".to_string(), Json::from(stats.retired))],
                ),
                Err(e) => failed(&e),
            }
        }
        CellSpec::Kernel { kernel, .. } => match visim::kernels14::try_kernel_cell(*kernel, size) {
            Ok(cell) => ok(
                cell.from_store,
                vec![
                    (
                        "scalar_cycles".to_string(),
                        Json::from(cell.timed_base.cycles()),
                    ),
                    (
                        "vis_cycles".to_string(),
                        Json::from(cell.timed_vis.cycles()),
                    ),
                ],
            ),
            Err(e) => failed(&e),
        },
    }
}

/// Write one event line to the (shared) client stream. Write errors are
/// ignored: a client that hung up mid-manifest must not abort the
/// simulations — their results still land in the store for the next
/// requester.
fn send(stream: &Mutex<TcpStream>, event: &Json) {
    let mut line = event.to_compact();
    line.push('\n');
    let mut guard = stream.lock().expect("client stream lock");
    let _ = guard.write_all(line.as_bytes());
    let _ = guard.flush();
}

/// Per-request tally, reported in the terminal `done` event (the
/// `serve.*` counters aggregate the same quantities daemon-wide).
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    failed: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    done: AtomicU64,
}

/// Run `specs` over the worker pool, streaming a `cell` event per
/// completion, and return the tally for the `done` event.
fn run_cells(specs: Vec<CellSpec>, size: &WorkloadSize, stream: &Mutex<TcpStream>) -> Tally {
    let total = specs.len();
    let tally = Tally::default();
    let work: Vec<_> = specs
        .into_iter()
        .map(|spec| {
            let tally = &tally;
            move || {
                REQUESTS.fetch_add(1, Ordering::Relaxed);
                let identity = spec.identity(size);
                let (result, coalesced) = single_flight(identity, || run_spec(&spec, size));
                if coalesced {
                    COALESCED.fetch_add(1, Ordering::Relaxed);
                    tally.coalesced.fetch_add(1, Ordering::Relaxed);
                } else if result.from_store {
                    HITS.fetch_add(1, Ordering::Relaxed);
                    tally.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    MISSES.fetch_add(1, Ordering::Relaxed);
                    tally.misses.fetch_add(1, Ordering::Relaxed);
                }
                if result.ok {
                    tally.ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    FAILURES.fetch_add(1, Ordering::Relaxed);
                    tally.failed.fetch_add(1, Ordering::Relaxed);
                }
                let done = tally.done.fetch_add(1, Ordering::Relaxed) + 1;
                let mut members = vec![
                    ("event", Json::from("cell")),
                    ("label", Json::from(spec.label())),
                    (
                        "status",
                        Json::from(if result.ok { "ok" } else { "failed" }),
                    ),
                    ("from_store", Json::Bool(result.from_store)),
                    ("coalesced", Json::Bool(coalesced)),
                    ("done", Json::from(done)),
                    ("total", Json::from(total)),
                ];
                for (k, v) in &result.payload {
                    members.push((k.as_str(), v.clone()));
                }
                if let Some(e) = &result.error {
                    members.push(("error", Json::from(e.as_str())));
                }
                send(stream, &Json::obj(members));
            }
        })
        .collect();
    experiment::run_parallel(work);
    tally
}

/// Resolve a request's manifest source against the embedded set or the
/// daemon's filesystem.
fn resolve_manifest(source: &ManifestSource) -> Result<Manifest, String> {
    match source {
        ManifestSource::Builtin(name) => Manifest::builtin(name).ok_or_else(|| {
            format!(
                "unknown builtin manifest {name:?}; have: {}",
                Manifest::builtin_names().join(", ")
            )
        }),
        ManifestSource::Path(path) => Manifest::load_file(path),
    }
}

/// Handle a `manifest` or `cell` request end to end: resolve, run,
/// stream, and send the terminal `done` event.
fn handle_run(
    source: &ManifestSource,
    only_label: Option<&str>,
    size_name: &str,
    stream: &Mutex<TcpStream>,
) -> Result<(), String> {
    let manifest = resolve_manifest(source)?;
    let size = size_from_name(size_name)?;
    let mut specs = manifest.cells();
    if let Some(label) = only_label {
        specs.retain(|s| s.label() == label);
        if specs.is_empty() {
            return Err(format!(
                "manifest {} has no cell labeled {label:?}",
                manifest.name
            ));
        }
    }
    send(
        stream,
        &Json::obj(vec![
            ("event", Json::from("start")),
            ("manifest", Json::from(manifest.name.as_str())),
            ("size", Json::from(size_name)),
            ("cells", Json::from(specs.len())),
        ]),
    );
    let tally = run_cells(specs, &size, stream);
    send(
        stream,
        &Json::obj(vec![
            ("event", Json::from("done")),
            ("manifest", Json::from(manifest.name.as_str())),
            ("cells", Json::from(tally.done.load(Ordering::Relaxed))),
            ("ok", Json::from(tally.ok.load(Ordering::Relaxed))),
            ("failed", Json::from(tally.failed.load(Ordering::Relaxed))),
            ("hits", Json::from(tally.hits.load(Ordering::Relaxed))),
            ("misses", Json::from(tally.misses.load(Ordering::Relaxed))),
            (
                "coalesced",
                Json::from(tally.coalesced.load(Ordering::Relaxed)),
            ),
        ]),
    );
    Ok(())
}

/// The `stats` event body: the daemon-wide serve counters plus a live
/// store scan.
fn stats_event() -> Json {
    let mut members = vec![
        ("event", Json::from("stats")),
        ("schema", Json::from(SERVE_SCHEMA)),
        (
            "serve",
            Json::obj(vec![
                ("requests", Json::from(REQUESTS.load(Ordering::Relaxed))),
                ("hits", Json::from(HITS.load(Ordering::Relaxed))),
                ("misses", Json::from(MISSES.load(Ordering::Relaxed))),
                ("coalesced", Json::from(COALESCED.load(Ordering::Relaxed))),
            ]),
        ),
    ];
    if let Some(stats) = store::stats() {
        members.push((
            "store",
            Json::obj(vec![
                ("entries", Json::from(stats.entries)),
                ("bytes", Json::from(stats.bytes)),
                ("invalid", Json::from(stats.invalid)),
            ]),
        ));
    }
    Json::obj(members)
}

/// Serve one client connection until it closes or asks for shutdown.
fn handle_conn(stream: TcpStream, daemon_addr: std::net::SocketAddr) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let stream = Mutex::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let outcome = match Request::parse(&line) {
            Ok(Request::Ping) => {
                send(
                    &stream,
                    &Json::obj(vec![
                        ("event", Json::from("pong")),
                        ("schema", Json::from(SERVE_SCHEMA)),
                    ]),
                );
                Ok(())
            }
            Ok(Request::Stats) => {
                send(&stream, &stats_event());
                Ok(())
            }
            Ok(Request::Shutdown) => {
                send(&stream, &Json::obj(vec![("event", Json::from("bye"))]));
                SHUTDOWN.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the latch.
                let _ = TcpStream::connect(daemon_addr);
                return;
            }
            Ok(Request::Manifest { source, size }) => handle_run(&source, None, &size, &stream),
            Ok(Request::Cell {
                source,
                label,
                size,
            }) => handle_run(&source, Some(&label), &size, &stream),
            Err(e) => Err(e),
        };
        if let Err(e) = outcome {
            send(
                &stream,
                &Json::obj(vec![
                    ("event", Json::from("error")),
                    ("error", Json::from(e.as_str())),
                ]),
            );
        }
    }
}

/// Daemon configuration from the CLI.
pub struct DaemonConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// When set, the `listening` event line is also written here
    /// (atomically), so scripts can poll one file instead of parsing
    /// the daemon's stdout.
    pub addr_file: Option<String>,
}

/// Run the daemon until a client sends `shutdown`. On exit, writes the
/// run's results document (`results/json/serve.json`: pool, store,
/// fault, retry, and `serve.*` metrics plus the store's size) and
/// closes the journal.
pub fn run(cfg: &DaemonConfig) -> Result<(), String> {
    let started = Instant::now();
    // The daemon is store-first by definition: every lookup path goes
    // through the store before any simulation is scheduled.
    store::set_cli_resume();
    let journal_prior = journal::begin("serve", "daemon").unwrap_or(0);
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))
        .map_err(|e| format!("bind 127.0.0.1:{}: {e}", cfg.port))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let listening = Json::obj(vec![
        ("event", Json::from("listening")),
        ("schema", Json::from(SERVE_SCHEMA)),
        ("addr", Json::from(addr.to_string())),
        ("pid", Json::from(u64::from(std::process::id()))),
        ("journal_prior", Json::from(journal_prior)),
    ]);
    println!("{}", listening.to_compact());
    let _ = std::io::stdout().flush();
    if let Some(path) = &cfg.addr_file {
        let mut line = listening.to_compact();
        line.push('\n');
        visim_util::atomic::write_atomic(path, line.as_bytes())
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    let mut conns = Vec::new();
    for conn in listener.incoming() {
        if SHUTDOWN.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        conns.push(std::thread::spawn(move || handle_conn(stream, addr)));
    }
    // Drain in-flight connections so the doc sees their final counters.
    for handle in conns {
        let _ = handle.join();
    }
    let mut doc = ResultsDoc::new("serve", "daemon", experiment::jobs());
    doc.metrics.merge(&experiment::drain_pool_metrics());
    doc.metrics
        .set("serve.requests", REQUESTS.load(Ordering::Relaxed));
    doc.metrics.set("serve.hits", HITS.load(Ordering::Relaxed));
    doc.metrics
        .set("serve.misses", MISSES.load(Ordering::Relaxed));
    doc.metrics
        .set("serve.coalesced", COALESCED.load(Ordering::Relaxed));
    if let Some(stats) = store::stats() {
        doc.metrics.set("store.bytes", stats.bytes);
        doc.metrics.set("store.entries", stats.entries);
    }
    let mut text = doc.to_json(started.elapsed().as_secs_f64()).to_pretty();
    text.push('\n');
    visim_util::atomic::write_atomic("results/json/serve.json", text.as_bytes())
        .map_err(|e| format!("write results/json/serve.json: {e}"))?;
    journal::finish(FAILURES.load(Ordering::Relaxed));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flight_leader_runs_once_and_followers_share() {
        let key = "test|cell".to_string();
        let result = CellResult {
            ok: true,
            error: None,
            from_store: false,
            payload: vec![("cycles".to_string(), Json::from(7u64))],
        };
        // Sequential callers never coalesce: the flight retires as the
        // leader returns.
        let (r1, c1) = single_flight(key.clone(), || result.clone());
        assert!(r1.ok && !c1);
        let (_r2, c2) = single_flight(key, || result.clone());
        assert!(!c2, "no in-flight leader to join");
        assert!(FLIGHTS.lock().unwrap().is_empty(), "flights retire");
    }

    #[test]
    fn concurrent_followers_coalesce_onto_one_computation() {
        use std::sync::atomic::AtomicUsize;
        let computed = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(4);
        let coalesced_total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    barrier.wait();
                    let (r, coalesced) = single_flight("race|cell".to_string(), || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the
                        // other threads to arrive and become followers.
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        CellResult {
                            ok: true,
                            error: None,
                            from_store: false,
                            payload: Vec::new(),
                        }
                    });
                    assert!(r.ok);
                    if coalesced {
                        coalesced_total.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        let runs = computed.load(Ordering::SeqCst);
        let joined = coalesced_total.load(Ordering::SeqCst);
        assert_eq!(runs + joined, 4, "every caller either led or joined");
        assert!(runs >= 1, "someone computed");
        assert!(
            joined >= 4 - runs,
            "followers that arrived in-flight coalesced"
        );
    }
}
