//! `visim-serve` CLI: daemon mode (default), client mode, and the
//! `--store-stats` / `--check-timeline` reports.

use visim_serve::proto::{ManifestSource, Request};
use visim_serve::{client, daemon, telemetry};

fn usage() -> String {
    "visim-serve: job daemon serving manifest simulations over the content-addressed store\n\
     \n\
     Usage:\n\
     \x20 visim-serve [--port N] [--addr-file F] [--trace-out F] [--store-dir D] [--no-store]\n\
     \x20 visim-serve client <addr> <command>\n\
     \x20 visim-serve --store-stats [--store-dir D]\n\
     \x20 visim-serve --check-timeline <file>\n\
     \n\
     Daemon flags:\n\
     \x20 --port N        TCP port on 127.0.0.1 (default 0 = ephemeral; the bound\n\
     \x20                 address is printed in the `listening` event)\n\
     \x20 --addr-file F   also write the `listening` event line to file F\n\
     \x20 --trace-out F   at shutdown, write one Chrome-trace span per served\n\
     \x20                 request to file F (load in Perfetto / chrome://tracing)\n\
     \x20 --store-dir D   result-store directory (default results/store)\n\
     \x20 --no-store      serve without persistence (every request simulates)\n\
     \n\
     Client commands (addr as printed by the daemon, e.g. 127.0.0.1:38141):\n\
     \x20 ping                          health check (schema, git rev, uptime,\n\
     \x20                               in-flight count)\n\
     \x20 stats [--json]                serve counters + per-phase/per-path latency\n\
     \x20                               percentiles + store scan (--json: raw event)\n\
     \x20 watch [N] [--json]            stream flight-recorder snapshots, one\n\
     \x20                               dashboard line per tick (N snapshots, or\n\
     \x20                               until shutdown; --watch is an alias)\n\
     \x20 shutdown                      graceful daemon shutdown\n\
     \x20 manifest <name|path> [size]   run a manifest (builtin name, or a\n\
     \x20                               daemon-local .json path); size is\n\
     \x20                               tiny|study|paper (default study)\n\
     \x20 cell <name|path> <label> [size]  run one cell of a manifest by label\n\
     \n\
     --store-stats       print store size/entry counts per schema revision and exit\n\
     --check-timeline F  validate a serve_timeline.json flight-recorder artifact\n\
     \n\
     Environment: VISIM_JOBS, VISIM_STORE_DIR, VISIM_NO_STORE, VISIM_FAULT and the\n\
     other knobs documented by the figure binaries apply to the daemon unchanged;\n\
     VISIM_TICK_MS sets the flight-recorder interval, VISIM_SLOW_MS the\n\
     slow-request warning threshold, VISIM_LOG the stderr log level."
        .to_string()
}

fn bad(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("\n{}", usage());
    std::process::exit(2);
}

/// A manifest argument: an embedded name, or anything path-like.
fn source_arg(arg: &str) -> ManifestSource {
    if arg.contains('/') || arg.ends_with(".json") {
        ManifestSource::Path(arg.to_string())
    } else {
        ManifestSource::Builtin(arg.to_string())
    }
}

fn client_request(args: &[String]) -> Request {
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "watch" | "--watch" => Request::Watch {
            count: match args.get(1) {
                Some(n) => n
                    .parse::<u64>()
                    .unwrap_or_else(|_| bad("client watch: the count must be a number")),
                None => 0,
            },
        },
        "shutdown" => Request::Shutdown,
        "manifest" => match args.get(1) {
            Some(m) => Request::Manifest {
                source: source_arg(m),
                size: args.get(2).cloned().unwrap_or_else(|| "study".into()),
            },
            None => bad("client manifest: expected a manifest name or path"),
        },
        "cell" => match (args.get(1), args.get(2)) {
            (Some(m), Some(label)) => Request::Cell {
                source: source_arg(m),
                label: label.clone(),
                size: args.get(3).cloned().unwrap_or_else(|| "study".into()),
            },
            _ => bad("client cell: expected a manifest name/path and a cell label"),
        },
        other => bad(&format!(
            "unknown client command {other:?}, expected ping|stats|watch|shutdown|manifest|cell"
        )),
    }
}

fn main() {
    visim::store::set_default_dir("results/store");
    let mut args = std::env::args().skip(1);
    let mut cfg = daemon::DaemonConfig {
        port: 0,
        addr_file: None,
        trace_out: None,
    };
    let mut store_stats = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            "--store-stats" => store_stats = true,
            "--no-store" => visim::store::set_cli_disabled(),
            "--store-dir" => match args.next() {
                Some(d) if !d.is_empty() && !d.starts_with('-') => {
                    visim::store::set_cli_dir(&d);
                }
                _ => bad("--store-dir expects a directory path"),
            },
            "--port" => match args.next().and_then(|v| v.parse::<u16>().ok()) {
                Some(p) => cfg.port = p,
                None => bad("--port expects a TCP port number"),
            },
            "--addr-file" => match args.next() {
                Some(f) if !f.is_empty() && !f.starts_with('-') => cfg.addr_file = Some(f),
                _ => bad("--addr-file expects a file path"),
            },
            "--trace-out" => match args.next() {
                Some(f) if !f.is_empty() && !f.starts_with('-') => cfg.trace_out = Some(f),
                _ => bad("--trace-out expects a file path"),
            },
            "--check-timeline" => {
                let path = match args.next() {
                    Some(f) if !f.is_empty() && !f.starts_with('-') => f,
                    _ => bad("--check-timeline expects a timeline file path"),
                };
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("visim-serve: read {path}: {e}");
                        std::process::exit(1);
                    }
                };
                match telemetry::check_timeline_text(&text) {
                    Ok(summary) => {
                        println!("{summary}");
                        return;
                    }
                    Err(e) => {
                        eprintln!("visim-serve: {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "client" => {
                let mut rest: Vec<String> = args.collect();
                let json = rest.iter().any(|a| a == "--json");
                rest.retain(|a| a != "--json");
                let (addr, cmd) = match rest.split_first() {
                    Some((addr, cmd)) if !cmd.is_empty() => (addr.clone(), cmd.to_vec()),
                    _ => bad("client: expected an address and a command"),
                };
                let request = client_request(&cmd);
                // Telemetry views render for humans unless --json asked
                // for the raw event lines; run streams stay raw either
                // way (scripts parse their cell/done events).
                let render = match request {
                    _ if json => client::Render::Raw,
                    Request::Stats | Request::Watch { .. } | Request::Ping => client::Render::Human,
                    _ => client::Render::Raw,
                };
                match client::run_with(&addr, &request, render) {
                    Ok(code) => std::process::exit(code),
                    Err(e) => {
                        eprintln!("visim-serve client: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => bad(&format!("unknown argument {other:?}")),
        }
    }
    if store_stats {
        print!("{}", visim_serve::store_stats_text());
        return;
    }
    if let Err(e) = daemon::run(&cfg) {
        eprintln!("visim-serve: {e}");
        std::process::exit(1);
    }
}
