//! `visim-serve`: a job daemon over the content-addressed result store.
//!
//! The figure binaries run one manifest and exit; the daemon keeps the
//! simulation substrate warm and serves manifests (or single cells) to
//! concurrent clients over TCP. Three properties make it more than a
//! remote shell around the binaries:
//!
//! - **Store-first.** The daemon runs with store resume permanently
//!   on, so every requested cell is first looked up in the
//!   content-addressed store (checksum-validated, stale entries
//!   purged); only misses are simulated. Submitting the same manifest
//!   twice therefore simulates nothing the second time.
//! - **Single-flight.** Concurrent requests for the same cell identity
//!   ([`visim::manifest::CellSpec::identity`]) coalesce onto one
//!   in-flight simulation; followers wait for the leader's result
//!   instead of duplicating work.
//! - **Crash-safe.** Completed cells persist in the store and are
//!   recorded in the run journal (`serve.daemon.jnl`), so a daemon
//!   killed mid-manifest loses at most the cells in flight; a restart
//!   reports the recovered progress and converges.
//!
//! - **Observable.** Every request is timed through its lifecycle
//!   phases into a live, lock-cheap registry ([`telemetry`]); a flight
//!   recorder samples the daemon state every `VISIM_TICK_MS` into a
//!   bounded ring that `watch` clients stream live and that persists
//!   as `results/json/serve_timeline.json` at shutdown. The `stats`
//!   event carries per-phase and per-path latency percentiles, `ping`
//!   answers a health check (uptime, git rev, in-flight count), and
//!   `--trace-out` exports one Chrome-trace span per request.
//!
//! The wire protocol is newline-delimited JSON ([`proto`]): one request
//! object per line from the client, a stream of event objects back
//! (`cell` progress and `snapshot` telemetry events, then a terminal
//! `done`/`pong`/`stats`/`bye`/`error` event). See DESIGN.md §14–§15
//! for the full specification.

pub mod client;
pub mod daemon;
pub mod proto;
pub mod telemetry;

/// Protocol/schema tag carried by the daemon's `listening` event and
/// every terminal reply, so clients can detect incompatible daemons
/// (v2 added the `watch` op, the health-check `pong`, and the
/// percentile-bearing `stats` event).
pub const SERVE_SCHEMA: &str = "visim-serve-v2";

use visim::store;

/// Render a [`store::stats`] scan as the `--store-stats` report: the
/// directory, the totals, and one line per (schema, revision) pairing.
pub fn store_stats_text() -> String {
    let mut out = String::new();
    match store::stats() {
        None => out.push_str("store: disabled (--no-store / VISIM_NO_STORE)\n"),
        Some(stats) => {
            out.push_str(&format!(
                "store: {}\n",
                store::dir().unwrap_or_else(|| "<none>".into())
            ));
            out.push_str(&format!(
                "  entries: {}  bytes: {}  invalid: {}\n",
                stats.entries, stats.bytes, stats.invalid
            ));
            for rev in &stats.revs {
                out.push_str(&format!(
                    "  {} @ {}: {} entries, {} bytes\n",
                    rev.schema, rev.rev, rev.entries, rev.bytes
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_stats_text_reports_disabled_store() {
        // Unit tests never install a default store directory, so the
        // store is disabled and the report says so instead of lying
        // with zeros.
        let text = store_stats_text();
        assert!(text.starts_with("store: disabled"), "{text}");
    }
}
