//! Set-associative tag array with true-LRU replacement.

use visim_obs::codec::{ByteReader, ByteWriter};
use visim_obs::trace::{InstantKind, SharedTraceRing};

/// Outcome of a fill: the victim line (if any) and whether it was dirty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lookup {
    /// Line already present (fills only happen after a failed probe, so
    /// this only occurs on racing fills for the same line).
    Hit { prefetched: bool },
    /// Line inserted; the evicted victim is returned.
    Miss {
        /// Evicted line address, if a valid line was displaced.
        victim: Option<u64>,
        /// The victim was dirty and needs writing back.
        victim_dirty: bool,
    },
}

#[derive(Debug, Clone, Copy)]
struct Way {
    /// Full line number (address >> line_shift).
    tag: u64,
    dirty: bool,
    /// Set when the line was filled by a software prefetch and not yet
    /// touched by a demand access (for useful-prefetch accounting).
    prefetched: bool,
}

/// A tag-only set-associative cache model.
///
/// Each set holds its resident lines in recency order (index 0 = most
/// recently used), so a probe's linear scan terminates at the hot line
/// almost immediately under temporal locality and the LRU victim is
/// simply the last element — no per-way timestamp comparison scan. This
/// is exactly true-LRU, same victims as the previous tick-based array:
/// recency *order* is what ticks encoded, invalid-way preference is the
/// spare capacity consumed before the first eviction.
#[derive(Debug, Clone)]
pub(crate) struct TagArray {
    /// Per-set resident lines, MRU-first; `len() <= assoc`.
    sets: Vec<Vec<Way>>,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
    /// Valid lines displaced by fills (capacity/conflict evictions).
    evictions: u64,
    /// The subset of `evictions` that displaced a dirty line.
    dirty_evictions: u64,
    /// Trace ring plus this array's cache level (1 = L1, 2 = L2);
    /// evictions emit instants when attached.
    tracer: Option<(SharedTraceRing, u8)>,
}

impl TagArray {
    pub fn new(sets: usize, assoc: u32, line: u64) -> Self {
        assert!(sets.is_power_of_two() && line.is_power_of_two());
        assert!(assoc >= 1, "cache has at least one way");
        TagArray {
            sets: vec![Vec::with_capacity(assoc as usize); sets],
            assoc: assoc as usize,
            line_shift: line.trailing_zeros(),
            set_mask: sets as u64 - 1,
            evictions: 0,
            dirty_evictions: 0,
            tracer: None,
        }
    }

    pub fn attach_tracer(&mut self, ring: SharedTraceRing, level: u8) {
        self.tracer = Some((ring, level));
    }

    /// Valid lines displaced by fills so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Dirty lines displaced by fills so far.
    pub fn dirty_evictions(&self) -> u64 {
        self.dirty_evictions
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & self.set_mask) as usize, line)
    }

    /// If `addr`'s line is resident: refresh LRU (rotate to the MRU
    /// slot), optionally mark dirty, and return whether this was the
    /// first demand touch of a prefetched line. `None` on miss (state
    /// unchanged).
    pub fn hit_touch(&mut self, addr: u64, write: bool) -> Option<bool> {
        let (set, tag) = self.index(addr);
        let ways = &mut self.sets[set];
        let pos = ways.iter().position(|w| w.tag == tag)?;
        ways[..=pos].rotate_right(1);
        let w = &mut ways[0];
        w.dirty |= write;
        let was_prefetched = w.prefetched;
        w.prefetched = false;
        Some(was_prefetched)
    }

    /// Insert `addr`'s line, evicting the LRU way. Call only after
    /// [`TagArray::hit_touch`] returned `None`.
    pub fn fill(&mut self, addr: u64, write: bool, prefetch_fill: bool) -> Lookup {
        let (set, tag) = self.index(addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|w| w.tag == tag) {
            ways[..=pos].rotate_right(1);
            let w = &mut ways[0];
            w.dirty |= write;
            return Lookup::Hit {
                prefetched: w.prefetched,
            };
        }
        let (victim, victim_dirty) = if ways.len() == self.assoc {
            let v = ways.pop().expect("assoc >= 1");
            self.evictions += 1;
            self.dirty_evictions += v.dirty as u64;
            let victim_addr = v.tag << self.line_shift;
            if let Some((ring, level)) = &self.tracer {
                // Timestamped against the ring's pipeline-maintained
                // clock (the tag array has no cycle of its own).
                ring.borrow_mut()
                    .instant(InstantKind::CacheEvict, victim_addr, *level);
            }
            (Some(victim_addr), v.dirty)
        } else {
            (None, false)
        };
        ways.insert(
            0,
            Way {
                tag,
                dirty: write,
                prefetched: prefetch_fill,
            },
        );
        Lookup::Miss {
            victim,
            victim_dirty,
        }
    }

    /// Mark a resident line dirty without touching LRU (store merged into
    /// an in-flight fill for the line).
    pub fn note_pending_store(&mut self, addr: u64) {
        let (set, tag) = self.index(addr);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.tag == tag) {
            w.dirty = true;
        }
    }

    /// Probe without modifying state (tests and statistics).
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|w| w.tag == tag)
    }

    /// Serialize residency, recency order, and per-line dirty/prefetched
    /// state into `w`. The eviction counters are *not* part of the
    /// snapshot: a restored array observes its sample window from a
    /// clean statistical slate.
    pub fn save_state(&self, w: &mut ByteWriter) {
        w.put_u32(self.sets.len() as u32);
        w.put_u32(self.assoc as u32);
        for set in &self.sets {
            w.put_u32(set.len() as u32);
            for way in set {
                w.put_u64(way.tag);
                w.put_u8(way.dirty as u8 | (way.prefetched as u8) << 1);
            }
        }
    }

    /// Restore a [`TagArray::save_state`] snapshot. Geometry and every
    /// structural bound are validated so a corrupt snapshot degrades to
    /// an error, never an inconsistent array; on error the array is left
    /// partially written and must be discarded by the caller.
    pub fn load_state(&mut self, r: &mut ByteReader) -> Result<(), String> {
        let sets = r.u32()? as usize;
        let assoc = r.u32()? as usize;
        if sets != self.sets.len() || assoc != self.assoc {
            return Err(format!(
                "tag-array geometry mismatch: snapshot {sets}x{assoc}, array {}x{}",
                self.sets.len(),
                self.assoc
            ));
        }
        let set_mask = self.set_mask;
        for (ix, set) in self.sets.iter_mut().enumerate() {
            let len = r.u32()? as usize;
            if len > assoc {
                return Err(format!(
                    "snapshot set holds {len} ways, associativity {assoc}"
                ));
            }
            set.clear();
            for _ in 0..len {
                let tag = r.u64()?;
                let flags = r.u8()?;
                if flags > 3 {
                    return Err(format!("invalid way flags {flags:#x}"));
                }
                if tag & set_mask != ix as u64 {
                    return Err(format!("line {tag:#x} filed under the wrong set {ix}"));
                }
                if set.iter().any(|w: &Way| w.tag == tag) {
                    return Err(format!("duplicate line {tag:#x} within one set"));
                }
                set.push(Way {
                    tag,
                    dirty: flags & 1 != 0,
                    prefetched: flags & 2 != 0,
                });
            }
        }
        self.evictions = 0;
        self.dirty_evictions = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> TagArray {
        // 4 sets, 2-way, 64-byte lines -> 512 bytes.
        TagArray::new(4, 2, 64)
    }

    /// hit_touch-then-fill, as the memory system drives it.
    fn access(a: &mut TagArray, addr: u64, write: bool) -> Option<Lookup> {
        match a.hit_touch(addr, write) {
            Some(p) => Some(Lookup::Hit { prefetched: p }),
            None => Some(a.fill(addr, write, false)),
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut a = arr();
        assert!(matches!(
            access(&mut a, 0x1000, false),
            Some(Lookup::Miss { .. })
        ));
        assert!(matches!(
            access(&mut a, 0x1000, false),
            Some(Lookup::Hit { .. })
        ));
        assert!(
            matches!(access(&mut a, 0x1038, false), Some(Lookup::Hit { .. })),
            "same line"
        );
        assert!(a.contains(0x1000));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut a = arr();
        // Three lines mapping to set 0 (line 64, 4 sets => stride 256).
        access(&mut a, 0x0000, false);
        access(&mut a, 0x0100, false);
        access(&mut a, 0x0000, false); // refresh line 0
        match access(&mut a, 0x0200, false) {
            Some(Lookup::Miss { victim, .. }) => assert_eq!(victim, Some(0x0100)),
            other => panic!("expected miss, got {other:?}"),
        }
        assert!(a.contains(0x0000));
        assert!(!a.contains(0x0100));
        assert!(a.contains(0x0200));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut a = arr();
        access(&mut a, 0x0000, true); // dirty fill
        access(&mut a, 0x0100, false);
        match access(&mut a, 0x0200, false) {
            Some(Lookup::Miss {
                victim,
                victim_dirty,
            }) => {
                assert_eq!(victim, Some(0x0000));
                assert!(victim_dirty);
            }
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn eviction_counters_track_displaced_lines() {
        let mut a = arr();
        assert_eq!(a.evictions(), 0);
        // Fill one set past its associativity; writes make victims dirty.
        let mut dirty_expected = 0;
        for i in 0..6u64 {
            let write = i % 2 == 0;
            let addr = i * 0x1000; // same set, distinct tags (64 sets * 64B lines)
            if access(&mut a, addr, write).is_none() {
                a.fill(addr, write, false);
            }
            if i >= 2 {
                // assoc-2 test array: every fill past the second evicts,
                // and victims alternate dirty/clean.
                dirty_expected += (i % 2 == 0) as u64;
            }
        }
        assert_eq!(a.evictions(), 4);
        assert_eq!(a.dirty_evictions(), dirty_expected);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut a = arr();
        access(&mut a, 0x0000, false);
        access(&mut a, 0x0000, true); // hit-touch with write
        access(&mut a, 0x0100, false);
        assert!(matches!(
            access(&mut a, 0x0200, false),
            Some(Lookup::Miss {
                victim_dirty: true,
                ..
            })
        ));
    }

    #[test]
    fn note_pending_store_marks_dirty() {
        let mut a = arr();
        access(&mut a, 0x0000, false);
        a.note_pending_store(0x0000);
        access(&mut a, 0x0100, false);
        assert!(matches!(
            access(&mut a, 0x0200, false),
            Some(Lookup::Miss {
                victim_dirty: true,
                ..
            })
        ));
    }

    #[test]
    fn prefetch_fill_flag_cleared_on_first_demand_touch() {
        let mut a = arr();
        a.fill(0x0000, false, true); // prefetch fill
        assert_eq!(a.hit_touch(0x0000, false), Some(true));
        assert_eq!(a.hit_touch(0x0000, false), Some(false), "only first touch");
    }

    #[test]
    fn recency_order_survives_multiple_evictions() {
        let mut a = arr();
        access(&mut a, 0x0000, false);
        access(&mut a, 0x0100, false);
        match access(&mut a, 0x0200, false) {
            Some(Lookup::Miss { victim, .. }) => assert_eq!(victim, Some(0x0000)),
            other => panic!("expected miss, got {other:?}"),
        }
        access(&mut a, 0x0100, false); // refresh: 0x0200 is now LRU
        match access(&mut a, 0x0300, false) {
            Some(Lookup::Miss { victim, .. }) => assert_eq!(victim, Some(0x0200)),
            other => panic!("expected miss, got {other:?}"),
        }
        assert!(a.contains(0x0100) && a.contains(0x0300));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut a = arr();
        for i in 0..4u64 {
            access(&mut a, i * 64, false);
        }
        for i in 0..4u64 {
            assert!(a.contains(i * 64), "set {i}");
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_residency_and_recency() {
        let mut a = arr();
        access(&mut a, 0x0000, true);
        access(&mut a, 0x0100, false);
        a.fill(0x0040, false, true); // prefetched line in another set
        access(&mut a, 0x0000, false); // refresh: 0x0100 is LRU in set 0

        let mut w = ByteWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut b = arr();
        let mut r = ByteReader::new(&bytes);
        b.load_state(&mut r).unwrap();
        r.done().unwrap();

        // Bit-identical state: a second snapshot encodes the same bytes.
        let mut w2 = ByteWriter::new();
        b.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // Behavioural equivalence: same victim choice, same dirty and
        // prefetched flags.
        assert_eq!(b.hit_touch(0x0040, false), Some(true), "prefetched flag");
        match b.fill(0x0200, false, false) {
            Lookup::Miss {
                victim,
                victim_dirty,
            } => {
                assert_eq!(victim, Some(0x0100));
                assert!(!victim_dirty);
            }
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_geometry_mismatch_rejected() {
        let a = arr();
        let mut w = ByteWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut wrong = TagArray::new(8, 2, 64);
        let mut r = ByteReader::new(&bytes);
        assert!(wrong.load_state(&mut r).is_err());
    }

    #[test]
    fn snapshot_misfiled_line_rejected() {
        let mut a = arr();
        a.fill(0x0040, false, false); // set 1
        let mut w = ByteWriter::new();
        a.save_state(&mut w);
        let mut bytes = w.into_bytes();
        // Corrupt the stored tag (sets/assoc header is 8 bytes, set 0 is
        // an empty 4-byte count, set 1 opens with a 4-byte count, so the
        // tag's low byte sits at offset 16) so the line no longer maps
        // to the set it is filed under.
        bytes[16] ^= 0x01;
        let mut b = arr();
        let mut r = ByteReader::new(&bytes);
        assert!(b.load_state(&mut r).is_err());
    }

    #[test]
    fn invalid_ways_fill_before_eviction() {
        let mut a = arr();
        access(&mut a, 0x0000, false);
        match access(&mut a, 0x0100, false) {
            Some(Lookup::Miss { victim, .. }) => assert_eq!(victim, None),
            other => panic!("expected miss, got {other:?}"),
        }
        assert!(a.contains(0x0000) && a.contains(0x0100));
    }
}
