//! Memory-hierarchy timing model for the `visim` simulator.
//!
//! Reproduces the memory system of Table 3 of Ranganathan, Adve & Jouppi
//! (ISCA 1999): a two-level non-blocking write-back cache hierarchy with
//! miss-status-holding registers (MSHRs) that merge requests to the same
//! line, limited cache ports, a pipelined off-chip L2, and an interleaved
//! memory system. Timing is expressed in CPU cycles at 1 GHz, so one
//! cycle equals one nanosecond and the paper's nanosecond parameters are
//! used verbatim.
//!
//! The model is *reservation based*: each contended resource (cache port,
//! MSHR, memory bank) tracks when it is next free, and an access's
//! completion time is composed from those reservations. This captures the
//! queueing and contention effects the paper analyses (MSHR write backup,
//! limited miss overlap, prefetch resource contention) without a global
//! event queue.
//!
//! # Example
//!
//! ```
//! use visim_mem::{MemConfig, MemSystem, Request, ServiceLevel};
//! use visim_isa::MemKind;
//!
//! let mut mem = MemSystem::new(MemConfig::default());
//! let r = mem.access(Request::new(0x1000, 8, MemKind::Load), 0).unwrap();
//! assert_eq!(r.level, ServiceLevel::Memory); // cold miss goes to DRAM
//! let r2 = mem.access(Request::new(0x1000, 8, MemKind::Load), r.done_at).unwrap();
//! assert_eq!(r2.level, ServiceLevel::L1);    // now resident
//! ```

mod cache;
mod config;
mod mshr;
mod stats;
mod system;

pub use config::{CacheParams, MemConfig};
pub use stats::MemStats;
pub use system::{AccessResult, MemSystem, Rejection, Request, ServiceLevel};
