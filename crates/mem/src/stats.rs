//! Memory-system statistics.

use visim_obs::codec::{ByteReader, ByteWriter};
use visim_obs::Json;

/// Counters maintained by [`crate::MemSystem`].
///
/// All counts are in accesses (not bytes); times are in cycles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand accesses (loads + stores) offered to the L1.
    pub l1_accesses: u64,
    /// Demand accesses that hit in a resident L1 line.
    pub l1_hits: u64,
    /// Primary L1 misses (allocated an MSHR and went to L2).
    pub l1_primary_misses: u64,
    /// Secondary L1 misses merged into an in-flight MSHR.
    pub l1_merged_misses: u64,
    /// Accesses rejected because every L1 MSHR was busy.
    pub rejects_mshr_full: u64,
    /// Accesses rejected because the line's MSHR hit its merge limit.
    pub rejects_merge_limit: u64,
    /// Requests that reached the L2.
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (went to memory).
    pub l2_misses: u64,
    /// Dirty L1 victims written back.
    pub writebacks_l1: u64,
    /// Dirty L2 victims written back to memory.
    pub writebacks_l2: u64,
    /// Software prefetches accepted (issued a fill or found data).
    pub prefetches_issued: u64,
    /// Software prefetch attempts rejected for lack of MSHR resources
    /// (the requester retries; the paper's §4.2 "resource contention").
    pub prefetches_rejected: u64,
    /// Prefetches whose line was already cached (no work done).
    pub prefetches_unnecessary: u64,
    /// Demand accesses that found their line prefetched and resident.
    pub prefetches_useful: u64,
    /// Demand accesses that merged with a still-in-flight prefetch.
    pub prefetches_late: u64,
    /// Block (cache-bypassing) transfers.
    pub bypass_accesses: u64,
}

impl MemStats {
    /// Append every counter to `w` in declaration order — the
    /// result-store payload form. All fields are exact `u64`s, so the
    /// round trip through [`MemStats::decode_from`] is lossless.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        for v in self.fields() {
            w.put_u64(v);
        }
    }

    /// Decode counters written by [`MemStats::encode_into`].
    pub fn decode_from(r: &mut ByteReader) -> Result<Self, String> {
        let mut s = MemStats::default();
        for f in [
            &mut s.l1_accesses,
            &mut s.l1_hits,
            &mut s.l1_primary_misses,
            &mut s.l1_merged_misses,
            &mut s.rejects_mshr_full,
            &mut s.rejects_merge_limit,
            &mut s.l2_accesses,
            &mut s.l2_hits,
            &mut s.l2_misses,
            &mut s.writebacks_l1,
            &mut s.writebacks_l2,
            &mut s.prefetches_issued,
            &mut s.prefetches_rejected,
            &mut s.prefetches_unnecessary,
            &mut s.prefetches_useful,
            &mut s.prefetches_late,
            &mut s.bypass_accesses,
        ] {
            *f = r.u64()?;
        }
        Ok(s)
    }

    /// Every counter in declaration order (the codec's field list; kept
    /// next to `decode_from` so adding a field updates both or neither).
    fn fields(&self) -> [u64; 17] {
        [
            self.l1_accesses,
            self.l1_hits,
            self.l1_primary_misses,
            self.l1_merged_misses,
            self.rejects_mshr_full,
            self.rejects_merge_limit,
            self.l2_accesses,
            self.l2_hits,
            self.l2_misses,
            self.writebacks_l1,
            self.writebacks_l2,
            self.prefetches_issued,
            self.prefetches_rejected,
            self.prefetches_unnecessary,
            self.prefetches_useful,
            self.prefetches_late,
            self.bypass_accesses,
        ]
    }

    /// L1 miss ratio over demand accesses (primary + merged misses).
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            return 0.0;
        }
        (self.l1_primary_misses + self.l1_merged_misses) as f64 / self.l1_accesses as f64
    }

    /// L2 local miss ratio.
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            return 0.0;
        }
        self.l2_misses as f64 / self.l2_accesses as f64
    }

    /// Fraction of issued prefetches that arrived too late.
    pub fn late_prefetch_rate(&self) -> f64 {
        if self.prefetches_issued == 0 {
            return 0.0;
        }
        self.prefetches_late as f64 / self.prefetches_issued as f64
    }

    /// Serialize every counter plus the derived rates for the
    /// `visim-results-v2` cell payload.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("l1_accesses", Json::from(self.l1_accesses)),
            ("l1_hits", Json::from(self.l1_hits)),
            ("l1_primary_misses", Json::from(self.l1_primary_misses)),
            ("l1_merged_misses", Json::from(self.l1_merged_misses)),
            ("rejects_mshr_full", Json::from(self.rejects_mshr_full)),
            ("rejects_merge_limit", Json::from(self.rejects_merge_limit)),
            ("l2_accesses", Json::from(self.l2_accesses)),
            ("l2_hits", Json::from(self.l2_hits)),
            ("l2_misses", Json::from(self.l2_misses)),
            ("writebacks_l1", Json::from(self.writebacks_l1)),
            ("writebacks_l2", Json::from(self.writebacks_l2)),
            ("prefetches_issued", Json::from(self.prefetches_issued)),
            ("prefetches_rejected", Json::from(self.prefetches_rejected)),
            (
                "prefetches_unnecessary",
                Json::from(self.prefetches_unnecessary),
            ),
            ("prefetches_useful", Json::from(self.prefetches_useful)),
            ("prefetches_late", Json::from(self.prefetches_late)),
            ("bypass_accesses", Json::from(self.bypass_accesses)),
            ("l1_miss_rate", Json::from(self.l1_miss_rate())),
            ("l2_miss_rate", Json::from(self.l2_miss_rate())),
            ("late_prefetch_rate", Json::from(self.late_prefetch_rate())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = MemStats::default();
        assert_eq!(s.l1_miss_rate(), 0.0);
        assert_eq!(s.l2_miss_rate(), 0.0);
        assert_eq!(s.late_prefetch_rate(), 0.0);
    }

    #[test]
    fn to_json_carries_counters_and_rates() {
        let s = MemStats {
            l1_accesses: 10,
            l1_hits: 6,
            l1_primary_misses: 1,
            l1_merged_misses: 3,
            ..Default::default()
        };
        let j = s.to_json();
        assert_eq!(j.get("l1_accesses").and_then(Json::as_u64), Some(10));
        let rate = j.get("l1_miss_rate").and_then(Json::as_f64).unwrap();
        assert!((rate - 0.4).abs() < 1e-12);
        // Round-trips through the parser.
        assert_eq!(Json::parse(&j.to_compact()).unwrap(), j);
    }

    #[test]
    fn binary_codec_round_trips_every_counter() {
        let mut s = MemStats::default();
        // Distinct values per field catch any ordering slip between
        // encode and decode.
        for (i, f) in [
            &mut s.l1_accesses,
            &mut s.l1_hits,
            &mut s.l1_primary_misses,
            &mut s.l1_merged_misses,
            &mut s.rejects_mshr_full,
            &mut s.rejects_merge_limit,
            &mut s.l2_accesses,
            &mut s.l2_hits,
            &mut s.l2_misses,
            &mut s.writebacks_l1,
            &mut s.writebacks_l2,
            &mut s.prefetches_issued,
            &mut s.prefetches_rejected,
            &mut s.prefetches_unnecessary,
            &mut s.prefetches_useful,
            &mut s.prefetches_late,
            &mut s.bypass_accesses,
        ]
        .into_iter()
        .enumerate()
        {
            *f = 1000 + i as u64;
        }
        let mut w = ByteWriter::new();
        s.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(MemStats::decode_from(&mut r).unwrap(), s);
        r.done().unwrap();
        assert!(MemStats::decode_from(&mut ByteReader::new(&bytes[..8])).is_err());
    }

    #[test]
    fn miss_rate_counts_merged_misses() {
        let s = MemStats {
            l1_accesses: 10,
            l1_hits: 6,
            l1_primary_misses: 1,
            l1_merged_misses: 3,
            ..Default::default()
        };
        assert!((s.l1_miss_rate() - 0.4).abs() < 1e-12);
    }
}
