//! Memory-system configuration (Table 3 of the paper).

/// Parameters of a single cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size: u64,
    /// Set associativity.
    pub assoc: u32,
    /// Number of request ports (accesses accepted per cycle in parallel).
    pub ports: u32,
    /// Hit latency in cycles (== ns at 1 GHz).
    pub hit: u64,
    /// Number of miss-status holding registers.
    pub mshrs: u32,
}

impl CacheParams {
    /// Number of sets for `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two number of sets.
    pub fn sets(&self, line_size: u64) -> usize {
        let sets = self.size / line_size / self.assoc as u64;
        assert!(sets.is_power_of_two(), "non-power-of-two set count {sets}");
        sets as usize
    }
}

/// Full memory-system configuration.
///
/// [`MemConfig::default`] reproduces Table 3: 64-byte lines; 64 KB
/// two-way L1 with 2 ports, 2 ns hits and 12 MSHRs; 128 KB 4-way off-chip
/// L2 with one port, pipelined 20 ns hits and 12 MSHRs; up to 8 requests
/// merged per MSHR; 100 ns total latency for L2 misses; 4-way interleaved
/// memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Cache line size in bytes (both levels).
    pub line: u64,
    /// First-level (on-chip) data cache.
    pub l1: CacheParams,
    /// Second-level (off-chip) cache.
    pub l2: CacheParams,
    /// Maximum outstanding requests merged into one MSHR.
    pub mshr_max_merges: u32,
    /// DRAM portion of an L2 miss: data arrives this many cycles after
    /// the request wins its memory bank.
    pub mem_latency: u64,
    /// Number of interleaved memory banks (consecutive lines map to
    /// consecutive banks).
    pub banks: u32,
    /// Cycles a memory bank stays busy per line transfer. Not given in
    /// the paper; 40 ns is chosen so that the 4 banks sustain one 64-byte
    /// line per 10 ns when streaming, comfortably above the demand of one
    /// core, while still exposing bank conflicts.
    pub bank_busy: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            line: 64,
            l1: CacheParams {
                size: 64 << 10,
                assoc: 2,
                ports: 2,
                hit: 2,
                mshrs: 12,
            },
            l2: CacheParams {
                size: 128 << 10,
                assoc: 4,
                ports: 1,
                hit: 20,
                mshrs: 12,
            },
            mshr_max_merges: 8,
            mem_latency: 100,
            banks: 4,
            bank_busy: 40,
        }
    }
}

impl MemConfig {
    /// A configuration with a different L1 size (for the §4.1 L1 sweep).
    pub fn with_l1_size(mut self, bytes: u64) -> Self {
        self.l1.size = bytes;
        self
    }

    /// A configuration with a different L2 size (for the §4.1 L2 sweep).
    pub fn with_l2_size(mut self, bytes: u64) -> Self {
        self.l2.size = bytes;
        self
    }

    /// Table 3 as printable `(parameter, value)` rows.
    pub fn table3(&self) -> Vec<(String, String)> {
        vec![
            ("Cache line size".into(), format!("{} bytes", self.line)),
            (
                "L1 data cache size (on-chip)".into(),
                fmt_size(self.l1.size),
            ),
            (
                "L1 data cache associativity".into(),
                format!("{}-way", self.l1.assoc),
            ),
            (
                "L1 data cache request ports".into(),
                self.l1.ports.to_string(),
            ),
            (
                "L1 data cache hit time".into(),
                format!("{} ns", self.l1.hit),
            ),
            ("Number of L1 MSHRs".into(), self.l1.mshrs.to_string()),
            ("L2 cache size (off-chip)".into(), fmt_size(self.l2.size)),
            (
                "L2 cache associativity".into(),
                format!("{}-way", self.l2.assoc),
            ),
            ("L2 request ports".into(), self.l2.ports.to_string()),
            (
                "L2 hit time (pipelined)".into(),
                format!("{} ns", self.l2.hit),
            ),
            ("Number of L2 MSHRs".into(), self.l2.mshrs.to_string()),
            (
                "Max. outstanding misses per MSHR".into(),
                self.mshr_max_merges.to_string(),
            ),
            (
                "Total memory latency for L2 misses".into(),
                format!("{} ns", self.l1.hit + self.l2.hit + self.mem_latency),
            ),
            ("Memory interleaving".into(), format!("{}-way", self.banks)),
        ]
    }
}

fn fmt_size(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{} MB", bytes >> 20)
    } else {
        format!("{} KB", bytes >> 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_3() {
        let c = MemConfig::default();
        assert_eq!(c.line, 64);
        assert_eq!(c.l1.size, 65536);
        assert_eq!(c.l1.assoc, 2);
        assert_eq!(c.l1.ports, 2);
        assert_eq!(c.l1.hit, 2);
        assert_eq!(c.l1.mshrs, 12);
        assert_eq!(c.l2.size, 131072);
        assert_eq!(c.l2.assoc, 4);
        assert_eq!(c.l2.ports, 1);
        assert_eq!(c.l2.hit, 20);
        assert_eq!(c.mshr_max_merges, 8);
        assert_eq!(c.mem_latency, 100);
        assert_eq!(c.banks, 4);
    }

    #[test]
    fn set_counts() {
        let c = MemConfig::default();
        assert_eq!(c.l1.sets(c.line), 512); // 64K / 64 / 2
        assert_eq!(c.l2.sets(c.line), 512); // 128K / 64 / 4
    }

    #[test]
    fn sweep_helpers() {
        let c = MemConfig::default().with_l2_size(2 << 20);
        assert_eq!(c.l2.size, 2 << 20);
        assert_eq!(c.l2.sets(c.line), 8192);
        let c = MemConfig::default().with_l1_size(1 << 10);
        assert_eq!(c.l1.sets(c.line), 8);
    }

    #[test]
    fn table3_mentions_every_parameter() {
        let rows = MemConfig::default().table3();
        assert_eq!(rows.len(), 14);
        assert!(rows.iter().any(|(k, v)| k.contains("L1") && v == "64 KB"));
        assert!(rows.iter().any(|(_, v)| v == "122 ns"));
    }
}
