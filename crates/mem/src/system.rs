//! The two-level memory system: composition of ports, tag arrays, MSHRs
//! and interleaved memory banks.

use visim_isa::MemKind;
use visim_obs::codec::{ByteReader, ByteWriter};
use visim_obs::trace::{InstantKind, SharedTraceRing};
use visim_util::SimError;

use crate::cache::{Lookup, TagArray};
use crate::config::MemConfig;
use crate::mshr::{MshrFile, MshrOffer, MshrReject};
use crate::stats::MemStats;

/// Where a request was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Resident in the first-level cache.
    L1,
    /// First-level miss, second-level hit.
    L2,
    /// Missed both caches and went to a memory bank.
    Memory,
}

impl ServiceLevel {
    /// True if the paper's execution-time attribution buckets this access
    /// under "L1 miss" (anything that left the L1).
    pub fn is_l1_miss(self) -> bool {
        !matches!(self, ServiceLevel::L1)
    }

    /// Numeric level used in trace events (1 = L1, 2 = L2, 3 = memory).
    fn trace_level(self) -> u8 {
        match self {
            ServiceLevel::L1 => 1,
            ServiceLevel::L2 => 2,
            ServiceLevel::Memory => 3,
        }
    }
}

/// A memory request offered to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Virtual address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u8,
    /// Load/store/prefetch flavour.
    pub kind: MemKind,
}

impl Request {
    /// Convenience constructor.
    pub fn new(addr: u64, size: u8, kind: MemKind) -> Self {
        Request { addr, size, kind }
    }
}

/// Successful access: when the data is available (loads) or the write is
/// globally performed (stores), and where it was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Completion cycle.
    pub done_at: u64,
    /// Cache level that serviced the request.
    pub level: ServiceLevel,
    /// The request merged into an MSHR already in flight.
    pub merged: bool,
}

/// The access could not be accepted this cycle (MSHR contention); retry
/// no earlier than `retry_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Earliest cycle at which a retry can succeed.
    pub retry_at: u64,
}

/// Round-robin-by-availability port scheduler: each port accepts one
/// request per cycle.
#[derive(Debug, Clone)]
struct Ports {
    next_free: Vec<u64>,
}

impl Ports {
    fn new(n: u32) -> Self {
        Ports {
            next_free: vec![0; n.max(1) as usize],
        }
    }

    /// Reserve the earliest slot at or after `now`; returns its cycle.
    fn reserve(&mut self, now: u64) -> u64 {
        let p = self
            .next_free
            .iter_mut()
            .min_by_key(|t| **t)
            .expect("at least one port");
        let start = now.max(*p);
        *p = start + 1;
        start
    }
}

/// Interleaved memory banks; consecutive lines map to consecutive banks.
#[derive(Debug, Clone)]
struct Banks {
    next_free: Vec<u64>,
    busy: u64,
    line_shift: u32,
}

impl Banks {
    fn new(n: u32, busy: u64, line: u64) -> Self {
        Banks {
            next_free: vec![0; n.max(1) as usize],
            busy,
            line_shift: line.trailing_zeros(),
        }
    }

    fn index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) as usize) % self.next_free.len()
    }

    /// Reserve the bank owning `addr` at or after `now`; returns the
    /// cycle the transfer starts.
    fn reserve(&mut self, addr: u64, now: u64) -> u64 {
        let b = self.index(addr);
        let start = now.max(self.next_free[b]);
        self.next_free[b] = start + self.busy;
        start
    }
}

/// The complete memory hierarchy (L1 + L2 + banks) of Table 3.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    l1: TagArray,
    l2: TagArray,
    l1_mshrs: MshrFile,
    l2_mshrs: MshrFile,
    l1_ports: Ports,
    l2_ports: Ports,
    banks: Banks,
    stats: MemStats,
    /// First invariant violation observed (release-mode checks; the
    /// pipeline polls this every cycle and aborts the study run).
    fault: Option<SimError>,
    /// Shared trace ring (hit/miss/prefetch instants); the tag arrays
    /// and MSHR files hold their own clones.
    tracer: Option<SharedTraceRing>,
}

impl MemSystem {
    /// Build a memory system from its configuration.
    pub fn new(cfg: MemConfig) -> Self {
        let l1 = TagArray::new(cfg.l1.sets(cfg.line), cfg.l1.assoc, cfg.line);
        let l2 = TagArray::new(cfg.l2.sets(cfg.line), cfg.l2.assoc, cfg.line);
        MemSystem {
            l1,
            l2,
            l1_mshrs: MshrFile::new(cfg.l1.mshrs, cfg.mshr_max_merges),
            l2_mshrs: MshrFile::new(cfg.l2.mshrs, cfg.mshr_max_merges),
            l1_ports: Ports::new(cfg.l1.ports),
            l2_ports: Ports::new(cfg.l2.ports),
            banks: Banks::new(cfg.banks, cfg.bank_busy, cfg.line),
            stats: MemStats::default(),
            fault: None,
            tracer: None,
            cfg,
        }
    }

    /// Attach a trace ring: cache hits/misses, evictions, MSHR
    /// allocate/drain, and prefetch issues emit instant events from now
    /// on. Untraced systems never take this path.
    pub fn attach_tracer(&mut self, ring: SharedTraceRing) {
        self.l1.attach_tracer(ring.clone(), 1);
        self.l2.attach_tracer(ring.clone(), 2);
        self.l1_mshrs.attach_tracer(ring.clone(), 1);
        self.l2_mshrs.attach_tracer(ring.clone(), 2);
        self.tracer = Some(ring);
    }

    fn trace_instant(&self, cycle: u64, kind: InstantKind, addr: u64, level: u8) {
        if let Some(ring) = &self.tracer {
            ring.borrow_mut().instant_at(cycle, kind, addr, level);
        }
    }

    fn record_fault(&mut self, model: &'static str, detail: String) {
        if self.fault.is_none() {
            self.fault = Some(SimError::Invariant { model, detail });
        }
    }

    /// The first invariant violation observed, if any.
    pub fn fault(&self) -> Option<&SimError> {
        self.fault.as_ref()
    }

    /// Take the first invariant violation observed, if any. The caller
    /// (normally the pipeline) converts it into a failed simulation.
    pub fn take_fault(&mut self) -> Option<SimError> {
        if let Some(v) = self.l1_mshrs.take_violation() {
            self.record_fault("mshr", format!("L1 {v}"));
        }
        if let Some(v) = self.l2_mshrs.take_violation() {
            self.record_fault("mshr", format!("L2 {v}"));
        }
        self.fault.take()
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Time-weighted L1 MSHR occupancy histogram up to `now`.
    pub fn mshr_histogram(&mut self, now: u64) -> Vec<u64> {
        self.l1_mshrs.occupancy_histogram(now)
    }

    /// Current number of in-flight L1 misses.
    pub fn inflight_misses(&mut self, now: u64) -> usize {
        self.l1_mshrs.occupancy(now)
    }

    /// Highest L1 MSHR occupancy observed so far.
    pub fn mshr_peak(&self) -> u32 {
        self.l1_mshrs.peak()
    }

    /// Export the memory-side observability counters that the
    /// [`MemStats`] struct does not carry — eviction activity from the
    /// tag arrays and the MSHR occupancy peaks — into a metrics
    /// registry (`mem.*` namespace).
    pub fn export_metrics(&self, reg: &mut visim_obs::Registry) {
        reg.set("mem.l1_evictions", self.l1.evictions());
        reg.set("mem.l1_dirty_evictions", self.l1.dirty_evictions());
        reg.set("mem.l2_evictions", self.l2.evictions());
        reg.set("mem.l2_dirty_evictions", self.l2.dirty_evictions());
        reg.set("mem.l1_mshr_peak", self.l1_mshrs.peak() as u64);
        reg.set("mem.l2_mshr_peak", self.l2_mshrs.peak() as u64);
    }

    /// True when `addr`'s line is resident in the L1 (testing helper).
    pub fn l1_contains(&self, addr: u64) -> bool {
        self.l1.contains(addr)
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line - 1)
    }

    /// Offer one request to the hierarchy at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`Rejection`] when MSHR capacity or the per-line merge
    /// limit is exhausted; the caller should retry at `retry_at` (demand
    /// accesses) or drop the request (prefetches — the drop is counted
    /// here).
    pub fn access(&mut self, req: Request, now: u64) -> Result<AccessResult, Rejection> {
        // Release-mode invariant (was a debug_assert): a hostile or
        // corrupted emitter stream must fail the study run loudly, not
        // silently account a line-straddling access to one line.
        let well_formed = req.size > 0
            && req.size as u64 <= self.cfg.line
            && (req.kind.bypasses_cache()
                || req
                    .addr
                    .checked_add(req.size as u64 - 1)
                    .is_some_and(|end| self.line_of(req.addr) == self.line_of(end)));
        if !well_formed {
            self.record_fault(
                "mem",
                format!("access must not straddle a cache line: {req:?}"),
            );
        }
        if req.kind.bypasses_cache() {
            return Ok(self.bypass(req, now));
        }
        let is_store = req.kind.is_store();
        let is_prefetch = req.kind == MemKind::Prefetch;
        let line = self.line_of(req.addr);
        if is_prefetch {
            self.trace_instant(now, InstantKind::PrefetchIssue, req.addr, 0);
        } else {
            self.stats.l1_accesses += 1;
        }

        // 1. Merge into an in-flight miss if one exists for this line.
        if self.l1_mshrs.inflight(line, now) {
            match self.l1_mshrs.offer(line, now, !is_prefetch) {
                Ok(MshrOffer::Merged {
                    fill_at,
                    prefetch_inflight,
                }) => {
                    if is_prefetch {
                        self.stats.prefetches_unnecessary += 1;
                        self.stats.prefetches_issued += 1;
                        return Ok(AccessResult {
                            done_at: now,
                            level: ServiceLevel::L1,
                            merged: true,
                        });
                    }
                    self.stats.l1_merged_misses += 1;
                    self.trace_instant(
                        now,
                        InstantKind::L1Miss,
                        req.addr,
                        ServiceLevel::L2.trace_level(),
                    );
                    if prefetch_inflight {
                        self.stats.prefetches_late += 1;
                    }
                    if is_store {
                        self.l1.note_pending_store(line);
                    }
                    return Ok(AccessResult {
                        done_at: fill_at,
                        level: ServiceLevel::L2, // conservatively beyond-L1
                        merged: true,
                    });
                }
                Ok(MshrOffer::Primary) => unreachable!("inflight line cannot be primary"),
                Err(reject) => return Err(self.reject(reject, is_prefetch)),
            }
        }

        // 2. L1 port and tag lookup.
        let t0 = self.l1_ports.reserve(now);
        if let Some(prefetched) = self.l1.hit_touch(req.addr, is_store) {
            if is_prefetch {
                self.stats.prefetches_issued += 1;
                self.stats.prefetches_unnecessary += 1;
            } else {
                self.stats.l1_hits += 1;
                self.trace_instant(t0, InstantKind::L1Hit, req.addr, 1);
                if prefetched {
                    self.stats.prefetches_useful += 1;
                }
            }
            return Ok(AccessResult {
                done_at: t0 + self.cfg.l1.hit,
                level: ServiceLevel::L1,
                merged: false,
            });
        }

        // 3. Primary miss: allocate an MSHR (may reject).
        match self.l1_mshrs.offer(line, t0, !is_prefetch) {
            Ok(MshrOffer::Primary) => {}
            Ok(_) => unreachable!("no in-flight entry for this line"),
            Err(reject) => return Err(self.reject(reject, is_prefetch)),
        }
        if is_prefetch {
            self.stats.prefetches_issued += 1;
        } else {
            self.stats.l1_primary_misses += 1;
        }

        // 4. Request travels to L2 after the L1 detects the miss.
        let (fill_at, level) = self.l2_request(line, t0 + self.cfg.l1.hit);
        self.l1_mshrs.set_fill_time(line, fill_at);
        if !is_prefetch {
            self.trace_instant(t0, InstantKind::L1Miss, req.addr, level.trace_level());
        }

        // 5. Install in L1 tags; write back a dirty victim to the L2.
        let fill = self.l1.fill(req.addr, is_store, is_prefetch);
        if let Lookup::Miss {
            victim: Some(v),
            victim_dirty: true,
        } = fill
        {
            self.stats.writebacks_l1 += 1;
            let t = self.l2_ports.reserve(fill_at);
            if self.l2.hit_touch(v, true).is_none() {
                // Non-inclusive hierarchy: a dirty L1 victim absent from
                // the L2 goes straight to its memory bank.
                self.banks.reserve(v, t);
                self.stats.writebacks_l2 += 1;
            }
        }

        Ok(AccessResult {
            done_at: fill_at,
            level,
            merged: false,
        })
    }

    /// L2 and memory portion of a primary L1 miss; returns the L1 fill
    /// time and final service level.
    fn l2_request(&mut self, line: u64, earliest: u64) -> (u64, ServiceLevel) {
        self.stats.l2_accesses += 1;
        let mut t1 = self.l2_ports.reserve(earliest);

        // Merge with an in-flight L2 miss for the same line.
        if self.l2_mshrs.inflight(line, t1) {
            if let Ok(MshrOffer::Merged { fill_at, .. }) = self.l2_mshrs.offer(line, t1, true) {
                self.stats.l2_misses += 1;
                return (fill_at, ServiceLevel::Memory);
            }
            // Merge limit hit at the L2: wait for the fill instead.
        }

        if self.l2.hit_touch(line, false).is_some() {
            self.stats.l2_hits += 1;
            return (t1 + self.cfg.l2.hit, ServiceLevel::L2);
        }

        // L2 miss. Allocate an L2 MSHR, waiting out full conditions.
        self.stats.l2_misses += 1;
        loop {
            match self.l2_mshrs.offer(line, t1, true) {
                Ok(MshrOffer::Primary) => break,
                Ok(MshrOffer::Merged { fill_at, .. }) => return (fill_at, ServiceLevel::Memory),
                Err(MshrReject::Full { free_at })
                | Err(MshrReject::MergesExhausted { free_at }) => t1 = t1.max(free_at),
            }
        }
        let start = self.banks.reserve(line, t1 + self.cfg.l2.hit);
        let fill_at = start + self.cfg.mem_latency;
        self.l2_mshrs.set_fill_time(line, fill_at);

        // Install in L2 tags; dirty victims go to their memory bank.
        if let Lookup::Miss {
            victim: Some(v),
            victim_dirty: true,
        } = self.l2.fill(line, false, false)
        {
            self.stats.writebacks_l2 += 1;
            self.banks.reserve(v, fill_at);
        }
        (fill_at, ServiceLevel::Memory)
    }

    /// Cache-bypassing block transfer (VIS block load/store).
    fn bypass(&mut self, req: Request, now: u64) -> AccessResult {
        self.stats.bypass_accesses += 1;
        let start = self.banks.reserve(req.addr, now);
        AccessResult {
            done_at: start + self.cfg.mem_latency,
            level: ServiceLevel::Memory,
            merged: false,
        }
    }

    /// Serialize the architectural memory state — both tag arrays and
    /// both MSHR files, with in-flight fills rebased so the capture
    /// instant `now` becomes the restored system's cycle 0 — into `w`.
    ///
    /// Reservation state (ports, banks) and statistics are deliberately
    /// excluded: a restored system models its sample window in
    /// isolation, starting from idle resources and zeroed counters.
    pub fn save_state(&mut self, w: &mut ByteWriter, now: u64) {
        w.put_u64(self.cfg.line);
        self.l1.save_state(w);
        self.l2.save_state(w);
        self.l1_mshrs.save_state(w, now);
        self.l2_mshrs.save_state(w, now);
    }

    /// Restore a [`MemSystem::save_state`] snapshot taken under the
    /// same configuration. Ports, banks, statistics, and any pending
    /// fault are reset. On error the system is partially written and
    /// must be discarded by the caller.
    pub fn load_state(&mut self, r: &mut ByteReader) -> Result<(), String> {
        let line = r.u64()?;
        if line != self.cfg.line {
            return Err(format!(
                "line-size mismatch: snapshot {line}, system {}",
                self.cfg.line
            ));
        }
        self.l1.load_state(r)?;
        self.l2.load_state(r)?;
        self.l1_mshrs.load_state(r)?;
        self.l2_mshrs.load_state(r)?;
        self.l1_ports = Ports::new(self.cfg.l1.ports);
        self.l2_ports = Ports::new(self.cfg.l2.ports);
        self.banks = Banks::new(self.cfg.banks, self.cfg.bank_busy, self.cfg.line);
        self.stats = MemStats::default();
        self.fault = None;
        Ok(())
    }

    /// Functionally warm the hierarchy with one access at pseudo-time
    /// `idx` (the dynamic instruction index, standing in for a cycle
    /// count between detailed sample windows).
    ///
    /// This is the fast-forward path of sampled simulation: it updates
    /// residency, recency, dirty bits, and MSHR-visible miss state —
    /// everything the next detailed window's timing depends on — but
    /// reserves no ports or banks and never rejects. Where the timing
    /// model would reject and retry, the retry's eventual outcome is
    /// applied immediately (the rejection is still counted), so the
    /// functional miss counters stay meaningful while the contention
    /// counters remain timing-approximate.
    pub fn warm_access(&mut self, req: Request, idx: u64) {
        let well_formed = req.size > 0
            && req.size as u64 <= self.cfg.line
            && (req.kind.bypasses_cache()
                || req
                    .addr
                    .checked_add(req.size as u64 - 1)
                    .is_some_and(|end| self.line_of(req.addr) == self.line_of(end)));
        if !well_formed {
            self.record_fault(
                "mem",
                format!("access must not straddle a cache line: {req:?}"),
            );
        }
        if req.kind.bypasses_cache() {
            self.stats.bypass_accesses += 1;
            return;
        }
        let is_store = req.kind.is_store();
        let is_prefetch = req.kind == MemKind::Prefetch;
        let line = self.line_of(req.addr);
        if !is_prefetch {
            self.stats.l1_accesses += 1;
        }

        // Merge into an in-flight miss. The line is already resident in
        // the tags (fills install eagerly), so a rejected demand access
        // resolves, after the retry the timing model would perform, as
        // an L1 hit once the fill completes.
        if self.l1_mshrs.inflight(line, idx) {
            match self.l1_mshrs.offer(line, idx, !is_prefetch) {
                Ok(MshrOffer::Merged {
                    prefetch_inflight, ..
                }) => {
                    if is_prefetch {
                        self.stats.prefetches_issued += 1;
                        self.stats.prefetches_unnecessary += 1;
                    } else {
                        self.stats.l1_merged_misses += 1;
                        if prefetch_inflight {
                            self.stats.prefetches_late += 1;
                        }
                        if is_store {
                            self.l1.note_pending_store(line);
                        }
                    }
                    return;
                }
                Ok(MshrOffer::Primary) => unreachable!("inflight line cannot be primary"),
                Err(reject) => {
                    self.reject(reject, is_prefetch);
                    if !is_prefetch {
                        self.stats.l1_hits += 1;
                        if self.l1.hit_touch(req.addr, is_store) == Some(true) {
                            self.stats.prefetches_useful += 1;
                        }
                    }
                    return;
                }
            }
        }

        // L1 tag lookup (no port reservation on the warming path).
        if let Some(prefetched) = self.l1.hit_touch(req.addr, is_store) {
            if is_prefetch {
                self.stats.prefetches_issued += 1;
                self.stats.prefetches_unnecessary += 1;
            } else {
                self.stats.l1_hits += 1;
                if prefetched {
                    self.stats.prefetches_useful += 1;
                }
            }
            return;
        }

        // Primary miss. Allocate an MSHR when one is free; a full file
        // is counted as a rejection but the fill proceeds anyway — the
        // timing model's retry always succeeds eventually.
        match self.l1_mshrs.offer(line, idx, !is_prefetch) {
            Ok(MshrOffer::Primary) => {
                self.l1_mshrs
                    .set_fill_time(line, idx + self.cfg.mem_latency);
            }
            Ok(_) => unreachable!("no in-flight entry for this line"),
            Err(reject) => {
                self.reject(reject, is_prefetch);
                if is_prefetch {
                    return; // rejected prefetches are dropped
                }
            }
        }
        if is_prefetch {
            self.stats.prefetches_issued += 1;
        } else {
            self.stats.l1_primary_misses += 1;
        }

        // L2 functional lookup, mirroring `l2_request` without timing.
        self.stats.l2_accesses += 1;
        if self.l2_mshrs.inflight(line, idx) {
            let _ = self.l2_mshrs.offer(line, idx, true);
            self.stats.l2_misses += 1;
        } else if self.l2.hit_touch(line, false).is_some() {
            self.stats.l2_hits += 1;
        } else {
            self.stats.l2_misses += 1;
            if let Ok(MshrOffer::Primary) = self.l2_mshrs.offer(line, idx, true) {
                self.l2_mshrs
                    .set_fill_time(line, idx + self.cfg.mem_latency);
            }
            if let Lookup::Miss {
                victim: Some(_),
                victim_dirty: true,
            } = self.l2.fill(line, false, false)
            {
                self.stats.writebacks_l2 += 1;
            }
        }

        // Install in L1 tags; dirty victims write back toward the L2.
        if let Lookup::Miss {
            victim: Some(v),
            victim_dirty: true,
        } = self.l1.fill(req.addr, is_store, is_prefetch)
        {
            self.stats.writebacks_l1 += 1;
            if self.l2.hit_touch(v, true).is_none() {
                self.stats.writebacks_l2 += 1;
            }
        }
    }

    fn reject(&mut self, reject: MshrReject, is_prefetch: bool) -> Rejection {
        if is_prefetch {
            self.stats.prefetches_rejected += 1;
        } else {
            match reject {
                MshrReject::Full { .. } => self.stats.rejects_mshr_full += 1,
                MshrReject::MergesExhausted { .. } => self.stats.rejects_merge_limit += 1,
            }
        }
        let retry_at = match reject {
            MshrReject::Full { free_at } | MshrReject::MergesExhausted { free_at } => free_at,
        };
        Rejection { retry_at }
    }
}
