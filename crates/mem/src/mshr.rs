//! Miss-status holding registers with request merging.
//!
//! Each cache level owns a small file of MSHRs. A primary miss allocates
//! an entry for its line; subsequent accesses to the same line *merge*
//! into the entry (up to `max_merges` total requests). When no entry is
//! free, or an entry's merge capacity is exhausted, the access is
//! rejected and the requester must retry — this is the "MSHR contention"
//! behaviour the paper traces back to bursts of small writes
//! (e.g. 64 one-byte pixel stores per 64-byte line).

use visim_obs::codec::{ByteReader, ByteWriter};
use visim_obs::trace::{InstantKind, SharedTraceRing};

/// Reason an MSHR request could not be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MshrReject {
    /// All MSHRs are occupied by other lines.
    Full {
        /// Earliest cycle at which an entry frees up.
        free_at: u64,
    },
    /// The line has an entry but its merge capacity is exhausted.
    MergesExhausted {
        /// Cycle at which the entry's fill completes.
        free_at: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: u64,
    fill_at: u64,
    merges: u32,
    prefetch_only: bool,
}

/// An MSHR file for one cache level.
#[derive(Debug, Clone)]
pub(crate) struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    max_merges: u32,
    // Occupancy accounting: integral of occupancy over time.
    occupancy_cycles: Vec<u64>,
    last_change: u64,
    /// Number of *live* entries — fills completing after `last_change`.
    /// (Entries whose fill already completed linger until the next
    /// `expire` retains them away.)
    live_count: usize,
    /// Earliest fill completion among the live entries (`u64::MAX` when
    /// none): the accounting and expiry fast paths skip their entry
    /// scans entirely until a fill can actually have completed. A bound
    /// that is transiently too low only splits an interval where nothing
    /// changes, which leaves the integral identical.
    next_live_fill: u64,
    peak: u32,
    /// First release-mode invariant violation observed (polled by the
    /// owning `MemSystem` and surfaced as a `SimError::Invariant`).
    violation: Option<String>,
    /// Trace ring plus the cache level this file belongs to (1 = L1,
    /// 2 = L2); allocations and drains emit instants when attached.
    tracer: Option<(SharedTraceRing, u8)>,
}

/// Result of offering a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MshrOffer {
    /// Primary miss: a new entry was allocated; caller must start the
    /// fill and later confirm its completion time via `set_fill_time`.
    Primary,
    /// Secondary miss: merged into an in-flight fill completing at the
    /// given cycle.
    Merged {
        fill_at: u64,
        /// The in-flight fill was initiated by a prefetch (late prefetch).
        prefetch_inflight: bool,
    },
}

impl MshrFile {
    pub fn new(capacity: u32, max_merges: u32) -> Self {
        MshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            max_merges,
            occupancy_cycles: vec![0; capacity as usize + 1],
            last_change: 0,
            live_count: 0,
            next_live_fill: u64::MAX,
            peak: 0,
            violation: None,
            tracer: None,
        }
    }

    pub fn attach_tracer(&mut self, ring: SharedTraceRing, level: u8) {
        self.tracer = Some((ring, level));
    }

    fn record_violation(&mut self, detail: String) {
        if self.violation.is_none() {
            self.violation = Some(detail);
        }
    }

    /// Take the first invariant violation observed, if any.
    pub fn take_violation(&mut self) -> Option<String> {
        self.violation.take()
    }

    fn expire(&mut self, now: u64) {
        self.account(now);
        if self.live_count == self.entries.len() {
            return; // every fill is still in the future; nothing to drain
        }
        if let Some((ring, level)) = &self.tracer {
            let mut ring = ring.borrow_mut();
            for e in self.entries.iter().filter(|e| e.fill_at <= now) {
                ring.instant_at(e.fill_at, InstantKind::MshrDrain, e.line, *level);
            }
        }
        self.entries.retain(|e| e.fill_at > now);
        // The retained set is exactly the live set (`account` advanced
        // `last_change` to `now`).
        debug_assert_eq!(self.entries.len(), self.live_count);
    }

    /// Advance the occupancy integral to `now`, splitting the elapsed
    /// interval at every fill completion inside it. The common case —
    /// no fill completes before `now` — is O(1) via the cached live-set
    /// aggregates; only an actual completion rescans the entries.
    fn account(&mut self, now: u64) {
        while now > self.last_change {
            if self.next_live_fill > now {
                // Constant occupancy across the whole elapsed interval
                // (strict: a fill at exactly `now` leaves the live set
                // once `last_change` reaches it).
                let occ = self.live_count.min(self.capacity);
                self.occupancy_cycles[occ] += now - self.last_change;
                self.last_change = now;
                return;
            }
            // A fill completes inside the interval: account up to it,
            // then rebuild the live-set aggregates.
            let upto = self.next_live_fill;
            let occ = self.live_count.min(self.capacity);
            self.occupancy_cycles[occ] += upto - self.last_change;
            self.last_change = upto;
            let mut cnt = 0;
            let mut nf = u64::MAX;
            for e in &self.entries {
                if e.fill_at > self.last_change {
                    cnt += 1;
                    nf = nf.min(e.fill_at);
                }
            }
            self.live_count = cnt;
            self.next_live_fill = nf;
        }
    }

    /// Offer a miss for `line` at cycle `now`. `demand` is false for
    /// prefetch-initiated fills.
    pub fn offer(&mut self, line: u64, now: u64, demand: bool) -> Result<MshrOffer, MshrReject> {
        self.expire(now);
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            if e.merges >= self.max_merges {
                return Err(MshrReject::MergesExhausted { free_at: e.fill_at });
            }
            e.merges += 1;
            let was_prefetch = e.prefetch_only;
            if demand {
                e.prefetch_only = false;
            }
            return Ok(MshrOffer::Merged {
                fill_at: e.fill_at,
                prefetch_inflight: was_prefetch,
            });
        }
        if self.entries.len() >= self.capacity {
            let free_at = self
                .entries
                .iter()
                .map(|e| e.fill_at)
                .min()
                .expect("full file is non-empty");
            return Err(MshrReject::Full { free_at });
        }
        self.entries.push(Entry {
            line,
            fill_at: u64::MAX, // fixed up by set_fill_time
            merges: 1,
            prefetch_only: !demand,
        });
        self.live_count += 1; // fill pending: live by construction
        if let Some((ring, level)) = &self.tracer {
            ring.borrow_mut()
                .instant_at(now, InstantKind::MshrAlloc, line, *level);
        }
        if self.entries.len() > self.capacity {
            self.record_violation(format!(
                "occupancy {} exceeds capacity {} after allocating line {line:#x}",
                self.entries.len(),
                self.capacity
            ));
        }
        self.peak = self.peak.max(self.entries.len() as u32);
        Ok(MshrOffer::Primary)
    }

    /// Record the fill-completion time of the most recent primary
    /// allocation for `line`.
    pub fn set_fill_time(&mut self, line: u64, fill_at: u64) {
        match self.entries.iter_mut().find(|e| e.line == line) {
            Some(e) => {
                let was_live = e.fill_at > self.last_change;
                e.fill_at = fill_at;
                if fill_at > self.last_change {
                    if !was_live {
                        self.live_count += 1;
                    }
                    self.next_live_fill = self.next_live_fill.min(fill_at);
                } else if was_live {
                    // Fill reported in the already-accounted past; the
                    // stale `next_live_fill` bound only causes a no-op
                    // interval split.
                    self.live_count -= 1;
                }
            }
            // A fill-time report for a line with no entry means the
            // caller's allocation bookkeeping is corrupted.
            None => self.record_violation(format!(
                "set_fill_time({line:#x}, {fill_at}) but no MSHR entry holds that line"
            )),
        }
    }

    /// True if `line` has an in-flight fill at `now`.
    pub fn inflight(&mut self, line: u64, now: u64) -> bool {
        self.expire(now);
        self.entries.iter().any(|e| e.line == line)
    }

    /// Current number of in-flight entries at `now`.
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.expire(now);
        self.entries.len()
    }

    /// Highest occupancy ever observed.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Time-weighted occupancy histogram: `hist[k]` = cycles spent with
    /// exactly `k` entries in flight, up to `now`.
    pub fn occupancy_histogram(&mut self, now: u64) -> Vec<u64> {
        self.account(now);
        self.occupancy_cycles.clone()
    }

    /// Serialize the in-flight miss set, with every fill time rebased so
    /// the capture instant `now` becomes the restored file's cycle 0.
    /// The occupancy integral and peak are not captured: a restored file
    /// accounts its sample window from a clean slate.
    pub fn save_state(&mut self, w: &mut ByteWriter, now: u64) {
        self.expire(now);
        w.put_u32(self.capacity as u32);
        w.put_u32(self.max_merges);
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_u64(e.line);
            // `expire` retained only fills strictly in the future, so
            // the rebased time is >= 1 (or still the unset sentinel).
            let rel = if e.fill_at == u64::MAX {
                u64::MAX
            } else {
                e.fill_at - now
            };
            w.put_u64(rel);
            w.put_u32(e.merges);
            w.put_u8(e.prefetch_only as u8);
        }
    }

    /// Restore a [`MshrFile::save_state`] snapshot, validating geometry
    /// and every structural bound; on error the file must be discarded.
    pub fn load_state(&mut self, r: &mut ByteReader) -> Result<(), String> {
        let capacity = r.u32()? as usize;
        let max_merges = r.u32()?;
        if capacity != self.capacity || max_merges != self.max_merges {
            return Err(format!(
                "MSHR geometry mismatch: snapshot {capacity}x{max_merges}, \
                 file {}x{}",
                self.capacity, self.max_merges
            ));
        }
        let n = r.u32()? as usize;
        if n > capacity {
            return Err(format!("snapshot holds {n} entries, capacity {capacity}"));
        }
        let mut entries = Vec::with_capacity(n);
        let mut next_fill = u64::MAX;
        for _ in 0..n {
            let line = r.u64()?;
            let fill_at = r.u64()?;
            let merges = r.u32()?;
            let flag = r.u8()?;
            if merges == 0 || merges > max_merges {
                return Err(format!("invalid merge count {merges}"));
            }
            if flag > 1 {
                return Err(format!("invalid prefetch flag {flag:#x}"));
            }
            if fill_at == 0 {
                return Err(format!("already-expired fill for line {line:#x}"));
            }
            if entries.iter().any(|e: &Entry| e.line == line) {
                return Err(format!("duplicate MSHR entry for line {line:#x}"));
            }
            next_fill = next_fill.min(fill_at);
            entries.push(Entry {
                line,
                fill_at,
                merges,
                prefetch_only: flag != 0,
            });
        }
        self.live_count = entries.len();
        self.peak = entries.len() as u32;
        self.entries = entries;
        self.occupancy_cycles = vec![0; self.capacity + 1];
        self.last_change = 0;
        self.next_live_fill = next_fill;
        self.violation = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_merge() {
        let mut m = MshrFile::new(2, 3);
        assert_eq!(m.offer(0x40, 0, true), Ok(MshrOffer::Primary));
        m.set_fill_time(0x40, 100);
        match m.offer(0x40, 1, true) {
            Ok(MshrOffer::Merged { fill_at, .. }) => assert_eq!(fill_at, 100),
            other => panic!("{other:?}"),
        }
        // Third request still merges (3 total), fourth rejected.
        assert!(matches!(
            m.offer(0x40, 2, true),
            Ok(MshrOffer::Merged { .. })
        ));
        assert_eq!(
            m.offer(0x40, 3, true),
            Err(MshrReject::MergesExhausted { free_at: 100 })
        );
    }

    #[test]
    fn full_file_rejects_new_lines() {
        let mut m = MshrFile::new(2, 8);
        m.offer(0x40, 0, true).unwrap();
        m.set_fill_time(0x40, 50);
        m.offer(0x80, 0, true).unwrap();
        m.set_fill_time(0x80, 80);
        assert_eq!(
            m.offer(0xc0, 1, true),
            Err(MshrReject::Full { free_at: 50 })
        );
        // After the first fill completes there is room again.
        assert_eq!(m.offer(0xc0, 51, true), Ok(MshrOffer::Primary));
        assert_eq!(m.occupancy(51), 2);
    }

    #[test]
    fn entries_expire_at_fill_time() {
        let mut m = MshrFile::new(1, 8);
        m.offer(0x40, 0, true).unwrap();
        m.set_fill_time(0x40, 10);
        assert_eq!(m.occupancy(5), 1);
        assert_eq!(m.occupancy(10), 0);
        // Same line misses again later: new primary.
        assert_eq!(m.offer(0x40, 11, true), Ok(MshrOffer::Primary));
    }

    #[test]
    fn prefetch_inflight_reported_to_demand_merge() {
        let mut m = MshrFile::new(2, 8);
        m.offer(0x40, 0, false).unwrap(); // prefetch
        m.set_fill_time(0x40, 100);
        match m.offer(0x40, 5, true) {
            Ok(MshrOffer::Merged {
                prefetch_inflight, ..
            }) => assert!(prefetch_inflight, "late prefetch detected"),
            other => panic!("{other:?}"),
        }
        // A second demand merge no longer reports prefetch.
        match m.offer(0x40, 6, true) {
            Ok(MshrOffer::Merged {
                prefetch_inflight, ..
            }) => assert!(!prefetch_inflight),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stale_fill_time_is_an_invariant_violation() {
        let mut m = MshrFile::new(2, 8);
        m.offer(0x40, 0, true).unwrap();
        m.set_fill_time(0x40, 10);
        assert!(m.take_violation().is_none());
        // Reporting a fill for a line that holds no entry is a model bug
        // and must be caught in release builds.
        m.set_fill_time(0x1c0, 30);
        let v = m.take_violation().expect("violation recorded");
        assert!(v.contains("0x1c0"), "{v}");
        assert!(m.take_violation().is_none(), "violation is taken once");
    }

    #[test]
    fn snapshot_round_trip_rebases_fill_times() {
        let mut m = MshrFile::new(4, 8);
        m.offer(0x40, 0, true).unwrap();
        m.set_fill_time(0x40, 100);
        m.offer(0x80, 5, false).unwrap(); // prefetch-only entry
        m.set_fill_time(0x80, 120);
        m.offer(0xc0, 6, true).unwrap();
        m.set_fill_time(0xc0, 8); // expires before the capture instant

        let mut w = ByteWriter::new();
        m.save_state(&mut w, 10);
        let bytes = w.into_bytes();

        let mut f = MshrFile::new(4, 8);
        let mut r = ByteReader::new(&bytes);
        f.load_state(&mut r).unwrap();
        r.done().unwrap();

        // The expired entry was dropped; live fills rebased to now=10.
        assert_eq!(f.occupancy(0), 2);
        match f.offer(0x40, 1, true) {
            Ok(MshrOffer::Merged { fill_at, .. }) => assert_eq!(fill_at, 90),
            other => panic!("{other:?}"),
        }
        match f.offer(0x80, 2, true) {
            Ok(MshrOffer::Merged {
                prefetch_inflight, ..
            }) => assert!(prefetch_inflight, "prefetch-only flag survives"),
            other => panic!("{other:?}"),
        }
        // Restoring at cycle 0 re-encodes the same snapshot bytes.
        let mut g = MshrFile::new(4, 8);
        let mut r = ByteReader::new(&bytes);
        g.load_state(&mut r).unwrap();
        let mut w2 = ByteWriter::new();
        g.save_state(&mut w2, 0);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    fn snapshot_geometry_and_bounds_rejected() {
        let mut m = MshrFile::new(2, 8);
        m.offer(0x40, 0, true).unwrap();
        m.set_fill_time(0x40, 100);
        let mut w = ByteWriter::new();
        m.save_state(&mut w, 0);
        let bytes = w.into_bytes();
        // Wrong capacity.
        let mut f = MshrFile::new(4, 8);
        assert!(f.load_state(&mut ByteReader::new(&bytes)).is_err());
        // Wrong merge limit.
        let mut f = MshrFile::new(2, 4);
        assert!(f.load_state(&mut ByteReader::new(&bytes)).is_err());
        // Corrupt merge count (offset 12 opens the first entry: 8-byte
        // line, 8-byte fill, then the 4-byte merge count at 28).
        let mut bad = bytes.clone();
        bad[28] = 0;
        let mut f = MshrFile::new(2, 8);
        assert!(f.load_state(&mut ByteReader::new(&bad)).is_err());
    }

    #[test]
    fn occupancy_histogram_integrates_time() {
        let mut m = MshrFile::new(2, 8);
        m.offer(0x40, 0, true).unwrap();
        m.set_fill_time(0x40, 10);
        m.offer(0x80, 5, true).unwrap();
        m.set_fill_time(0x80, 20);
        let h = m.occupancy_histogram(20);
        // 0..5 with 1 entry, 5..10 with 2, 10..20 with 1.
        assert_eq!(h[1], 5 + 10);
        assert_eq!(h[2], 5);
        assert_eq!(m.peak(), 2);
    }
}
