//! Behavioural tests of the composed memory hierarchy.

use visim_isa::MemKind;
use visim_mem::{MemConfig, MemSystem, Request, ServiceLevel};

fn load(addr: u64) -> Request {
    Request::new(addr, 8, MemKind::Load)
}

fn store(addr: u64) -> Request {
    Request::new(addr, 8, MemKind::Store)
}

/// A tiny configuration that is easy to exhaust in tests.
fn tiny() -> MemConfig {
    let mut c = MemConfig::default();
    c.l1.size = 1 << 10; // 1 KB, 2-way, 8 sets
    c.l1.mshrs = 2;
    c.l2.size = 4 << 10;
    c.mshr_max_merges = 2;
    c
}

#[test]
fn cold_miss_goes_to_memory_then_hits_in_l1() {
    let mut m = MemSystem::new(MemConfig::default());
    let r = m.access(load(0x1_0000), 0).unwrap();
    assert_eq!(r.level, ServiceLevel::Memory);
    // L1 detect (2) + L2 lookup (20) + memory (100) = 122.
    assert_eq!(r.done_at, 122);
    let r2 = m.access(load(0x1_0000), r.done_at).unwrap();
    assert_eq!(r2.level, ServiceLevel::L1);
    assert_eq!(r2.done_at, r.done_at + 2);
    assert_eq!(m.stats().l1_hits, 1);
    assert_eq!(m.stats().l1_primary_misses, 1);
}

#[test]
fn l2_hit_is_cheaper_than_memory() {
    let mut m = MemSystem::new(MemConfig::default());
    let r = m.access(load(0x2_0000), 0).unwrap();
    // Evict it from L1 only: L1 is 64K 2-way; two more lines in the same
    // L1 set (stride 32K) evict it, but 128K 4-way L2 keeps it.
    m.access(load(0x2_0000 + 32 * 1024), 200).unwrap();
    m.access(load(0x2_0000 + 64 * 1024), 400).unwrap();
    let r2 = m.access(load(0x2_0000), 600).unwrap();
    assert_eq!(r2.level, ServiceLevel::L2, "should hit in L2");
    assert!(r2.done_at - 600 < r.done_at, "L2 hit far cheaper than DRAM");
    assert_eq!(m.stats().l2_hits, 1);
}

#[test]
fn secondary_miss_merges_and_completes_with_the_fill() {
    let mut m = MemSystem::new(MemConfig::default());
    let r1 = m.access(load(0x3_0000), 0).unwrap();
    let r2 = m.access(load(0x3_0008), 1).unwrap();
    assert!(r2.merged);
    assert_eq!(r2.done_at, r1.done_at, "merged request rides the fill");
    assert_eq!(m.stats().l1_merged_misses, 1);
}

#[test]
fn merge_limit_rejects_with_retry_hint() {
    let mut m = MemSystem::new(tiny());
    let r1 = m.access(store(0x4_0000), 0).unwrap();
    m.access(store(0x4_0008), 1).unwrap(); // 2nd request: merge cap (2) reached
    let e = m.access(store(0x4_0010), 2).unwrap_err();
    assert_eq!(e.retry_at, r1.done_at);
    assert_eq!(m.stats().rejects_merge_limit, 1);
    // After the fill completes the store hits in L1.
    let r = m.access(store(0x4_0010), e.retry_at).unwrap();
    assert_eq!(r.level, ServiceLevel::L1);
}

#[test]
fn mshr_full_rejects_new_lines() {
    let mut m = MemSystem::new(tiny()); // 2 MSHRs
    m.access(load(0x10_0000), 0).unwrap();
    m.access(load(0x20_0000), 0).unwrap();
    let e = m.access(load(0x30_0000), 1).unwrap_err();
    assert!(e.retry_at > 1);
    assert_eq!(m.stats().rejects_mshr_full, 1);
    assert!(m.access(load(0x30_0000), e.retry_at).is_ok());
}

#[test]
fn writes_mark_lines_dirty_and_cause_writebacks() {
    let mut c = MemConfig::default();
    c.l1.size = 1 << 10; // 8 sets x 2 ways
    let mut m = MemSystem::new(c);
    // Fill one L1 set (stride = 512) with dirty lines, then overflow it.
    let mut t = 0;
    for i in 0..3u64 {
        let r = m.access(store(i * 512), t).unwrap();
        t = r.done_at + 1;
    }
    assert!(m.stats().writebacks_l1 >= 1, "dirty victim written back");
}

#[test]
fn prefetch_hides_latency_for_later_demand() {
    let mut m = MemSystem::new(MemConfig::default());
    let p = m
        .access(Request::new(0x5_0000, 8, MemKind::Prefetch), 0)
        .unwrap();
    // Demand access after the prefetch completed: an L1 hit.
    let r = m.access(load(0x5_0000), p.done_at + 10).unwrap();
    assert_eq!(r.level, ServiceLevel::L1);
    assert_eq!(m.stats().prefetches_issued, 1);
    assert_eq!(m.stats().prefetches_useful, 1);
    assert_eq!(m.stats().prefetches_late, 0);
}

#[test]
fn late_prefetch_detected_when_demand_merges() {
    let mut m = MemSystem::new(MemConfig::default());
    m.access(Request::new(0x6_0000, 8, MemKind::Prefetch), 0)
        .unwrap();
    let r = m.access(load(0x6_0000), 5).unwrap();
    assert!(r.merged, "demand merged into the in-flight prefetch");
    assert_eq!(m.stats().prefetches_late, 1);
}

#[test]
fn prefetch_to_resident_line_is_unnecessary() {
    let mut m = MemSystem::new(MemConfig::default());
    let r = m.access(load(0x7_0000), 0).unwrap();
    m.access(Request::new(0x7_0000, 8, MemKind::Prefetch), r.done_at + 1)
        .unwrap();
    assert_eq!(m.stats().prefetches_unnecessary, 1);
}

#[test]
fn block_transfers_bypass_the_caches() {
    let mut m = MemSystem::new(MemConfig::default());
    let r = m
        .access(Request::new(0x8_0000, 64, MemKind::BlockLoad), 0)
        .unwrap();
    assert_eq!(r.level, ServiceLevel::Memory);
    // The line must NOT be resident afterwards.
    let r2 = m.access(load(0x8_0000), r.done_at + 1).unwrap();
    assert_eq!(r2.level, ServiceLevel::Memory);
    assert_eq!(m.stats().bypass_accesses, 1);
}

#[test]
fn bank_conflicts_serialize_same_bank_lines() {
    let mut m = MemSystem::new(MemConfig::default());
    // Two lines in the same bank: line numbers differ by #banks (4).
    let r1 = m.access(load(0x0000), 0).unwrap();
    let r2 = m.access(load(4 * 64), 0).unwrap();
    // Two lines in different banks issued together overlap fully.
    let r3 = m.access(load(64 + 0x10_0000), 0).unwrap(); // line 1: a different bank
    assert!(r2.done_at > r1.done_at, "same-bank accesses serialize");
    assert!(
        r3.done_at <= r1.done_at + 2,
        "different banks overlap (got {} vs {})",
        r3.done_at,
        r1.done_at
    );
}

#[test]
fn streaming_misses_overlap_across_banks() {
    let mut m = MemSystem::new(MemConfig::default());
    // 8 independent lines issued back to back: the paper's streaming
    // pattern. Completion of the 8th must be far less than 8 serial
    // misses (8 * 122).
    let mut last = 0;
    for i in 0..8u64 {
        let r = m.access(load(0x9_0000 + i * 64), i).unwrap();
        last = last.max(r.done_at);
    }
    assert!(last < 4 * 122, "non-blocking misses overlap: {last}");
}

#[test]
fn l1_port_contention_delays_third_access_in_a_cycle() {
    let mut m = MemSystem::new(MemConfig::default());
    // Warm a line, then hit it three times in the same cycle (2 ports).
    let w = m.access(load(0xa_0000), 0).unwrap();
    let t = w.done_at + 10;
    let r1 = m.access(load(0xa_0000), t).unwrap();
    let r2 = m.access(load(0xa_0008), t).unwrap();
    let r3 = m.access(load(0xa_0010), t).unwrap();
    assert_eq!(r1.done_at, t + 2);
    assert_eq!(r2.done_at, t + 2);
    assert_eq!(r3.done_at, t + 3, "third access waits one cycle for a port");
}

#[test]
fn larger_l2_keeps_bigger_working_sets() {
    // Touch a 256 KB working set twice; a 2 MB L2 should hit on the
    // second pass, the 128 KB default should not.
    let run = |l2_bytes: u64| -> u64 {
        let mut m = MemSystem::new(MemConfig::default().with_l2_size(l2_bytes));
        let mut t = 0;
        for pass in 0..2 {
            for i in 0..(256 * 1024 / 64) as u64 {
                let r = m.access(load(i * 64), t).unwrap();
                t = r.done_at.max(t) + 1;
            }
            if pass == 0 {
                t += 10_000;
            }
        }
        let s = m.stats();
        s.l2_misses
    };
    let small = run(128 << 10);
    let large = run(2 << 20);
    assert!(
        large <= small / 2,
        "2MB L2 captures reuse: {large} vs {small} L2 misses"
    );
}

#[test]
fn warming_reaches_the_same_residency_as_timed_access() {
    // Serialized accesses (each issued after the previous completes)
    // exercise no MSHR contention, so the functional warming path must
    // land on exactly the same residency and recency state as the
    // timing model.
    let mut timed = MemSystem::new(MemConfig::default());
    let mut warm = MemSystem::new(MemConfig::default());
    let addrs: Vec<u64> = (0..400u64).map(|i| ((i * 37) % 97) * 64).collect();
    let mut t = 0;
    for (i, &a) in addrs.iter().enumerate() {
        let kind = if i % 4 == 0 {
            MemKind::Store
        } else {
            MemKind::Load
        };
        let r = timed.access(Request::new(a, 8, kind), t).unwrap();
        t = r.done_at + 1;
        // Spacing the pseudo-clock past the memory latency drains the
        // warming MSHRs the same way the serialized timing run does.
        warm.warm_access(Request::new(a, 8, kind), i as u64 * 200);
    }
    for &a in &addrs {
        assert_eq!(timed.l1_contains(a), warm.l1_contains(a), "addr {a:#x}");
    }
    assert_eq!(timed.stats().l1_hits, warm.stats().l1_hits);
    assert_eq!(
        timed.stats().l1_primary_misses,
        warm.stats().l1_primary_misses
    );
    assert_eq!(timed.stats().writebacks_l1, warm.stats().writebacks_l1);
}

#[test]
fn system_snapshot_round_trips_bit_identically() {
    use visim_obs::codec::{ByteReader, ByteWriter};
    let mut m = MemSystem::new(tiny());
    for i in 0..300u64 {
        let kind = if i % 5 == 0 {
            MemKind::Store
        } else {
            MemKind::Load
        };
        m.warm_access(Request::new((i * 31 % 53) * 64, 8, kind), i);
    }
    let mut w = ByteWriter::new();
    m.save_state(&mut w, 300);
    let bytes = w.into_bytes();

    let mut fresh = MemSystem::new(tiny());
    let mut r = ByteReader::new(&bytes);
    fresh.load_state(&mut r).unwrap();
    r.done().unwrap();

    // Restored state re-encodes to the same bytes (at its new cycle 0)
    // and starts with clean statistics.
    let mut w2 = ByteWriter::new();
    fresh.save_state(&mut w2, 0);
    assert_eq!(bytes, w2.into_bytes());
    assert_eq!(fresh.stats().l1_accesses, 0);
    for i in 0..53u64 {
        let a = i * 64;
        assert_eq!(m.l1_contains(a), fresh.l1_contains(a), "addr {a:#x}");
    }

    // A snapshot from a different geometry is rejected.
    let mut other = MemSystem::new(MemConfig::default());
    let mut r = ByteReader::new(&bytes);
    assert!(other.load_state(&mut r).is_err());
}

#[test]
fn stats_accessors_are_consistent() {
    let mut m = MemSystem::new(MemConfig::default());
    let mut t = 0;
    for i in 0..100u64 {
        if let Ok(r) = m.access(load(i * 8), t) {
            t = r.done_at.max(t) + 1;
        }
    }
    let s = m.stats();
    assert_eq!(s.l1_accesses, 100);
    assert_eq!(
        s.l1_hits + s.l1_primary_misses + s.l1_merged_misses,
        100,
        "every accepted access is classified"
    );
    let hist = m.mshr_histogram(t);
    assert_eq!(hist.iter().sum::<u64>(), t, "histogram covers all time");
    assert!(m.inflight_misses(t + 10_000) == 0);
}
