//! Property tests on memory-system invariants.

use visim_isa::MemKind;
use visim_mem::{MemConfig, MemSystem, Request, ServiceLevel};
use visim_util::prop::{self, Config};
use visim_util::{prop_assert, prop_assert_eq};

fn small_config() -> MemConfig {
    let mut c = MemConfig::default();
    c.l1.size = 2 << 10;
    c.l2.size = 8 << 10;
    c.l1.mshrs = 4;
    c
}

/// Every accepted demand access is classified exactly once, and
/// completion times never precede the request.
#[test]
fn accounting_is_exhaustive() {
    prop::check(
        Config::cases(64),
        |rng| rng.vec(1..200, |r| r.gen_range(0u64..1 << 16)),
        |addrs: &Vec<u64>| {
            if addrs.is_empty() {
                return Ok(());
            }
            let mut m = MemSystem::new(small_config());
            let mut t = 0u64;
            let mut accepted = 0u64;
            for (i, &a) in addrs.iter().enumerate() {
                let kind = if i % 3 == 0 {
                    MemKind::Store
                } else {
                    MemKind::Load
                };
                match m.access(Request::new(a * 8, 8, kind), t) {
                    Ok(r) => {
                        accepted += 1;
                        prop_assert!(r.done_at >= t);
                    }
                    Err(rej) => {
                        prop_assert!(rej.retry_at > t);
                        t = rej.retry_at;
                        // Retry must eventually succeed.
                        let r = m.access(Request::new(a * 8, 8, kind), t);
                        if r.is_ok() {
                            accepted += 1;
                        }
                    }
                }
                t += 1;
            }
            let s = m.stats();
            prop_assert_eq!(
                s.l1_hits + s.l1_primary_misses + s.l1_merged_misses,
                accepted
            );
            Ok(())
        },
    );
}

/// Repeating the same access after its fill is always an L1 hit.
#[test]
fn second_touch_hits() {
    prop::check(
        Config::default(),
        |rng| rng.gen_range(0u64..1 << 20),
        |&addr| {
            let mut m = MemSystem::new(MemConfig::default());
            let addr = addr & !7;
            let r1 = m.access(Request::new(addr, 8, MemKind::Load), 0).unwrap();
            let r2 = m
                .access(Request::new(addr, 8, MemKind::Load), r1.done_at + 1)
                .unwrap();
            prop_assert_eq!(r2.level, ServiceLevel::L1);
            prop_assert!(r2.done_at <= r1.done_at + 1 + 2);
            Ok(())
        },
    );
}

/// Determinism: the same access sequence gives identical stats.
#[test]
fn deterministic_replay() {
    prop::check(
        Config::cases(64),
        |rng| rng.vec(1..100, |r| r.gen_range(0u64..1 << 14)),
        |addrs: &Vec<u64>| {
            let run = || {
                let mut m = MemSystem::new(small_config());
                let mut t = 0u64;
                for &a in addrs {
                    match m.access(Request::new(a * 16, 8, MemKind::Load), t) {
                        Ok(r) => t = t.max(r.done_at / 8),
                        Err(rej) => t = rej.retry_at,
                    }
                    t += 1;
                }
                (m.stats().clone(), m.mshr_peak())
            };
            prop_assert_eq!(run(), run());
            Ok(())
        },
    );
}

/// The MSHR occupancy histogram always integrates to elapsed time
/// and never exceeds capacity.
#[test]
fn histogram_is_a_partition() {
    prop::check(
        Config::cases(64),
        |rng| rng.vec(1..100, |r| r.gen_range(0u64..1 << 14)),
        |addrs: &Vec<u64>| {
            let mut m = MemSystem::new(small_config());
            let mut t = 0u64;
            for &a in addrs {
                if let Ok(r) = m.access(Request::new(a * 64, 8, MemKind::Load), t) {
                    t = t.max(r.done_at.saturating_sub(100));
                }
                t += 3;
            }
            let hist = m.mshr_histogram(t + 1);
            prop_assert_eq!(hist.len(), 4 + 1, "capacity bins + zero");
            prop_assert_eq!(hist.iter().sum::<u64>(), t + 1);
            prop_assert!(m.mshr_peak() <= 4);
            Ok(())
        },
    );
}
