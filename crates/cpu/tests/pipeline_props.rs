//! Property tests of the pipeline: for random well-formed instruction
//! streams, the simulation must terminate, retire everything exactly
//! once, account every cycle, and replay deterministically.

use visim_cpu::{CpuConfig, Pipeline, SimSink};
use visim_isa::{BranchInfo, Inst, MemKind, MemRef, Op, Reg};
use visim_mem::MemConfig;
use visim_util::prop::{self, Config, Shrink};
use visim_util::{prop_assert, prop_assert_eq, Rng};

/// A compact generator-friendly instruction description.
#[derive(Debug, Clone, Copy)]
enum Gen {
    Alu { dep: bool },
    Mul,
    Fp,
    Div,
    Vis(u8),
    Load { addr: u16 },
    Store { addr: u16 },
    Prefetch { addr: u16 },
    Branch { taken: bool, backward: bool },
}

// No value-level candidates: streams shrink structurally (the Vec
// harness drops and halves elements).
impl Shrink for Gen {}

fn arb_gen(rng: &mut Rng) -> Gen {
    match rng.gen_range(0u32..9) {
        0 => Gen::Alu { dep: rng.bool() },
        1 => Gen::Mul,
        2 => Gen::Fp,
        3 => Gen::Div,
        4 => Gen::Vis(rng.gen_range(0u8..6)),
        5 => Gen::Load { addr: rng.u16() },
        6 => Gen::Store { addr: rng.u16() },
        7 => Gen::Prefetch { addr: rng.u16() },
        _ => Gen::Branch {
            taken: rng.bool(),
            backward: rng.bool(),
        },
    }
}

fn materialize(gens: &[Gen]) -> Vec<Inst> {
    let mut out = Vec::with_capacity(gens.len());
    let mut reg = 1u32;
    let mut last = Reg::NONE;
    for (i, g) in gens.iter().enumerate() {
        let pc = 0x1000 + (i as u64 % 37) * 4;
        let fresh = |reg: &mut u32| {
            let r = Reg(*reg);
            *reg += 1;
            r
        };
        let inst = match *g {
            Gen::Alu { dep } => {
                let d = fresh(&mut reg);
                let src = if dep { last } else { Reg::NONE };
                Inst::compute(Op::IntAlu, pc, d, [src, Reg::NONE, Reg::NONE])
            }
            Gen::Mul => Inst::compute(
                Op::IntMul,
                pc,
                fresh(&mut reg),
                [last, Reg::NONE, Reg::NONE],
            ),
            Gen::Fp => Inst::compute(Op::FpOp, pc, fresh(&mut reg), [Reg::NONE; 3]),
            Gen::Div => Inst::compute(Op::FpDiv, pc, fresh(&mut reg), [Reg::NONE; 3]),
            Gen::Vis(k) => {
                let op = [
                    Op::VisAdd,
                    Op::VisMul,
                    Op::VisPack,
                    Op::VisPdist,
                    Op::VisLogic,
                    Op::VisMerge,
                ][k as usize % 6];
                Inst::compute(op, pc, fresh(&mut reg), [last, Reg::NONE, Reg::NONE])
            }
            Gen::Load { addr } => Inst::memory(
                Op::Load,
                pc,
                fresh(&mut reg),
                [Reg::NONE; 3],
                MemRef {
                    addr: 0x1_0000 + (addr as u64) * 8,
                    size: 8,
                    kind: MemKind::Load,
                },
            ),
            Gen::Store { addr } => Inst::memory(
                Op::Store,
                pc,
                Reg::NONE,
                [last, Reg::NONE, Reg::NONE],
                MemRef {
                    addr: 0x1_0000 + (addr as u64) * 8,
                    size: 8,
                    kind: MemKind::Store,
                },
            ),
            Gen::Prefetch { addr } => Inst::memory(
                Op::Prefetch,
                pc,
                Reg::NONE,
                [Reg::NONE; 3],
                MemRef {
                    addr: 0x1_0000 + (addr as u64) * 8,
                    size: 8,
                    kind: MemKind::Prefetch,
                },
            ),
            Gen::Branch { taken, backward } => Inst::control(
                Op::Branch,
                pc,
                [last, Reg::NONE, Reg::NONE],
                BranchInfo::cond(taken, backward),
            ),
        };
        if inst.dst.is_some() {
            last = inst.dst;
        }
        out.push(inst);
    }
    out
}

fn run(insts: &[Inst], cfg: CpuConfig) -> visim_cpu::Summary {
    let mut p = Pipeline::new(cfg, MemConfig::default());
    for &i in insts {
        p.push(i);
    }
    p.finish()
}

#[test]
fn random_streams_retire_everything() {
    prop::check(
        Config::cases(48),
        |rng| rng.vec(1..400, arb_gen),
        |gens: &Vec<Gen>| {
            if gens.is_empty() {
                return Ok(());
            }
            let insts = materialize(gens);
            for cfg in [
                CpuConfig::inorder_1way(),
                CpuConfig::inorder_4way(),
                CpuConfig::ooo_4way(),
            ] {
                let s = run(&insts, cfg);
                prop_assert_eq!(s.cpu.retired, insts.len() as u64);
                let b = s.cpu.breakdown();
                prop_assert!(
                    (b.total() - s.cycles() as f64).abs() < 1e-6,
                    "attribution covers every cycle"
                );
                prop_assert!(
                    s.cycles() >= (insts.len() as u64).div_ceil(4),
                    "cannot beat the retire width"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn replay_is_deterministic() {
    prop::check(
        Config::cases(48),
        |rng| rng.vec(1..200, arb_gen),
        |gens: &Vec<Gen>| {
            let insts = materialize(gens);
            let a = run(&insts, CpuConfig::ooo_4way());
            let b = run(&insts, CpuConfig::ooo_4way());
            prop_assert_eq!(a.cycles(), b.cycles());
            prop_assert_eq!(a.mem, b.mem);
            prop_assert_eq!(a.cpu.mispredicts, b.cpu.mispredicts);
            Ok(())
        },
    );
}

#[test]
fn ooo_never_loses_to_inorder() {
    prop::check(
        Config::cases(48),
        |rng| rng.vec(1..300, arb_gen),
        |gens: &Vec<Gen>| {
            let insts = materialize(gens);
            let io = run(&insts, CpuConfig::inorder_4way());
            let ooo = run(&insts, CpuConfig::ooo_4way());
            // Same width, strictly more scheduling freedom: allow a tiny
            // tolerance for edge effects at the end of the stream.
            prop_assert!(
                ooo.cycles() <= io.cycles() + 4,
                "ooo {} vs inorder {}",
                ooo.cycles(),
                io.cycles()
            );
            Ok(())
        },
    );
}
