//! Behavioural tests of the pipeline models: the architectural effects
//! the paper's analysis relies on must be visible in the timing.

use visim_cpu::{CpuConfig, Pipeline, SimSink, Summary};
use visim_isa::{BranchInfo, Inst, MemKind, MemRef, Op, Reg};
use visim_mem::MemConfig;

/// Small builder for hand-written instruction streams.
struct Prog {
    insts: Vec<Inst>,
    next_reg: u32,
    pc: u64,
}

impl Prog {
    fn new() -> Self {
        Prog {
            insts: Vec::new(),
            next_reg: 1,
            pc: 0x1000,
        }
    }

    fn reg(&mut self) -> Reg {
        self.next_reg += 1;
        Reg(self.next_reg - 1)
    }

    fn pc(&mut self) -> u64 {
        self.pc += 4;
        self.pc
    }

    fn alu(&mut self, srcs: [Reg; 3]) -> Reg {
        let d = self.reg();
        let pc = self.pc();
        self.insts.push(Inst::compute(Op::IntAlu, pc, d, srcs));
        d
    }

    fn op(&mut self, op: Op, srcs: [Reg; 3]) -> Reg {
        let d = self.reg();
        let pc = self.pc();
        self.insts.push(Inst::compute(op, pc, d, srcs));
        d
    }

    fn load(&mut self, addr: u64) -> Reg {
        let d = self.reg();
        let pc = self.pc();
        self.insts.push(Inst::memory(
            Op::Load,
            pc,
            d,
            [Reg::NONE; 3],
            MemRef {
                addr,
                size: 8,
                kind: MemKind::Load,
            },
        ));
        d
    }

    fn store(&mut self, addr: u64, size: u8, src: Reg) {
        let pc = self.pc();
        self.insts.push(Inst::memory(
            Op::Store,
            pc,
            Reg::NONE,
            [src, Reg::NONE, Reg::NONE],
            MemRef {
                addr,
                size,
                kind: MemKind::Store,
            },
        ));
    }

    fn branch_at(&mut self, pc: u64, taken: bool, backward: bool) {
        self.insts.push(Inst::control(
            Op::Branch,
            pc,
            [Reg::NONE; 3],
            BranchInfo::cond(taken, backward),
        ));
    }

    fn run(self, cfg: CpuConfig) -> Summary {
        let mut p = Pipeline::new(cfg, MemConfig::default());
        for i in self.insts {
            p.push(i);
        }
        p.finish()
    }
}

/// N independent ALU ops.
fn independent_alus(n: usize) -> Prog {
    let mut p = Prog::new();
    for _ in 0..n {
        p.alu([Reg::NONE; 3]);
    }
    p
}

/// N dependent ALU ops (a serial chain).
fn dependent_alus(n: usize) -> Prog {
    let mut p = Prog::new();
    let mut r = p.alu([Reg::NONE; 3]);
    for _ in 1..n {
        r = p.alu([r, Reg::NONE, Reg::NONE]);
    }
    p
}

#[test]
fn wide_issue_speeds_up_independent_work() {
    let one = independent_alus(4000).run(CpuConfig::inorder_1way());
    let four = independent_alus(4000).run(CpuConfig::inorder_4way());
    let speedup = one.cycles() as f64 / four.cycles() as f64;
    assert!(
        speedup > 1.8,
        "4-way should be much faster on ILP=inf: {speedup:.2}"
    );
}

#[test]
fn dependent_chain_defeats_width() {
    let four = dependent_alus(4000).run(CpuConfig::ooo_4way());
    assert!(
        four.cycles() >= 4000,
        "serial chain is latency bound: {}",
        four.cycles()
    );
    let b = four.cpu.breakdown();
    assert!(b.fu_stall > b.busy, "stalls dominate a serial chain: {b:?}");
}

#[test]
fn breakdown_total_equals_cycles() {
    for cfg in [
        CpuConfig::inorder_1way(),
        CpuConfig::inorder_4way(),
        CpuConfig::ooo_4way(),
    ] {
        let mut p = Prog::new();
        for i in 0..200u64 {
            let r = p.load(0x10000 + i * 256);
            p.alu([r, Reg::NONE, Reg::NONE]);
        }
        let s = p.run(cfg);
        let b = s.cpu.breakdown();
        assert!(
            (b.total() - s.cycles() as f64).abs() < 1e-6,
            "attribution must be exhaustive: {} vs {}",
            b.total(),
            s.cycles()
        );
    }
}

#[test]
fn ooo_overlaps_independent_misses_better_than_inorder() {
    // Loads at line-stride with a dependent consumer right behind each:
    // in-order issue stalls at the first consumer, OOO keeps going.
    let build = || {
        let mut p = Prog::new();
        for i in 0..400u64 {
            let r = p.load(0x4_0000 + i * 64);
            let x = p.alu([r, Reg::NONE, Reg::NONE]);
            p.alu([x, Reg::NONE, Reg::NONE]);
        }
        p
    };
    let io = build().run(CpuConfig::inorder_4way());
    let ooo = build().run(CpuConfig::ooo_4way());
    let speedup = io.cycles() as f64 / ooo.cycles() as f64;
    assert!(
        speedup > 1.3,
        "OOO should overlap miss latency: {speedup:.2}"
    );
}

#[test]
fn load_misses_show_up_as_l1_miss_stall() {
    let mut p = Prog::new();
    for i in 0..300u64 {
        let r = p.load(0x8_0000 + i * 64); // all cold misses
        p.alu([r, Reg::NONE, Reg::NONE]);
    }
    let s = p.run(CpuConfig::ooo_4way());
    let b = s.cpu.breakdown();
    assert!(
        b.l1_miss > 0.3 * b.total(),
        "streaming misses dominate: {b:?}"
    );
    assert!(s.mem.l1_primary_misses >= 290);
}

#[test]
fn cache_hits_do_not_accumulate_miss_stall() {
    let mut p = Prog::new();
    // Warm a single line, then hammer it.
    let _ = p.load(0x1_0000);
    for _ in 0..2000 {
        let r = p.load(0x1_0000);
        p.alu([r, Reg::NONE, Reg::NONE]);
    }
    let s = p.run(CpuConfig::ooo_4way());
    let b = s.cpu.breakdown();
    // Only the single 122-cycle cold miss contributes miss stall.
    assert!(
        b.l1_miss < 130.0 && b.l1_miss < 0.2 * b.total(),
        "one cold miss only: {b:?}"
    );
    // Early loads merge into the in-flight cold miss; the rest hit.
    assert!(s.mem.l1_hits >= 1900, "hits = {}", s.mem.l1_hits);
    assert!(s.mem.l1_primary_misses == 1);
}

#[test]
fn mispredicted_branches_cost_cycles() {
    // Same branch site: first alternating (hard), then always-taken
    // backward (easy).
    let mut hard = Prog::new();
    for i in 0..2000u64 {
        hard.branch_at(0x500, i % 2 == 0, false);
        hard.alu([Reg::NONE; 3]);
    }
    let mut easy = Prog::new();
    for _ in 0..2000u64 {
        easy.branch_at(0x500, true, true);
        easy.alu([Reg::NONE; 3]);
    }
    let sh = hard.run(CpuConfig::ooo_4way());
    let se = easy.run(CpuConfig::ooo_4way());
    assert!(
        sh.cpu.mispredict_rate() > 0.3,
        "{}",
        sh.cpu.mispredict_rate()
    );
    assert!(
        se.cpu.mispredict_rate() < 0.05,
        "{}",
        se.cpu.mispredict_rate()
    );
    assert!(
        sh.cycles() > se.cycles() * 2,
        "mispredicts are expensive: {} vs {}",
        sh.cycles(),
        se.cycles()
    );
}

#[test]
fn byte_store_bursts_back_up_the_mshrs() {
    // The paper's write-backup effect: 64 one-byte stores per line,
    // streaming over many lines, with merge limit 8 per MSHR.
    let mut p = Prog::new();
    let v = p.alu([Reg::NONE; 3]);
    for line in 0..64u64 {
        for b in 0..64u64 {
            p.store(0x20_0000 + line * 64 + b, 1, v);
        }
    }
    let s = p.run(CpuConfig::ooo_4way());
    assert!(
        s.mem.rejects_merge_limit > 0,
        "write bursts should exhaust MSHR merges"
    );
    let b = s.cpu.breakdown();
    assert!(b.memory() > 0.0);
}

#[test]
fn vis_units_are_scarce() {
    // Packed multiplies all contend for the single VIS multiplier.
    let mut muls = Prog::new();
    for _ in 0..2000 {
        muls.op(Op::VisMul, [Reg::NONE; 3]);
    }
    // Mixed adds/muls split across the two units.
    let mut mixed = Prog::new();
    for i in 0..2000 {
        let op = if i % 2 == 0 { Op::VisMul } else { Op::VisAdd };
        mixed.op(op, [Reg::NONE; 3]);
    }
    let sm = muls.run(CpuConfig::ooo_4way());
    let sx = mixed.run(CpuConfig::ooo_4way());
    assert!(
        sm.cycles() as f64 > 0.9 * 2000.0,
        "one multiplier serializes: {}",
        sm.cycles()
    );
    assert!(
        (sx.cycles() as f64) < 0.7 * sm.cycles() as f64,
        "mixing units doubles throughput: {} vs {}",
        sx.cycles(),
        sm.cycles()
    );
}

#[test]
fn stores_do_not_block_retirement() {
    // Stores to warm lines drain through the store buffer without ever
    // stalling retirement: the mixed store/ALU stream sustains IPC > 1.
    let mut p = Prog::new();
    let v = p.alu([Reg::NONE; 3]);
    for i in 0..64u64 {
        p.store(0x30_0000 + i * 64, 8, v); // warming pass (misses)
    }
    for _ in 0..10 {
        for i in 0..64u64 {
            p.store(0x30_0000 + i * 64, 8, v);
            for _ in 0..4 {
                p.alu([Reg::NONE; 3]); // independent work
            }
        }
    }
    let s = p.run(CpuConfig::ooo_4way());
    let ipc = s.cpu.ipc();
    assert!(ipc > 1.2, "store hits are non-blocking: IPC {ipc:.2}");
}

#[test]
fn prefetches_convert_miss_stall_to_busy() {
    // Enough computation per element that the loop is latency-bound, not
    // MSHR-bandwidth-bound — the regime where Mowry-style prefetching
    // pays off (paper §4.2).
    let stride = 64u64;
    let iters = 400u64;
    let build = |prefetch: bool| {
        let mut p = Prog::new();
        for i in 0..iters {
            let addr = 0x40_0000 + i * stride;
            if prefetch {
                // Prefetch 8 lines ahead (prefetches drain through the
                // post-retirement memory queue, so part of the distance
                // covers the window depth).
                let pc = p.pc();
                p.insts.push(Inst::memory(
                    Op::Prefetch,
                    pc,
                    Reg::NONE,
                    [Reg::NONE; 3],
                    MemRef {
                        addr: addr + 8 * stride,
                        size: 8,
                        kind: MemKind::Prefetch,
                    },
                ));
            }
            let r = p.load(addr);
            // A dependent chain of computation per element.
            let mut x = p.alu([r, Reg::NONE, Reg::NONE]);
            for _ in 0..15 {
                x = p.alu([x, Reg::NONE, Reg::NONE]);
            }
        }
        p
    };
    let base = build(false).run(CpuConfig::ooo_4way());
    let pf = build(true).run(CpuConfig::ooo_4way());
    // Rejected prefetches retry, so every prefetch is eventually issued.
    assert_eq!(pf.mem.prefetches_issued, iters, "{:?}", pf.mem);
    let speedup = base.cycles() as f64 / pf.cycles() as f64;
    assert!(
        speedup > 1.3,
        "prefetching should hide streaming misses: {speedup:.2}"
    );
    let bb = base.cpu.breakdown();
    let pb = pf.cpu.breakdown();
    assert!(pb.l1_miss < bb.l1_miss * 0.8, "{pb:?} vs {bb:?}");
}

#[test]
fn deterministic_across_runs() {
    let mk = || {
        let mut p = Prog::new();
        for i in 0..500u64 {
            let r = p.load(0x1000 + (i * 72) % 4096);
            let x = p.alu([r, Reg::NONE, Reg::NONE]);
            p.store(0x9000 + i * 8, 8, x);
            p.branch_at(0x700, i % 7 != 0, true);
        }
        p.run(CpuConfig::ooo_4way())
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.cpu.retired, b.cpu.retired);
    assert_eq!(a.mem, b.mem);
}

#[test]
fn retired_counts_match_pushed_instructions() {
    let mut p = Prog::new();
    let n = 1234;
    for _ in 0..n {
        p.alu([Reg::NONE; 3]);
    }
    let s = p.run(CpuConfig::inorder_1way());
    assert_eq!(s.cpu.retired, n);
    assert_eq!(s.cpu.mix[0], n);
}

#[test]
fn rejected_prefetches_retry_until_accepted() {
    // More prefetch streams than MSHRs: every prefetch must still be
    // issued eventually (RSIM retry semantics, not hardware drop).
    let mut p = Prog::new();
    for i in 0..200u64 {
        let pc = p.pc();
        p.insts.push(Inst::memory(
            Op::Prefetch,
            pc,
            Reg::NONE,
            [Reg::NONE; 3],
            MemRef {
                addr: 0x60_0000 + i * 64,
                size: 8,
                kind: MemKind::Prefetch,
            },
        ));
    }
    let s = p.run(CpuConfig::ooo_4way());
    assert_eq!(s.mem.prefetches_issued, 200, "{:?}", s.mem);
    assert!(
        s.mem.prefetches_rejected > 0,
        "12 MSHRs cannot hold 200 fills at once"
    );
}

#[test]
fn return_address_stack_predicts_call_ret_pairs() {
    use visim_isa::BranchKind;
    let mut p = Prog::new();
    // 50 well-nested call/ret pairs with work in between.
    for i in 0..50u64 {
        let target = 0x9000 + i;
        p.insts.push(Inst::control(
            Op::Call,
            0x100 + i,
            [Reg::NONE; 3],
            BranchInfo::linkage(BranchKind::Call, target),
        ));
        for _ in 0..3 {
            p.alu([Reg::NONE; 3]);
        }
        p.insts.push(Inst::control(
            Op::Ret,
            0x200 + i,
            [Reg::NONE; 3],
            BranchInfo::linkage(BranchKind::Ret, target),
        ));
    }
    let s = p.run(CpuConfig::ooo_4way());
    assert_eq!(s.cpu.ras_mispredicts, 0, "nested pairs predict perfectly");

    // A mismatched return mispredicts and costs front-end cycles.
    let mut q = Prog::new();
    for i in 0..50u64 {
        q.insts.push(Inst::control(
            Op::Ret,
            0x300 + i,
            [Reg::NONE; 3],
            BranchInfo::linkage(BranchKind::Ret, 0xdead),
        ));
        for _ in 0..3 {
            q.alu([Reg::NONE; 3]);
        }
    }
    let sq = q.run(CpuConfig::ooo_4way());
    assert_eq!(sq.cpu.ras_mispredicts, 50);
    assert!(
        sq.cycles() > s.cycles(),
        "{} vs {}",
        sq.cycles(),
        s.cycles()
    );
}

#[test]
fn speculative_branch_limit_throttles_dispatch() {
    // A long run of easy branches with no other work: dispatch may hold
    // at most 16 unresolved branches (Table 2).
    let mut p = Prog::new();
    for _ in 0..500 {
        p.branch_at(0x700, true, true);
    }
    let s = p.run(CpuConfig::ooo_4way());
    // One taken branch per fetch cycle is the tighter Table 2 limit.
    assert!(
        s.cycles() >= 500,
        "taken-branch fetch limit enforced: {}",
        s.cycles()
    );
}

#[test]
fn blocking_loads_model_is_strictly_slower() {
    // The §5 related-work contrast: a blocking-loads core cannot
    // overlap misses, so streaming loads pay full serial latency.
    let build = || {
        let mut p = Prog::new();
        for i in 0..200u64 {
            let r = p.load(0x7_0000 + i * 64);
            p.alu([r, Reg::NONE, Reg::NONE]);
        }
        p
    };
    // Out-of-order with non-blocking loads overlaps the misses; the
    // same core with blocking loads serializes them. (A scoreboarded
    // in-order core with an immediate consumer per load serializes too
    // — which is why the paper's kernels skew and unroll.)
    let nb = build().run(CpuConfig::ooo_4way());
    let mut cfg = CpuConfig::ooo_4way();
    cfg.blocking_loads = true;
    let bl = build().run(cfg);
    assert!(
        bl.cycles() as f64 > 1.5 * nb.cycles() as f64,
        "blocking loads serialize misses: {} vs {}",
        bl.cycles(),
        nb.cycles()
    );
    assert!(
        bl.cycles() >= 200 * 100,
        "near serial miss latency: {}",
        bl.cycles()
    );
}

#[test]
fn watchdog_terminates_a_wedged_pipeline_with_a_diagnostic() {
    // A self-referential instruction (reads its own destination) can
    // never see its source become ready: the scoreboard marks the
    // register in flight at dispatch, so issue blocks forever. Without
    // the watchdog this hangs retirement — exactly the "wedged model"
    // failure mode the harness must survive.
    let mut cfg = CpuConfig::ooo_4way();
    cfg.watchdog_cycles = 2_000;
    let mut p = Pipeline::new(cfg, MemConfig::default());
    p.push(Inst::compute(Op::IntAlu, 0x100, Reg(1), [Reg::NONE; 3]));
    p.push(Inst::compute(
        Op::IntAlu,
        0x104,
        Reg(7),
        [Reg(7), Reg::NONE, Reg::NONE],
    ));
    p.push(Inst::compute(Op::IntAlu, 0x108, Reg(2), [Reg::NONE; 3]));
    match p.try_finish() {
        Err(visim_util::SimError::CycleBudget { cycle, diagnostic }) => {
            assert!(cycle >= 2_000, "watchdog respected the budget: {cycle}");
            // The dump must localize the wedge: occupancy, queue depth,
            // and the oldest un-retired instruction.
            assert!(diagnostic.contains("window"), "{diagnostic}");
            assert!(diagnostic.contains("fetch_q"), "{diagnostic}");
            assert!(diagnostic.contains("oldest un-retired"), "{diagnostic}");
            assert!(diagnostic.contains("issued=false"), "{diagnostic}");
        }
        other => panic!("expected CycleBudget, got {other:?}"),
    }
}

#[test]
fn watchdog_does_not_fire_on_legitimate_long_stalls() {
    // A dependent chain through the slowest units plus cache misses:
    // slow, but always making progress.
    let mut cfg = CpuConfig::ooo_4way();
    cfg.watchdog_cycles = 2_000;
    let mut p = Prog::new();
    let mut last = p.load(0x4_0000);
    for i in 0..64 {
        last = p.op(Op::FpDiv, [last, Reg::NONE, Reg::NONE]);
        let l = p.load(0x8_0000 + i * 4096);
        last = p.alu([last, l, Reg::NONE]);
    }
    let s = p.run(cfg);
    assert_eq!(s.cpu.retired, 64 * 2 + 64 + 1);
}

#[test]
fn inflight_destination_reuse_is_a_release_mode_invariant() {
    // Two instructions writing the same register while the first is
    // still in flight: a corrupted emitter stream. The long-latency
    // first write guarantees the overlap.
    let mut p = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
    p.push(Inst::compute(Op::FpDiv, 0x100, Reg(3), [Reg::NONE; 3]));
    p.push(Inst::compute(Op::IntAlu, 0x104, Reg(3), [Reg::NONE; 3]));
    match p.try_finish() {
        Err(visim_util::SimError::Invariant { model, detail }) => {
            assert_eq!(model, "pipeline");
            assert!(detail.contains("reused while in flight"), "{detail}");
        }
        other => panic!("expected Invariant, got {other:?}"),
    }
}

#[test]
fn straddling_access_faults_the_run_in_release_mode() {
    // Emit a load that crosses a cache-line boundary straight into the
    // memory system wrapper: the memory model records the invariant
    // violation and the pipeline surfaces it.
    let mut p = Prog::new();
    let d = p.reg();
    let pc = p.pc();
    p.insts.push(Inst::memory(
        Op::Load,
        pc,
        d,
        [Reg::NONE; 3],
        MemRef {
            addr: 0x1_003c, // 4 bytes below a 64-byte boundary
            size: 8,
            kind: MemKind::Load,
        },
    ));
    let mut pipe = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
    for &i in &p.insts {
        pipe.push(i);
    }
    match pipe.try_finish() {
        Err(visim_util::SimError::Invariant { model, detail }) => {
            assert_eq!(model, "mem");
            assert!(detail.contains("straddle"), "{detail}");
        }
        other => panic!("expected mem Invariant, got {other:?}"),
    }
}
