//! Functional-unit pool with per-cycle issue bandwidth and a
//! non-pipelined floating-point divider.

use visim_isa::{FuKind, Op};

use crate::config::{CpuConfig, FuCounts};

/// Tracks functional-unit availability cycle by cycle.
///
/// Each pipelined unit accepts one new operation per cycle. The FP
/// divider is non-pipelined: a divide occupies one FP unit for its full
/// latency, blocking other FP work on that unit.
#[derive(Debug, Clone)]
pub struct FuPool {
    counts: FuCounts,
    cycle: u64,
    used: [u32; 5],
    /// Busy-until times of the FP units (for non-pipelined divides).
    fp_busy: Vec<u64>,
    fp_div_latency: u64,
}

fn slot(kind: FuKind) -> usize {
    match kind {
        FuKind::IntAlu => 0,
        FuKind::Fp => 1,
        FuKind::Agu => 2,
        FuKind::VisAdder => 3,
        FuKind::VisMul => 4,
    }
}

impl FuPool {
    /// Build the pool from a processor configuration.
    pub fn new(cfg: &CpuConfig) -> Self {
        FuPool {
            counts: cfg.fu,
            cycle: 0,
            used: [0; 5],
            fp_busy: vec![0; cfg.fu.fp as usize],
            fp_div_latency: cfg.lat.fp_div as u64,
        }
    }

    fn count(&self, kind: FuKind) -> u32 {
        match kind {
            FuKind::IntAlu => self.counts.int_alu,
            FuKind::Fp => self.counts.fp,
            FuKind::Agu => self.counts.agu,
            FuKind::VisAdder => self.counts.vis_add,
            FuKind::VisMul => self.counts.vis_mul,
        }
    }

    fn roll(&mut self, now: u64) {
        if now != self.cycle {
            self.cycle = now;
            self.used = [0; 5];
        }
    }

    /// Try to issue `op` at cycle `now`; returns false when no unit of
    /// the required kind has bandwidth this cycle.
    pub fn try_issue(&mut self, op: Op, now: u64) -> bool {
        self.roll(now);
        let kind = op.fu();
        let s = slot(kind);
        if kind == FuKind::Fp {
            // Need an FP unit that is not occupied by a divide and has
            // issue bandwidth left this cycle.
            let free_units = self.fp_busy.iter().filter(|&&b| b <= now).count() as u32;
            if self.used[s] >= free_units {
                return false;
            }
            if op == Op::FpDiv {
                if let Some(b) = self.fp_busy.iter_mut().find(|b| **b <= now) {
                    *b = now + self.fp_div_latency;
                }
            }
            self.used[s] += 1;
            return true;
        }
        if self.used[s] >= self.count(kind) {
            return false;
        }
        self.used[s] += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;

    #[test]
    fn per_cycle_bandwidth_is_enforced() {
        let mut pool = FuPool::new(&CpuConfig::ooo_4way()); // 2 int ALUs
        assert!(pool.try_issue(Op::IntAlu, 10));
        assert!(pool.try_issue(Op::IntAlu, 10));
        assert!(!pool.try_issue(Op::IntAlu, 10), "third int op must wait");
        assert!(pool.try_issue(Op::IntAlu, 11), "next cycle is fresh");
    }

    #[test]
    fn single_vis_units() {
        let mut pool = FuPool::new(&CpuConfig::ooo_4way());
        assert!(pool.try_issue(Op::VisMul, 0));
        assert!(!pool.try_issue(Op::VisPdist, 0), "one VIS multiplier");
        assert!(pool.try_issue(Op::VisAdd, 0), "adder is independent");
        assert!(!pool.try_issue(Op::VisLogic, 0), "one VIS adder");
    }

    #[test]
    fn fp_divide_blocks_its_unit() {
        let mut pool = FuPool::new(&CpuConfig::ooo_4way()); // 2 FP units, div=12
        assert!(pool.try_issue(Op::FpDiv, 0));
        assert!(pool.try_issue(Op::FpDiv, 1), "second unit still free");
        assert!(!pool.try_issue(Op::FpOp, 2), "both units busy dividing");
        assert!(pool.try_issue(Op::FpOp, 12), "first divide finished");
    }

    #[test]
    fn one_way_machine_has_single_units() {
        let mut pool = FuPool::new(&CpuConfig::inorder_1way());
        assert!(pool.try_issue(Op::IntAlu, 0));
        assert!(!pool.try_issue(Op::IntAlu, 0));
        assert!(pool.try_issue(Op::Load, 0));
        assert!(!pool.try_issue(Op::Store, 0), "one AGU");
    }
}
