//! The sink abstraction connecting workloads to a consumer of dynamic
//! instructions.

use visim_isa::{BranchKind, Inst};
use visim_obs::trace::SharedTraceRing;

use crate::predictor::{AgreePredictor, ReturnAddressStack};
use crate::stats::CpuStats;

/// A consumer of dynamic instructions.
///
/// Workloads are written against this trait so the same benchmark code
/// can drive the full timing model ([`crate::Pipeline`]) or a cheap
/// functional counter ([`CountingSink`], used for the paper's Figure 2
/// instruction-mix experiment and for fast functional tests).
pub trait SimSink {
    /// Feed one dynamic instruction, in program order.
    fn push(&mut self, inst: Inst);
}

/// A sink that can record cycle-level events into a shared trace ring.
///
/// Implemented by [`crate::Pipeline`]; normal runs never attach a ring,
/// and every tracing hook hides behind one `Option` check, so the
/// untraced simulation is unchanged.
pub trait TraceSink: SimSink {
    /// Attach `ring`; subsequent simulation records lifecycle spans,
    /// instant events, and per-cycle stall samples into it.
    fn attach_tracer(&mut self, ring: SharedTraceRing);
}

/// The tracing decorator: wrapping a [`TraceSink`] is what turns
/// tracing *on* — code that never constructs a `Traced` sink pays
/// nothing and produces byte-identical results.
///
/// The wrapper attaches the ring at construction and forwards
/// instructions untouched; [`Traced::into_inner`] returns the sink for
/// `try_finish` once the workload is done.
#[derive(Debug)]
pub struct Traced<S: TraceSink> {
    inner: S,
}

impl<S: TraceSink> Traced<S> {
    /// Wrap `inner` and attach `ring` to it.
    pub fn new(mut inner: S, ring: SharedTraceRing) -> Self {
        inner.attach_tracer(ring);
        Traced { inner }
    }

    /// Unwrap the decorated sink (tracing hooks stay attached).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> SimSink for Traced<S> {
    fn push(&mut self, inst: Inst) {
        self.inner.push(inst);
    }
}

/// A sink that only counts: instruction mix, VIS overhead, and branch
/// prediction statistics (through the same predictor structures as the
/// timing model), with no timing simulation.
#[derive(Debug)]
pub struct CountingSink {
    stats: CpuStats,
    pred: AgreePredictor,
    ras: ReturnAddressStack,
}

impl CountingSink {
    /// A counting sink with the default Table 2 predictor sizes.
    pub fn new() -> Self {
        CountingSink {
            stats: CpuStats::new(1),
            pred: AgreePredictor::new(2048),
            ras: ReturnAddressStack::new(32),
        }
    }

    /// Finish and return the accumulated statistics. `cycles` stays 0.
    pub fn finish(self) -> CpuStats {
        self.stats
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }
}

impl Default for CountingSink {
    fn default() -> Self {
        Self::new()
    }
}

impl SimSink for CountingSink {
    fn push(&mut self, inst: Inst) {
        self.stats.note_retired(inst.op);
        if let Some(b) = inst.branch {
            match b.kind {
                BranchKind::Cond => {
                    self.stats.cond_branches += 1;
                    if self.pred.predict(inst.pc, b.backward) != b.taken {
                        self.stats.mispredicts += 1;
                    }
                    self.pred.update(inst.pc, b.backward, b.taken);
                }
                BranchKind::Call => self.ras.push(b.target),
                BranchKind::Ret => {
                    if !self.ras.pop_matches(b.target) {
                        self.stats.ras_mispredicts += 1;
                    }
                }
                BranchKind::Jump => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visim_isa::{BranchInfo, Op, Reg};

    #[test]
    fn counts_mix_and_branches() {
        let mut s = CountingSink::new();
        s.push(Inst::compute(Op::IntAlu, 1, Reg(1), [Reg::NONE; 3]));
        s.push(Inst::compute(
            Op::VisAdd,
            2,
            Reg(2),
            [Reg(1), Reg::NONE, Reg::NONE],
        ));
        // A loop branch taken 100 times then falling through once.
        for i in 0..101 {
            s.push(Inst::control(
                Op::Branch,
                3,
                [Reg::NONE; 3],
                BranchInfo::cond(i < 100, true),
            ));
        }
        let st = s.finish();
        assert_eq!(st.retired, 103);
        assert_eq!(st.mix, [1, 101, 0, 1]);
        assert_eq!(st.cond_branches, 101);
        // Backward bias predicts the loop; only the exit mispredicts.
        assert!(st.mispredicts <= 2, "mispredicts = {}", st.mispredicts);
    }
}
