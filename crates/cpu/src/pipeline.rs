//! The unified pipeline model (in-order and out-of-order issue).
//!
//! The pipeline is *execution driven*: the workload synchronously pushes
//! dynamic instructions (via [`crate::SimSink`]) into a bounded fetch
//! queue, and the model advances its cycle-by-cycle simulation whenever
//! the queue fills. Stage order within a cycle is: complete/resolve →
//! retire → issue → dispatch → drain stores. Dispatch after issue gives
//! every instruction a one-cycle decode stage.

use std::collections::VecDeque;

use visim_isa::{BranchKind, Inst, MemKind, MemRef};
use visim_mem::{MemConfig, MemStats, MemSystem, Request, ServiceLevel};
use visim_obs::codec::ByteReader;
use visim_obs::trace::{InstSpan, InstantKind, SharedTraceRing};
use visim_obs::{Histogram, Registry};
use visim_util::SimError;

use crate::config::{CpuConfig, IssuePolicy};
use crate::fu::FuPool;
use crate::predictor::{AgreePredictor, ReturnAddressStack};
use crate::sink::{SimSink, TraceSink};
use crate::stats::{CpuStats, StallClass};

/// In-flight producer map: register number → producer sequence number.
///
/// Direct-mapped on the low byte of the register number. The emitter
/// allocates SSA-style registers from a counter and at most `window`
/// (≤ 128) producers are in flight, so live registers span fewer than
/// 256 consecutive numbers and never collide — every operation is one
/// array access. Arbitrary (non-emitter) streams stay exactly correct
/// through the `overflow` list, which holds entries whose home slot is
/// taken by a different register.
#[derive(Debug)]
struct RegMap {
    slots: Box<[(u32, u64); 256]>,
    overflow: Vec<(u32, u64)>,
}

/// Empty-slot marker; valid keys never equal it because [`Reg::NONE`]
/// (`u32::MAX`) is filtered out before every map operation.
const REG_EMPTY: u32 = u32::MAX;

impl RegMap {
    fn new() -> Self {
        RegMap {
            slots: Box::new([(REG_EMPTY, 0); 256]),
            overflow: Vec::new(),
        }
    }

    /// Same contract as `HashMap::insert`: records `reg → seq` and
    /// returns the previously mapped sequence number, if any.
    fn insert(&mut self, reg: u32, seq: u64) -> Option<u64> {
        let slot = &mut self.slots[(reg & 255) as usize];
        if slot.0 == reg {
            return Some(std::mem::replace(&mut slot.1, seq));
        }
        if let Some(e) = self.overflow.iter_mut().find(|e| e.0 == reg) {
            return Some(std::mem::replace(&mut e.1, seq));
        }
        if slot.0 == REG_EMPTY {
            *slot = (reg, seq);
        } else {
            self.overflow.push((reg, seq));
        }
        None
    }

    fn get(&self, reg: u32) -> Option<u64> {
        let slot = self.slots[(reg & 255) as usize];
        if slot.0 == reg {
            return Some(slot.1);
        }
        if self.overflow.is_empty() {
            return None;
        }
        self.overflow.iter().find(|e| e.0 == reg).map(|e| e.1)
    }

    fn remove(&mut self, reg: u32) {
        let slot = &mut self.slots[(reg & 255) as usize];
        if slot.0 == reg {
            slot.0 = REG_EMPTY;
            return;
        }
        if let Some(i) = self.overflow.iter().position(|e| e.0 == reg) {
            self.overflow.swap_remove(i);
        }
    }
}

/// Sentinel in [`Slot::src_seqs`]: no (remaining) dependency.
const NO_DEP: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    inst: Inst,
    issued: bool,
    done_at: u64,
    mem_level: Option<ServiceLevel>,
    /// Last issue attempt was rejected by the memory system (MSHR
    /// contention); retry no earlier than `mem_retry_at`.
    mem_blocked: bool,
    mem_retry_at: u64,
    mispredicted: bool,
    resolved: bool,
    /// Producer sequence numbers of the source registers, resolved once
    /// at dispatch (register renaming). Sequence numbers are dense
    /// window indices (`seq - head_seq`), so the per-cycle wake-up check
    /// is flat array indexing with no hash lookups; entries flip to
    /// [`NO_DEP`] as producers complete so satisfied dependencies are
    /// never re-checked.
    src_seqs: [u64; 3],
    /// Lower bound on the next cycle this (unissued) slot could issue.
    /// Derived only from immutable facts — an issued producer's
    /// `done_at` never changes and an instruction never completes the
    /// cycle it issues — so skipping the slot while `now < wake_at`
    /// cannot change any issue cycle.
    wake_at: u64,
}

impl Slot {
    fn new(inst: Inst) -> Self {
        Slot {
            inst,
            issued: false,
            done_at: 0,
            mem_level: None,
            mem_blocked: false,
            mem_retry_at: 0,
            mispredicted: false,
            resolved: false,
            src_seqs: [NO_DEP; 3],
            wake_at: 0,
        }
    }
}

/// A span under construction: lifecycle cycles gathered while the
/// instruction is in flight, completed into an
/// [`InstSpan`] at retirement.
#[derive(Debug, Clone, Copy)]
struct SpanBuild {
    fetch: u64,
    dispatch: u64,
    issue: u64,
    complete: u64,
}

/// Tracing state attached to a pipeline (boxed so the untraced
/// `Pipeline` only grows by one pointer-sized `Option`).
///
/// `fetch_cycles` parallels `fetch_q` and `spans` parallels `window`:
/// entries are pushed and popped at exactly the queue/window push and
/// pop sites, so a window index is also a span index.
#[derive(Debug)]
struct PipeTracer {
    ring: SharedTraceRing,
    fetch_cycles: VecDeque<u64>,
    spans: VecDeque<SpanBuild>,
}

/// Result of a completed simulation.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Pipeline-side statistics (cycles, mix, attribution, branches).
    pub cpu: CpuStats,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Time-weighted L1 MSHR occupancy histogram.
    pub mshr_histogram: Vec<u64>,
    /// Observability metrics accumulated over the run: predictor
    /// training behaviour, RAS pressure, window occupancy, and the
    /// memory system's eviction / MSHR-peak counters.
    pub metrics: Registry,
}

impl Summary {
    /// Total execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.cpu.cycles
    }
}

/// The processor pipeline simulator.
///
/// See the crate documentation for an example.
#[derive(Debug)]
pub struct Pipeline {
    cfg: CpuConfig,
    mem: MemSystem,
    fus: FuPool,
    pred: AgreePredictor,
    ras: ReturnAddressStack,
    fetch_q: VecDeque<Inst>,
    fetch_cap: usize,
    window: VecDeque<Slot>,
    /// Producer sequence number for every register whose producer has not
    /// retired yet; a missing entry means the value is available.
    produced: RegMap,
    head_seq: u64,
    now: u64,
    /// Cycle at which the front end may dispatch again (`u64::MAX` while
    /// an unresolved mispredicted branch blocks it).
    fetch_resume_at: u64,
    unresolved_branches: u32,
    /// Sequence numbers of dispatched-but-unresolved branches.
    unresolved_seqs: Vec<u64>,
    /// Earliest cycle any unresolved branch can complete (the minimum
    /// `done_at` over the issued ones; `u64::MAX` when none is issued —
    /// an unissued branch cannot resolve, and issuing one lowers the
    /// bound). The per-cycle resolution scan is skipped until then.
    resolve_check_at: u64,
    /// Sequence numbers of the unissued window slots, in program order:
    /// the issue scan walks only these instead of the whole window.
    unissued_seqs: Vec<u64>,
    /// Lower bound on the next cycle any unissued slot could issue (the
    /// minimum of their [`Slot::wake_at`] bounds as of the last scan).
    /// While `now < issue_scan_at` the per-cycle issue scan is skipped
    /// entirely: during a long memory stall the window is full of
    /// instructions waiting on an in-flight load's immutable `done_at`,
    /// and walking them every cycle dominated the simulation profile.
    issue_scan_at: u64,
    /// Completion times of loads occupying memory-queue slots.
    inflight_loads: Vec<u64>,
    /// Earliest completion time in `inflight_loads` (`u64::MAX` when
    /// empty): the per-cycle prune only scans when a load can actually
    /// have completed, instead of a `retain` sweep every cycle.
    inflight_min: u64,
    /// Retired stores waiting to be accepted by the L1.
    store_buffer: VecDeque<(Request, u64)>,
    /// With `blocking_loads`, no instruction issues before this cycle.
    issue_blocked_until: u64,
    stats: CpuStats,
    /// Per-cycle instruction-window occupancy (sampled after dispatch).
    window_occ: Histogram,
    /// Cycle at which the pipeline state last changed (watchdog anchor).
    last_progress: u64,
    /// First failure observed: watchdog wedge, model invariant, or a
    /// fault propagated from the memory system. Once set the simulation
    /// stops advancing and `try_finish` reports it.
    fault: Option<SimError>,
    /// Cycle-level tracing state; `None` (the default) in normal runs,
    /// where every hook is one never-taken branch.
    tracer: Option<Box<PipeTracer>>,
}

impl Pipeline {
    /// Build a pipeline over a fresh memory system.
    pub fn new(cfg: CpuConfig, mem_cfg: MemConfig) -> Self {
        let fus = FuPool::new(&cfg);
        let pred = AgreePredictor::new(cfg.predictor_entries);
        let ras = ReturnAddressStack::new(cfg.ras_entries);
        let stats = CpuStats::new(cfg.issue_width);
        Pipeline {
            fetch_cap: (cfg.window as usize * 2).max(64),
            fus,
            pred,
            ras,
            fetch_q: VecDeque::new(),
            window: VecDeque::with_capacity(cfg.window as usize),
            produced: RegMap::new(),
            head_seq: 0,
            now: 0,
            fetch_resume_at: 0,
            unresolved_branches: 0,
            unresolved_seqs: Vec::new(),
            resolve_check_at: u64::MAX,
            unissued_seqs: Vec::new(),
            issue_scan_at: 0,
            inflight_loads: Vec::new(),
            inflight_min: u64::MAX,
            store_buffer: VecDeque::new(),
            issue_blocked_until: 0,
            stats,
            window_occ: Histogram::new(&[1, 2, 4, 8, 16, 32, 64, 128]),
            last_progress: 0,
            fault: None,
            tracer: None,
            mem: MemSystem::new(mem_cfg),
            cfg,
        }
    }

    fn work_pending(&self) -> bool {
        !self.fetch_q.is_empty()
            || !self.window.is_empty()
            || !self.store_buffer.is_empty()
            || !self.inflight_loads.is_empty()
    }

    /// Run the simulation to completion and return the statistics, or
    /// the failure that stopped it: a watchdog-detected wedge
    /// ([`SimError::CycleBudget`]) or a violated model invariant
    /// ([`SimError::Invariant`], from this pipeline or the memory
    /// system).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] observed; the simulation stops at
    /// that point instead of hanging or corrupting statistics.
    pub fn try_finish(mut self) -> Result<Summary, SimError> {
        while self.fault.is_none() && self.work_pending() {
            self.cycle();
        }
        if let Some(fault) = self.fault {
            return Err(fault);
        }
        let hist = self.mem.mshr_histogram(self.now);
        let mut metrics = Registry::new();
        let ps = self.pred.stats();
        metrics.set("cpu.predictor.updates", ps.updates);
        metrics.set("cpu.predictor.bias_agreements", ps.bias_agreements);
        metrics.set("cpu.predictor.flips", ps.flips);
        metrics.set("cpu.ras.overflows", self.ras.overflows());
        metrics.set("cpu.ras.underflows", self.ras.underflows());
        metrics.insert_histogram("cpu.window_occupancy", self.window_occ.clone());
        self.mem.export_metrics(&mut metrics);
        Ok(Summary {
            cpu: self.stats,
            mem: self.mem.stats().clone(),
            mshr_histogram: hist,
            metrics,
        })
    }

    /// Run the simulation to completion and return the statistics.
    ///
    /// # Panics
    ///
    /// Panics on a simulation fault; use [`Pipeline::try_finish`] in
    /// study runs that must degrade gracefully.
    pub fn finish(self) -> Summary {
        self.try_finish()
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// Restore an architectural checkpoint captured by
    /// [`crate::WarmingSink::checkpoint`]: predictor counters,
    /// return-address stack, and cache/MSHR residency. Must be called
    /// on a freshly built pipeline, before any instruction is pushed —
    /// the pipeline then observes its sample window on a warmed machine
    /// with clean statistics. The pipeline and the checkpoint must share
    /// the same processor and memory geometry.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving the pipeline unusable — discard it) on
    /// geometry mismatch, malformed state, or trailing bytes.
    pub fn restore_checkpoint(&mut self, state: &[u8]) -> Result<(), String> {
        if self.now != 0 || !self.fetch_q.is_empty() || !self.window.is_empty() {
            return Err("checkpoint restored into a running pipeline".into());
        }
        let mut r = ByteReader::new(state);
        self.pred.load_state(&mut r)?;
        self.ras.load_state(&mut r)?;
        self.mem.load_state(&mut r)?;
        r.done()
    }

    /// Zero the statistics a sampled window reports — the cycle /
    /// retirement / stall-attribution accumulators and the
    /// window-occupancy histogram — while leaving every piece of
    /// machine state (caches, predictor, RAS, in-flight instructions,
    /// the current cycle) untouched. The sampled runner calls this at
    /// the boundary between a window's detailed warm-up span and its
    /// measured span, so the measurement starts from a *busy* pipeline
    /// instead of the empty one a checkpoint restore leaves behind,
    /// without the warm-up's cycles contaminating the estimate.
    ///
    /// Instructions in flight at the reset retire into the measured
    /// statistics (and the measured span's own tail drains past its
    /// last push) — the two edges model the steady state a window cut
    /// from a longer run would see, which is exactly what the
    /// extrapolation assumes.
    pub fn reset_stats(&mut self) {
        self.stats = CpuStats::new(self.cfg.issue_width);
        self.window_occ = Histogram::new(&[1, 2, 4, 8, 16, 32, 64, 128]);
    }

    /// The first failure observed so far, if any.
    pub fn fault(&self) -> Option<&SimError> {
        self.fault.as_ref()
    }

    /// The processor configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    fn mem_queue_used(&self) -> usize {
        self.inflight_loads.len() + self.store_buffer.len()
    }

    fn record_fault(&mut self, fault: SimError) {
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    /// Occupancy/depth fingerprint: unchanged across a cycle means the
    /// machine made no externally-visible progress that cycle.
    fn progress_signature(&self) -> (u64, usize, usize, usize, usize) {
        (
            self.head_seq,
            self.window.len(),
            self.fetch_q.len(),
            self.store_buffer.len(),
            self.inflight_loads.len(),
        )
    }

    /// State dump attached to a watchdog abort (DESIGN.md-level detail:
    /// enough to localize a wedged model without rerunning).
    fn wedge_diagnostic(&self) -> String {
        let oldest = match self.window.front() {
            Some(s) => format!(
                "seq {} op {:?} pc {:#x} issued={} done_at={} mem_blocked={} retry_at={} resolved={}",
                self.head_seq,
                s.inst.op,
                s.inst.pc,
                s.issued,
                s.done_at,
                s.mem_blocked,
                s.mem_retry_at,
                s.resolved
            ),
            None => "none".into(),
        };
        format!(
            "window {}/{} fetch_q {} store_buffer {} inflight_loads {} \
             unissued {} fetch_resume_at {} unresolved_branches {} \
             issue_blocked_until {}; oldest un-retired: {oldest}",
            self.window.len(),
            self.cfg.window,
            self.fetch_q.len(),
            self.store_buffer.len(),
            self.inflight_loads.len(),
            self.unissued_seqs.len(),
            self.fetch_resume_at,
            self.unresolved_branches,
            self.issue_blocked_until
        )
    }

    /// Fast-forward over cycles in which every pipeline stage is a
    /// provable no-op, accounting them in bulk.
    ///
    /// Each stage is already guarded by a lower bound on the next cycle
    /// it can act (`inflight_min`, `resolve_check_at`, `issue_scan_at`,
    /// the front slot's `done_at`, `fetch_resume_at`, the store buffer's
    /// retry time). When *all* of those bounds lie in the future, the
    /// intervening cycles only run the per-cycle accounting — the same
    /// `(0, stall)` attribution and window occupancy every time, because
    /// no stage mutates any state they read — so they can be added in
    /// one step. The skip stops at the earliest bound (clamped to the
    /// watchdog deadline so a wedged model still faults at the exact
    /// same cycle), which keeps every statistic, fault, and text output
    /// byte-identical to the cycle-by-cycle loop.
    fn idle_skip(&mut self) {
        if self.tracer.is_some() {
            return; // traced runs sample the ring every cycle
        }
        let now = self.now;
        if self.inflight_min <= now || self.resolve_check_at <= now {
            return;
        }
        let mut next = self.inflight_min.min(self.resolve_check_at);
        // Retire: blocked on the front slot; its stall classification is
        // constant while no other stage acts.
        let stall = match self.window.front() {
            Some(s) if !s.issued => {
                if s.inst.op.is_mem() && s.mem_blocked {
                    StallClass::L1Hit
                } else {
                    StallClass::FuStall
                }
            }
            Some(s) => {
                if s.done_at <= now {
                    return; // retires this cycle
                }
                next = next.min(s.done_at);
                match s.mem_level {
                    Some(level) if level.is_l1_miss() => StallClass::L1Miss,
                    Some(_) => StallClass::L1Hit,
                    None if s.inst.op.is_mem() => StallClass::L1Hit,
                    None => StallClass::FuStall,
                }
            }
            None => StallClass::FuStall,
        };
        // Issue.
        if !self.unissued_seqs.is_empty() {
            let mut eligible_at = self.issue_scan_at;
            if self.cfg.blocking_loads {
                eligible_at = eligible_at.max(self.issue_blocked_until);
            }
            if eligible_at <= now {
                return;
            }
            next = next.min(eligible_at);
        }
        // Dispatch.
        if !self.fetch_q.is_empty() && self.window.len() < self.cfg.window as usize {
            if self.fetch_resume_at > now {
                next = next.min(self.fetch_resume_at);
            } else if let Some(b) = self.fetch_q.front().and_then(|i| i.branch) {
                if self.unresolved_branches >= self.cfg.max_spec_branches {
                    // Blocked until a branch resolves; resolution is
                    // bounded by the resolve/issue bounds above.
                } else if b.taken && self.cfg.taken_per_cycle == 0 {
                    // Permanently blocked: only the watchdog ends this.
                } else {
                    return; // dispatches this cycle
                }
            } else {
                return; // dispatches this cycle
            }
        }
        // Stores.
        if let Some(&(_, retry_at)) = self.store_buffer.front() {
            if retry_at <= now {
                return;
            }
            next = next.min(retry_at);
        }
        // Let the watchdog cycle itself run normally so a wedge faults
        // at the exact cycle the unskipped loop would report.
        next = next.min(
            self.last_progress
                .saturating_add(self.cfg.watchdog_cycles)
                .saturating_add(1),
        );
        if next <= now {
            return;
        }
        let n = next - now;
        self.stats.account_idle(n, stall);
        self.window_occ.observe_n(self.window.len() as u64, n);
        self.now = next;
    }

    fn cycle(&mut self) {
        self.idle_skip();
        let sig = self.progress_signature();
        let now = self.now;
        if let Some(t) = self.tracer.as_mut() {
            // Keep the shared ring's clock current so hook sites without
            // their own notion of time (predictor, cache evictions) can
            // timestamp events.
            t.ring.borrow_mut().set_now(now);
        }
        // Lazy prune: only scan when the earliest deadline has arrived;
        // completed loads swap-remove out (order is irrelevant, only the
        // occupancy count matters).
        if self.inflight_min <= now {
            let mut min = u64::MAX;
            let mut i = 0;
            while i < self.inflight_loads.len() {
                let t = self.inflight_loads[i];
                if t <= now {
                    self.inflight_loads.swap_remove(i);
                } else {
                    min = min.min(t);
                    i += 1;
                }
            }
            self.inflight_min = min;
        }
        self.resolve_branches();
        let (retired, stall) = self.retire();
        self.issue();
        self.dispatch();
        self.drain_stores();
        self.stats.account_cycle(retired, stall);
        if let Some(t) = self.tracer.as_mut() {
            // Same (retired, stall) inputs as `account_cycle`, so the
            // ring's attribution equals the aggregate exactly.
            t.ring
                .borrow_mut()
                .sample(retired, stall.map(StallClass::to_trace));
        }
        self.window_occ.observe(self.window.len() as u64);
        // Fault propagation and the cycle-budget watchdog. A wedged
        // model (an instruction that can never retire) would otherwise
        // spin this loop forever; a violated memory-model invariant
        // would silently corrupt the statistics.
        if let Some(fault) = self.mem.take_fault() {
            self.record_fault(fault);
        }
        if self.mem_queue_used() > self.cfg.mem_queue as usize {
            self.record_fault(SimError::Invariant {
                model: "pipeline",
                detail: format!(
                    "memory queue oversubscribed: {} in flight, capacity {}",
                    self.mem_queue_used(),
                    self.cfg.mem_queue
                ),
            });
        }
        if self.progress_signature() != sig {
            self.last_progress = self.now;
        } else if self.now - self.last_progress > self.cfg.watchdog_cycles && self.work_pending() {
            self.record_fault(SimError::CycleBudget {
                cycle: self.now,
                diagnostic: self.wedge_diagnostic(),
            });
        }
        self.now += 1;
    }

    /// Mark completed branches resolved; a resolved misprediction
    /// re-opens the front end after the refill penalty. Skipped until
    /// [`Pipeline::resolve_check_at`] — a branch resolves exactly at its
    /// issued `done_at`, so scanning earlier can never find one.
    fn resolve_branches(&mut self) {
        let now = self.now;
        if now < self.resolve_check_at {
            return;
        }
        let head = self.head_seq;
        let window = &mut self.window;
        let penalty = self.cfg.mispredict_penalty;
        let mut resolved_misp_at = None;
        let mut resolved = 0u32;
        let mut next_check = u64::MAX;
        // Swap-remove scan: order is irrelevant (at most one mispredicted
        // branch is ever in flight, since fetch stalls until it resolves).
        let seqs = &mut self.unresolved_seqs;
        let mut i = 0;
        while i < seqs.len() {
            let ix = (seqs[i] - head) as usize;
            let slot = &mut window[ix];
            if slot.issued && slot.done_at <= now {
                slot.resolved = true;
                resolved += 1;
                if slot.mispredicted {
                    resolved_misp_at = Some(slot.done_at);
                }
                seqs.swap_remove(i);
            } else {
                if slot.issued {
                    next_check = next_check.min(slot.done_at);
                }
                i += 1;
            }
        }
        self.resolve_check_at = next_check;
        self.unresolved_branches -= resolved;
        if let Some(done_at) = resolved_misp_at {
            self.fetch_resume_at = done_at + penalty;
        }
    }

    /// Retire up to `issue_width` completed instructions in order.
    /// Returns the retired count and the stall class of the first
    /// instruction that could not retire.
    fn retire(&mut self) -> (u32, Option<StallClass>) {
        let mut retired = 0;
        while retired < self.cfg.issue_width {
            let Some(slot) = self.window.front() else {
                return (retired, Some(StallClass::FuStall));
            };
            if !slot.issued {
                let class = if slot.inst.op.is_mem() && slot.mem_blocked {
                    StallClass::L1Hit // MSHR / memory-structure contention
                } else {
                    StallClass::FuStall
                };
                return (retired, Some(class));
            }
            if slot.done_at > self.now {
                let class = match slot.mem_level {
                    Some(level) if level.is_l1_miss() => StallClass::L1Miss,
                    Some(_) => StallClass::L1Hit,
                    None if slot.inst.op.is_mem() => StallClass::L1Hit,
                    None => StallClass::FuStall,
                };
                return (retired, Some(class));
            }
            // Stores and prefetches enter the memory queue at
            // retirement and need a slot there.
            if let Some(mem) = slot.inst.mem {
                if mem.kind.is_store() || mem.kind == MemKind::Prefetch {
                    if self.mem_queue_used() >= self.cfg.mem_queue as usize {
                        return (retired, Some(StallClass::L1Hit));
                    }
                    self.store_buffer
                        .push_back((Request::new(mem.addr, mem.size, mem.kind), self.now));
                }
            }
            let slot = self.window.pop_front().expect("checked above");
            if let Some(t) = self.tracer.as_mut() {
                let sb = t.spans.pop_front().expect("spans parallel window");
                t.ring.borrow_mut().span(InstSpan {
                    seq: self.head_seq,
                    pc: slot.inst.pc,
                    op: slot.inst.op.name(),
                    fetch: sb.fetch,
                    dispatch: sb.dispatch,
                    issue: sb.issue,
                    complete: sb.complete,
                    retire: self.now,
                });
            }
            self.head_seq += 1;
            if slot.inst.dst.is_some() {
                self.produced.remove(slot.inst.dst.0);
            }
            self.stats.note_retired(slot.inst.op);
            retired += 1;
        }
        (retired, None)
    }

    /// True when every producer in the slot's dispatch-time renamed
    /// dependency list has completed, plus a lower bound on the cycle
    /// the sources can all be ready (meaningful only when not ready):
    /// an issued producer completes exactly at its immutable `done_at`,
    /// an unissued one no earlier than next cycle. Satisfied entries
    /// flip to [`NO_DEP`] in place, so a dependency is checked at most
    /// once after it completes — no hash lookups on this per-cycle path
    /// (the `produced` map is only consulted once per instruction, at
    /// dispatch).
    fn sources_ready_at(&mut self, i: usize) -> (bool, u64) {
        let mut deps = self.window[i].src_seqs;
        let mut ready = true;
        let mut bound = 0u64;
        for d in deps.iter_mut() {
            if *d == NO_DEP {
                continue;
            }
            if *d < self.head_seq {
                *d = NO_DEP; // producer retired
                continue;
            }
            let p = &self.window[(*d - self.head_seq) as usize];
            if p.issued && p.done_at <= self.now {
                *d = NO_DEP;
            } else {
                ready = false;
                // An issued producer completes exactly at its immutable
                // `done_at`; an unissued one cannot issue before its own
                // `wake_at` (a sound lower bound, inductively), so its
                // value exists no earlier than that — this propagates
                // wake-up bounds down dependence chains, letting a whole
                // chain behind a cache miss sleep until the fill.
                bound = bound.max(if p.issued {
                    p.done_at
                } else {
                    p.wake_at.max(self.now + 1)
                });
            }
        }
        self.window[i].src_seqs = deps;
        (ready, bound)
    }

    /// Issue ready instructions (program-order scan; the in-order policy
    /// stops at the first unissued instruction that cannot go).
    ///
    /// Every blocked slot records a `wake_at` lower bound and the scan
    /// itself is gated on `issue_scan_at` (the minimum of those bounds):
    /// both derive only from immutable completion times and
    /// next-cycle-at-the-earliest conservatism, so the cycle at which
    /// each instruction actually issues — and every observable statistic
    /// — is identical to the exhaustive per-cycle scan.
    fn issue(&mut self) {
        let mut issued = 0;
        let now = self.now;
        if self.cfg.blocking_loads && now < self.issue_blocked_until {
            return;
        }
        if self.unissued_seqs.is_empty() || now < self.issue_scan_at {
            return; // provably nothing can issue this cycle
        }
        // The scan walks only the unissued slots, in program order,
        // compacting issued entries out of the list in place. Taken out
        // of `self` for the duration to keep the borrow checker happy.
        let mut seqs = std::mem::take(&mut self.unissued_seqs);
        // Rebuilt during the scan; any early exit that leaves unissued
        // slots unexamined must clamp it to `now + 1`.
        let mut next_scan = u64::MAX;
        let mut keep = 0; // entries [0, keep) stay unissued
        let mut r = 0;
        while r < seqs.len() {
            if issued >= self.cfg.issue_width {
                next_scan = next_scan.min(now + 1);
                break;
            }
            let seq = seqs[r];
            let i = (seq - self.head_seq) as usize;
            if now < self.window[i].wake_at {
                // Cannot issue yet (bound argument above); skip without
                // touching dependence or memory state. Flipping satisfied
                // deps to NO_DEP merely happens later, which no statistic
                // observes.
                next_scan = next_scan.min(self.window[i].wake_at);
                if self.cfg.policy == IssuePolicy::InOrder {
                    break; // later slots cannot issue before this one
                }
                seqs[keep] = seq;
                keep += 1;
                r += 1;
                continue;
            }
            let inst = self.window[i].inst;
            let mut blocked = false;

            let (ready, dep_bound) = self.sources_ready_at(i);
            if !ready || (self.window[i].mem_blocked && now < self.window[i].mem_retry_at) {
                blocked = true;
            } else if let Some(mem) = inst.mem {
                blocked = !self.try_issue_mem(i, mem, &inst);
            } else if self.fus.try_issue(inst.op, now) {
                let slot = &mut self.window[i];
                slot.issued = true;
                slot.done_at = now + inst.op.latency(&self.cfg.lat) as u64;
            } else {
                blocked = true;
            }

            if self.window[i].issued {
                if let Some(t) = self.tracer.as_mut() {
                    let sb = &mut t.spans[i];
                    sb.issue = now;
                    sb.complete = self.window[i].done_at;
                }
                if inst.branch.is_some() {
                    // An unresolved branch just gained a completion time.
                    self.resolve_check_at = self.resolve_check_at.min(self.window[i].done_at);
                }
                issued += 1;
                r += 1; // drops this entry from the unissued list
                if self.cfg.blocking_loads && self.issue_blocked_until > now {
                    next_scan = next_scan.min(now + 1);
                    break; // a blocking load was just issued
                }
            } else {
                debug_assert!(blocked);
                // Memory contention carries its own retry bound; a busy
                // functional unit (or a structural reject) may clear next
                // cycle.
                let slot = &mut self.window[i];
                let mem_bound = if slot.mem_blocked {
                    slot.mem_retry_at
                } else {
                    0
                };
                slot.wake_at = dep_bound.max(mem_bound).max(now + 1);
                next_scan = next_scan.min(slot.wake_at);
                seqs[keep] = seq;
                keep += 1;
                r += 1;
                if self.cfg.policy == IssuePolicy::InOrder {
                    break; // strict program-order issue
                }
            }
        }
        // Close the gap between the compacted prefix and the unexamined
        // tail left by an early exit.
        if keep < r {
            seqs.copy_within(r.., keep);
        }
        seqs.truncate(keep + (seqs.len() - r));
        self.unissued_seqs = seqs;
        self.issue_scan_at = next_scan;
    }

    /// Issue the memory instruction in window slot `i`. Returns false
    /// when it must keep waiting.
    fn try_issue_mem(&mut self, i: usize, mem: MemRef, inst: &Inst) -> bool {
        let now = self.now;
        let is_store = mem.kind.is_store();
        let is_prefetch = mem.kind == MemKind::Prefetch;
        if !is_store && !is_prefetch && self.mem_queue_used() >= self.cfg.mem_queue as usize {
            return false; // loads need a memory-queue slot
        }
        if !self.fus.try_issue(inst.op, now) {
            return false; // both AGUs busy this cycle
        }
        if is_store || is_prefetch {
            // Address generation only; stores and (non-binding)
            // prefetches drain through the memory queue after
            // retirement, so they never stall the core directly.
            let slot = &mut self.window[i];
            slot.issued = true;
            slot.done_at = now + 1;
            return true;
        }
        let req = Request::new(mem.addr, mem.size, mem.kind);
        match self.mem.access(req, now + 1) {
            Ok(r) => {
                let slot = &mut self.window[i];
                slot.issued = true;
                slot.done_at = r.done_at;
                slot.mem_level = Some(r.level);
                self.inflight_loads.push(r.done_at);
                self.inflight_min = self.inflight_min.min(r.done_at);
                if self.cfg.blocking_loads {
                    self.issue_blocked_until = r.done_at;
                }
                true
            }
            Err(rej) => {
                // Demand accesses wait for MSHR capacity and retry.
                let slot = &mut self.window[i];
                slot.mem_blocked = true;
                slot.mem_retry_at = rej.retry_at.max(now + 1);
                false
            }
        }
    }

    /// Move instructions from the fetch queue into the window.
    fn dispatch(&mut self) {
        if self.now < self.fetch_resume_at {
            return;
        }
        let mut dispatched = 0;
        let mut taken = 0;
        while dispatched < self.cfg.issue_width
            && self.window.len() < self.cfg.window as usize
            && !self.fetch_q.is_empty()
        {
            // Branch limits are checked before consuming the instruction.
            if let Some(b) = self.fetch_q.front().and_then(|i| i.branch) {
                if self.unresolved_branches >= self.cfg.max_spec_branches {
                    break;
                }
                if b.taken && taken >= self.cfg.taken_per_cycle {
                    break;
                }
            }
            let inst = self.fetch_q.pop_front().expect("non-empty");
            if let Some(t) = self.tracer.as_mut() {
                // Instructions pushed before the tracer was attached
                // have no recorded fetch cycle; fall back to now.
                let fetch = t.fetch_cycles.pop_front().unwrap_or(self.now);
                t.spans.push_back(SpanBuild {
                    fetch,
                    dispatch: self.now,
                    issue: 0,
                    complete: 0,
                });
            }
            let seq = self.head_seq + self.window.len() as u64;
            let mut slot = Slot::new(inst);
            if inst.dst.is_some() {
                let prev = self.produced.insert(inst.dst.0, seq);
                // The emitter allocates SSA-style registers; an in-flight
                // duplicate destination would corrupt the scoreboard.
                // Checked in release builds so a corrupted emitter stream
                // fails a study run loudly instead of producing garbage
                // cycle counts.
                if prev.is_some() {
                    self.record_fault(SimError::Invariant {
                        model: "pipeline",
                        detail: format!(
                            "destination register {:?} reused while in flight at pc {:#x} (seq {seq})",
                            inst.dst, inst.pc
                        ),
                    });
                }
            }
            // Rename: resolve each source register to its producer's
            // sequence number now, so the issue loop never touches the
            // register map again for this instruction. The destination
            // is registered first so a (corrupt, non-SSA) instruction
            // that reads its own destination still deadlocks against
            // itself — the watchdog's wedged-model case — exactly as
            // the issue-time scoreboard lookup did.
            for (k, r) in inst.srcs.iter().enumerate() {
                if r.is_some() {
                    if let Some(pseq) = self.produced.get(r.0) {
                        slot.src_seqs[k] = pseq;
                    }
                }
            }
            if let Some(b) = inst.branch {
                self.unresolved_branches += 1;
                self.unresolved_seqs.push(seq);
                let correct = match b.kind {
                    BranchKind::Cond => {
                        self.stats.cond_branches += 1;
                        let p = self.pred.predict(inst.pc, b.backward);
                        self.pred.update(inst.pc, b.backward, b.taken);
                        let ok = p == b.taken;
                        if !ok {
                            self.stats.mispredicts += 1;
                        }
                        ok
                    }
                    BranchKind::Jump => true,
                    BranchKind::Call => {
                        self.ras.push(b.target);
                        true
                    }
                    BranchKind::Ret => {
                        let ok = self.ras.pop_matches(b.target);
                        if !ok {
                            self.stats.ras_mispredicts += 1;
                        }
                        ok
                    }
                };
                if b.taken {
                    taken += 1;
                }
                if !correct {
                    slot.mispredicted = true;
                    if let Some(t) = self.tracer.as_mut() {
                        t.ring
                            .borrow_mut()
                            .instant(InstantKind::BranchMispredict, inst.pc, 0);
                    }
                    self.window.push_back(slot);
                    self.unissued_seqs.push(seq);
                    self.issue_scan_at = 0;
                    // Fetch stalls until this branch resolves.
                    self.fetch_resume_at = u64::MAX;
                    return;
                }
            }
            self.window.push_back(slot);
            self.unissued_seqs.push(seq);
            self.issue_scan_at = 0;
            dispatched += 1;
        }
    }

    /// Try to hand buffered stores to the L1 (up to one per port per
    /// cycle); rejected stores retry and back the queue up, reproducing
    /// the paper's write-backup MSHR contention.
    fn drain_stores(&mut self) {
        let ports = self.mem.config().l1.ports;
        for _ in 0..ports {
            let Some(&(req, retry_at)) = self.store_buffer.front() else {
                return;
            };
            if retry_at > self.now {
                return;
            }
            match self.mem.access(req, self.now) {
                Ok(_) => {
                    self.store_buffer.pop_front();
                }
                Err(rej) => {
                    self.store_buffer[0].1 = rej.retry_at.max(self.now + 1);
                    return;
                }
            }
        }
    }
}

impl SimSink for Pipeline {
    fn push(&mut self, inst: Inst) {
        self.fetch_q.push_back(inst);
        if let Some(t) = self.tracer.as_mut() {
            t.fetch_cycles.push_back(self.now);
        }
        // Once faulted, stop simulating: the workload keeps pushing (it
        // cannot observe the failure mid-emit), instructions accumulate
        // in the unbounded fetch queue, and `try_finish` reports the
        // fault.
        while self.fetch_q.len() > self.fetch_cap && self.fault.is_none() {
            self.cycle();
        }
    }
}

impl TraceSink for Pipeline {
    fn attach_tracer(&mut self, ring: SharedTraceRing) {
        ring.borrow_mut().set_width(self.cfg.issue_width);
        self.pred.attach_tracer(ring.clone());
        self.mem.attach_tracer(ring.clone());
        self.tracer = Some(Box::new(PipeTracer {
            ring,
            fetch_cycles: VecDeque::new(),
            spans: VecDeque::new(),
        }));
    }
}
