//! The unified pipeline model (in-order and out-of-order issue).
//!
//! The pipeline is *execution driven*: the workload synchronously pushes
//! dynamic instructions (via [`crate::SimSink`]) into a bounded fetch
//! queue, and the model advances its cycle-by-cycle simulation whenever
//! the queue fills. Stage order within a cycle is: complete/resolve →
//! retire → issue → dispatch → drain stores. Dispatch after issue gives
//! every instruction a one-cycle decode stage.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use visim_isa::{BranchKind, Inst, MemKind, MemRef, Reg};
use visim_mem::{MemConfig, MemStats, MemSystem, Request, ServiceLevel};
use visim_obs::trace::{InstSpan, InstantKind, SharedTraceRing};
use visim_obs::{Histogram, Registry};
use visim_util::SimError;

use crate::config::{CpuConfig, IssuePolicy};
use crate::fu::FuPool;
use crate::predictor::{AgreePredictor, ReturnAddressStack};
use crate::sink::{SimSink, TraceSink};
use crate::stats::{CpuStats, StallClass};

/// A trivial multiplicative hasher for dense `Reg` keys (the default
/// SipHash dominates the simulation profile otherwise).
#[derive(Debug, Default)]
struct RegHasher(u64);

impl Hasher for RegHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16;
    }
}

/// Sentinel in [`Slot::src_seqs`]: no (remaining) dependency.
const NO_DEP: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    inst: Inst,
    issued: bool,
    done_at: u64,
    mem_level: Option<ServiceLevel>,
    /// Last issue attempt was rejected by the memory system (MSHR
    /// contention); retry no earlier than `mem_retry_at`.
    mem_blocked: bool,
    mem_retry_at: u64,
    mispredicted: bool,
    resolved: bool,
    /// Producer sequence numbers of the source registers, resolved once
    /// at dispatch (register renaming). Sequence numbers are dense
    /// window indices (`seq - head_seq`), so the per-cycle wake-up check
    /// is flat array indexing with no hash lookups; entries flip to
    /// [`NO_DEP`] as producers complete so satisfied dependencies are
    /// never re-checked.
    src_seqs: [u64; 3],
}

impl Slot {
    fn new(inst: Inst) -> Self {
        Slot {
            inst,
            issued: false,
            done_at: 0,
            mem_level: None,
            mem_blocked: false,
            mem_retry_at: 0,
            mispredicted: false,
            resolved: false,
            src_seqs: [NO_DEP; 3],
        }
    }
}

/// A span under construction: lifecycle cycles gathered while the
/// instruction is in flight, completed into an
/// [`InstSpan`] at retirement.
#[derive(Debug, Clone, Copy)]
struct SpanBuild {
    fetch: u64,
    dispatch: u64,
    issue: u64,
    complete: u64,
}

/// Tracing state attached to a pipeline (boxed so the untraced
/// `Pipeline` only grows by one pointer-sized `Option`).
///
/// `fetch_cycles` parallels `fetch_q` and `spans` parallels `window`:
/// entries are pushed and popped at exactly the queue/window push and
/// pop sites, so a window index is also a span index.
#[derive(Debug)]
struct PipeTracer {
    ring: SharedTraceRing,
    fetch_cycles: VecDeque<u64>,
    spans: VecDeque<SpanBuild>,
}

/// Result of a completed simulation.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Pipeline-side statistics (cycles, mix, attribution, branches).
    pub cpu: CpuStats,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Time-weighted L1 MSHR occupancy histogram.
    pub mshr_histogram: Vec<u64>,
    /// Observability metrics accumulated over the run: predictor
    /// training behaviour, RAS pressure, window occupancy, and the
    /// memory system's eviction / MSHR-peak counters.
    pub metrics: Registry,
}

impl Summary {
    /// Total execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.cpu.cycles
    }
}

/// The processor pipeline simulator.
///
/// See the crate documentation for an example.
#[derive(Debug)]
pub struct Pipeline {
    cfg: CpuConfig,
    mem: MemSystem,
    fus: FuPool,
    pred: AgreePredictor,
    ras: ReturnAddressStack,
    fetch_q: VecDeque<Inst>,
    fetch_cap: usize,
    window: VecDeque<Slot>,
    /// Producer sequence number for every register whose producer has not
    /// retired yet; a missing entry means the value is available.
    produced: HashMap<Reg, u64, BuildHasherDefault<RegHasher>>,
    head_seq: u64,
    now: u64,
    /// Cycle at which the front end may dispatch again (`u64::MAX` while
    /// an unresolved mispredicted branch blocks it).
    fetch_resume_at: u64,
    unresolved_branches: u32,
    /// Sequence numbers of dispatched-but-unresolved branches.
    unresolved_seqs: Vec<u64>,
    /// Window index below which every slot has issued.
    issue_frontier: usize,
    /// Completion times of loads occupying memory-queue slots.
    inflight_loads: Vec<u64>,
    /// Earliest completion time in `inflight_loads` (`u64::MAX` when
    /// empty): the per-cycle prune only scans when a load can actually
    /// have completed, instead of a `retain` sweep every cycle.
    inflight_min: u64,
    /// Retired stores waiting to be accepted by the L1.
    store_buffer: VecDeque<(Request, u64)>,
    /// With `blocking_loads`, no instruction issues before this cycle.
    issue_blocked_until: u64,
    stats: CpuStats,
    /// Per-cycle instruction-window occupancy (sampled after dispatch).
    window_occ: Histogram,
    /// Cycle at which the pipeline state last changed (watchdog anchor).
    last_progress: u64,
    /// First failure observed: watchdog wedge, model invariant, or a
    /// fault propagated from the memory system. Once set the simulation
    /// stops advancing and `try_finish` reports it.
    fault: Option<SimError>,
    /// Cycle-level tracing state; `None` (the default) in normal runs,
    /// where every hook is one never-taken branch.
    tracer: Option<Box<PipeTracer>>,
}

impl Pipeline {
    /// Build a pipeline over a fresh memory system.
    pub fn new(cfg: CpuConfig, mem_cfg: MemConfig) -> Self {
        let fus = FuPool::new(&cfg);
        let pred = AgreePredictor::new(cfg.predictor_entries);
        let ras = ReturnAddressStack::new(cfg.ras_entries);
        let stats = CpuStats::new(cfg.issue_width);
        Pipeline {
            fetch_cap: (cfg.window as usize * 2).max(64),
            fus,
            pred,
            ras,
            fetch_q: VecDeque::new(),
            window: VecDeque::with_capacity(cfg.window as usize),
            produced: HashMap::default(),
            head_seq: 0,
            now: 0,
            fetch_resume_at: 0,
            unresolved_branches: 0,
            unresolved_seqs: Vec::new(),
            issue_frontier: 0,
            inflight_loads: Vec::new(),
            inflight_min: u64::MAX,
            store_buffer: VecDeque::new(),
            issue_blocked_until: 0,
            stats,
            window_occ: Histogram::new(&[1, 2, 4, 8, 16, 32, 64, 128]),
            last_progress: 0,
            fault: None,
            tracer: None,
            mem: MemSystem::new(mem_cfg),
            cfg,
        }
    }

    fn work_pending(&self) -> bool {
        !self.fetch_q.is_empty()
            || !self.window.is_empty()
            || !self.store_buffer.is_empty()
            || !self.inflight_loads.is_empty()
    }

    /// Run the simulation to completion and return the statistics, or
    /// the failure that stopped it: a watchdog-detected wedge
    /// ([`SimError::CycleBudget`]) or a violated model invariant
    /// ([`SimError::Invariant`], from this pipeline or the memory
    /// system).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] observed; the simulation stops at
    /// that point instead of hanging or corrupting statistics.
    pub fn try_finish(mut self) -> Result<Summary, SimError> {
        while self.fault.is_none() && self.work_pending() {
            self.cycle();
        }
        if let Some(fault) = self.fault {
            return Err(fault);
        }
        let hist = self.mem.mshr_histogram(self.now);
        let mut metrics = Registry::new();
        let ps = self.pred.stats();
        metrics.set("cpu.predictor.updates", ps.updates);
        metrics.set("cpu.predictor.bias_agreements", ps.bias_agreements);
        metrics.set("cpu.predictor.flips", ps.flips);
        metrics.set("cpu.ras.overflows", self.ras.overflows());
        metrics.set("cpu.ras.underflows", self.ras.underflows());
        metrics.insert_histogram("cpu.window_occupancy", self.window_occ.clone());
        self.mem.export_metrics(&mut metrics);
        Ok(Summary {
            cpu: self.stats,
            mem: self.mem.stats().clone(),
            mshr_histogram: hist,
            metrics,
        })
    }

    /// Run the simulation to completion and return the statistics.
    ///
    /// # Panics
    ///
    /// Panics on a simulation fault; use [`Pipeline::try_finish`] in
    /// study runs that must degrade gracefully.
    pub fn finish(self) -> Summary {
        self.try_finish()
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// The first failure observed so far, if any.
    pub fn fault(&self) -> Option<&SimError> {
        self.fault.as_ref()
    }

    /// The processor configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    fn mem_queue_used(&self) -> usize {
        self.inflight_loads.len() + self.store_buffer.len()
    }

    fn record_fault(&mut self, fault: SimError) {
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    /// Occupancy/depth fingerprint: unchanged across a cycle means the
    /// machine made no externally-visible progress that cycle.
    fn progress_signature(&self) -> (u64, usize, usize, usize, usize) {
        (
            self.head_seq,
            self.window.len(),
            self.fetch_q.len(),
            self.store_buffer.len(),
            self.inflight_loads.len(),
        )
    }

    /// State dump attached to a watchdog abort (DESIGN.md-level detail:
    /// enough to localize a wedged model without rerunning).
    fn wedge_diagnostic(&self) -> String {
        let oldest = match self.window.front() {
            Some(s) => format!(
                "seq {} op {:?} pc {:#x} issued={} done_at={} mem_blocked={} retry_at={} resolved={}",
                self.head_seq,
                s.inst.op,
                s.inst.pc,
                s.issued,
                s.done_at,
                s.mem_blocked,
                s.mem_retry_at,
                s.resolved
            ),
            None => "none".into(),
        };
        format!(
            "window {}/{} fetch_q {} store_buffer {} inflight_loads {} \
             issue_frontier {} fetch_resume_at {} unresolved_branches {} \
             issue_blocked_until {}; oldest un-retired: {oldest}",
            self.window.len(),
            self.cfg.window,
            self.fetch_q.len(),
            self.store_buffer.len(),
            self.inflight_loads.len(),
            self.issue_frontier,
            self.fetch_resume_at,
            self.unresolved_branches,
            self.issue_blocked_until
        )
    }

    fn cycle(&mut self) {
        let sig = self.progress_signature();
        let now = self.now;
        if let Some(t) = self.tracer.as_mut() {
            // Keep the shared ring's clock current so hook sites without
            // their own notion of time (predictor, cache evictions) can
            // timestamp events.
            t.ring.borrow_mut().set_now(now);
        }
        // Lazy prune: only scan when the earliest deadline has arrived;
        // completed loads swap-remove out (order is irrelevant, only the
        // occupancy count matters).
        if self.inflight_min <= now {
            let mut min = u64::MAX;
            let mut i = 0;
            while i < self.inflight_loads.len() {
                let t = self.inflight_loads[i];
                if t <= now {
                    self.inflight_loads.swap_remove(i);
                } else {
                    min = min.min(t);
                    i += 1;
                }
            }
            self.inflight_min = min;
        }
        self.resolve_branches();
        let (retired, stall) = self.retire();
        self.issue();
        self.dispatch();
        self.drain_stores();
        self.stats.account_cycle(retired, stall);
        if let Some(t) = self.tracer.as_mut() {
            // Same (retired, stall) inputs as `account_cycle`, so the
            // ring's attribution equals the aggregate exactly.
            t.ring
                .borrow_mut()
                .sample(retired, stall.map(StallClass::to_trace));
        }
        self.window_occ.observe(self.window.len() as u64);
        // Fault propagation and the cycle-budget watchdog. A wedged
        // model (an instruction that can never retire) would otherwise
        // spin this loop forever; a violated memory-model invariant
        // would silently corrupt the statistics.
        if let Some(fault) = self.mem.take_fault() {
            self.record_fault(fault);
        }
        if self.mem_queue_used() > self.cfg.mem_queue as usize {
            self.record_fault(SimError::Invariant {
                model: "pipeline",
                detail: format!(
                    "memory queue oversubscribed: {} in flight, capacity {}",
                    self.mem_queue_used(),
                    self.cfg.mem_queue
                ),
            });
        }
        if self.progress_signature() != sig {
            self.last_progress = self.now;
        } else if self.now - self.last_progress > self.cfg.watchdog_cycles && self.work_pending() {
            self.record_fault(SimError::CycleBudget {
                cycle: self.now,
                diagnostic: self.wedge_diagnostic(),
            });
        }
        self.now += 1;
    }

    /// Mark completed branches resolved; a resolved misprediction
    /// re-opens the front end after the refill penalty.
    fn resolve_branches(&mut self) {
        let now = self.now;
        let head = self.head_seq;
        let window = &mut self.window;
        let penalty = self.cfg.mispredict_penalty;
        let mut resolved_misp_at = None;
        let mut resolved = 0u32;
        // Swap-remove scan: order is irrelevant (at most one mispredicted
        // branch is ever in flight, since fetch stalls until it resolves).
        let seqs = &mut self.unresolved_seqs;
        let mut i = 0;
        while i < seqs.len() {
            let ix = (seqs[i] - head) as usize;
            let slot = &mut window[ix];
            if slot.issued && slot.done_at <= now {
                slot.resolved = true;
                resolved += 1;
                if slot.mispredicted {
                    resolved_misp_at = Some(slot.done_at);
                }
                seqs.swap_remove(i);
            } else {
                i += 1;
            }
        }
        self.unresolved_branches -= resolved;
        if let Some(done_at) = resolved_misp_at {
            self.fetch_resume_at = done_at + penalty;
        }
    }

    /// Retire up to `issue_width` completed instructions in order.
    /// Returns the retired count and the stall class of the first
    /// instruction that could not retire.
    fn retire(&mut self) -> (u32, Option<StallClass>) {
        let mut retired = 0;
        while retired < self.cfg.issue_width {
            let Some(slot) = self.window.front() else {
                return (retired, Some(StallClass::FuStall));
            };
            if !slot.issued {
                let class = if slot.inst.op.is_mem() && slot.mem_blocked {
                    StallClass::L1Hit // MSHR / memory-structure contention
                } else {
                    StallClass::FuStall
                };
                return (retired, Some(class));
            }
            if slot.done_at > self.now {
                let class = match slot.mem_level {
                    Some(level) if level.is_l1_miss() => StallClass::L1Miss,
                    Some(_) => StallClass::L1Hit,
                    None if slot.inst.op.is_mem() => StallClass::L1Hit,
                    None => StallClass::FuStall,
                };
                return (retired, Some(class));
            }
            // Stores and prefetches enter the memory queue at
            // retirement and need a slot there.
            if let Some(mem) = slot.inst.mem {
                if mem.kind.is_store() || mem.kind == MemKind::Prefetch {
                    if self.mem_queue_used() >= self.cfg.mem_queue as usize {
                        return (retired, Some(StallClass::L1Hit));
                    }
                    self.store_buffer
                        .push_back((Request::new(mem.addr, mem.size, mem.kind), self.now));
                }
            }
            let slot = self.window.pop_front().expect("checked above");
            if let Some(t) = self.tracer.as_mut() {
                let sb = t.spans.pop_front().expect("spans parallel window");
                t.ring.borrow_mut().span(InstSpan {
                    seq: self.head_seq,
                    pc: slot.inst.pc,
                    op: slot.inst.op.name(),
                    fetch: sb.fetch,
                    dispatch: sb.dispatch,
                    issue: sb.issue,
                    complete: sb.complete,
                    retire: self.now,
                });
            }
            self.head_seq += 1;
            self.issue_frontier = self.issue_frontier.saturating_sub(1);
            if slot.inst.dst.is_some() {
                self.produced.remove(&slot.inst.dst);
            }
            self.stats.note_retired(slot.inst.op);
            retired += 1;
        }
        (retired, None)
    }

    /// True when every producer in the slot's dispatch-time renamed
    /// dependency list has completed. Satisfied entries flip to
    /// [`NO_DEP`] in place, so a dependency is checked at most once
    /// after it completes — no hash lookups on this per-cycle path
    /// (the `produced` map is only consulted once per instruction, at
    /// dispatch).
    fn sources_ready_at(&mut self, i: usize) -> bool {
        let mut deps = self.window[i].src_seqs;
        let mut ready = true;
        for d in deps.iter_mut() {
            if *d == NO_DEP {
                continue;
            }
            if *d < self.head_seq {
                *d = NO_DEP; // producer retired
                continue;
            }
            let p = &self.window[(*d - self.head_seq) as usize];
            if p.issued && p.done_at <= self.now {
                *d = NO_DEP;
            } else {
                ready = false;
            }
        }
        self.window[i].src_seqs = deps;
        ready
    }

    /// Issue ready instructions (program-order scan; the in-order policy
    /// stops at the first unissued instruction that cannot go).
    fn issue(&mut self) {
        let mut issued = 0;
        let now = self.now;
        if self.cfg.blocking_loads && now < self.issue_blocked_until {
            return;
        }
        // Slots before `issue_frontier` are all issued already.
        while self.issue_frontier < self.window.len() && self.window[self.issue_frontier].issued {
            self.issue_frontier += 1;
        }
        for i in self.issue_frontier..self.window.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            if self.window[i].issued {
                continue;
            }
            let inst = self.window[i].inst;
            let mut blocked = false;

            if !self.sources_ready_at(i)
                || (self.window[i].mem_blocked && now < self.window[i].mem_retry_at)
            {
                blocked = true;
            } else if let Some(mem) = inst.mem {
                blocked = !self.try_issue_mem(i, mem, &inst);
            } else if self.fus.try_issue(inst.op, now) {
                let slot = &mut self.window[i];
                slot.issued = true;
                slot.done_at = now + inst.op.latency(&self.cfg.lat) as u64;
            } else {
                blocked = true;
            }

            if self.window[i].issued {
                if let Some(t) = self.tracer.as_mut() {
                    let sb = &mut t.spans[i];
                    sb.issue = now;
                    sb.complete = self.window[i].done_at;
                }
                issued += 1;
                if self.cfg.blocking_loads && self.issue_blocked_until > now {
                    break; // a blocking load was just issued
                }
            } else {
                debug_assert!(blocked);
                if self.cfg.policy == IssuePolicy::InOrder {
                    break; // strict program-order issue
                }
            }
        }
    }

    /// Issue the memory instruction in window slot `i`. Returns false
    /// when it must keep waiting.
    fn try_issue_mem(&mut self, i: usize, mem: MemRef, inst: &Inst) -> bool {
        let now = self.now;
        let is_store = mem.kind.is_store();
        let is_prefetch = mem.kind == MemKind::Prefetch;
        if !is_store && !is_prefetch && self.mem_queue_used() >= self.cfg.mem_queue as usize {
            return false; // loads need a memory-queue slot
        }
        if !self.fus.try_issue(inst.op, now) {
            return false; // both AGUs busy this cycle
        }
        if is_store || is_prefetch {
            // Address generation only; stores and (non-binding)
            // prefetches drain through the memory queue after
            // retirement, so they never stall the core directly.
            let slot = &mut self.window[i];
            slot.issued = true;
            slot.done_at = now + 1;
            return true;
        }
        let req = Request::new(mem.addr, mem.size, mem.kind);
        match self.mem.access(req, now + 1) {
            Ok(r) => {
                let slot = &mut self.window[i];
                slot.issued = true;
                slot.done_at = r.done_at;
                slot.mem_level = Some(r.level);
                self.inflight_loads.push(r.done_at);
                self.inflight_min = self.inflight_min.min(r.done_at);
                if self.cfg.blocking_loads {
                    self.issue_blocked_until = r.done_at;
                }
                true
            }
            Err(rej) => {
                // Demand accesses wait for MSHR capacity and retry.
                let slot = &mut self.window[i];
                slot.mem_blocked = true;
                slot.mem_retry_at = rej.retry_at.max(now + 1);
                false
            }
        }
    }

    /// Move instructions from the fetch queue into the window.
    fn dispatch(&mut self) {
        if self.now < self.fetch_resume_at {
            return;
        }
        let mut dispatched = 0;
        let mut taken = 0;
        while dispatched < self.cfg.issue_width
            && self.window.len() < self.cfg.window as usize
            && !self.fetch_q.is_empty()
        {
            // Branch limits are checked before consuming the instruction.
            if let Some(b) = self.fetch_q.front().and_then(|i| i.branch) {
                if self.unresolved_branches >= self.cfg.max_spec_branches {
                    break;
                }
                if b.taken && taken >= self.cfg.taken_per_cycle {
                    break;
                }
            }
            let inst = self.fetch_q.pop_front().expect("non-empty");
            if let Some(t) = self.tracer.as_mut() {
                // Instructions pushed before the tracer was attached
                // have no recorded fetch cycle; fall back to now.
                let fetch = t.fetch_cycles.pop_front().unwrap_or(self.now);
                t.spans.push_back(SpanBuild {
                    fetch,
                    dispatch: self.now,
                    issue: 0,
                    complete: 0,
                });
            }
            let seq = self.head_seq + self.window.len() as u64;
            let mut slot = Slot::new(inst);
            if inst.dst.is_some() {
                let prev = self.produced.insert(inst.dst, seq);
                // The emitter allocates SSA-style registers; an in-flight
                // duplicate destination would corrupt the scoreboard.
                // Checked in release builds so a corrupted emitter stream
                // fails a study run loudly instead of producing garbage
                // cycle counts.
                if prev.is_some() {
                    self.record_fault(SimError::Invariant {
                        model: "pipeline",
                        detail: format!(
                            "destination register {:?} reused while in flight at pc {:#x} (seq {seq})",
                            inst.dst, inst.pc
                        ),
                    });
                }
            }
            // Rename: resolve each source register to its producer's
            // sequence number now, so the issue loop never touches the
            // register map again for this instruction. The destination
            // is registered first so a (corrupt, non-SSA) instruction
            // that reads its own destination still deadlocks against
            // itself — the watchdog's wedged-model case — exactly as
            // the issue-time scoreboard lookup did.
            for (k, r) in inst.srcs.iter().enumerate() {
                if r.is_some() {
                    if let Some(&pseq) = self.produced.get(r) {
                        slot.src_seqs[k] = pseq;
                    }
                }
            }
            if let Some(b) = inst.branch {
                self.unresolved_branches += 1;
                self.unresolved_seqs.push(seq);
                let correct = match b.kind {
                    BranchKind::Cond => {
                        self.stats.cond_branches += 1;
                        let p = self.pred.predict(inst.pc, b.backward);
                        self.pred.update(inst.pc, b.backward, b.taken);
                        let ok = p == b.taken;
                        if !ok {
                            self.stats.mispredicts += 1;
                        }
                        ok
                    }
                    BranchKind::Jump => true,
                    BranchKind::Call => {
                        self.ras.push(b.target);
                        true
                    }
                    BranchKind::Ret => {
                        let ok = self.ras.pop_matches(b.target);
                        if !ok {
                            self.stats.ras_mispredicts += 1;
                        }
                        ok
                    }
                };
                if b.taken {
                    taken += 1;
                }
                if !correct {
                    slot.mispredicted = true;
                    if let Some(t) = self.tracer.as_mut() {
                        t.ring
                            .borrow_mut()
                            .instant(InstantKind::BranchMispredict, inst.pc, 0);
                    }
                    self.window.push_back(slot);
                    // Fetch stalls until this branch resolves.
                    self.fetch_resume_at = u64::MAX;
                    return;
                }
            }
            self.window.push_back(slot);
            dispatched += 1;
        }
    }

    /// Try to hand buffered stores to the L1 (up to one per port per
    /// cycle); rejected stores retry and back the queue up, reproducing
    /// the paper's write-backup MSHR contention.
    fn drain_stores(&mut self) {
        let ports = self.mem.config().l1.ports;
        for _ in 0..ports {
            let Some(&(req, retry_at)) = self.store_buffer.front() else {
                return;
            };
            if retry_at > self.now {
                return;
            }
            match self.mem.access(req, self.now) {
                Ok(_) => {
                    self.store_buffer.pop_front();
                }
                Err(rej) => {
                    self.store_buffer[0].1 = rej.retry_at.max(self.now + 1);
                    return;
                }
            }
        }
    }
}

impl SimSink for Pipeline {
    fn push(&mut self, inst: Inst) {
        self.fetch_q.push_back(inst);
        if let Some(t) = self.tracer.as_mut() {
            t.fetch_cycles.push_back(self.now);
        }
        // Once faulted, stop simulating: the workload keeps pushing (it
        // cannot observe the failure mid-emit), instructions accumulate
        // in the unbounded fetch queue, and `try_finish` reports the
        // fault.
        while self.fetch_q.len() > self.fetch_cap && self.fault.is_none() {
            self.cycle();
        }
    }
}

impl TraceSink for Pipeline {
    fn attach_tracer(&mut self, ring: SharedTraceRing) {
        ring.borrow_mut().set_width(self.cfg.issue_width);
        self.pred.attach_tracer(ring.clone());
        self.mem.attach_tracer(ring.clone());
        self.tracer = Some(Box::new(PipeTracer {
            ring,
            fetch_cycles: VecDeque::new(),
            spans: VecDeque::new(),
        }));
    }
}
