//! Execution statistics and the paper's execution-time attribution.

use visim_isa::{InstCat, Op};
use visim_obs::codec::{ByteReader, ByteWriter};
use visim_obs::trace::{Attribution, TraceStall};

/// Where a lost retirement slot is charged (paper §2.3.4 / Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallClass {
    /// Waiting on computation: operands, functional units, branch
    /// recovery, or an empty window.
    FuStall,
    /// Waiting on the memory system but within the L1 (port and MSHR
    /// contention, L1 hit latency, full memory queue).
    L1Hit,
    /// Waiting on an access that left the L1.
    L1Miss,
}

impl StallClass {
    /// The trace-layer stall class with the same charging meaning.
    pub fn to_trace(self) -> TraceStall {
        match self {
            StallClass::FuStall => TraceStall::FuStall,
            StallClass::L1Hit => TraceStall::L1Hit,
            StallClass::L1Miss => TraceStall::L1Miss,
        }
    }
}

/// Execution-time breakdown in cycles, as plotted in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Retirement-slot-weighted busy time.
    pub busy: f64,
    /// Functional-unit / dependence stall time.
    pub fu_stall: f64,
    /// Memory stall time within the L1.
    pub l1_hit: f64,
    /// Memory stall time beyond the L1.
    pub l1_miss: f64,
}

impl Breakdown {
    /// Total accounted time (equals total cycles).
    pub fn total(&self) -> f64 {
        self.busy + self.fu_stall + self.l1_hit + self.l1_miss
    }

    /// Memory component (L1 hit + L1 miss).
    pub fn memory(&self) -> f64 {
        self.l1_hit + self.l1_miss
    }

    /// Scale every component by `1/denom` (for normalized plots).
    pub fn normalized(&self, denom: f64) -> Breakdown {
        Breakdown {
            busy: self.busy / denom,
            fu_stall: self.fu_stall / denom,
            l1_hit: self.l1_hit / denom,
            l1_miss: self.l1_miss / denom,
        }
    }
}

/// Statistics accumulated by a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct CpuStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Retired (graduated) instructions.
    pub retired: u64,
    /// Retired instructions per Figure 2 category, indexed by
    /// `[Fu, Branch, Memory, Vis]`.
    pub mix: [u64; 4],
    /// Retired VIS instructions that are subword rearrangement or
    /// alignment overhead (paper §3.2.3).
    pub vis_overhead: u64,
    /// Retired conditional branches.
    pub cond_branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Return-address-stack mispredictions.
    pub ras_mispredicts: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Issued software prefetches.
    pub prefetches: u64,
    // Attribution accumulators in units of (1/issue_width) cycles.
    pub(crate) width: u64,
    pub(crate) busy_units: u64,
    pub(crate) fu_stall_units: u64,
    pub(crate) l1_hit_units: u64,
    pub(crate) l1_miss_units: u64,
}

impl CpuStats {
    pub(crate) fn new(width: u32) -> Self {
        CpuStats {
            width: width as u64,
            ..Default::default()
        }
    }

    pub(crate) fn account_cycle(&mut self, retired: u32, stall: Option<StallClass>) {
        self.cycles += 1;
        self.busy_units += retired as u64;
        let lost = self.width - retired as u64;
        if lost == 0 {
            return;
        }
        match stall.unwrap_or(StallClass::FuStall) {
            StallClass::FuStall => self.fu_stall_units += lost,
            StallClass::L1Hit => self.l1_hit_units += lost,
            StallClass::L1Miss => self.l1_miss_units += lost,
        }
    }

    /// Account `n` consecutive cycles that retire nothing and share one
    /// stall class — exactly `n` calls to `account_cycle(0, stall)`.
    pub(crate) fn account_idle(&mut self, n: u64, stall: StallClass) {
        self.cycles += n;
        let lost = self.width * n;
        match stall {
            StallClass::FuStall => self.fu_stall_units += lost,
            StallClass::L1Hit => self.l1_hit_units += lost,
            StallClass::L1Miss => self.l1_miss_units += lost,
        }
    }

    pub(crate) fn note_retired(&mut self, op: Op) {
        self.retired += 1;
        let ix = match op.category() {
            InstCat::Fu => 0,
            InstCat::Branch => 1,
            InstCat::Memory => 2,
            InstCat::Vis => 3,
        };
        self.mix[ix] += 1;
        if op.is_vis_overhead() {
            self.vis_overhead += 1;
        }
        match op {
            Op::Load => self.loads += 1,
            Op::Store => self.stores += 1,
            Op::Prefetch => self.prefetches += 1,
            _ => {}
        }
    }

    /// Append every counter — including the crate-private integer
    /// attribution units behind [`CpuStats::breakdown`] — to `w`. This
    /// is the result-store payload form; it must live in this crate
    /// because the JSON view only exposes the *derived* floating-point
    /// breakdown, which cannot reconstruct the exact accumulators a
    /// resumed run needs for byte-identical reports.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u64(self.cycles);
        w.put_u64(self.retired);
        w.put_u64s(&self.mix);
        w.put_u64(self.vis_overhead);
        w.put_u64(self.cond_branches);
        w.put_u64(self.mispredicts);
        w.put_u64(self.ras_mispredicts);
        w.put_u64(self.loads);
        w.put_u64(self.stores);
        w.put_u64(self.prefetches);
        w.put_u64(self.width);
        w.put_u64(self.busy_units);
        w.put_u64(self.fu_stall_units);
        w.put_u64(self.l1_hit_units);
        w.put_u64(self.l1_miss_units);
    }

    /// Decode statistics written by [`CpuStats::encode_into`].
    pub fn decode_from(r: &mut ByteReader) -> Result<Self, String> {
        let cycles = r.u64()?;
        let retired = r.u64()?;
        let mix_v = r.u64s()?;
        let mix: [u64; 4] = mix_v
            .try_into()
            .map_err(|v: Vec<u64>| format!("instruction mix has {} categories", v.len()))?;
        Ok(CpuStats {
            cycles,
            retired,
            mix,
            vis_overhead: r.u64()?,
            cond_branches: r.u64()?,
            mispredicts: r.u64()?,
            ras_mispredicts: r.u64()?,
            loads: r.u64()?,
            stores: r.u64()?,
            prefetches: r.u64()?,
            width: r.u64()?,
            busy_units: r.u64()?,
            fu_stall_units: r.u64()?,
            l1_hit_units: r.u64()?,
            l1_miss_units: r.u64()?,
        })
    }

    /// The exact integer attribution (units of `1/issue_width` cycles)
    /// behind [`CpuStats::breakdown`]. A trace ring fed the same
    /// per-cycle samples accumulates an equal value — the
    /// trace-vs-aggregate invariant the `validate` gate checks.
    pub fn attribution(&self) -> Attribution {
        Attribution {
            width: self.width,
            cycles: self.cycles,
            busy_units: self.busy_units,
            fu_stall_units: self.fu_stall_units,
            l1_hit_units: self.l1_hit_units,
            l1_miss_units: self.l1_miss_units,
        }
    }

    /// The Figure 1 execution-time breakdown, in cycles.
    pub fn breakdown(&self) -> Breakdown {
        let w = self.width.max(1) as f64;
        Breakdown {
            busy: self.busy_units as f64 / w,
            fu_stall: self.fu_stall_units as f64 / w,
            l1_hit: self.l1_hit_units as f64 / w,
            l1_miss: self.l1_miss_units as f64 / w,
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Fraction of retired VIS instructions that are rearrangement /
    /// alignment overhead.
    pub fn vis_overhead_fraction(&self) -> f64 {
        let vis = self.mix[3];
        if vis == 0 {
            0.0
        } else {
            self.vis_overhead as f64 / vis as f64
        }
    }

    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_is_exhaustive() {
        let mut s = CpuStats::new(4);
        s.account_cycle(4, None); // fully busy
        s.account_cycle(2, Some(StallClass::L1Miss));
        s.account_cycle(0, Some(StallClass::FuStall));
        s.account_cycle(1, Some(StallClass::L1Hit));
        let b = s.breakdown();
        assert!((b.total() - s.cycles as f64).abs() < 1e-9);
        assert!((b.busy - (4.0 + 2.0 + 0.0 + 1.0) / 4.0).abs() < 1e-9);
        assert!((b.l1_miss - 0.5).abs() < 1e-9);
        assert!((b.fu_stall - 1.0).abs() < 1e-9);
        assert!((b.l1_hit - 0.75).abs() < 1e-9);
        assert!((b.memory() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn mix_counts_categories() {
        let mut s = CpuStats::new(1);
        s.note_retired(Op::IntAlu);
        s.note_retired(Op::Branch);
        s.note_retired(Op::Load);
        s.note_retired(Op::VisPack);
        s.note_retired(Op::VisAdd);
        assert_eq!(s.mix, [1, 1, 1, 2]);
        assert_eq!(s.vis_overhead, 1);
        assert!((s.vis_overhead_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(s.loads, 1);
    }

    #[test]
    fn binary_codec_round_trips_the_private_attribution_units() {
        let mut s = CpuStats::new(4);
        s.account_cycle(4, None);
        s.account_cycle(2, Some(StallClass::L1Miss));
        s.account_cycle(0, Some(StallClass::FuStall));
        s.account_idle(3, StallClass::L1Hit);
        s.note_retired(Op::Load);
        s.note_retired(Op::VisPack);
        s.cond_branches = 17;
        s.mispredicts = 5;
        let mut w = ByteWriter::new();
        s.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = CpuStats::decode_from(&mut r).unwrap();
        r.done().unwrap();
        // No PartialEq on CpuStats; the Debug form covers every field,
        // private attribution units included.
        assert_eq!(format!("{back:?}"), format!("{s:?}"));
        let (b, o) = (back.breakdown(), s.breakdown());
        assert_eq!(
            (b.busy, b.fu_stall, b.l1_hit, b.l1_miss),
            (o.busy, o.fu_stall, o.l1_hit, o.l1_miss)
        );
        assert!(CpuStats::decode_from(&mut ByteReader::new(&bytes[..16])).is_err());
    }

    #[test]
    fn rates_handle_empty_runs() {
        let s = CpuStats::new(4);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.vis_overhead_fraction(), 0.0);
    }

    #[test]
    fn normalization_scales_components() {
        let b = Breakdown {
            busy: 10.0,
            fu_stall: 5.0,
            l1_hit: 3.0,
            l1_miss: 2.0,
        };
        let n = b.normalized(20.0);
        assert!((n.total() - 1.0).abs() < 1e-12);
        assert!((n.busy - 0.5).abs() < 1e-12);
    }
}
