//! Functional warming and sampled-run extrapolation (SMARTS-style).
//!
//! Sampled simulation replays the detailed cycle-accurate pipeline only
//! for periodic sample windows and fast-forwards between them with
//! [`WarmingSink`]: a sink that updates *only* the long-lived
//! microarchitectural state whose history matters across windows —
//! cache/MSHR residency and the branch-prediction structures — with no
//! pipeline, window, or functional-unit modeling. Because warming
//! consumes the stream in program order (the same order [`Pipeline`]
//! dispatches and trains in), its functional counters (instruction mix,
//! branch outcomes, predictor behaviour) are *exact*, not estimates;
//! only cycle counts are extrapolated from the sampled windows.
//!
//! [`WarmingSink::checkpoint`] serializes the warmed state into an
//! opaque blob that [`Pipeline::restore_checkpoint`] accepts, which is
//! what makes every sample window independently replayable (and lets
//! one benchmark's windows fan out across a worker pool).
//!
//! [`extrapolate`] combines the warming pass's exact functional totals
//! with the detailed windows' cycle measurements into a full-run
//! estimate, using the ratio estimator `cycles ≈ total_insts ×
//! Σ window_cycles / Σ window_insts` and a Student-t confidence
//! interval over the per-window CPI spread.
//!
//! [`Pipeline`]: crate::Pipeline
//! [`Pipeline::restore_checkpoint`]: crate::Pipeline::restore_checkpoint

use visim_isa::{BranchKind, Inst};
use visim_mem::{MemConfig, MemSystem, Request};
use visim_obs::codec::ByteWriter;
use visim_obs::Registry;

use crate::config::CpuConfig;
use crate::pipeline::Summary;
use crate::predictor::{AgreePredictor, ReturnAddressStack};
use crate::sink::SimSink;
use crate::stats::CpuStats;

/// The functional-warming engine: caches, MSHR-visible miss state, and
/// branch predictor only.
///
/// Time is the dynamic instruction index — each instruction advances the
/// clock by one — which gives MSHR fills a deterministic pseudo-schedule
/// without modeling issue timing.
#[derive(Debug)]
pub struct WarmingSink {
    stats: CpuStats,
    pred: AgreePredictor,
    ras: ReturnAddressStack,
    mem: MemSystem,
    /// Dynamic instruction index == warming pseudo-time.
    idx: u64,
}

impl WarmingSink {
    /// A warming engine with the same predictor/RAS/memory geometry the
    /// timing pipeline would build from these configurations.
    pub fn new(cfg: &CpuConfig, mem_cfg: MemConfig) -> Self {
        WarmingSink {
            stats: CpuStats::new(cfg.issue_width),
            pred: AgreePredictor::new(cfg.predictor_entries),
            ras: ReturnAddressStack::new(cfg.ras_entries),
            mem: MemSystem::new(mem_cfg),
            idx: 0,
        }
    }

    /// Dynamic instructions consumed so far.
    pub fn insts(&self) -> u64 {
        self.idx
    }

    /// Serialize the warmed architectural state (predictor counters,
    /// return-address stack, cache tags/recency, in-flight MSHR misses)
    /// into the opaque blob [`crate::Pipeline::restore_checkpoint`]
    /// accepts. Statistics are not captured; a window replayed from the
    /// checkpoint observes the machine from a clean slate.
    pub fn checkpoint(&mut self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.pred.save_state(&mut w);
        self.ras.save_state(&mut w);
        self.mem.save_state(&mut w, self.idx);
        w.into_bytes()
    }

    /// Finish the warming pass: exact functional statistics (cycles stay
    /// 0 — warming has no timing model) plus the same observability
    /// metrics a pipeline run exports, minus the cycle-derived ones.
    pub fn finish(mut self) -> Summary {
        let hist = self.mem.mshr_histogram(self.idx);
        let mut metrics = Registry::new();
        let ps = self.pred.stats();
        metrics.set("cpu.predictor.updates", ps.updates);
        metrics.set("cpu.predictor.bias_agreements", ps.bias_agreements);
        metrics.set("cpu.predictor.flips", ps.flips);
        metrics.set("cpu.ras.overflows", self.ras.overflows());
        metrics.set("cpu.ras.underflows", self.ras.underflows());
        self.mem.export_metrics(&mut metrics);
        Summary {
            cpu: self.stats,
            mem: self.mem.stats().clone(),
            mshr_histogram: hist,
            metrics,
        }
    }
}

impl SimSink for WarmingSink {
    fn push(&mut self, inst: Inst) {
        self.stats.note_retired(inst.op);
        // Branch handling matches CountingSink (and Pipeline dispatch,
        // which trains in program order) exactly.
        if let Some(b) = inst.branch {
            match b.kind {
                BranchKind::Cond => {
                    self.stats.cond_branches += 1;
                    if self.pred.predict(inst.pc, b.backward) != b.taken {
                        self.stats.mispredicts += 1;
                    }
                    self.pred.update(inst.pc, b.backward, b.taken);
                }
                BranchKind::Call => self.ras.push(b.target),
                BranchKind::Ret => {
                    if !self.ras.pop_matches(b.target) {
                        self.stats.ras_mispredicts += 1;
                    }
                }
                BranchKind::Jump => {}
            }
        }
        if let Some(mem) = inst.mem {
            self.mem
                .warm_access(Request::new(mem.addr, mem.size, mem.kind), self.idx);
        }
        self.idx += 1;
    }
}

/// How a sampled estimate was produced, for `cell.sampling.*` metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingEstimate {
    /// Detailed windows measured.
    pub windows: u64,
    /// Instructions simulated in detail (Σ window retirements).
    pub sampled_insts: u64,
    /// Half-width of the 95% confidence interval on CPI, relative to
    /// the estimate, in centi-percent (e.g. 250 = ±2.5%).
    pub ci_centipct: u64,
}

/// Two-sided 97.5% Student-t quantile (95% interval) for `dof` degrees
/// of freedom; converges to the normal 1.96 for large windows counts.
fn t975(dof: usize) -> f64 {
    const T: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if dof == 0 {
        f64::INFINITY
    } else if dof <= T.len() {
        T[dof - 1]
    } else {
        1.96
    }
}

/// Round `x × num / den` to the nearest integer in u128 arithmetic.
fn scale(x: u64, num: u64, den: u64) -> u64 {
    ((x as u128 * num as u128 + den as u128 / 2) / den as u128) as u64
}

/// Extrapolate detailed per-window measurements over the warming pass's
/// exact functional totals.
///
/// `total` is the [`WarmingSink::finish`] summary of the *whole* run;
/// `windows` are the detailed-window summaries in stream order. Returns
/// the full-run estimated summary plus the sampling telemetry, or
/// `None` when the sample is unusable (fewer than two windows, or no
/// retirements) and the caller must fall back to exact simulation.
///
/// The estimated summary keeps every functional counter from `total`
/// (they are exact), scales cycles and the stall-attribution units by
/// the ratio estimator, and preserves the `Σ units = width × cycles`
/// attribution invariant by deriving busy units as the remainder.
pub fn extrapolate(total: &Summary, windows: &[Summary]) -> Option<(Summary, SamplingEstimate)> {
    if windows.len() < 2 {
        return None;
    }
    let mut retired_sum = 0u64;
    let mut cycles_sum = 0u64;
    let mut fu_sum = 0u64;
    let mut l1h_sum = 0u64;
    let mut l1m_sum = 0u64;
    for w in windows {
        retired_sum += w.cpu.retired;
        cycles_sum += w.cpu.cycles;
        fu_sum += w.cpu.fu_stall_units;
        l1h_sum += w.cpu.l1_hit_units;
        l1m_sum += w.cpu.l1_miss_units;
    }
    if retired_sum == 0 || total.cpu.retired == 0 {
        return None;
    }

    let mut cpu = total.cpu.clone();
    let n = total.cpu.retired;
    cpu.cycles = scale(cycles_sum, n, retired_sum);
    cpu.fu_stall_units = scale(fu_sum, n, retired_sum);
    cpu.l1_hit_units = scale(l1h_sum, n, retired_sum);
    cpu.l1_miss_units = scale(l1m_sum, n, retired_sum);
    // Busy absorbs the rounding slack so the attribution stays
    // exhaustive: Σ units == width × cycles.
    let capacity = cpu.width * cpu.cycles;
    let stalls = cpu.fu_stall_units + cpu.l1_hit_units + cpu.l1_miss_units;
    cpu.busy_units = capacity.saturating_sub(stalls);

    // 95% CI over the per-window CPI spread (windows retiring nothing
    // contribute no CPI observation).
    let cpis: Vec<f64> = windows
        .iter()
        .filter(|w| w.cpu.retired > 0)
        .map(|w| w.cpu.cycles as f64 / w.cpu.retired as f64)
        .collect();
    let k = cpis.len();
    let mean = cpis.iter().sum::<f64>() / k as f64;
    let ci_centipct = if k < 2 || mean <= 0.0 {
        0
    } else {
        let var = cpis.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (k - 1) as f64;
        let half = t975(k - 1) * (var / k as f64).sqrt();
        (half / mean * 10_000.0).round().min(u64::MAX as f64) as u64
    };

    // Functional metrics come from the warming pass; the windows add the
    // only cycle-level observability a sampled run has (window occupancy
    // over the sampled cycles).
    let mut metrics = total.metrics.clone();
    for w in windows {
        if let Some(h) = w.metrics.histogram("cpu.window_occupancy") {
            metrics.merge_histogram("cpu.window_occupancy", h);
        }
    }

    let est = SamplingEstimate {
        windows: windows.len() as u64,
        sampled_insts: retired_sum,
        ci_centipct,
    };
    Some((
        Summary {
            cpu,
            mem: total.mem.clone(),
            mshr_histogram: total.mshr_histogram.clone(),
            metrics,
        },
        est,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use visim_isa::{BranchInfo, MemKind, MemRef, Op, Reg};

    fn stream(n: u64) -> Vec<Inst> {
        let mut v = Vec::new();
        for i in 0..n {
            v.push(Inst::compute(
                Op::IntAlu,
                0x100 + i * 4,
                Reg(1 + i as u32),
                [Reg::NONE; 3],
            ));
            v.push(Inst::memory(
                Op::Load,
                0x200 + i * 4,
                Reg(20_000 + i as u32),
                [Reg::NONE; 3],
                MemRef {
                    addr: (i % 64) * 64,
                    size: 8,
                    kind: MemKind::Load,
                },
            ));
            v.push(Inst::control(
                Op::Branch,
                0x300,
                [Reg::NONE; 3],
                BranchInfo::cond(i % 7 != 0, true),
            ));
        }
        v
    }

    #[test]
    fn warming_counters_match_counting_sink_exactly() {
        let cfg = CpuConfig::ooo_4way();
        let mut warm = WarmingSink::new(&cfg, MemConfig::default());
        let mut count = crate::sink::CountingSink::new();
        for inst in stream(500) {
            warm.push(inst);
            count.push(inst);
        }
        assert_eq!(warm.insts(), 1500);
        let w = warm.finish();
        let c = count.finish();
        assert_eq!(w.cpu.cycles, 0, "warming has no timing model");
        assert_eq!(w.cpu.retired, c.retired);
        assert_eq!(w.cpu.mix, c.mix);
        assert_eq!(w.cpu.cond_branches, c.cond_branches);
        assert_eq!(w.cpu.mispredicts, c.mispredicts);
        assert_eq!(w.cpu.ras_mispredicts, c.ras_mispredicts);
        assert_eq!(w.cpu.loads, c.loads);
        assert!(w.mem.l1_accesses > 0, "warming touched the memory system");
    }

    #[test]
    fn checkpoint_restores_into_a_pipeline() {
        let cfg = CpuConfig::ooo_4way();
        let mem_cfg = MemConfig::default();
        let mut warm = WarmingSink::new(&cfg, mem_cfg.clone());
        for inst in stream(300) {
            warm.push(inst);
        }
        let blob = warm.checkpoint();

        let mut p = Pipeline::new(cfg.clone(), mem_cfg.clone());
        p.restore_checkpoint(&blob).expect("restores cleanly");

        // A running pipeline refuses a checkpoint.
        let mut running = Pipeline::new(cfg.clone(), mem_cfg.clone());
        running.push(Inst::compute(Op::IntAlu, 0x10, Reg(1), [Reg::NONE; 3]));
        assert!(running.restore_checkpoint(&blob).is_err());

        // Geometry mismatch (different predictor size) is rejected.
        let mut other_cfg = cfg;
        other_cfg.predictor_entries = 512;
        let mut q = Pipeline::new(other_cfg, mem_cfg);
        assert!(q.restore_checkpoint(&blob).is_err());

        // Trailing garbage is rejected.
        let mut long = blob.clone();
        long.push(0);
        let mut r = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
        assert!(r.restore_checkpoint(&long).is_err());
    }

    #[test]
    fn warmed_window_sees_hot_caches() {
        // Replay the same window twice: once from a cold pipeline, once
        // from a checkpoint warmed on the preceding stream. The warmed
        // replay must see strictly more L1 hits.
        let cfg = CpuConfig::ooo_4way();
        let mem_cfg = MemConfig::default();
        let full = stream(400);
        let split = full.len() / 2;

        let mut warm = WarmingSink::new(&cfg, mem_cfg.clone());
        for &inst in &full[..split] {
            warm.push(inst);
        }
        let blob = warm.checkpoint();

        let mut cold = Pipeline::new(cfg.clone(), mem_cfg.clone());
        for &inst in &full[split..] {
            cold.push(inst);
        }
        let cold = cold.try_finish().expect("cold window runs");

        let mut hot = Pipeline::new(cfg, mem_cfg);
        hot.restore_checkpoint(&blob).expect("restores");
        for &inst in &full[split..] {
            hot.push(inst);
        }
        let hot = hot.try_finish().expect("warmed window runs");

        assert_eq!(hot.cpu.retired, cold.cpu.retired);
        assert!(
            hot.mem.l1_hits > cold.mem.l1_hits,
            "warmed {} vs cold {} L1 hits",
            hot.mem.l1_hits,
            cold.mem.l1_hits
        );
    }

    #[test]
    fn extrapolation_is_exact_for_uniform_windows() {
        // Two windows with identical CPI: the estimate reconstructs the
        // exact total with a zero-width confidence interval.
        let mk = |cycles: u64, retired: u64, fu: u64| {
            let mut s = CpuStats::new(4);
            s.cycles = cycles;
            s.retired = retired;
            s.fu_stall_units = fu;
            s.busy_units = 4 * cycles - fu;
            Summary {
                cpu: s,
                mem: Default::default(),
                mshr_histogram: Vec::new(),
                metrics: Registry::new(),
            }
        };
        let mut total = mk(0, 10_000, 0);
        total.cpu.loads = 1234;
        let windows = [mk(500, 1000, 800), mk(500, 1000, 800)];
        let (est, tele) = extrapolate(&total, &windows).expect("estimable");
        assert_eq!(est.cpu.cycles, 5_000, "CPI 0.5 over 10k insts");
        assert_eq!(est.cpu.fu_stall_units, 8_000);
        assert_eq!(
            est.cpu.busy_units
                + est.cpu.fu_stall_units
                + est.cpu.l1_hit_units
                + est.cpu.l1_miss_units,
            est.cpu.width * est.cpu.cycles,
            "attribution stays exhaustive"
        );
        assert_eq!(est.cpu.loads, 1234, "functional counters pass through");
        assert_eq!(tele.windows, 2);
        assert_eq!(tele.sampled_insts, 2000);
        assert_eq!(tele.ci_centipct, 0, "no spread, no interval");

        // Spread between windows widens the interval.
        let spread = [mk(400, 1000, 100), mk(600, 1000, 100)];
        let (_, t2) = extrapolate(&total, &spread).expect("estimable");
        assert!(t2.ci_centipct > 0);

        // Degenerate samples fall back.
        assert!(extrapolate(&total, &windows[..1]).is_none());
        let empty = [mk(0, 0, 0), mk(0, 0, 0)];
        assert!(extrapolate(&total, &empty).is_none());
    }
}
