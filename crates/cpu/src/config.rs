//! Processor configuration (Table 2 of the paper).

use visim_isa::LatencyTable;

/// Issue discipline of the modelled core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssuePolicy {
    /// Scoreboarded in-order issue (non-blocking memory).
    InOrder,
    /// Out-of-order issue from an instruction window.
    OutOfOrder,
}

/// Functional-unit counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuCounts {
    /// Integer arithmetic units.
    pub int_alu: u32,
    /// Floating-point units.
    pub fp: u32,
    /// Address-generation units.
    pub agu: u32,
    /// VIS multipliers.
    pub vis_mul: u32,
    /// VIS adders.
    pub vis_add: u32,
}

impl Default for FuCounts {
    fn default() -> Self {
        FuCounts {
            int_alu: 2,
            fp: 2,
            agu: 2,
            vis_mul: 1,
            vis_add: 1,
        }
    }
}

/// Full processor configuration.
///
/// The presets reproduce the three architecture variations of the paper:
/// [`CpuConfig::inorder_1way`], [`CpuConfig::inorder_4way`], and
/// [`CpuConfig::ooo_4way`] (the Table 2 default). When studying the
/// 1-way-issue processor the paper scales the functional units to one of
/// each type; the preset does the same.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Issue discipline.
    pub policy: IssuePolicy,
    /// Instructions issued (and fetched, and retired) per cycle.
    pub issue_width: u32,
    /// Instruction window size (also bounds the in-order model's
    /// completion scoreboard depth).
    pub window: u32,
    /// Memory queue size: outstanding loads plus buffered stores.
    pub mem_queue: u32,
    /// Entries in the bimodal agree predictor.
    pub predictor_entries: u32,
    /// Return-address stack depth.
    pub ras_entries: u32,
    /// Taken branches fetched per cycle.
    pub taken_per_cycle: u32,
    /// Maximum simultaneously speculated (unresolved) branches.
    pub max_spec_branches: u32,
    /// Front-end refill penalty after a mispredicted branch resolves, in
    /// cycles. Not listed in Table 2; 5 cycles approximates the
    /// fetch-to-issue depth of the late-1990s pipelines the paper models.
    pub mispredict_penalty: u64,
    /// Functional-unit counts.
    pub fu: FuCounts,
    /// Operation latencies.
    pub lat: LatencyTable,
    /// Stall issue until each load completes (the "simplistic processor
    /// model with blocking loads" of the related work the paper
    /// contrasts against, §5). Off on every paper configuration.
    pub blocking_loads: bool,
    /// Watchdog cycle budget: the simulation aborts with
    /// `SimError::CycleBudget` (instead of hanging) when no pipeline
    /// state changes for this many consecutive cycles while work is
    /// still pending. Any legitimate stall resolves within a few
    /// hundred cycles (the longest memory latency plus queueing), so
    /// the default only ever fires on a wedged model.
    pub watchdog_cycles: u64,
}

impl CpuConfig {
    /// The paper's base machine: 4-way out-of-order (Table 2).
    pub fn ooo_4way() -> Self {
        CpuConfig {
            policy: IssuePolicy::OutOfOrder,
            issue_width: 4,
            window: 64,
            mem_queue: 32,
            predictor_entries: 2048,
            ras_entries: 32,
            taken_per_cycle: 1,
            max_spec_branches: 16,
            mispredict_penalty: 5,
            fu: FuCounts::default(),
            lat: LatencyTable::default(),
            blocking_loads: false,
            watchdog_cycles: 1_000_000,
        }
    }

    /// 4-way in-order variation.
    pub fn inorder_4way() -> Self {
        CpuConfig {
            policy: IssuePolicy::InOrder,
            ..Self::ooo_4way()
        }
    }

    /// Single-issue in-order variation (functional units scaled to one of
    /// each type, as in the paper).
    pub fn inorder_1way() -> Self {
        CpuConfig {
            policy: IssuePolicy::InOrder,
            issue_width: 1,
            fu: FuCounts {
                int_alu: 1,
                fp: 1,
                agu: 1,
                vis_mul: 1,
                vis_add: 1,
            },
            ..Self::ooo_4way()
        }
    }

    /// Table 2 as printable `(parameter, value)` rows.
    pub fn table2(&self) -> Vec<(String, String)> {
        let l = &self.lat;
        vec![
            ("Processor speed".into(), "1 GHz".into()),
            ("Issue width".into(), format!("{}-way", self.issue_width)),
            ("Instruction window size".into(), self.window.to_string()),
            ("Memory queue size".into(), self.mem_queue.to_string()),
            (
                "Bimodal agree predictor size".into(),
                format!("{}K", self.predictor_entries / 1024),
            ),
            (
                "Return-address stack size".into(),
                self.ras_entries.to_string(),
            ),
            (
                "Taken branches per cycle".into(),
                self.taken_per_cycle.to_string(),
            ),
            (
                "Simultaneous speculated branches".into(),
                self.max_spec_branches.to_string(),
            ),
            (
                "Integer arithmetic units".into(),
                self.fu.int_alu.to_string(),
            ),
            ("Floating-point units".into(), self.fu.fp.to_string()),
            ("Address generation units".into(), self.fu.agu.to_string()),
            ("VIS multipliers".into(), self.fu.vis_mul.to_string()),
            ("VIS adders".into(), self.fu.vis_add.to_string()),
            (
                "Default integer/address generation".into(),
                format!("{}/{}", l.int_alu, l.int_alu),
            ),
            (
                "Integer multiply/divide".into(),
                format!("{}/{}", l.int_mul, l.int_div),
            ),
            ("Default floating point".into(), l.fp_default.to_string()),
            (
                "FP moves/converts/divides".into(),
                format!("{}/{}/{}", l.fp_move, l.fp_move, l.fp_div),
            ),
            ("Default VIS".into(), l.vis_default.to_string()),
            (
                "VIS 8-bit loads/multiply/pdist".into(),
                format!("1/{}/{}", l.vis_mul, l.vis_pdist),
            ),
        ]
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::ooo_4way()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ooo_default_matches_table_2() {
        let c = CpuConfig::ooo_4way();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.window, 64);
        assert_eq!(c.mem_queue, 32);
        assert_eq!(c.predictor_entries, 2048);
        assert_eq!(c.ras_entries, 32);
        assert_eq!(c.taken_per_cycle, 1);
        assert_eq!(c.max_spec_branches, 16);
        assert_eq!(c.fu, FuCounts::default());
        assert_eq!(c.policy, IssuePolicy::OutOfOrder);
    }

    #[test]
    fn one_way_scales_functional_units() {
        let c = CpuConfig::inorder_1way();
        assert_eq!(c.issue_width, 1);
        assert_eq!(c.fu.int_alu, 1);
        assert_eq!(c.fu.fp, 1);
        assert_eq!(c.fu.agu, 1);
        assert_eq!(c.policy, IssuePolicy::InOrder);
    }

    #[test]
    fn table2_has_all_rows() {
        let rows = CpuConfig::ooo_4way().table2();
        assert_eq!(rows.len(), 19);
        assert!(rows.iter().any(|(k, v)| k == "Issue width" && v == "4-way"));
        assert!(rows
            .iter()
            .any(|(k, v)| k.contains("pdist") && v == "1/3/3"));
    }
}
