//! JSON serialization of pipeline results for the `visim-results-v2`
//! artifact schema (see `visim-obs`).
//!
//! The conversions live here rather than in `visim-obs` so the obs
//! crate stays a dependency-graph leaf: each crate owns the JSON shape
//! of its own statistics.

use visim_obs::codec::{ByteReader, ByteWriter};
use visim_obs::{Json, Registry};

use crate::pipeline::Summary;
use crate::stats::{Breakdown, CpuStats};

impl Breakdown {
    /// The Figure 1 execution-time components plus their total.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("busy", Json::from(self.busy)),
            ("fu_stall", Json::from(self.fu_stall)),
            ("l1_hit", Json::from(self.l1_hit)),
            ("l1_miss", Json::from(self.l1_miss)),
            ("total", Json::from(self.total())),
        ])
    }
}

impl CpuStats {
    /// Counters, instruction-category mix, derived rates, and the
    /// execution-time breakdown.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cycles", Json::from(self.cycles)),
            ("retired", Json::from(self.retired)),
            ("ipc", Json::from(self.ipc())),
            (
                "mix",
                Json::obj(vec![
                    ("fu", Json::from(self.mix[0])),
                    ("branch", Json::from(self.mix[1])),
                    ("memory", Json::from(self.mix[2])),
                    ("vis", Json::from(self.mix[3])),
                ]),
            ),
            ("vis_overhead", Json::from(self.vis_overhead)),
            (
                "vis_overhead_fraction",
                Json::from(self.vis_overhead_fraction()),
            ),
            ("cond_branches", Json::from(self.cond_branches)),
            ("mispredicts", Json::from(self.mispredicts)),
            ("mispredict_rate", Json::from(self.mispredict_rate())),
            ("ras_mispredicts", Json::from(self.ras_mispredicts)),
            ("loads", Json::from(self.loads)),
            ("stores", Json::from(self.stores)),
            ("prefetches", Json::from(self.prefetches)),
            ("breakdown", self.breakdown().to_json()),
        ])
    }
}

impl Summary {
    /// The members of the per-run payload, in artifact order: pipeline
    /// statistics, memory-system statistics, the time-weighted MSHR
    /// occupancy histogram, and the observability metrics registry.
    ///
    /// This is the single source for every result cell that embeds a
    /// summary — `visim`'s cell builders and the `pipetrace` artifacts
    /// extend these members rather than re-assembling the object.
    pub fn json_members(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("cpu", self.cpu.to_json()),
            ("mem", self.mem.to_json()),
            ("mshr_histogram", Json::from(self.mshr_histogram.clone())),
            ("metrics", self.metrics.to_json()),
        ]
    }

    /// The full per-run payload (see [`Summary::json_members`]).
    pub fn to_json(&self) -> Json {
        Json::obj(self.json_members())
    }

    /// Append the complete summary — pipeline statistics (exact
    /// attribution units included), memory statistics, MSHR histogram,
    /// and the per-cell metrics registry — to `w`. Unlike
    /// [`Summary::to_json`], which emits derived floating-point views,
    /// this round-trips every accumulator exactly; it is what lets a
    /// result-store hit reproduce the original text report
    /// byte-for-byte on resume.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        self.cpu.encode_into(w);
        self.mem.encode_into(w);
        w.put_u64s(&self.mshr_histogram);
        self.metrics.encode_into(w);
    }

    /// Decode a summary written by [`Summary::encode_into`].
    pub fn decode_from(r: &mut ByteReader) -> Result<Self, String> {
        Ok(Summary {
            cpu: CpuStats::decode_from(r)?,
            mem: visim_mem::MemStats::decode_from(r)?,
            mshr_histogram: r.u64s()?,
            metrics: Registry::decode_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use visim_mem::MemConfig;
    use visim_obs::Json;

    use crate::config::CpuConfig;
    use crate::pipeline::Pipeline;
    use crate::sink::SimSink;
    use visim_isa::{Inst, Op, Reg};

    #[test]
    fn summary_serializes_and_round_trips() {
        let mut p = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
        p.push(Inst::compute(Op::IntAlu, 0x10, Reg(1), [Reg::NONE; 3]));
        p.push(Inst::compute(
            Op::IntAlu,
            0x14,
            Reg(2),
            [Reg(1), Reg::NONE, Reg::NONE],
        ));
        let s = p.finish();
        let j = s.to_json();
        assert_eq!(
            j.get("cpu")
                .and_then(|c| c.get("retired"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let total = j
            .get("cpu")
            .and_then(|c| c.get("breakdown"))
            .and_then(|b| b.get("total"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((total - s.cpu.cycles as f64).abs() < 1e-9);
        // Metrics made it into the payload.
        let counters = j
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .expect("metrics.counters present");
        assert!(counters.get("cpu.predictor.updates").is_some());
        // Round-trips through the parser.
        assert_eq!(Json::parse(&j.to_compact()).unwrap(), j);
    }

    #[test]
    fn summary_binary_codec_round_trips_a_real_run() {
        use visim_obs::codec::{ByteReader, ByteWriter};
        let mut p = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
        for i in 0..64u64 {
            let op = if i % 7 == 0 { Op::IntMul } else { Op::IntAlu };
            p.push(Inst::compute(
                op,
                0x10 + 4 * i,
                Reg(1 + i as u32),
                [Reg::NONE; 3],
            ));
        }
        let s = p.finish();
        let mut w = ByteWriter::new();
        s.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = crate::pipeline::Summary::decode_from(&mut r).unwrap();
        r.done().unwrap();
        // The Debug form covers every field of every component, the
        // crate-private attribution units included.
        assert_eq!(format!("{back:?}"), format!("{s:?}"));
        // Re-encoding the decoded summary is byte-identical.
        let mut w2 = ByteWriter::new();
        back.encode_into(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn window_occupancy_histogram_covers_every_cycle() {
        let mut p = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
        for i in 0..16u64 {
            p.push(Inst::compute(
                Op::IntAlu,
                0x10 + 4 * i,
                Reg(1 + i as u32),
                [Reg::NONE; 3],
            ));
        }
        let s = p.finish();
        let h = s.metrics.histogram("cpu.window_occupancy").unwrap();
        assert_eq!(h.count(), s.cpu.cycles, "one sample per simulated cycle");
    }
}
