//! Processor pipeline models for the `visim` simulator.
//!
//! Implements the two processor models of §2.2.1 of Ranganathan, Adve &
//! Jouppi (ISCA 1999):
//!
//! * an **in-order** model (21164/UltraSPARC-II-like): instructions issue
//!   in program order with a scoreboard, but loads and stores are
//!   non-blocking, so independent work continues past outstanding misses;
//! * an **out-of-order** model (21264/R10000-like): a 64-entry
//!   instruction window, 32-entry memory queue, 4-wide issue/retire.
//!
//! Both share the branch-prediction structures of Table 2 (2K-entry
//! bimodal *agree* predictor, 32-entry return-address stack, one taken
//! branch fetched per cycle, at most 16 unresolved speculated branches)
//! and a functional-unit pool (2 integer ALUs, 2 FP units, 2 address
//! generation units, 1 VIS multiplier, 1 VIS adder by default).
//!
//! Execution time is attributed to *Busy / FU stall / L1 hit / L1 miss*
//! components with the paper's retirement-based convention (§2.3.4): at
//! every cycle, the fraction of the maximum retire rate actually used is
//! busy time, and the rest is charged to the first instruction that could
//! not retire.
//!
//! # Example
//!
//! ```
//! use visim_cpu::{CpuConfig, Pipeline, SimSink};
//! use visim_isa::{Inst, Op, Reg};
//! use visim_mem::MemConfig;
//!
//! let mut p = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
//! // A tiny dependent chain.
//! p.push(Inst::compute(Op::IntAlu, 0x10, Reg(1), [Reg::NONE; 3]));
//! p.push(Inst::compute(Op::IntAlu, 0x14, Reg(2), [Reg(1), Reg::NONE, Reg::NONE]));
//! let summary = p.finish();
//! assert_eq!(summary.cpu.retired, 2);
//! ```

mod artifact;
mod config;
mod fu;
mod pipeline;
mod predictor;
mod sink;
mod stats;
mod warming;

pub use config::{CpuConfig, FuCounts, IssuePolicy};
pub use pipeline::{Pipeline, Summary};
pub use predictor::{AgreePredictor, ReturnAddressStack};
pub use sink::{CountingSink, SimSink, TraceSink, Traced};
pub use stats::{Breakdown, CpuStats, StallClass};
pub use warming::{extrapolate, SamplingEstimate, WarmingSink};
