//! Branch-prediction structures: a bimodal *agree* predictor and a
//! return-address stack (Table 2: 2K-entry agree predictor, 32-entry
//! RAS).
//!
//! An agree predictor stores, per table entry, a 2-bit counter that
//! predicts whether the branch will *agree* with a static bias rather
//! than whether it is taken. We use the classic backward-taken /
//! forward-not-taken heuristic as the bias, which the emitter supplies
//! via [`visim_isa::BranchInfo::backward`]. Loop-closing branches
//! therefore start out predicted correctly, and the counter learns
//! deviations — matching the paper's observation that the hard cases are
//! data-dependent branches (saturation, thresholding).

use visim_obs::codec::{ByteReader, ByteWriter};
use visim_obs::trace::{InstantKind, SharedTraceRing};

/// Observability counters for [`AgreePredictor`]: how often training
/// found the outcome agreeing with the static bias, and how often the
/// 2-bit counter had to flip its agree/disagree decision (a proxy for
/// the data-dependent branches the paper calls out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Training updates observed.
    pub updates: u64,
    /// Updates whose outcome agreed with the static bias.
    pub bias_agreements: u64,
    /// Updates that moved a counter across the agree/disagree threshold.
    pub flips: u64,
}

impl PredictorStats {
    /// Fraction of updates agreeing with the static bias (1.0 when no
    /// updates were observed — an untrained predictor is all bias).
    pub fn bias_agreement_rate(&self) -> f64 {
        if self.updates == 0 {
            1.0
        } else {
            self.bias_agreements as f64 / self.updates as f64
        }
    }
}

/// Bimodal agree predictor with 2-bit saturating agree counters.
#[derive(Debug, Clone)]
pub struct AgreePredictor {
    counters: Vec<u8>,
    mask: u64,
    stats: PredictorStats,
    /// When attached, counter flips emit `PredictorFlip` instants
    /// (timestamped against the ring's current cycle).
    tracer: Option<SharedTraceRing>,
}

impl AgreePredictor {
    /// Create a predictor with `entries` two-bit counters (rounded up to
    /// a power of two), initialized to weakly-agree.
    pub fn new(entries: u32) -> Self {
        let n = entries.next_power_of_two().max(2);
        AgreePredictor {
            counters: vec![2; n as usize],
            mask: (n - 1) as u64,
            stats: PredictorStats::default(),
            tracer: None,
        }
    }

    /// Observability counters accumulated by training.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    pub(crate) fn attach_tracer(&mut self, ring: SharedTraceRing) {
        self.tracer = Some(ring);
    }

    fn index(&self, pc: u64) -> usize {
        // Mix the upper bits so call-site-derived PCs spread across the
        // table like word-aligned instruction addresses would.
        let h = pc ^ (pc >> 13) ^ (pc >> 29);
        (h & self.mask) as usize
    }

    /// Static bias for a branch: backward branches are biased taken.
    fn bias(backward: bool) -> bool {
        backward
    }

    /// Predict the outcome of the branch at `pc`.
    pub fn predict(&self, pc: u64, backward: bool) -> bool {
        let agree = self.counters[self.index(pc)] >= 2;
        agree == Self::bias(backward)
    }

    /// Serialize the counter table for an architectural checkpoint.
    /// Statistics are *not* captured: a restored predictor observes its
    /// window from a clean slate.
    pub(crate) fn save_state(&self, w: &mut ByteWriter) {
        w.put_u32(self.counters.len() as u32);
        w.put_raw(&self.counters);
    }

    /// Restore a counter table captured by [`AgreePredictor::save_state`]
    /// into a predictor of the same geometry. Statistics reset to zero.
    /// On error the table may be partially written and must be discarded.
    pub(crate) fn load_state(&mut self, r: &mut ByteReader) -> Result<(), String> {
        let n = r.u32()? as usize;
        if n != self.counters.len() {
            return Err(format!(
                "predictor size {n} != configured {}",
                self.counters.len()
            ));
        }
        let bytes = r.raw(n)?;
        if let Some(bad) = bytes.iter().find(|&&b| b > 3) {
            return Err(format!("predictor counter {bad} out of 2-bit range"));
        }
        self.counters.copy_from_slice(bytes);
        self.stats = PredictorStats::default();
        Ok(())
    }

    /// Train with the actual outcome.
    pub fn update(&mut self, pc: u64, backward: bool, taken: bool) {
        let agreed = taken == Self::bias(backward);
        let ix = self.index(pc);
        let c = &mut self.counters[ix];
        let before = *c >= 2;
        if agreed {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.stats.updates += 1;
        self.stats.bias_agreements += agreed as u64;
        let flipped = (*c >= 2) != before;
        self.stats.flips += flipped as u64;
        if flipped {
            if let Some(ring) = &self.tracer {
                ring.borrow_mut().instant(InstantKind::PredictorFlip, pc, 0);
            }
        }
    }
}

/// Return-address stack. Overflow wraps (oldest entry lost), underflow
/// mispredicts, and a popped entry that does not match the return's
/// linkage token mispredicts.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    cap: usize,
    /// Pushes that displaced the oldest entry (call depth > capacity).
    overflows: u64,
    /// Pops from an empty stack (guaranteed mispredictions).
    underflows: u64,
}

impl ReturnAddressStack {
    /// Create a RAS with `entries` slots.
    pub fn new(entries: u32) -> Self {
        ReturnAddressStack {
            stack: Vec::with_capacity(entries as usize),
            cap: entries.max(1) as usize,
            overflows: 0,
            underflows: 0,
        }
    }

    /// Record a call with linkage token `target`.
    pub fn push(&mut self, target: u64) {
        if self.stack.len() == self.cap {
            self.stack.remove(0); // oldest entry falls off the bottom
            self.overflows += 1;
        }
        self.stack.push(target);
    }

    /// Predict a return with linkage token `target`; true if the
    /// prediction would have been correct.
    pub fn pop_matches(&mut self, target: u64) -> bool {
        match self.stack.pop() {
            Some(t) => t == target,
            None => {
                self.underflows += 1;
                false
            }
        }
    }

    /// Serialize the stack contents for an architectural checkpoint.
    /// Overflow/underflow counters are not captured.
    pub(crate) fn save_state(&self, w: &mut ByteWriter) {
        w.put_u64s(&self.stack);
    }

    /// Restore a stack captured by [`ReturnAddressStack::save_state`].
    /// Counters reset to zero.
    pub(crate) fn load_state(&mut self, r: &mut ByteReader) -> Result<(), String> {
        let stack = r.u64s()?;
        if stack.len() > self.cap {
            return Err(format!(
                "RAS depth {} exceeds capacity {}",
                stack.len(),
                self.cap
            ));
        }
        self.stack = stack;
        self.overflows = 0;
        self.underflows = 0;
        Ok(())
    }

    /// Pushes that lost the oldest entry to capacity.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Pops that found the stack empty.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_branches_start_predicted_taken() {
        let p = AgreePredictor::new(2048);
        assert!(p.predict(0x40, true), "loop branch biased taken");
        assert!(!p.predict(0x40, false), "forward branch biased not-taken");
    }

    #[test]
    fn learns_anti_bias_behaviour() {
        let mut p = AgreePredictor::new(64);
        // A forward branch that is almost always taken (saturation case).
        for _ in 0..4 {
            p.update(0x99, false, true);
        }
        assert!(p.predict(0x99, false), "learned to disagree with bias");
    }

    #[test]
    fn counters_saturate_and_recover() {
        let mut p = AgreePredictor::new(64);
        for _ in 0..10 {
            p.update(0x7, true, true); // strongly agree
        }
        p.update(0x7, true, false); // one disagreement
        assert!(p.predict(0x7, true), "hysteresis holds the prediction");
        p.update(0x7, true, false);
        p.update(0x7, true, false);
        assert!(!p.predict(0x7, true), "eventually flips");
    }

    #[test]
    fn distinct_pcs_map_to_distinct_counters_usually() {
        let mut p = AgreePredictor::new(2048);
        p.update(0x1000, false, true);
        p.update(0x1000, false, true);
        p.update(0x1000, false, true);
        // Another site keeps its default behaviour.
        assert!(!p.predict(0x2004, false));
    }

    #[test]
    fn predictor_stats_count_training_behaviour() {
        let mut p = AgreePredictor::new(64);
        assert_eq!(p.stats(), PredictorStats::default());
        p.update(0x10, true, true); // agrees with bias
        p.update(0x10, true, false); // disagrees
        p.update(0x10, true, false); // disagrees; counter crosses 2 -> 1
        let s = p.stats();
        assert_eq!(s.updates, 3);
        assert_eq!(s.bias_agreements, 1);
        assert_eq!(s.flips, 1, "weakly-agree flipped to disagree once");
        assert!((s.bias_agreement_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(PredictorStats::default().bias_agreement_rate(), 1.0);
    }

    #[test]
    fn ras_counts_overflow_and_underflow() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.overflows(), 1);
        r.pop_matches(3);
        r.pop_matches(2);
        r.pop_matches(1);
        assert_eq!(r.underflows(), 1);
    }

    #[test]
    fn ras_matches_nested_calls() {
        let mut r = ReturnAddressStack::new(4);
        r.push(1);
        r.push(2);
        assert!(r.pop_matches(2));
        assert!(r.pop_matches(1));
        assert!(!r.pop_matches(1), "underflow mispredicts");
    }

    #[test]
    fn predictor_snapshot_round_trips_and_rejects_bad_state() {
        let mut p = AgreePredictor::new(64);
        for i in 0..200u64 {
            p.update(i * 4, i % 3 == 0, i % 2 == 0);
        }
        let mut w = ByteWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = AgreePredictor::new(64);
        fresh
            .load_state(&mut ByteReader::new(&bytes))
            .expect("restores");
        assert_eq!(fresh.counters, p.counters);
        assert_eq!(fresh.stats, PredictorStats::default(), "stats reset");
        // Re-encoding the restored state is bit-identical.
        let mut w2 = ByteWriter::new();
        fresh.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);

        // Wrong geometry is rejected.
        let mut small = AgreePredictor::new(32);
        assert!(small.load_state(&mut ByteReader::new(&bytes)).is_err());
        // An out-of-range counter byte is rejected.
        let mut bad = bytes.clone();
        bad[4] = 7;
        assert!(AgreePredictor::new(64)
            .load_state(&mut ByteReader::new(&bad))
            .is_err());
    }

    #[test]
    fn ras_snapshot_round_trips_and_rejects_overdeep_stack() {
        let mut r = ReturnAddressStack::new(4);
        r.push(0x10);
        r.push(0x20);
        r.push(0x30);
        let mut w = ByteWriter::new();
        r.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = ReturnAddressStack::new(4);
        fresh
            .load_state(&mut ByteReader::new(&bytes))
            .expect("restores");
        assert!(fresh.pop_matches(0x30));
        assert!(fresh.pop_matches(0x20));
        assert!(fresh.pop_matches(0x10));
        assert_eq!(fresh.underflows(), 0);

        let mut shallow = ReturnAddressStack::new(2);
        assert!(shallow.load_state(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn ras_overflow_loses_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // evicts 1
        assert!(r.pop_matches(3));
        assert!(r.pop_matches(2));
        assert!(!r.pop_matches(1), "deep chain overflowed");
    }
}
