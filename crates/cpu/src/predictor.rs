//! Branch-prediction structures: a bimodal *agree* predictor and a
//! return-address stack (Table 2: 2K-entry agree predictor, 32-entry
//! RAS).
//!
//! An agree predictor stores, per table entry, a 2-bit counter that
//! predicts whether the branch will *agree* with a static bias rather
//! than whether it is taken. We use the classic backward-taken /
//! forward-not-taken heuristic as the bias, which the emitter supplies
//! via [`visim_isa::BranchInfo::backward`]. Loop-closing branches
//! therefore start out predicted correctly, and the counter learns
//! deviations — matching the paper's observation that the hard cases are
//! data-dependent branches (saturation, thresholding).

/// Bimodal agree predictor with 2-bit saturating agree counters.
#[derive(Debug, Clone)]
pub struct AgreePredictor {
    counters: Vec<u8>,
    mask: u64,
}

impl AgreePredictor {
    /// Create a predictor with `entries` two-bit counters (rounded up to
    /// a power of two), initialized to weakly-agree.
    pub fn new(entries: u32) -> Self {
        let n = entries.next_power_of_two().max(2);
        AgreePredictor {
            counters: vec![2; n as usize],
            mask: (n - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Mix the upper bits so call-site-derived PCs spread across the
        // table like word-aligned instruction addresses would.
        let h = pc ^ (pc >> 13) ^ (pc >> 29);
        (h & self.mask) as usize
    }

    /// Static bias for a branch: backward branches are biased taken.
    fn bias(backward: bool) -> bool {
        backward
    }

    /// Predict the outcome of the branch at `pc`.
    pub fn predict(&self, pc: u64, backward: bool) -> bool {
        let agree = self.counters[self.index(pc)] >= 2;
        agree == Self::bias(backward)
    }

    /// Train with the actual outcome.
    pub fn update(&mut self, pc: u64, backward: bool, taken: bool) {
        let agreed = taken == Self::bias(backward);
        let ix = self.index(pc);
        let c = &mut self.counters[ix];
        if agreed {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Return-address stack. Overflow wraps (oldest entry lost), underflow
/// mispredicts, and a popped entry that does not match the return's
/// linkage token mispredicts.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    cap: usize,
}

impl ReturnAddressStack {
    /// Create a RAS with `entries` slots.
    pub fn new(entries: u32) -> Self {
        ReturnAddressStack {
            stack: Vec::with_capacity(entries as usize),
            cap: entries.max(1) as usize,
        }
    }

    /// Record a call with linkage token `target`.
    pub fn push(&mut self, target: u64) {
        if self.stack.len() == self.cap {
            self.stack.remove(0); // oldest entry falls off the bottom
        }
        self.stack.push(target);
    }

    /// Predict a return with linkage token `target`; true if the
    /// prediction would have been correct.
    pub fn pop_matches(&mut self, target: u64) -> bool {
        match self.stack.pop() {
            Some(t) => t == target,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_branches_start_predicted_taken() {
        let p = AgreePredictor::new(2048);
        assert!(p.predict(0x40, true), "loop branch biased taken");
        assert!(!p.predict(0x40, false), "forward branch biased not-taken");
    }

    #[test]
    fn learns_anti_bias_behaviour() {
        let mut p = AgreePredictor::new(64);
        // A forward branch that is almost always taken (saturation case).
        for _ in 0..4 {
            p.update(0x99, false, true);
        }
        assert!(p.predict(0x99, false), "learned to disagree with bias");
    }

    #[test]
    fn counters_saturate_and_recover() {
        let mut p = AgreePredictor::new(64);
        for _ in 0..10 {
            p.update(0x7, true, true); // strongly agree
        }
        p.update(0x7, true, false); // one disagreement
        assert!(p.predict(0x7, true), "hysteresis holds the prediction");
        p.update(0x7, true, false);
        p.update(0x7, true, false);
        assert!(!p.predict(0x7, true), "eventually flips");
    }

    #[test]
    fn distinct_pcs_map_to_distinct_counters_usually() {
        let mut p = AgreePredictor::new(2048);
        p.update(0x1000, false, true);
        p.update(0x1000, false, true);
        p.update(0x1000, false, true);
        // Another site keeps its default behaviour.
        assert!(!p.predict(0x2004, false));
    }

    #[test]
    fn ras_matches_nested_calls() {
        let mut r = ReturnAddressStack::new(4);
        r.push(1);
        r.push(2);
        assert!(r.pop_matches(2));
        assert!(r.pop_matches(1));
        assert!(!r.pop_matches(1), "underflow mispredicts");
    }

    #[test]
    fn ras_overflow_loses_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // evicts 1
        assert!(r.pop_matches(3));
        assert!(r.pop_matches(2));
        assert!(!r.pop_matches(1), "deep chain overflowed");
    }
}
