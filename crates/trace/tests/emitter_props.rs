//! Property tests for the emitter: functional correctness of the
//! scalar ALU semantics, memory round-trips, and loop trip counts.

use visim_cpu::CountingSink;
use visim_trace::{Cond, Program};
use visim_util::prop::{self, Config};
use visim_util::{prop_assert, prop_assert_eq};

#[test]
fn alu_ops_match_host_arithmetic() {
    prop::check(
        Config::default(),
        |rng| (rng.i32(), rng.i32()),
        |&(a, b)| {
            let (a, b) = (a as i64, b as i64);
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let va = p.li(a);
            let vb = p.li(b);
            prop_assert_eq!(p.add(&va, &vb).value(), a.wrapping_add(b));
            prop_assert_eq!(p.sub(&va, &vb).value(), a.wrapping_sub(b));
            prop_assert_eq!(p.mul(&va, &vb).value(), a.wrapping_mul(b));
            prop_assert_eq!(p.and(&va, &vb).value(), a & b);
            prop_assert_eq!(p.or(&va, &vb).value(), a | b);
            prop_assert_eq!(p.xor(&va, &vb).value(), a ^ b);
            if b != 0 {
                prop_assert_eq!(p.div(&va, &vb).value(), a / b);
            }
            Ok(())
        },
    );
}

#[test]
fn shifts_match_host() {
    prop::check(
        Config::default(),
        |rng| (rng.i64(), rng.gen_range(0u32..63)),
        |&(a, s)| {
            if s >= 63 {
                return Ok(());
            }
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let va = p.li(a);
            prop_assert_eq!(p.shli(&va, s).value(), a.wrapping_shl(s));
            prop_assert_eq!(p.srai(&va, s).value(), a.wrapping_shr(s));
            prop_assert_eq!(p.shri(&va, s).value(), ((a as u64) >> s) as i64);
            let vs = p.li(s as i64);
            prop_assert_eq!(p.shl(&va, &vs).value(), a.wrapping_shl(s));
            prop_assert_eq!(p.shr(&va, &vs).value(), ((a as u64) >> s) as i64);
            Ok(())
        },
    );
}

#[test]
fn memory_roundtrips_all_widths() {
    prop::check(
        Config::default(),
        |rng| (rng.u64(), rng.gen_range(0i64..56)),
        |&(v, off)| {
            if !(0..56).contains(&off) {
                return Ok(());
            }
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let buf = p.mem_mut().alloc(64, 8);
            let base = p.li(buf as i64);
            let val = p.li(v as i64);
            p.store_u8(&base, off, &val);
            prop_assert_eq!(p.load_u8(&base, off).value(), (v & 0xff) as i64);
            let off2 = off & !1;
            p.store_u16(&base, off2, &val);
            prop_assert_eq!(p.load_u16(&base, off2).value(), (v & 0xffff) as i64);
            prop_assert_eq!(p.load_i16(&base, off2).value(), v as u16 as i16 as i64);
            let off4 = off & !3;
            p.store_u32(&base, off4, &val);
            prop_assert_eq!(p.load_i32(&base, off4).value(), v as u32 as i32 as i64);
            let off8 = off & !7;
            p.store_u64(&base, off8, &val);
            prop_assert_eq!(p.load_u64(&base, off8).value(), v as i64);
            Ok(())
        },
    );
}

#[test]
fn loop_range_trip_count() {
    prop::check(
        Config::default(),
        |rng| {
            (
                rng.gen_range(-50i64..50),
                rng.gen_range(0i64..60),
                rng.gen_range(1i64..7),
            )
        },
        |&(start, len, step)| {
            if step < 1 || len < 0 {
                return Ok(());
            }
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let end = start + len;
            let mut trips = 0u64;
            let mut last = None;
            p.loop_range(start, end, step, |_, i| {
                trips += 1;
                last = Some(i.value());
            });
            let want = if len <= 0 {
                0
            } else {
                (len as u64).div_ceil(step as u64)
            };
            prop_assert_eq!(trips, want);
            if let Some(l) = last {
                prop_assert!(l < end && l >= start);
                prop_assert_eq!((l - start) % step, 0);
            }
            Ok(())
        },
    );
}

#[test]
fn conditions_match_host() {
    prop::check(
        Config::default(),
        |rng| (rng.i32(), rng.i32()),
        |&(a, b)| {
            let (a, b) = (a as i64, b as i64);
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let va = p.li(a);
            let vb = p.li(b);
            prop_assert_eq!(p.bcond(Cond::Lt, &va, &vb, false), a < b);
            prop_assert_eq!(p.bcond(Cond::Le, &va, &vb, false), a <= b);
            prop_assert_eq!(p.bcond(Cond::Gt, &va, &vb, false), a > b);
            prop_assert_eq!(p.bcond(Cond::Ge, &va, &vb, false), a >= b);
            prop_assert_eq!(p.bcond(Cond::Eq, &va, &vb, false), a == b);
            prop_assert_eq!(p.bcond(Cond::Ne, &va, &vb, false), a != b);
            prop_assert_eq!(p.bcond_i(Cond::Lt, &va, b, false), a < b);
            Ok(())
        },
    );
}

/// The emitted select must be branch-free and equal the ternary.
#[test]
fn select_is_ternary() {
    prop::check(
        Config::default(),
        |rng| (rng.i64(), rng.i64(), rng.i64()),
        |&(c, t, f)| {
            let mut sink = CountingSink::new();
            let got = {
                let mut p = Program::new(&mut sink);
                let vc = p.li(c);
                let vt = p.li(t);
                let vf = p.li(f);
                p.select(&vc, &vt, &vf).value()
            };
            prop_assert_eq!(got, if c != 0 { t } else { f });
            prop_assert_eq!(sink.stats().cond_branches, 0);
            Ok(())
        },
    );
}
