//! Property tests for the record/replay engine: an arbitrary dynamic
//! instruction stream survives record → encode → decode → replay
//! exactly, and any single-byte corruption of the encoding is caught.

use visim_cpu::SimSink;
use visim_isa::{BranchInfo, BranchKind, Inst, MemKind, MemRef, Op, Reg};
use visim_trace::Recorded;
use visim_util::prop::{self, Config};
use visim_util::prop_assert;

/// A sink that stores every pushed instruction.
#[derive(Default)]
struct Collect(Vec<Inst>);

impl SimSink for Collect {
    fn push(&mut self, inst: Inst) {
        self.0.push(inst);
    }
}

const OPS: [Op; 26] = [
    Op::IntAlu,
    Op::IntMul,
    Op::IntDiv,
    Op::FpOp,
    Op::FpMove,
    Op::FpConv,
    Op::FpDiv,
    Op::Branch,
    Op::Jump,
    Op::Call,
    Op::Ret,
    Op::Load,
    Op::Store,
    Op::Prefetch,
    Op::VisAdd,
    Op::VisLogic,
    Op::VisAlign,
    Op::VisEdge,
    Op::VisCmp,
    Op::VisMul,
    Op::VisPack,
    Op::VisExpand,
    Op::VisMerge,
    Op::VisPdist,
    Op::VisArray,
    Op::VisGsr,
];

const MEM_KINDS: [MemKind; 6] = [
    MemKind::Load,
    MemKind::Store,
    MemKind::Prefetch,
    MemKind::PartialStore,
    MemKind::BlockLoad,
    MemKind::BlockStore,
];

const BRANCH_KINDS: [BranchKind; 4] = [
    BranchKind::Cond,
    BranchKind::Jump,
    BranchKind::Call,
    BranchKind::Ret,
];

/// One generated instruction, as a `Shrink`-able tuple:
/// (op selector, pc, dst, srcs, mem (present, addr, size, kind sel),
/// branch (present, kind sel, taken, backward, target)).
type Spec = (
    u8,
    u64,
    u32,
    [u32; 3],
    (bool, u64, u8, u8),
    (bool, u8, bool, bool, u64),
);

/// Build the exact `Inst` a spec denotes. Deliberately uses the struct
/// literal, not the `Inst` constructors: the round-trip must hold for
/// *any* field combination, not only the shapes the emitter produces.
fn inst_of(spec: &Spec) -> Inst {
    let &(op_sel, pc, dst, srcs, (has_mem, addr, size, mk), (has_br, bk, taken, backward, target)) =
        spec;
    Inst {
        op: OPS[op_sel as usize % OPS.len()],
        pc,
        dst: Reg(dst),
        srcs: [Reg(srcs[0]), Reg(srcs[1]), Reg(srcs[2])],
        mem: has_mem.then_some(MemRef {
            addr,
            size,
            kind: MEM_KINDS[mk as usize % MEM_KINDS.len()],
        }),
        branch: has_br.then_some(BranchInfo {
            kind: BRANCH_KINDS[bk as usize % BRANCH_KINDS.len()],
            taken,
            backward,
            target,
        }),
    }
}

fn gen_spec(rng: &mut visim_util::Rng) -> Spec {
    (
        rng.u8(),
        rng.u64(),
        rng.u32(),
        [rng.u32(), rng.u32(), rng.u32()],
        (rng.bool(), rng.u64(), rng.u8(), rng.u8()),
        (rng.bool(), rng.u8(), rng.bool(), rng.bool(), rng.u64()),
    )
}

#[test]
fn record_encode_decode_replay_round_trips_any_stream() {
    prop::check(
        Config::cases(64),
        |rng| {
            let n = rng.gen_range(0u32..200) as usize;
            (0..n).map(|_| gen_spec(rng)).collect::<Vec<Spec>>()
        },
        |specs| {
            let stream: Vec<Inst> = specs.iter().map(inst_of).collect();
            let mut rec = Recorded::new();
            for &i in &stream {
                rec.push(i);
            }
            let bytes = rec.encode("prop-key");
            let decoded =
                Recorded::decode(&bytes, "prop-key").map_err(|e| format!("decode failed: {e}"))?;
            let mut out = Collect::default();
            decoded.replay(&mut out);
            prop_assert!(
                out.0 == stream,
                "replayed stream differs from the recorded one"
            );
            Ok(())
        },
    );
}

#[test]
fn any_single_byte_flip_is_rejected() {
    prop::check(
        Config::cases(64),
        |rng| {
            let specs: Vec<Spec> = (0..rng.gen_range(1u32..40))
                .map(|_| gen_spec(rng))
                .collect();
            let flip = rng.u64();
            (specs, flip)
        },
        |(specs, flip)| {
            let mut rec = Recorded::new();
            for spec in specs {
                rec.push(inst_of(spec));
            }
            let mut bytes = rec.encode("prop-key");
            let ix = (*flip as usize) % bytes.len();
            bytes[ix] ^= 1;
            prop_assert!(
                Recorded::decode(&bytes, "prop-key").is_err(),
                "corruption at byte {} went undetected",
                ix
            );
            Ok(())
        },
    );
}
