//! Simulated flat address space with a bump allocator.

/// The workload's simulated memory.
///
/// Addresses start at [`MemImage::BASE`]; the backing store grows on
/// demand. All multi-byte accesses are little-endian (see the lane
/// convention in `visim_isa::vis`).
#[derive(Debug, Clone)]
pub struct MemImage {
    data: Vec<u8>,
    next: u64,
}

impl MemImage {
    /// Lowest allocatable simulated address (so that "null" is never a
    /// valid buffer).
    pub const BASE: u64 = 0x1_0000;

    /// An empty address space.
    pub fn new() -> Self {
        MemImage {
            data: Vec::new(),
            next: Self::BASE,
        }
    }

    /// Allocate `size` bytes aligned to `align` (a power of two);
    /// returns the simulated address. Memory is zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, size: usize, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        self.next = addr + size as u64;
        let need = (self.next - Self::BASE) as usize;
        if self.data.len() < need {
            self.data.resize(need, 0);
        }
        addr
    }

    /// Allocate with a guard gap after the previous allocation, so that
    /// distinct buffers never share a cache line. The paper skews
    /// concurrent array starting addresses to reduce cache conflicts
    /// (§2.3.1); callers control placement the same way.
    pub fn alloc_skewed(&mut self, size: usize, align: u64, skew: u64) -> u64 {
        self.next += skew;
        self.alloc(size, align)
    }

    fn ix(&self, addr: u64, len: usize) -> usize {
        assert!(
            addr >= Self::BASE && (addr - Self::BASE) as usize + len <= self.data.len(),
            "simulated access out of bounds: {addr:#x}+{len}"
        );
        (addr - Self::BASE) as usize
    }

    /// Read `len` bytes at `addr`.
    pub fn bytes(&self, addr: u64, len: usize) -> &[u8] {
        let i = self.ix(addr, len);
        &self.data[i..i + len]
    }

    /// Overwrite the bytes at `addr` (host-side initialization; emits no
    /// instructions).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let i = self.ix(addr, bytes.len());
        self.data[i..i + bytes.len()].copy_from_slice(bytes);
    }

    /// Read an unsigned byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.bytes(addr, 1)[0]
    }

    /// Read a `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.bytes(addr, 2).try_into().expect("len 2"))
    }

    /// Read a `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.bytes(addr, 4).try_into().expect("len 4"))
    }

    /// Read a `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.bytes(addr, 8).try_into().expect("len 8"))
    }

    /// Write a byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.write_bytes(addr, &[v]);
    }

    /// Write a `u16`.
    pub fn write_u16(&mut self, addr: u64, v: u16) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Write a `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Total bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next - Self::BASE
    }
}

impl Default for MemImage {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut m = MemImage::new();
        let a = m.alloc(3, 1);
        let b = m.alloc(8, 64);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 3);
    }

    #[test]
    fn skewed_alloc_adds_gap() {
        let mut m = MemImage::new();
        let a = m.alloc(64, 64);
        let b = m.alloc_skewed(64, 8, 24);
        assert!(b >= a + 64 + 24);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = MemImage::new();
        let a = m.alloc(32, 8);
        m.write_u8(a, 0xab);
        m.write_u16(a + 2, 0x1234);
        m.write_u32(a + 4, 0xdeadbeef);
        m.write_u64(a + 8, 0x0102030405060708);
        assert_eq!(m.read_u8(a), 0xab);
        assert_eq!(m.read_u16(a + 2), 0x1234);
        assert_eq!(m.read_u32(a + 4), 0xdeadbeef);
        assert_eq!(m.read_u64(a + 8), 0x0102030405060708);
    }

    #[test]
    fn memory_is_zero_initialized() {
        let mut m = MemImage::new();
        let a = m.alloc(16, 8);
        assert_eq!(m.read_u64(a), 0);
        assert_eq!(m.read_u64(a + 8), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let mut m = MemImage::new();
        let a = m.alloc(8, 8);
        let _ = m.read_u64(a + 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn below_base_read_panics() {
        let m = MemImage::new();
        let _ = m.read_u8(0x10);
    }
}
