//! Value handles pairing functional values with virtual registers.

use visim_isa::Reg;

/// A 64-bit scalar value in a virtual register.
///
/// Scalars are stored as `i64`; floating-point values are carried as
/// `f64` bit patterns (see [`Val::as_f64`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Val {
    pub(crate) reg: Reg,
    pub(crate) v: i64,
}

impl Val {
    pub(crate) fn new(reg: Reg, v: i64) -> Self {
        Val { reg, v }
    }

    /// The functional value.
    pub fn value(&self) -> i64 {
        self.v
    }

    /// The value reinterpreted as an `f64` bit pattern.
    pub fn as_f64(&self) -> f64 {
        f64::from_bits(self.v as u64)
    }

    /// The virtual register holding the value.
    pub fn reg(&self) -> Reg {
        self.reg
    }
}

/// A 64-bit packed (VIS) value in a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VVal {
    pub(crate) reg: Reg,
    pub(crate) v: u64,
}

impl VVal {
    pub(crate) fn new(reg: Reg, v: u64) -> Self {
        VVal { reg, v }
    }

    /// The packed bits.
    pub fn bits(&self) -> u64 {
        self.v
    }

    /// The packed value as four signed 16-bit lanes.
    pub fn lanes16(&self) -> [i16; 4] {
        visim_isa::vis::unpack16(self.v)
    }

    /// The packed value as eight byte lanes.
    pub fn lanes8(&self) -> [u8; 8] {
        visim_isa::vis::unpack8(self.v)
    }

    /// The virtual register holding the value.
    pub fn reg(&self) -> Reg {
        self.reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn val_accessors() {
        let v = Val::new(Reg(3), -7);
        assert_eq!(v.value(), -7);
        assert_eq!(v.reg(), Reg(3));
        let f = Val::new(Reg(4), 1.5f64.to_bits() as i64);
        assert_eq!(f.as_f64(), 1.5);
    }

    #[test]
    fn vval_lane_views() {
        let v = VVal::new(Reg(5), visim_isa::vis::pack16([1, -2, 3, -4]));
        assert_eq!(v.lanes16(), [1, -2, 3, -4]);
        assert_eq!(v.reg(), Reg(5));
    }
}
