//! Execution-driven workload framework for the `visim` simulator.
//!
//! The paper simulates compiled SPARC binaries with RSIM. Here,
//! benchmarks are ordinary Rust functions written against the
//! [`Program`] emitter: every emitted operation *both* computes real
//! data (loads and stores act on a simulated flat address space, the
//! [`MemImage`]) *and* synchronously feeds one dynamic instruction —
//! with register data-flow, memory address, and branch outcome — into a
//! [`visim_cpu::SimSink`] (the timing pipeline or a cheap counter).
//!
//! Values are carried by [`Val`] (a 64-bit scalar) and [`VVal`] (a
//! 64-bit VIS packed register) handles, which pair the functional value
//! with the virtual register holding it, so dependences are tracked
//! automatically. Static instruction identities (the "PC" used by the
//! branch predictor) derive from the Rust call site via
//! `#[track_caller]`.
//!
//! # Example
//!
//! ```
//! use visim_cpu::CountingSink;
//! use visim_trace::Program;
//!
//! let mut sink = CountingSink::new();
//! let mut p = Program::new(&mut sink);
//! let buf = p.mem_mut().alloc(64, 8);
//! let base = p.li(buf as i64);
//! let x = p.li(7);
//! let y = p.addi(&x, 35);
//! p.store_u64(&base, 0, &y);
//! let z = p.load_u64(&base, 0);
//! assert_eq!(z.value(), 42);
//! ```

mod checkpoint;
mod memimg;
mod program;
mod record;
mod value;

pub use checkpoint::{Checkpoint, CKPT_FORMAT_VERSION};
pub use memimg::MemImage;
pub use program::{Cond, Program};
pub use record::{Recorded, Recorder, ReplayCursor, TRACE_FORMAT_VERSION};
pub use value::{VVal, Val};
