//! Record-once / replay-many trace capture.
//!
//! Functional emission (running a workload through [`Program`] to
//! produce its dynamic instruction stream) and timing simulation
//! (feeding that stream to a pipeline model) are independent phases:
//! the stream depends only on the benchmark, its input geometry, and
//! the code variant — never on the machine configuration consuming it.
//! The experiment runners exploit that by capturing each distinct
//! stream once into a [`Recorded`] buffer and replaying it into every
//! (architecture × cache) configuration that needs it, skipping the
//! per-instruction register-value computation, address arithmetic, and
//! emitter bookkeeping on all but the first run.
//!
//! [`Recorded`] stores every [`Inst`] *verbatim*, in struct-of-arrays
//! form (per-field flat vectors, with side tables for the optional
//! memory and branch payloads). Replay therefore pushes bit-identical
//! `Inst` values in the original order, which is what makes
//! replay-vs-direct byte-identity hold by construction: the pipeline
//! cannot distinguish the two paths.
//!
//! The buffer also round-trips through a versioned, checksummed binary
//! encoding ([`Recorded::encode`] / [`Recorded::decode`]) so a
//! process-spanning cache can spill streams to disk.
//!
//! [`Program`]: crate::Program

use visim_cpu::SimSink;
use visim_isa::{BranchInfo, BranchKind, Inst, MemKind, MemRef, Op, Reg};
use visim_util::fnv1a64;

/// Version tag of the on-disk encoding. Bump whenever the byte layout
/// (or the meaning of any field) changes; decoders reject other
/// versions, so stale cache files are re-recorded instead of
/// misinterpreted.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Magic prefix of an encoded trace.
const MAGIC: &[u8; 4] = b"VTRC";

/// A captured dynamic instruction stream in struct-of-arrays form.
///
/// One entry per instruction in `ops`/`pcs`/`dsts`/`srcs`/`meta`; the
/// optional memory and branch payloads live in dense side tables
/// consumed in stream order during replay (`meta` records which
/// instructions carry one).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorded {
    ops: Vec<Op>,
    pcs: Vec<u64>,
    dsts: Vec<u32>,
    srcs: Vec<[u32; 3]>,
    /// Bit 0: a `mems` entry follows; bit 1: a `branches` entry follows.
    meta: Vec<u8>,
    mems: Vec<MemRef>,
    branches: Vec<BranchInfo>,
}

const META_MEM: u8 = 1;
const META_BRANCH: u8 = 2;

/// A resumable position in a [`Recorded`] stream: the instruction index
/// plus the side-table cursors that make mid-stream replay start at the
/// right memory/branch payloads. Produced by [`Recorded::replay_span`];
/// serialized inside architectural checkpoints (see
/// [`crate::Checkpoint`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCursor {
    pub(crate) inst: u64,
    pub(crate) mem: u64,
    pub(crate) branch: u64,
}

impl ReplayCursor {
    /// The beginning of the stream.
    pub fn start() -> Self {
        ReplayCursor::default()
    }

    /// Dynamic instruction index this cursor points at.
    pub fn inst(&self) -> u64 {
        self.inst
    }
}

impl Recorded {
    /// An empty stream.
    pub fn new() -> Self {
        Recorded::default()
    }

    /// Number of instructions captured.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Approximate resident size in bytes (used for cache budgeting).
    pub fn approx_bytes(&self) -> usize {
        self.ops.len()
            * (std::mem::size_of::<Op>() + 8 /* pc */ + 4 /* dst */ + 12 /* srcs */ + 1/* meta */)
            + self.mems.len() * std::mem::size_of::<MemRef>()
            + self.branches.len() * std::mem::size_of::<BranchInfo>()
    }

    /// Append one instruction, preserving every field verbatim.
    pub fn push(&mut self, inst: Inst) {
        self.ops.push(inst.op);
        self.pcs.push(inst.pc);
        self.dsts.push(inst.dst.0);
        self.srcs
            .push([inst.srcs[0].0, inst.srcs[1].0, inst.srcs[2].0]);
        let mut meta = 0u8;
        if let Some(m) = inst.mem {
            meta |= META_MEM;
            self.mems.push(m);
        }
        if let Some(b) = inst.branch {
            meta |= META_BRANCH;
            self.branches.push(b);
        }
        self.meta.push(meta);
    }

    /// The instruction at index `i`, given cursors into the side
    /// tables (advanced past any payload consumed).
    fn inst_at(&self, i: usize, mem_ix: &mut usize, br_ix: &mut usize) -> Inst {
        let meta = self.meta[i];
        let mem = (meta & META_MEM != 0).then(|| {
            let m = self.mems[*mem_ix];
            *mem_ix += 1;
            m
        });
        let branch = (meta & META_BRANCH != 0).then(|| {
            let b = self.branches[*br_ix];
            *br_ix += 1;
            b
        });
        let s = self.srcs[i];
        Inst {
            op: self.ops[i],
            pc: self.pcs[i],
            dst: Reg(self.dsts[i]),
            srcs: [Reg(s[0]), Reg(s[1]), Reg(s[2])],
            mem,
            branch,
        }
    }

    /// Feed the captured stream to `sink`, in order, as the exact
    /// `Inst` values originally pushed.
    pub fn replay<S: SimSink>(&self, sink: &mut S) {
        let (mut mem_ix, mut br_ix) = (0, 0);
        for i in 0..self.ops.len() {
            sink.push(self.inst_at(i, &mut mem_ix, &mut br_ix));
        }
    }

    /// Replay up to `count` instructions starting at `cursor`, returning
    /// the cursor one past the span (clamped to the end of the stream).
    /// `Recorded::replay` equals one `replay_span` from
    /// [`ReplayCursor::start`] over the whole stream; chained spans
    /// reproduce it instruction for instruction, which is what lets a
    /// sampled run carve the stream into independently replayable
    /// windows.
    pub fn replay_span<S: SimSink>(
        &self,
        cursor: ReplayCursor,
        count: u64,
        sink: &mut S,
    ) -> ReplayCursor {
        let start = (cursor.inst as usize).min(self.ops.len());
        let end = (cursor.inst.saturating_add(count) as usize).min(self.ops.len());
        let (mut mem_ix, mut br_ix) = (cursor.mem as usize, cursor.branch as usize);
        for i in start..end {
            sink.push(self.inst_at(i, &mut mem_ix, &mut br_ix));
        }
        ReplayCursor {
            inst: end as u64,
            mem: mem_ix as u64,
            branch: br_ix as u64,
        }
    }

    /// True when `cursor` is a structurally possible position in this
    /// stream: indices within range, and side-table cursors not ahead of
    /// the instruction cursor (each instruction carries at most one
    /// memory and one branch payload). A checkpoint restored from disk
    /// is validated with this before any replay uses it.
    pub fn cursor_in_bounds(&self, cursor: ReplayCursor) -> bool {
        cursor.inst <= self.ops.len() as u64
            && cursor.mem <= self.mems.len() as u64
            && cursor.branch <= self.branches.len() as u64
            && cursor.mem <= cursor.inst
            && cursor.branch <= cursor.inst
    }

    /// Serialize with a magic/version header, the caller's `key`
    /// (verified on decode so a renamed file cannot masquerade as a
    /// different stream), and a trailing FNV-1a checksum.
    pub fn encode(&self, key: &str) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.approx_bytes() + key.len() + 64);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key.as_bytes());
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.mems.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.branches.len() as u64).to_le_bytes());
        for &op in &self.ops {
            out.push(op_code(op));
        }
        for &pc in &self.pcs {
            out.extend_from_slice(&pc.to_le_bytes());
        }
        for &dst in &self.dsts {
            out.extend_from_slice(&dst.to_le_bytes());
        }
        for s in &self.srcs {
            for &r in s {
                out.extend_from_slice(&r.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.meta);
        for m in &self.mems {
            out.extend_from_slice(&m.addr.to_le_bytes());
            out.push(m.size);
            out.push(mem_kind_code(m.kind));
        }
        for b in &self.branches {
            out.push(branch_kind_code(b.kind));
            out.push(b.taken as u8 | (b.backward as u8) << 1);
            out.extend_from_slice(&b.target.to_le_bytes());
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode a stream previously produced by [`Recorded::encode`] for
    /// the same `key`, verifying magic, version, key, structural
    /// consistency, and the checksum. Any failure is an `Err` so the
    /// cache can discard the file and fall back to re-recording.
    pub fn decode(bytes: &[u8], key: &str) -> Result<Recorded, String> {
        if bytes.len() < 8 + 8 {
            return Err("truncated header".into());
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte checksum"));
        if fnv1a64(body) != stored {
            return Err("checksum mismatch".into());
        }
        let mut c = Cursor { buf: body, pos: 0 };
        if c.take(4)? != MAGIC {
            return Err("bad magic".into());
        }
        let version = c.u32()?;
        if version != TRACE_FORMAT_VERSION {
            return Err(format!(
                "version {version} != expected {TRACE_FORMAT_VERSION}"
            ));
        }
        let key_len = c.u32()? as usize;
        if c.take(key_len)? != key.as_bytes() {
            return Err("key mismatch".into());
        }
        let n_inst = c.u64()? as usize;
        let n_mem = c.u64()? as usize;
        let n_br = c.u64()? as usize;
        // Exact-length check up front so corrupt counts cannot trigger
        // huge allocations or misaligned reads below.
        let expect = n_inst
            .checked_mul(26)
            .and_then(|n| n.checked_add(n_mem.checked_mul(10)?))
            .and_then(|n| n.checked_add(n_br.checked_mul(10)?))
            .and_then(|n| n.checked_add(c.pos))
            .ok_or("length overflow")?;
        if expect != body.len() {
            return Err(format!(
                "payload length {} != expected {expect}",
                body.len()
            ));
        }
        // Column-at-a-time decode: the exact-length check above fixes
        // every column's extent, so each one is a contiguous slice
        // consumed with `chunks_exact` instead of a per-element cursor.
        // The bounds-check-free inner loops run an order of magnitude
        // faster, which is what makes reloading a multi-hundred-MB
        // spilled stream cheaper than re-emitting it.
        let (ops_b, rest) = body[c.pos..].split_at(n_inst);
        let (pcs_b, rest) = rest.split_at(8 * n_inst);
        let (dsts_b, rest) = rest.split_at(4 * n_inst);
        let (srcs_b, rest) = rest.split_at(12 * n_inst);
        let (meta_b, rest) = rest.split_at(n_inst);
        let (mems_b, br_b) = rest.split_at(10 * n_mem);
        debug_assert_eq!(br_b.len(), 10 * n_br);

        let ops = ops_b
            .iter()
            .map(|&b| op_from_code(b))
            .collect::<Result<Vec<_>, _>>()?;
        let pcs: Vec<u64> = pcs_b
            .chunks_exact(8)
            .map(|w| u64::from_le_bytes(w.try_into().expect("8B")))
            .collect();
        let dsts: Vec<u32> = dsts_b
            .chunks_exact(4)
            .map(|w| u32::from_le_bytes(w.try_into().expect("4B")))
            .collect();
        let srcs: Vec<[u32; 3]> = srcs_b
            .chunks_exact(12)
            .map(|w| {
                [
                    u32::from_le_bytes(w[0..4].try_into().expect("4B")),
                    u32::from_le_bytes(w[4..8].try_into().expect("4B")),
                    u32::from_le_bytes(w[8..12].try_into().expect("4B")),
                ]
            })
            .collect();
        let (mut mem_seen, mut br_seen) = (0usize, 0usize);
        for &m in meta_b {
            if m & !(META_MEM | META_BRANCH) != 0 {
                return Err(format!("bad meta byte {m:#x}"));
            }
            mem_seen += (m & META_MEM != 0) as usize;
            br_seen += (m & META_BRANCH != 0) as usize;
        }
        if mem_seen != n_mem || br_seen != n_br {
            return Err("meta flags disagree with side-table counts".into());
        }
        let mems = mems_b
            .chunks_exact(10)
            .map(|w| {
                Ok(MemRef {
                    addr: u64::from_le_bytes(w[0..8].try_into().expect("8B")),
                    size: w[8],
                    kind: mem_kind_from_code(w[9])?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let branches = br_b
            .chunks_exact(10)
            .map(|w| {
                let kind = branch_kind_from_code(w[0])?;
                let flags = w[1];
                if flags & !3 != 0 {
                    return Err(format!("bad branch flags {flags:#x}"));
                }
                Ok(BranchInfo {
                    kind,
                    taken: flags & 1 != 0,
                    backward: flags & 2 != 0,
                    target: u64::from_le_bytes(w[2..10].try_into().expect("8B")),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Recorded {
            ops,
            pcs,
            dsts,
            srcs,
            meta: meta_b.to_vec(),
            mems,
            branches,
        })
    }
}

/// A byte-budgeted recording sink.
///
/// Feed a workload into it exactly as into a pipeline; [`Recorder::finish`]
/// yields the captured stream. A stream whose resident size exceeds the
/// budget *poisons* the recorder — the buffer is dropped immediately
/// (so a too-big capture never holds the memory) and `finish` returns
/// `None`, letting the caller fall back to direct emission.
#[derive(Debug)]
pub struct Recorder {
    buf: Recorded,
    budget: usize,
    poisoned: bool,
}

impl Recorder {
    /// A recorder that gives up past `budget_bytes` of resident stream.
    pub fn new(budget_bytes: usize) -> Self {
        Recorder {
            buf: Recorded::new(),
            budget: budget_bytes,
            poisoned: false,
        }
    }

    /// True once the budget was exceeded and the capture abandoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The captured stream, or `None` when the capture was poisoned.
    pub fn finish(self) -> Option<Recorded> {
        (!self.poisoned).then_some(self.buf)
    }
}

impl SimSink for Recorder {
    fn push(&mut self, inst: Inst) {
        if self.poisoned {
            return;
        }
        self.buf.push(inst);
        if self.buf.approx_bytes() > self.budget {
            self.poisoned = true;
            self.buf = Recorded::new();
        }
    }
}

/// Byte-slice reader used by [`Recorded::decode`] and the checkpoint
/// decoder.
pub(crate) struct Cursor<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("offset overflow")?;
        if end > self.buf.len() {
            return Err("unexpected end of data".into());
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }
}

/// Every [`Op`], in the stable order of the on-disk encoding. The
/// position in this table *is* the wire code; append only, never
/// reorder (bump [`TRACE_FORMAT_VERSION`] if the set changes).
const OP_TABLE: [Op; 26] = [
    Op::IntAlu,
    Op::IntMul,
    Op::IntDiv,
    Op::FpOp,
    Op::FpMove,
    Op::FpConv,
    Op::FpDiv,
    Op::Branch,
    Op::Jump,
    Op::Call,
    Op::Ret,
    Op::Load,
    Op::Store,
    Op::Prefetch,
    Op::VisAdd,
    Op::VisLogic,
    Op::VisAlign,
    Op::VisEdge,
    Op::VisCmp,
    Op::VisMul,
    Op::VisPack,
    Op::VisExpand,
    Op::VisMerge,
    Op::VisPdist,
    Op::VisArray,
    Op::VisGsr,
];

fn op_code(op: Op) -> u8 {
    OP_TABLE
        .iter()
        .position(|&o| o == op)
        .expect("every Op is in OP_TABLE") as u8
}

fn op_from_code(code: u8) -> Result<Op, String> {
    OP_TABLE
        .get(code as usize)
        .copied()
        .ok_or_else(|| format!("bad op code {code}"))
}

const MEM_KIND_TABLE: [MemKind; 6] = [
    MemKind::Load,
    MemKind::Store,
    MemKind::Prefetch,
    MemKind::PartialStore,
    MemKind::BlockLoad,
    MemKind::BlockStore,
];

fn mem_kind_code(kind: MemKind) -> u8 {
    MEM_KIND_TABLE
        .iter()
        .position(|&k| k == kind)
        .expect("every MemKind is in MEM_KIND_TABLE") as u8
}

fn mem_kind_from_code(code: u8) -> Result<MemKind, String> {
    MEM_KIND_TABLE
        .get(code as usize)
        .copied()
        .ok_or_else(|| format!("bad mem kind {code}"))
}

const BRANCH_KIND_TABLE: [BranchKind; 4] = [
    BranchKind::Cond,
    BranchKind::Jump,
    BranchKind::Call,
    BranchKind::Ret,
];

fn branch_kind_code(kind: BranchKind) -> u8 {
    BRANCH_KIND_TABLE
        .iter()
        .position(|&k| k == kind)
        .expect("every BranchKind is in BRANCH_KIND_TABLE") as u8
}

fn branch_kind_from_code(code: u8) -> Result<BranchKind, String> {
    BRANCH_KIND_TABLE
        .get(code as usize)
        .copied()
        .ok_or_else(|| format!("bad branch kind {code}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that stores every pushed instruction.
    #[derive(Default)]
    struct Collect(Vec<Inst>);

    impl SimSink for Collect {
        fn push(&mut self, inst: Inst) {
            self.0.push(inst);
        }
    }

    fn sample_stream() -> Vec<Inst> {
        vec![
            Inst::compute(Op::IntAlu, 10, Reg(1), [Reg::NONE; 3]),
            Inst::memory(
                Op::Load,
                11,
                Reg(2),
                [Reg(1), Reg::NONE, Reg::NONE],
                MemRef {
                    addr: 0x1000,
                    size: 8,
                    kind: MemKind::Load,
                },
            ),
            Inst::control(
                Op::Branch,
                12,
                [Reg(2), Reg::NONE, Reg::NONE],
                BranchInfo::cond(true, true),
            ),
            Inst::memory(
                Op::Store,
                13,
                Reg::NONE,
                [Reg(1), Reg(2), Reg::NONE],
                MemRef {
                    addr: 0xffff_ffff_0008,
                    size: 64,
                    kind: MemKind::BlockStore,
                },
            ),
            Inst::control(
                Op::Ret,
                14,
                [Reg::NONE; 3],
                BranchInfo::linkage(BranchKind::Ret, 0xdead),
            ),
            Inst::compute(Op::VisPdist, 15, Reg(3), [Reg(1), Reg(2), Reg(3)]),
        ]
    }

    #[test]
    fn replay_reproduces_the_pushed_stream_exactly() {
        let stream = sample_stream();
        let mut rec = Recorded::new();
        for &i in &stream {
            rec.push(i);
        }
        assert_eq!(rec.len(), stream.len());
        let mut out = Collect::default();
        rec.replay(&mut out);
        assert_eq!(out.0, stream);
    }

    #[test]
    fn chained_spans_equal_whole_stream_replay() {
        let stream = sample_stream();
        let mut rec = Recorded::new();
        for &i in &stream {
            rec.push(i);
        }
        let mut whole = Collect::default();
        rec.replay(&mut whole);
        // Spans of uneven sizes, chained through the returned cursors.
        for sizes in [[1u64, 2, 100], [2, 2, 2], [6, 1, 1]] {
            let mut out = Collect::default();
            let mut cur = ReplayCursor::start();
            for n in sizes {
                assert!(rec.cursor_in_bounds(cur));
                cur = rec.replay_span(cur, n, &mut out);
            }
            cur = rec.replay_span(cur, u64::MAX, &mut out);
            assert_eq!(cur.inst(), rec.len() as u64);
            assert_eq!(out.0, whole.0, "spans {sizes:?}");
            // Replaying past the end is a no-op.
            let end = rec.replay_span(cur, 5, &mut out);
            assert_eq!(end, cur);
            assert_eq!(out.0.len(), whole.0.len());
        }
        // A side-table cursor ahead of the instruction cursor is
        // structurally impossible.
        assert!(!rec.cursor_in_bounds(ReplayCursor {
            inst: 1,
            mem: 2,
            branch: 0
        }));
        assert!(!rec.cursor_in_bounds(ReplayCursor {
            inst: u64::MAX,
            mem: 0,
            branch: 0
        }));
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut rec = Recorded::new();
        for &i in &sample_stream() {
            rec.push(i);
        }
        let bytes = rec.encode("conv.v-.abc");
        let back = Recorded::decode(&bytes, "conv.v-.abc").expect("decodes");
        assert_eq!(back, rec);
    }

    #[test]
    fn decode_rejects_corruption_wrong_key_and_wrong_version() {
        let mut rec = Recorded::new();
        for &i in &sample_stream() {
            rec.push(i);
        }
        let good = rec.encode("k");
        assert!(Recorded::decode(&good, "other").is_err(), "key mismatch");
        for truncate_at in [0, 3, 10, good.len() - 1] {
            assert!(
                Recorded::decode(&good[..truncate_at], "k").is_err(),
                "truncation at {truncate_at}"
            );
        }
        // Flip one byte anywhere: the checksum must catch it.
        for ix in [4, 20, good.len() / 2, good.len() - 2] {
            let mut bad = good.clone();
            bad[ix] ^= 0x40;
            assert!(Recorded::decode(&bad, "k").is_err(), "flip at {ix}");
        }
    }

    #[test]
    fn every_code_table_round_trips() {
        for (ix, &op) in OP_TABLE.iter().enumerate() {
            assert_eq!(op_code(op), ix as u8);
            assert_eq!(op_from_code(ix as u8).unwrap(), op);
        }
        assert!(op_from_code(OP_TABLE.len() as u8).is_err());
        for (ix, &k) in MEM_KIND_TABLE.iter().enumerate() {
            assert_eq!(mem_kind_from_code(mem_kind_code(k)).unwrap(), k);
            assert_eq!(ix as u8, mem_kind_code(k));
        }
        assert!(mem_kind_from_code(MEM_KIND_TABLE.len() as u8).is_err());
        for &k in &BRANCH_KIND_TABLE {
            assert_eq!(branch_kind_from_code(branch_kind_code(k)).unwrap(), k);
        }
        assert!(branch_kind_from_code(BRANCH_KIND_TABLE.len() as u8).is_err());
    }

    #[test]
    fn recorder_poisons_past_its_budget_and_drops_the_buffer() {
        let mut r = Recorder::new(200);
        for i in 0..100 {
            r.push(Inst::compute(Op::IntAlu, i, Reg(i as u32), [Reg::NONE; 3]));
        }
        assert!(r.is_poisoned());
        assert!(r.finish().is_none());

        let mut ok = Recorder::new(1 << 20);
        ok.push(Inst::compute(Op::IntAlu, 1, Reg(1), [Reg::NONE; 3]));
        assert!(!ok.is_poisoned());
        assert_eq!(ok.finish().expect("under budget").len(), 1);
    }

    #[test]
    fn empty_stream_encodes_and_replays() {
        let rec = Recorded::new();
        let bytes = rec.encode("empty");
        let back = Recorded::decode(&bytes, "empty").unwrap();
        assert!(back.is_empty());
        let mut out = Collect::default();
        back.replay(&mut out);
        assert!(out.0.is_empty());
    }
}
