//! Architectural-checkpoint framing.
//!
//! A sampled run carves a recorded stream into detailed sample windows
//! (see [`Recorded::replay_span`]) separated by functional warming. At
//! each window boundary the warming engine's architectural state —
//! cache tags/recency, MSHR-visible misses, predictor tables — is
//! serialized together with the [`ReplayCursor`] naming where in the
//! stream the window starts. The frame rides the same
//! versioned + key-echoed + FNV-checksummed envelope as the `.vtrc`
//! trace encode, so a window job can validate its checkpoint
//! independently: any window is replayable on its own, which is what
//! lets one benchmark's windows fan out across a worker pool.
//!
//! The architectural blob itself is opaque at this layer; the CPU crate
//! owns its layout (`visim_cpu::WarmingSink::checkpoint` produces it,
//! `visim_cpu::Pipeline::restore_checkpoint` validates and consumes
//! it).

use visim_util::fnv1a64;

use crate::record::{Cursor, Recorded, ReplayCursor};

/// Version tag of the checkpoint frame. Bump whenever the byte layout
/// changes; decoders reject other versions.
pub const CKPT_FORMAT_VERSION: u32 = 1;

/// Magic prefix of an encoded checkpoint.
const MAGIC: &[u8; 4] = b"VCKP";

/// One window's entry state: where the window starts in the recorded
/// stream, and the serialized architectural state to restore before
/// replaying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Position of the window's first instruction.
    pub cursor: ReplayCursor,
    /// Opaque architectural blob (predictor + RAS + cache/MSHR state).
    pub state: Vec<u8>,
}

impl Checkpoint {
    /// Serialize with the magic/version header, the caller's `key`
    /// (echoed and verified on decode, like the trace encode), and a
    /// trailing FNV-1a checksum.
    pub fn encode(&self, key: &str) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.state.len() + key.len() + 64);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&CKPT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key.as_bytes());
        out.extend_from_slice(&self.cursor.inst.to_le_bytes());
        out.extend_from_slice(&self.cursor.mem.to_le_bytes());
        out.extend_from_slice(&self.cursor.branch.to_le_bytes());
        out.extend_from_slice(&(self.state.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.state);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode a frame produced by [`Checkpoint::encode`] for the same
    /// `key`, verifying the checksum first, then magic, version, key,
    /// structural consistency, and exact length. Any failure is an
    /// `Err` so the caller can purge the checkpoint and fall back to
    /// recomputing it (or to exact simulation).
    pub fn decode(bytes: &[u8], key: &str) -> Result<Checkpoint, String> {
        if bytes.len() < 8 + 8 {
            return Err("truncated checkpoint header".into());
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte checksum"));
        if fnv1a64(body) != stored {
            return Err("checkpoint checksum mismatch".into());
        }
        let mut c = Cursor { buf: body, pos: 0 };
        if c.take(4)? != MAGIC {
            return Err("bad checkpoint magic".into());
        }
        let version = c.u32()?;
        if version != CKPT_FORMAT_VERSION {
            return Err(format!(
                "checkpoint version {version} != expected {CKPT_FORMAT_VERSION}"
            ));
        }
        let key_len = c.u32()? as usize;
        if c.take(key_len)? != key.as_bytes() {
            return Err("checkpoint key mismatch".into());
        }
        let cursor = ReplayCursor {
            inst: c.u64()?,
            mem: c.u64()?,
            branch: c.u64()?,
        };
        if cursor.mem > cursor.inst || cursor.branch > cursor.inst {
            return Err("checkpoint cursor side tables ahead of instruction index".into());
        }
        let state_len = c.u64()? as usize;
        let state = c.take(state_len)?.to_vec();
        if c.pos != body.len() {
            return Err(format!(
                "checkpoint payload length {} != consumed {}",
                body.len(),
                c.pos
            ));
        }
        Ok(Checkpoint { cursor, state })
    }

    /// Decode against `key` *and* validate the cursor against the
    /// stream it will replay — the full trust boundary for a
    /// checkpoint of foreign origin.
    pub fn decode_for(bytes: &[u8], key: &str, stream: &Recorded) -> Result<Checkpoint, String> {
        let ck = Checkpoint::decode(bytes, key)?;
        if !stream.cursor_in_bounds(ck.cursor) {
            return Err(format!(
                "checkpoint cursor at instruction {} out of bounds for a {}-instruction stream",
                ck.cursor.inst(),
                stream.len()
            ));
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            cursor: ReplayCursor {
                inst: 20_000,
                mem: 7_311,
                branch: 2_985,
            },
            state: (0u16..300).map(|b| (b % 251) as u8).collect(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let ck = sample();
        let bytes = ck.encode("conv.v-.64x64#w2000p20000#3");
        let back = Checkpoint::decode(&bytes, "conv.v-.64x64#w2000p20000#3").expect("decodes");
        assert_eq!(back, ck);
        // Re-encoding the decoded frame is bit-identical.
        assert_eq!(back.encode("conv.v-.64x64#w2000p20000#3"), bytes);
    }

    #[test]
    fn wrong_key_version_and_truncation_are_rejected() {
        let ck = sample();
        let good = ck.encode("k");
        assert!(Checkpoint::decode(&good, "other").is_err(), "key mismatch");
        for cut in [0, 3, 15, good.len() / 2, good.len() - 1] {
            assert!(
                Checkpoint::decode(&good[..cut], "k").is_err(),
                "truncation at {cut}"
            );
        }
        let mut long = good.clone();
        long.push(0);
        assert!(Checkpoint::decode(&long, "k").is_err(), "trailing bytes");
    }

    /// Satellite harness (mirrors the result-store codec gauntlet):
    /// every single-bit flip anywhere in the frame — header, key echo,
    /// cursor, state blob, or the checksum itself — must be rejected.
    #[test]
    fn every_single_bit_flip_is_rejected() {
        let ck = sample();
        let good = ck.encode("cell-key");
        assert!(Checkpoint::decode(&good, "cell-key").is_ok());
        for byte_ix in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte_ix] ^= 1 << bit;
                assert!(
                    Checkpoint::decode(&bad, "cell-key").is_err(),
                    "flip of byte {byte_ix} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn cursor_is_validated_against_the_stream() {
        use visim_isa::{Inst, Op, Reg};
        let mut rec = Recorded::new();
        for i in 0..10u64 {
            rec.push(Inst::compute(Op::IntAlu, i, Reg(i as u32), [Reg::NONE; 3]));
        }
        let ok = Checkpoint {
            cursor: ReplayCursor {
                inst: 5,
                mem: 0,
                branch: 0,
            },
            state: vec![1, 2, 3],
        };
        let bytes = ok.encode("k");
        assert!(Checkpoint::decode_for(&bytes, "k", &rec).is_ok());
        let beyond = Checkpoint {
            cursor: ReplayCursor {
                inst: 11,
                mem: 0,
                branch: 0,
            },
            state: vec![],
        };
        assert!(Checkpoint::decode_for(&beyond.encode("k"), "k", &rec).is_err());
        // An internally inconsistent cursor never even reaches the
        // stream check.
        let mut crooked = sample();
        crooked.cursor = ReplayCursor {
            inst: 3,
            mem: 9,
            branch: 0,
        };
        assert!(Checkpoint::decode(&crooked.encode("k"), "k").is_err());
    }
}
