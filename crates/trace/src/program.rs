//! The instruction-emitting program builder.

use std::panic::Location;

use visim_cpu::SimSink;
use visim_isa::vis::{self, Gsr};
use visim_isa::{BranchInfo, BranchKind, Inst, MemKind, MemRef, Op, Reg};

use crate::memimg::MemImage;
use crate::value::{VVal, Val};

/// Comparison conditions for [`Program::bcond`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// `a < b` (signed).
    Lt,
    /// `a <= b` (signed).
    Le,
    /// `a > b` (signed).
    Gt,
    /// `a >= b` (signed).
    Ge,
    /// `a == b`.
    Eq,
    /// `a != b`.
    Ne,
}

impl Cond {
    fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
            Cond::Eq => a == b,
            Cond::Ne => a != b,
        }
    }
}

/// Derive a stable static-instruction identity from a Rust call site.
fn site_pc(loc: &'static Location<'static>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in loc.file().as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ loc.line() as u64).wrapping_mul(0x0000_0100_0000_01b3);
    h = (h ^ loc.column() as u64).wrapping_mul(0x0000_0100_0000_01b3);
    h
}

macro_rules! caller_pc {
    () => {
        site_pc(Location::caller())
    };
}

/// The emitter: builds a dynamic instruction stream while computing on a
/// simulated address space.
///
/// Each public method emits exactly the instructions a SPARC-like
/// compiler would produce for the operation (immediates fold into
/// instructions; address arithmetic folds into the memory operation's
/// address-generation stage). See the crate documentation for an
/// example.
#[derive(Debug)]
pub struct Program<'s, S: SimSink> {
    sink: &'s mut S,
    mem: MemImage,
    next_reg: u32,
    gsr: Gsr,
    gsr_reg: Reg,
    call_stack: Vec<u64>,
    emitted: u64,
}

impl<'s, S: SimSink> Program<'s, S> {
    /// Build a program feeding `sink`.
    pub fn new(sink: &'s mut S) -> Self {
        Program {
            sink,
            mem: MemImage::new(),
            next_reg: 1,
            gsr: Gsr::default(),
            gsr_reg: Reg::NONE,
            call_stack: Vec::new(),
            emitted: 0,
        }
    }

    /// The simulated address space (read-only).
    pub fn mem(&self) -> &MemImage {
        &self.mem
    }

    /// The simulated address space (for allocation and host-side
    /// initialization, which emit no instructions).
    pub fn mem_mut(&mut self) -> &mut MemImage {
        &mut self.mem
    }

    /// Number of dynamic instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, inst: Inst) {
        self.emitted += 1;
        self.sink.push(inst);
    }

    fn compute(&mut self, op: Op, pc: u64, srcs: [Reg; 3], v: i64) -> Val {
        let dst = self.fresh();
        self.emit(Inst::compute(op, pc, dst, srcs));
        Val::new(dst, v)
    }

    fn compute_v(&mut self, op: Op, pc: u64, srcs: [Reg; 3], v: u64) -> VVal {
        let dst = self.fresh();
        self.emit(Inst::compute(op, pc, dst, srcs));
        VVal::new(dst, v)
    }

    // -----------------------------------------------------------------
    // Scalar integer operations.
    // -----------------------------------------------------------------

    /// Materialize a constant (one ALU instruction).
    #[track_caller]
    pub fn li(&mut self, v: i64) -> Val {
        let pc = caller_pc!();
        self.compute(Op::IntAlu, pc, [Reg::NONE; 3], v)
    }

    /// Register-to-register move.
    #[track_caller]
    pub fn mv(&mut self, a: &Val) -> Val {
        let pc = caller_pc!();
        self.compute(Op::IntAlu, pc, [a.reg, Reg::NONE, Reg::NONE], a.v)
    }

    /// `a + b`.
    #[track_caller]
    pub fn add(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        self.compute(
            Op::IntAlu,
            pc,
            [a.reg, b.reg, Reg::NONE],
            a.v.wrapping_add(b.v),
        )
    }

    /// `a + imm` (immediate folds into the instruction).
    #[track_caller]
    pub fn addi(&mut self, a: &Val, imm: i64) -> Val {
        let pc = caller_pc!();
        self.compute(
            Op::IntAlu,
            pc,
            [a.reg, Reg::NONE, Reg::NONE],
            a.v.wrapping_add(imm),
        )
    }

    /// `a - b`.
    #[track_caller]
    pub fn sub(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        self.compute(
            Op::IntAlu,
            pc,
            [a.reg, b.reg, Reg::NONE],
            a.v.wrapping_sub(b.v),
        )
    }

    /// `a * b` (integer multiply, 7 cycles).
    #[track_caller]
    pub fn mul(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        self.compute(
            Op::IntMul,
            pc,
            [a.reg, b.reg, Reg::NONE],
            a.v.wrapping_mul(b.v),
        )
    }

    /// `a * imm`.
    #[track_caller]
    pub fn muli(&mut self, a: &Val, imm: i64) -> Val {
        let pc = caller_pc!();
        self.compute(
            Op::IntMul,
            pc,
            [a.reg, Reg::NONE, Reg::NONE],
            a.v.wrapping_mul(imm),
        )
    }

    /// `a / b` (integer divide, 12 cycles).
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    #[track_caller]
    pub fn div(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        self.compute(Op::IntDiv, pc, [a.reg, b.reg, Reg::NONE], a.v / b.v)
    }

    /// `a & b`.
    #[track_caller]
    pub fn and(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        self.compute(Op::IntAlu, pc, [a.reg, b.reg, Reg::NONE], a.v & b.v)
    }

    /// `a & imm`.
    #[track_caller]
    pub fn andi(&mut self, a: &Val, imm: i64) -> Val {
        let pc = caller_pc!();
        self.compute(Op::IntAlu, pc, [a.reg, Reg::NONE, Reg::NONE], a.v & imm)
    }

    /// `a | b`.
    #[track_caller]
    pub fn or(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        self.compute(Op::IntAlu, pc, [a.reg, b.reg, Reg::NONE], a.v | b.v)
    }

    /// `a | imm`.
    #[track_caller]
    pub fn ori(&mut self, a: &Val, imm: i64) -> Val {
        let pc = caller_pc!();
        self.compute(Op::IntAlu, pc, [a.reg, Reg::NONE, Reg::NONE], a.v | imm)
    }

    /// `a ^ b`.
    #[track_caller]
    pub fn xor(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        self.compute(Op::IntAlu, pc, [a.reg, b.reg, Reg::NONE], a.v ^ b.v)
    }

    /// `a << imm`.
    #[track_caller]
    pub fn shli(&mut self, a: &Val, imm: u32) -> Val {
        let pc = caller_pc!();
        self.compute(
            Op::IntAlu,
            pc,
            [a.reg, Reg::NONE, Reg::NONE],
            a.v.wrapping_shl(imm),
        )
    }

    /// Logical `a >> imm` (on the low 64 bits).
    #[track_caller]
    pub fn shri(&mut self, a: &Val, imm: u32) -> Val {
        let pc = caller_pc!();
        self.compute(
            Op::IntAlu,
            pc,
            [a.reg, Reg::NONE, Reg::NONE],
            ((a.v as u64).wrapping_shr(imm)) as i64,
        )
    }

    /// `a << b` (variable shift).
    #[track_caller]
    pub fn shl(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        let v = a.v.wrapping_shl(b.v as u32);
        self.compute(Op::IntAlu, pc, [a.reg, b.reg, Reg::NONE], v)
    }

    /// Logical `a >> b` (variable shift).
    #[track_caller]
    pub fn shr(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        let v = ((a.v as u64).wrapping_shr(b.v as u32)) as i64;
        self.compute(Op::IntAlu, pc, [a.reg, b.reg, Reg::NONE], v)
    }

    /// Arithmetic `a >> imm`.
    #[track_caller]
    pub fn srai(&mut self, a: &Val, imm: u32) -> Val {
        let pc = caller_pc!();
        self.compute(
            Op::IntAlu,
            pc,
            [a.reg, Reg::NONE, Reg::NONE],
            a.v.wrapping_shr(imm),
        )
    }

    /// Conditional move: returns `t` if `c` is non-zero else `f`
    /// (SPARC V9 `movcc`; one instruction, no branch).
    #[track_caller]
    pub fn select(&mut self, c: &Val, t: &Val, f: &Val) -> Val {
        let pc = caller_pc!();
        let v = if c.v != 0 { t.v } else { f.v };
        self.compute(Op::IntAlu, pc, [c.reg, t.reg, f.reg], v)
    }

    // -----------------------------------------------------------------
    // Scalar floating point (f64 carried as bit patterns).
    // -----------------------------------------------------------------

    /// Materialize an `f64` constant.
    #[track_caller]
    pub fn lif(&mut self, v: f64) -> Val {
        let pc = caller_pc!();
        self.compute(Op::FpMove, pc, [Reg::NONE; 3], v.to_bits() as i64)
    }

    /// Floating add.
    #[track_caller]
    pub fn fadd(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        let v = (a.as_f64() + b.as_f64()).to_bits() as i64;
        self.compute(Op::FpOp, pc, [a.reg, b.reg, Reg::NONE], v)
    }

    /// Floating subtract.
    #[track_caller]
    pub fn fsub(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        let v = (a.as_f64() - b.as_f64()).to_bits() as i64;
        self.compute(Op::FpOp, pc, [a.reg, b.reg, Reg::NONE], v)
    }

    /// Floating multiply.
    #[track_caller]
    pub fn fmul(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        let v = (a.as_f64() * b.as_f64()).to_bits() as i64;
        self.compute(Op::FpOp, pc, [a.reg, b.reg, Reg::NONE], v)
    }

    /// Floating divide (12 cycles, non-pipelined).
    #[track_caller]
    pub fn fdiv(&mut self, a: &Val, b: &Val) -> Val {
        let pc = caller_pc!();
        let v = (a.as_f64() / b.as_f64()).to_bits() as i64;
        self.compute(Op::FpDiv, pc, [a.reg, b.reg, Reg::NONE], v)
    }

    /// Convert integer to floating point.
    #[track_caller]
    pub fn i2f(&mut self, a: &Val) -> Val {
        let pc = caller_pc!();
        let v = (a.v as f64).to_bits() as i64;
        self.compute(Op::FpConv, pc, [a.reg, Reg::NONE, Reg::NONE], v)
    }

    /// Convert floating point to integer (truncating).
    #[track_caller]
    pub fn f2i(&mut self, a: &Val) -> Val {
        let pc = caller_pc!();
        self.compute(
            Op::FpConv,
            pc,
            [a.reg, Reg::NONE, Reg::NONE],
            a.as_f64() as i64,
        )
    }

    // -----------------------------------------------------------------
    // Control transfer.
    // -----------------------------------------------------------------

    /// Compare-and-branch (two instructions: `cmp` + `bcc`); returns the
    /// condition so host control flow can mirror the branch.
    #[track_caller]
    pub fn bcond(&mut self, c: Cond, a: &Val, b: &Val, backward: bool) -> bool {
        let pc = caller_pc!();
        let cc = self.compute(Op::IntAlu, pc, [a.reg, b.reg, Reg::NONE], 0);
        let taken = c.eval(a.v, b.v);
        self.emit(Inst::control(
            Op::Branch,
            pc ^ 1,
            [cc.reg, Reg::NONE, Reg::NONE],
            BranchInfo::cond(taken, backward),
        ));
        taken
    }

    /// Compare-and-branch against an immediate.
    #[track_caller]
    pub fn bcond_i(&mut self, c: Cond, a: &Val, imm: i64, backward: bool) -> bool {
        let pc = caller_pc!();
        let cc = self.compute(Op::IntAlu, pc, [a.reg, Reg::NONE, Reg::NONE], 0);
        let taken = c.eval(a.v, imm);
        self.emit(Inst::control(
            Op::Branch,
            pc ^ 1,
            [cc.reg, Reg::NONE, Reg::NONE],
            BranchInfo::cond(taken, backward),
        ));
        taken
    }

    /// Emit a raw conditional branch whose outcome the host has already
    /// computed; `deps` are the registers the condition depends on.
    #[track_caller]
    pub fn branch_bool(&mut self, taken: bool, deps: &[Reg], backward: bool) -> bool {
        let pc = caller_pc!();
        let mut srcs = [Reg::NONE; 3];
        for (i, r) in deps.iter().take(3).enumerate() {
            srcs[i] = *r;
        }
        self.emit(Inst::control(
            Op::Branch,
            pc,
            srcs,
            BranchInfo::cond(taken, backward),
        ));
        taken
    }

    /// Unconditional jump.
    #[track_caller]
    pub fn jump(&mut self) {
        let pc = caller_pc!();
        self.emit(Inst::control(
            Op::Jump,
            pc,
            [Reg::NONE; 3],
            BranchInfo {
                kind: BranchKind::Jump,
                taken: true,
                backward: false,
                target: 0,
            },
        ));
    }

    /// Procedure call (pushes the return-address stack).
    #[track_caller]
    pub fn call(&mut self) {
        let pc = caller_pc!();
        self.call_stack.push(pc);
        self.emit(Inst::control(
            Op::Call,
            pc,
            [Reg::NONE; 3],
            BranchInfo::linkage(BranchKind::Call, pc),
        ));
    }

    /// Procedure return (pops the return-address stack).
    ///
    /// # Panics
    ///
    /// Panics when there is no matching [`Program::call`].
    #[track_caller]
    pub fn ret(&mut self) {
        let target = self.call_stack.pop().expect("ret without call");
        let pc = caller_pc!();
        self.emit(Inst::control(
            Op::Ret,
            pc,
            [Reg::NONE; 3],
            BranchInfo::linkage(BranchKind::Ret, target),
        ));
    }

    /// Run `f` bracketed by a call/return pair.
    #[track_caller]
    pub fn subroutine<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.call();
        let r = f(self);
        self.ret();
        r
    }

    /// A counted loop: `body` runs for `i` in `start, start+step, ...`
    /// while `i < end`, with the loop-overhead instructions (index
    /// update, compare, backward branch) emitted per iteration exactly
    /// as compiled code would.
    #[track_caller]
    pub fn loop_range(
        &mut self,
        start: i64,
        end: i64,
        step: i64,
        mut body: impl FnMut(&mut Self, &Val),
    ) {
        assert!(step > 0, "loop_range requires a positive step");
        let pc = caller_pc!();
        let mut i = self.compute(Op::IntAlu, pc, [Reg::NONE; 3], start);
        // Top guard (run-before test), as a compiler emits for a loop
        // with an unknown trip count.
        let guard = self.compute(Op::IntAlu, pc ^ 2, [i.reg, Reg::NONE, Reg::NONE], 0);
        self.emit(Inst::control(
            Op::Branch,
            pc ^ 3,
            [guard.reg, Reg::NONE, Reg::NONE],
            BranchInfo::cond(start >= end, false),
        ));
        while i.v < end {
            body(self, &i);
            i = self.compute(
                Op::IntAlu,
                pc ^ 4,
                [i.reg, Reg::NONE, Reg::NONE],
                i.v + step,
            );
            let cc = self.compute(Op::IntAlu, pc ^ 5, [i.reg, Reg::NONE, Reg::NONE], 0);
            self.emit(Inst::control(
                Op::Branch,
                pc ^ 6,
                [cc.reg, Reg::NONE, Reg::NONE],
                BranchInfo::cond(i.v < end, true),
            ));
        }
    }

    /// A pointer-chasing loop: `body` receives the running pointer,
    /// which advances by `step` bytes per iteration until it reaches
    /// `end` (an address known to the host). The emitted overhead per
    /// iteration is one add, one compare and one backward branch — the
    /// code a compiler generates for a strength-reduced array loop.
    #[track_caller]
    pub fn loop_ptr(
        &mut self,
        start: &Val,
        end: i64,
        step: i64,
        mut body: impl FnMut(&mut Self, &Val),
    ) {
        assert!(step > 0, "loop_ptr requires a positive step");
        let pc = caller_pc!();
        // Top guard for the zero-trip case.
        let guard = self.compute(Op::IntAlu, pc ^ 2, [start.reg, Reg::NONE, Reg::NONE], 0);
        self.emit(Inst::control(
            Op::Branch,
            pc ^ 3,
            [guard.reg, Reg::NONE, Reg::NONE],
            BranchInfo::cond(start.v >= end, false),
        ));
        let mut ptr = *start;
        while ptr.v < end {
            body(self, &ptr);
            ptr = self.compute(
                Op::IntAlu,
                pc ^ 4,
                [ptr.reg, Reg::NONE, Reg::NONE],
                ptr.v + step,
            );
            let cc = self.compute(Op::IntAlu, pc ^ 5, [ptr.reg, Reg::NONE, Reg::NONE], 0);
            self.emit(Inst::control(
                Op::Branch,
                pc ^ 6,
                [cc.reg, Reg::NONE, Reg::NONE],
                BranchInfo::cond(ptr.v < end, true),
            ));
        }
    }

    // -----------------------------------------------------------------
    // Memory operations.
    // -----------------------------------------------------------------

    // Internal helper shared by every load shape; the arguments mirror
    // the fields of the emitted instruction one-to-one.
    #[allow(clippy::too_many_arguments)]
    fn ld(
        &mut self,
        pc: u64,
        op: Op,
        base: &Val,
        idx: Reg,
        addr: u64,
        size: u8,
        v: i64,
        kind: MemKind,
    ) -> Val {
        let dst = self.fresh();
        self.emit(Inst::memory(
            op,
            pc,
            dst,
            [base.reg, idx, Reg::NONE],
            MemRef { addr, size, kind },
        ));
        Val::new(dst, v)
    }

    /// Load an unsigned byte at `base + off`.
    #[track_caller]
    pub fn load_u8(&mut self, base: &Val, off: i64) -> Val {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        let v = self.mem.read_u8(addr) as i64;
        self.ld(pc, Op::Load, base, Reg::NONE, addr, 1, v, MemKind::Load)
    }

    /// Load an unsigned byte at `base + idx + off`.
    #[track_caller]
    pub fn load_u8_idx(&mut self, base: &Val, idx: &Val, off: i64) -> Val {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(idx.v).wrapping_add(off) as u64;
        let v = self.mem.read_u8(addr) as i64;
        self.ld(pc, Op::Load, base, idx.reg, addr, 1, v, MemKind::Load)
    }

    /// Load a signed 16-bit value at `base + off`.
    #[track_caller]
    pub fn load_i16(&mut self, base: &Val, off: i64) -> Val {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        let v = self.mem.read_u16(addr) as i16 as i64;
        self.ld(pc, Op::Load, base, Reg::NONE, addr, 2, v, MemKind::Load)
    }

    /// Load an unsigned 16-bit value at `base + off`.
    #[track_caller]
    pub fn load_u16(&mut self, base: &Val, off: i64) -> Val {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        let v = self.mem.read_u16(addr) as i64;
        self.ld(pc, Op::Load, base, Reg::NONE, addr, 2, v, MemKind::Load)
    }

    /// Load an unsigned 16-bit value at `base + idx + off`.
    #[track_caller]
    pub fn load_u16_idx(&mut self, base: &Val, idx: &Val, off: i64) -> Val {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(idx.v).wrapping_add(off) as u64;
        let v = self.mem.read_u16(addr) as i64;
        self.ld(pc, Op::Load, base, idx.reg, addr, 2, v, MemKind::Load)
    }

    /// Load a signed 16-bit value at `base + idx + off`.
    #[track_caller]
    pub fn load_i16_idx(&mut self, base: &Val, idx: &Val, off: i64) -> Val {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(idx.v).wrapping_add(off) as u64;
        let v = self.mem.read_u16(addr) as i16 as i64;
        self.ld(pc, Op::Load, base, idx.reg, addr, 2, v, MemKind::Load)
    }

    /// Load a signed 32-bit value at `base + off`.
    #[track_caller]
    pub fn load_i32(&mut self, base: &Val, off: i64) -> Val {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        let v = self.mem.read_u32(addr) as i32 as i64;
        self.ld(pc, Op::Load, base, Reg::NONE, addr, 4, v, MemKind::Load)
    }

    /// Load a signed 32-bit value at `base + idx + off`.
    #[track_caller]
    pub fn load_i32_idx(&mut self, base: &Val, idx: &Val, off: i64) -> Val {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(idx.v).wrapping_add(off) as u64;
        let v = self.mem.read_u32(addr) as i32 as i64;
        self.ld(pc, Op::Load, base, idx.reg, addr, 4, v, MemKind::Load)
    }

    /// Load a 64-bit value at `base + off`.
    #[track_caller]
    pub fn load_u64(&mut self, base: &Val, off: i64) -> Val {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        let v = self.mem.read_u64(addr) as i64;
        self.ld(pc, Op::Load, base, Reg::NONE, addr, 8, v, MemKind::Load)
    }

    /// Store the low byte of `v` at `base + off`.
    #[track_caller]
    pub fn store_u8(&mut self, base: &Val, off: i64, v: &Val) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        self.mem.write_u8(addr, v.v as u8);
        self.st(pc, base, Reg::NONE, v.reg, addr, 1);
    }

    /// Store the low byte of `v` at `base + idx + off`.
    #[track_caller]
    pub fn store_u8_idx(&mut self, base: &Val, idx: &Val, off: i64, v: &Val) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(idx.v).wrapping_add(off) as u64;
        self.mem.write_u8(addr, v.v as u8);
        self.st(pc, base, idx.reg, v.reg, addr, 1);
    }

    /// Store the low 16 bits of `v` at `base + off`.
    #[track_caller]
    pub fn store_u16(&mut self, base: &Val, off: i64, v: &Val) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        self.mem.write_u16(addr, v.v as u16);
        self.st(pc, base, Reg::NONE, v.reg, addr, 2);
    }

    /// Store the low 32 bits of `v` at `base + off`.
    #[track_caller]
    pub fn store_u32(&mut self, base: &Val, off: i64, v: &Val) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        self.mem.write_u32(addr, v.v as u32);
        self.st(pc, base, Reg::NONE, v.reg, addr, 4);
    }

    /// Store the low 32 bits of `v` at `base + idx + off`.
    #[track_caller]
    pub fn store_u32_idx(&mut self, base: &Val, idx: &Val, off: i64, v: &Val) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(idx.v).wrapping_add(off) as u64;
        self.mem.write_u32(addr, v.v as u32);
        self.st(pc, base, idx.reg, v.reg, addr, 4);
    }

    /// Store `v` (64 bits) at `base + off`.
    #[track_caller]
    pub fn store_u64(&mut self, base: &Val, off: i64, v: &Val) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        self.mem.write_u64(addr, v.v as u64);
        self.st(pc, base, Reg::NONE, v.reg, addr, 8);
    }

    fn st(&mut self, pc: u64, base: &Val, idx: Reg, data: Reg, addr: u64, size: u8) {
        self.emit(Inst::memory(
            Op::Store,
            pc,
            Reg::NONE,
            [base.reg, idx, data],
            MemRef {
                addr,
                size,
                kind: MemKind::Store,
            },
        ));
    }

    /// Non-binding software prefetch of the line at `base + off`.
    #[track_caller]
    pub fn prefetch(&mut self, base: &Val, off: i64) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        self.emit(Inst::memory(
            Op::Prefetch,
            pc,
            Reg::NONE,
            [base.reg, Reg::NONE, Reg::NONE],
            MemRef {
                addr,
                size: 8,
                kind: MemKind::Prefetch,
            },
        ));
    }

    /// Non-binding software prefetch of the line at `base + idx + off`.
    #[track_caller]
    pub fn prefetch_idx(&mut self, base: &Val, idx: &Val, off: i64) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(idx.v).wrapping_add(off) as u64;
        self.emit(Inst::memory(
            Op::Prefetch,
            pc,
            Reg::NONE,
            [base.reg, idx.reg, Reg::NONE],
            MemRef {
                addr,
                size: 8,
                kind: MemKind::Prefetch,
            },
        ));
    }

    // -----------------------------------------------------------------
    // VIS memory operations.
    // -----------------------------------------------------------------

    /// Load a packed 8-byte VIS register at `base + off` (8-aligned).
    #[track_caller]
    pub fn loadv(&mut self, base: &Val, off: i64) -> VVal {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        let v = self.mem.read_u64(addr);
        let dst = self.fresh();
        self.emit(Inst::memory(
            Op::Load,
            pc,
            dst,
            [base.reg, Reg::NONE, Reg::NONE],
            MemRef {
                addr,
                size: 8,
                kind: MemKind::Load,
            },
        ));
        VVal::new(dst, v)
    }

    /// Load a packed 8-byte VIS register at `base + idx + off`.
    #[track_caller]
    pub fn loadv_idx(&mut self, base: &Val, idx: &Val, off: i64) -> VVal {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(idx.v).wrapping_add(off) as u64;
        let v = self.mem.read_u64(addr);
        let dst = self.fresh();
        self.emit(Inst::memory(
            Op::Load,
            pc,
            dst,
            [base.reg, idx.reg, Reg::NONE],
            MemRef {
                addr,
                size: 8,
                kind: MemKind::Load,
            },
        ));
        VVal::new(dst, v)
    }

    /// VIS short load: `size` (1 or 2) bytes into the low lanes.
    #[track_caller]
    pub fn loadv_short(&mut self, base: &Val, off: i64, size: u8) -> VVal {
        debug_assert!(size == 1 || size == 2);
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        let v = if size == 1 {
            self.mem.read_u8(addr) as u64
        } else {
            self.mem.read_u16(addr) as u64
        };
        let dst = self.fresh();
        self.emit(Inst::memory(
            Op::Load,
            pc,
            dst,
            [base.reg, Reg::NONE, Reg::NONE],
            MemRef {
                addr,
                size,
                kind: MemKind::Load,
            },
        ));
        VVal::new(dst, v)
    }

    /// Store a packed VIS register at `base + off`.
    #[track_caller]
    pub fn storev(&mut self, base: &Val, off: i64, v: &VVal) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        self.mem.write_u64(addr, v.v);
        self.emit(Inst::memory(
            Op::Store,
            pc,
            Reg::NONE,
            [base.reg, v.reg, Reg::NONE],
            MemRef {
                addr,
                size: 8,
                kind: MemKind::Store,
            },
        ));
    }

    /// Store the low four bytes of a packed VIS register at
    /// `base + idx + off` (a 32-bit FP-half store).
    #[track_caller]
    pub fn storev4_idx(&mut self, base: &Val, idx: &Val, off: i64, v: &VVal) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(idx.v).wrapping_add(off) as u64;
        self.mem.write_u32(addr, v.v as u32);
        self.emit(Inst::memory(
            Op::Store,
            pc,
            Reg::NONE,
            [base.reg, idx.reg, v.reg],
            MemRef {
                addr,
                size: 4,
                kind: MemKind::Store,
            },
        ));
    }

    /// Store a packed VIS register at `base + idx + off`.
    #[track_caller]
    pub fn storev_idx(&mut self, base: &Val, idx: &Val, off: i64, v: &VVal) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(idx.v).wrapping_add(off) as u64;
        self.mem.write_u64(addr, v.v);
        self.emit(Inst::memory(
            Op::Store,
            pc,
            Reg::NONE,
            [base.reg, idx.reg, v.reg],
            MemRef {
                addr,
                size: 8,
                kind: MemKind::Store,
            },
        ));
    }

    /// VIS partial store: write only the byte lanes selected by the low
    /// eight bits of `mask`.
    #[track_caller]
    pub fn partial_store(&mut self, base: &Val, off: i64, data: &VVal, mask: &Val) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        let old = self.mem.read_u64(addr);
        let merged = vis::partial_store_merge(old, data.v, mask.v as u8);
        self.mem.write_u64(addr, merged);
        self.emit(Inst::memory(
            Op::Store,
            pc,
            Reg::NONE,
            [base.reg, data.reg, mask.reg],
            MemRef {
                addr,
                size: 8,
                kind: MemKind::PartialStore,
            },
        ));
    }

    /// VIS partial store at 16-bit granularity: `mask4`'s low four bits
    /// select 16-bit lanes.
    #[track_caller]
    pub fn partial_store16(&mut self, base: &Val, off: i64, data: &VVal, mask4: &Val) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        let old = self.mem.read_u64(addr);
        let bytemask = vis::mask16_to_bytes(mask4.v as u8);
        let merged = vis::partial_store_merge(old, data.v, bytemask);
        self.mem.write_u64(addr, merged);
        self.emit(Inst::memory(
            Op::Store,
            pc,
            Reg::NONE,
            [base.reg, data.reg, mask4.reg],
            MemRef {
                addr,
                size: 8,
                kind: MemKind::PartialStore,
            },
        ));
    }

    /// VIS block load: 64 bytes, bypassing cache allocation. Returns the
    /// value of the *first* 8 bytes (block transfers target bulk copies;
    /// callers re-load lanes as needed).
    #[track_caller]
    pub fn block_load(&mut self, base: &Val, off: i64) -> VVal {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        let v = self.mem.read_u64(addr);
        let dst = self.fresh();
        self.emit(Inst::memory(
            Op::Load,
            pc,
            dst,
            [base.reg, Reg::NONE, Reg::NONE],
            MemRef {
                addr,
                size: 64,
                kind: MemKind::BlockLoad,
            },
        ));
        VVal::new(dst, v)
    }

    /// VIS block store: copy the 64 host bytes `data` to `base + off`,
    /// bypassing cache allocation.
    #[track_caller]
    pub fn block_store(&mut self, base: &Val, off: i64, data: &[u8; 64], dep: &VVal) {
        let pc = caller_pc!();
        let addr = base.v.wrapping_add(off) as u64;
        self.mem.write_bytes(addr, data);
        self.emit(Inst::memory(
            Op::Store,
            pc,
            Reg::NONE,
            [base.reg, dep.reg, Reg::NONE],
            MemRef {
                addr,
                size: 64,
                kind: MemKind::BlockStore,
            },
        ));
    }

    // -----------------------------------------------------------------
    // VIS computation.
    // -----------------------------------------------------------------

    /// Materialize a packed constant into a VIS register.
    #[track_caller]
    pub fn vli(&mut self, bits: u64) -> VVal {
        let pc = caller_pc!();
        self.compute_v(Op::VisLogic, pc, [Reg::NONE; 3], bits)
    }

    /// `fpadd16`.
    #[track_caller]
    pub fn vadd16(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisAdd,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fpadd16(a.v, b.v),
        )
    }

    /// `fpsub16`.
    #[track_caller]
    pub fn vsub16(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisAdd,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fpsub16(a.v, b.v),
        )
    }

    /// `fpadd32`.
    #[track_caller]
    pub fn vadd32(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisAdd,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fpadd32(a.v, b.v),
        )
    }

    /// `fpsub32`.
    #[track_caller]
    pub fn vsub32(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisAdd,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fpsub32(a.v, b.v),
        )
    }

    /// `fand`.
    #[track_caller]
    pub fn vand(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(Op::VisLogic, pc, [a.reg, b.reg, Reg::NONE], a.v & b.v)
    }

    /// `for`.
    #[track_caller]
    pub fn vor(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(Op::VisLogic, pc, [a.reg, b.reg, Reg::NONE], a.v | b.v)
    }

    /// `fxor`.
    #[track_caller]
    pub fn vxor(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(Op::VisLogic, pc, [a.reg, b.reg, Reg::NONE], a.v ^ b.v)
    }

    /// `fnot`.
    #[track_caller]
    pub fn vnot(&mut self, a: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(Op::VisLogic, pc, [a.reg, Reg::NONE, Reg::NONE], !a.v)
    }

    /// `fmul8x16`: four low bytes of `a` times the 16-bit lanes of `b`.
    #[track_caller]
    pub fn vmul8x16(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisMul,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fmul8x16(a.v, b.v),
        )
    }

    /// `fmul8x16` reading its pixels from the upper four bytes of `a`.
    #[track_caller]
    pub fn vmul8x16_hi(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisMul,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fmul8x16_hi(a.v, b.v),
        )
    }

    /// `fmul8x16au`: four low bytes of `a` times the scalar coefficient
    /// in `w` (low 16 bits).
    #[track_caller]
    pub fn vmul8x16au(&mut self, a: &VVal, w: &Val) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisMul,
            pc,
            [a.reg, w.reg, Reg::NONE],
            vis::fmul8x16au(a.v, w.v as i16),
        )
    }

    /// `fmul8x16au` reading its pixels from the upper four bytes of `a`.
    #[track_caller]
    pub fn vmul8x16au_hi(&mut self, a: &VVal, w: &Val) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisMul,
            pc,
            [a.reg, w.reg, Reg::NONE],
            vis::fmul8x16au_hi(a.v, w.v as i16),
        )
    }

    /// `fmul8sux16`.
    #[track_caller]
    pub fn vmul8sux16(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisMul,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fmul8sux16(a.v, b.v),
        )
    }

    /// `fmul8ulx16`.
    #[track_caller]
    pub fn vmul8ulx16(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisMul,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fmul8ulx16(a.v, b.v),
        )
    }

    /// `fmuld8sux16` on lanes 0-1: widening multiply (upper-byte part).
    #[track_caller]
    pub fn vmuld_sux_lo(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisMul,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fmuld8sux16_lo(a.v, b.v),
        )
    }

    /// `fmuld8ulx16` on lanes 0-1: widening multiply (lower-byte part).
    #[track_caller]
    pub fn vmuld_ulx_lo(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisMul,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fmuld8ulx16_lo(a.v, b.v),
        )
    }

    /// `fmuld8sux16` on lanes 2-3.
    #[track_caller]
    pub fn vmuld_sux_hi(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisMul,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fmuld8sux16_hi(a.v, b.v),
        )
    }

    /// `fmuld8ulx16` on lanes 2-3.
    #[track_caller]
    pub fn vmuld_ulx_hi(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        self.compute_v(
            Op::VisMul,
            pc,
            [a.reg, b.reg, Reg::NONE],
            vis::fmuld8ulx16_hi(a.v, b.v),
        )
    }

    /// Set the GSR packing scale factor (one GSR-write instruction).
    #[track_caller]
    pub fn set_gsr_scale(&mut self, scale: u8) {
        let pc = caller_pc!();
        self.gsr.scale = scale;
        let dst = self.fresh();
        self.emit(Inst::compute(Op::VisGsr, pc, dst, [Reg::NONE; 3]));
        self.gsr_reg = dst;
    }

    /// `fpack16` on one register: the four 16-bit lanes of `a` saturate
    /// into the four low byte lanes of the result.
    #[track_caller]
    pub fn vpack16(&mut self, a: &VVal) -> VVal {
        let pc = caller_pc!();
        let packed = vis::fpack16(self.gsr, a.v);
        let bits = u32::from_le_bytes(packed) as u64;
        self.compute_v(Op::VisPack, pc, [a.reg, self.gsr_reg, Reg::NONE], bits)
    }

    /// Two `fpack16` instructions packing `a` (low four bytes) and `b`
    /// (high four bytes) into one 8-byte register, as VIS code does when
    /// producing a full pixel octet.
    #[track_caller]
    pub fn vpack16_pair(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        let lo = self.compute_v(
            Op::VisPack,
            pc,
            [a.reg, self.gsr_reg, Reg::NONE],
            u32::from_le_bytes(vis::fpack16(self.gsr, a.v)) as u64,
        );
        // The second pack writes the other half of the destination
        // register pair, so it depends on the first.
        let bits = vis::fpack16_pair(self.gsr, a.v, b.v);
        self.compute_v(Op::VisPack, pc ^ 1, [b.reg, self.gsr_reg, lo.reg], bits)
    }

    /// `fexpand` of the low four bytes of `a`.
    #[track_caller]
    pub fn vexpand_lo(&mut self, a: &VVal) -> VVal {
        let pc = caller_pc!();
        let b = vis::unpack8(a.v);
        let v = vis::fexpand([b[0], b[1], b[2], b[3]]);
        self.compute_v(Op::VisExpand, pc, [a.reg, Reg::NONE, Reg::NONE], v)
    }

    /// `fexpand` of the high four bytes of `a`.
    #[track_caller]
    pub fn vexpand_hi(&mut self, a: &VVal) -> VVal {
        let pc = caller_pc!();
        let b = vis::unpack8(a.v);
        let v = vis::fexpand([b[4], b[5], b[6], b[7]]);
        self.compute_v(Op::VisExpand, pc, [a.reg, Reg::NONE, Reg::NONE], v)
    }

    /// `fpmerge` of the low four bytes of each operand.
    #[track_caller]
    pub fn vmerge_lo(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        let (x, y) = (vis::unpack8(a.v), vis::unpack8(b.v));
        let v = vis::fpmerge([x[0], x[1], x[2], x[3]], [y[0], y[1], y[2], y[3]]);
        self.compute_v(Op::VisMerge, pc, [a.reg, b.reg, Reg::NONE], v)
    }

    /// `fpmerge` of the high four bytes of each operand.
    #[track_caller]
    pub fn vmerge_hi(&mut self, a: &VVal, b: &VVal) -> VVal {
        let pc = caller_pc!();
        let (x, y) = (vis::unpack8(a.v), vis::unpack8(b.v));
        let v = vis::fpmerge([x[4], x[5], x[6], x[7]], [y[4], y[5], y[6], y[7]]);
        self.compute_v(Op::VisMerge, pc, [a.reg, b.reg, Reg::NONE], v)
    }

    /// Emit a subword-rearrangement *sequence*: `n_ops` chained
    /// merge-class instructions (≥1) consuming `srcs` and producing
    /// `bits`.
    ///
    /// MediaLib-style VIS code rearranges data (RGB de/interleave,
    /// lane compaction) with sequences of `fpmerge`/`faligndata` whose
    /// intermediate lane contents are tedious to reproduce but whose
    /// *cost* — `n_ops` single-cycle instructions on the VIS multiplier
    /// path, all counted as rearrangement overhead (paper §3.2.3) — is
    /// what the simulation needs. This helper emits that dependency
    /// chain and attaches the final, functionally correct value.
    #[track_caller]
    pub fn vshuffle_composite(&mut self, srcs: &[&VVal], n_ops: u32, bits: u64) -> VVal {
        assert!(n_ops >= 1, "composite needs at least one instruction");
        let pc = caller_pc!();
        let mut s = [Reg::NONE; 3];
        for (i, v) in srcs.iter().take(3).enumerate() {
            s[i] = v.reg;
        }
        let mut last = self.compute_v(Op::VisMerge, pc, s, 0);
        for k in 1..n_ops {
            let mut s2 = s;
            s2[2] = last.reg;
            last = self.compute_v(Op::VisMerge, pc ^ k as u64, s2, 0);
        }
        VVal::new(last.reg, bits)
    }

    /// `falignaddr`: returns the 8-aligned address of `base + off` and
    /// latches the misalignment into the GSR.
    #[track_caller]
    pub fn valignaddr(&mut self, base: &Val, off: i64) -> Val {
        let pc = caller_pc!();
        let (aligned, k) = vis::falignaddr(base.v as u64, off);
        self.gsr.align = k;
        let dst = self.fresh();
        self.emit(Inst::compute(
            Op::VisAlign,
            pc,
            dst,
            [base.reg, Reg::NONE, Reg::NONE],
        ));
        self.gsr_reg = dst;
        Val::new(dst, aligned as i64)
    }

    /// `faligndata` on two consecutive aligned loads.
    #[track_caller]
    pub fn valigndata(&mut self, lo: &VVal, hi: &VVal) -> VVal {
        let pc = caller_pc!();
        let v = vis::faligndata(self.gsr, lo.v, hi.v);
        self.compute_v(Op::VisAlign, pc, [lo.reg, hi.reg, self.gsr_reg], v)
    }

    /// `fcmpgt16`: 4-bit greater-than mask into an integer register.
    #[track_caller]
    pub fn vcmpgt16(&mut self, a: &VVal, b: &VVal) -> Val {
        let pc = caller_pc!();
        let m = vis::fcmpgt16(a.v, b.v) as i64;
        self.compute(Op::VisCmp, pc, [a.reg, b.reg, Reg::NONE], m)
    }

    /// `fcmple16`: 4-bit less-or-equal mask.
    #[track_caller]
    pub fn vcmple16(&mut self, a: &VVal, b: &VVal) -> Val {
        let pc = caller_pc!();
        let m = vis::fcmple16(a.v, b.v) as i64;
        self.compute(Op::VisCmp, pc, [a.reg, b.reg, Reg::NONE], m)
    }

    /// `edge8`: boundary byte mask for `[cur, end]`.
    #[track_caller]
    pub fn vedge8(&mut self, cur: &Val, end: &Val) -> Val {
        let pc = caller_pc!();
        let m = vis::edge8(cur.v as u64, end.v as u64) as i64;
        self.compute(Op::VisEdge, pc, [cur.reg, end.reg, Reg::NONE], m)
    }

    /// `pdist`: accumulate the sum of absolute byte differences.
    #[track_caller]
    pub fn vpdist(&mut self, a: &VVal, b: &VVal, acc: &Val) -> Val {
        let pc = caller_pc!();
        let v = vis::pdist(a.v, b.v, acc.v as u64) as i64;
        self.compute(Op::VisPdist, pc, [a.reg, b.reg, acc.reg], v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visim_cpu::CountingSink;

    fn with_program<R>(
        f: impl FnOnce(&mut Program<CountingSink>) -> R,
    ) -> (R, visim_cpu::CpuStats) {
        let mut sink = CountingSink::new();
        let r = {
            let mut p = Program::new(&mut sink);
            f(&mut p)
        };
        (r, sink.finish())
    }

    #[test]
    fn arithmetic_computes_and_emits() {
        let ((), stats) = with_program(|p| {
            let a = p.li(6);
            let b = p.li(7);
            let c = p.mul(&a, &b);
            assert_eq!(c.value(), 42);
            let d = p.addi(&c, -2);
            assert_eq!(d.value(), 40);
            let e = p.shri(&d, 2);
            assert_eq!(e.value(), 10);
        });
        assert_eq!(stats.retired, 5);
    }

    #[test]
    fn loads_and_stores_hit_the_mem_image() {
        let ((), _) = with_program(|p| {
            let buf = p.mem_mut().alloc(64, 8);
            let base = p.li(buf as i64);
            let v = p.li(0x1234);
            p.store_u16(&base, 6, &v);
            let r = p.load_i16(&base, 6);
            assert_eq!(r.value(), 0x1234);
            let i = p.li(3);
            let b = p.li(0xfe);
            p.store_u8_idx(&base, &i, 0, &b);
            let r = p.load_u8_idx(&base, &i, 0);
            assert_eq!(r.value(), 0xfe);
        });
    }

    #[test]
    fn loop_range_runs_host_body_and_emits_overhead() {
        let (sum, stats) = with_program(|p| {
            let mut sum = 0i64;
            p.loop_range(0, 10, 1, |p, i| {
                let x = p.addi(i, 1);
                sum += x.value();
            });
            sum
        });
        assert_eq!(sum, 55);
        // li + guard(2) + 10 * (body 1 + add + cmp + branch).
        assert_eq!(stats.retired, 3 + 10 * 4);
        assert_eq!(stats.cond_branches, 11);
        assert!(stats.mispredicts <= 2, "loop branches predict well");
    }

    #[test]
    fn empty_loop_emits_only_the_guard() {
        let ((), stats) = with_program(|p| {
            p.loop_range(5, 5, 1, |_, _| panic!("body must not run"));
        });
        assert_eq!(stats.retired, 3);
    }

    #[test]
    fn branches_report_host_condition() {
        let ((), stats) = with_program(|p| {
            let a = p.li(1);
            let b = p.li(2);
            assert!(p.bcond(Cond::Lt, &a, &b, false));
            assert!(!p.bcond(Cond::Gt, &a, &b, false));
            assert!(p.bcond_i(Cond::Eq, &a, 1, false));
        });
        assert_eq!(stats.cond_branches, 3);
        assert_eq!(stats.retired, 2 + 6);
    }

    #[test]
    fn vis_pipeline_computes_packed_data() {
        let ((), stats) = with_program(|p| {
            let buf = p.mem_mut().alloc(64, 8);
            p.mem_mut()
                .write_u64(buf, u64::from_le_bytes([10, 20, 30, 40, 50, 60, 70, 80]));
            let base = p.li(buf as i64);
            let pix = p.loadv(&base, 0);
            let lo = p.vexpand_lo(&pix);
            let hi = p.vexpand_hi(&pix);
            let sum = p.vadd16(&lo, &hi);
            p.set_gsr_scale(3);
            let packed = p.vpack16_pair(&sum, &sum);
            // 10+50=60, 20+60=80, 30+70=100, 40+80=120, twice.
            assert_eq!(packed.lanes8(), [60, 80, 100, 120, 60, 80, 100, 120]);
            p.storev(&base, 8, &packed);
            assert_eq!(
                p.mem().bytes(buf + 8, 8),
                &[60, 80, 100, 120, 60, 80, 100, 120]
            );
        });
        // li(base), load, 2 expands, add, gsr, 2 packs, store.
        assert_eq!(stats.retired, 9);
        assert_eq!(stats.mix[3], 6, "six VIS ops");
    }

    #[test]
    fn alignment_pipeline_reproduces_unaligned_load() {
        let ((), _) = with_program(|p| {
            let buf = p.mem_mut().alloc(32, 8);
            for i in 0..16 {
                p.mem_mut().write_u8(buf + i, i as u8);
            }
            let misaligned = p.li(buf as i64 + 3);
            let aligned = p.valignaddr(&misaligned, 0);
            assert_eq!(aligned.value() as u64, buf);
            let d0 = p.loadv(&aligned, 0);
            let d1 = p.loadv(&aligned, 8);
            let win = p.valigndata(&d0, &d1);
            assert_eq!(win.lanes8(), [3, 4, 5, 6, 7, 8, 9, 10]);
        });
    }

    #[test]
    fn partial_store_respects_masks() {
        let ((), _) = with_program(|p| {
            let buf = p.mem_mut().alloc(16, 8);
            p.mem_mut().write_u64(buf, 0xaaaa_aaaa_aaaa_aaaa);
            let base = p.li(buf as i64);
            let data = p.vli(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
            let end = p.li(buf as i64 + 2);
            let mask = p.vedge8(&base, &end); // bytes 0..=2
            p.partial_store(&base, 0, &data, &mask);
            assert_eq!(
                p.mem().bytes(buf, 8),
                &[1, 2, 3, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa]
            );
        });
    }

    #[test]
    fn pdist_accumulates() {
        let ((), stats) = with_program(|p| {
            let a = p.vli(u64::from_le_bytes([0, 0, 0, 0, 0, 0, 0, 0]));
            let b = p.vli(u64::from_le_bytes([1, 2, 3, 4, 0, 0, 0, 0]));
            let acc = p.li(0);
            let acc = p.vpdist(&a, &b, &acc);
            assert_eq!(acc.value(), 10);
            let acc = p.vpdist(&a, &b, &acc);
            assert_eq!(acc.value(), 20);
        });
        assert_eq!(stats.mix[3], 4, "2 vli + 2 pdist");
    }

    #[test]
    fn calls_and_returns_balance() {
        let (v, stats) = with_program(|p| {
            p.subroutine(|p| {
                let x = p.li(5);
                p.subroutine(|p| p.addi(&x, 1)).value()
            })
        });
        assert_eq!(v, 6);
        assert_eq!(stats.ras_mispredicts, 0);
        assert_eq!(stats.mix[1], 4, "2 calls + 2 rets");
    }

    #[test]
    fn select_is_branchless() {
        let ((), stats) = with_program(|p| {
            let c = p.li(1);
            let t = p.li(10);
            let f = p.li(20);
            let r = p.select(&c, &t, &f);
            assert_eq!(r.value(), 10);
            let z = p.li(0);
            let r = p.select(&z, &t, &f);
            assert_eq!(r.value(), 20);
        });
        assert_eq!(stats.cond_branches, 0);
    }

    #[test]
    fn fp_ops_carry_f64() {
        let ((), _) = with_program(|p| {
            let a = p.lif(1.5);
            let b = p.lif(2.0);
            let c = p.fmul(&a, &b);
            assert_eq!(c.as_f64(), 3.0);
            let d = p.fdiv(&c, &b);
            assert_eq!(d.as_f64(), 1.5);
            let i = p.f2i(&d);
            assert_eq!(i.value(), 1);
            let f = p.i2f(&i);
            assert_eq!(f.as_f64(), 1.0);
        });
    }

    #[test]
    fn distinct_call_sites_get_distinct_pcs() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let a = p.li(1);
        let b = p.li(2);
        // The two `li` calls are on different lines, so their counters
        // must not alias: approximated by checking emitted regs differ.
        assert_ne!(a.reg(), b.reg());
    }
}
