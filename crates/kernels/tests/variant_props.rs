//! Property tests: scalar and VIS kernel variants must agree on random
//! images (exactly for the exact kernels, within the paper's
//! "visually imperceptible" tolerance for the fixed-point ones).

use media_kernels::{blend, conv, pointwise, reduce, thresh, SimImage, Variant};
use visim_cpu::CountingSink;
use visim_trace::Program;
use visim_util::prop::{self, Config};
use visim_util::{prop_assert, prop_assert_eq, Rng};

/// Arbitrary small image geometry + deterministic content seed. The
/// image itself is built inside the property so shrinking operates on
/// the plain parameters.
fn arb_geom(rng: &mut Rng, max_w: usize, max_h: usize) -> (usize, usize, usize, u64) {
    (
        rng.gen_range(1..max_w) + 8,
        rng.gen_range(1..max_h) + 2,
        rng.gen_range(1usize..4),
        rng.u64(),
    )
}

fn run2<R>(f: impl FnOnce(&mut Program<CountingSink>) -> R) -> R {
    let mut sink = CountingSink::new();
    let mut p = Program::new(&mut sink);
    f(&mut p)
}

#[test]
fn addition_variants_agree() {
    prop::check(
        Config::cases(24),
        |rng| (arb_geom(rng, 40, 12), rng.u64()),
        |&((w, h, bands, seed), seed2)| {
            if w == 0 || h == 0 || bands == 0 {
                return Ok(());
            }
            let img = media_image::synth::still(w, h, bands, seed);
            let other = media_image::synth::still(w, h, bands, seed2);
            let out = |v: Variant| {
                run2(|p| {
                    let a = SimImage::from_image(p, &img);
                    let b = SimImage::from_image(p, &other);
                    let d = SimImage::alloc(p, w, h, bands);
                    pointwise::addition(p, &a, &b, &d, v);
                    d.to_image(p)
                })
            };
            prop_assert!(out(Variant::SCALAR) == out(Variant::VIS), "variants differ");
            Ok(())
        },
    );
}

#[test]
fn thresh_variants_agree() {
    prop::check(
        Config::cases(24),
        |rng| arb_geom(rng, 40, 12),
        |&(w, h, bands, seed)| {
            if w == 0 || h == 0 || bands == 0 {
                return Ok(());
            }
            let img = media_image::synth::still(w, h, bands, seed);
            let params = thresh::ThreshParams::example();
            let out = |v: Variant| {
                run2(|p| {
                    let a = SimImage::from_image(p, &img);
                    let d = SimImage::alloc(p, w, h, bands);
                    thresh::thresh(p, &a, &d, &params, v);
                    d.to_image(p)
                })
            };
            prop_assert!(out(Variant::SCALAR) == out(Variant::VIS), "variants differ");
            Ok(())
        },
    );
}

#[test]
fn invert_and_copy_variants_agree() {
    prop::check(
        Config::cases(24),
        |rng| arb_geom(rng, 40, 12),
        |&(w, h, bands, seed)| {
            if w == 0 || h == 0 || bands == 0 {
                return Ok(());
            }
            let img = media_image::synth::still(w, h, bands, seed);
            for v in [Variant::SCALAR, Variant::VIS, Variant::VIS_PF] {
                let (inv, cpy) = run2(|p| {
                    let a = SimImage::from_image(p, &img);
                    let d1 = SimImage::alloc(p, w, h, bands);
                    pointwise::invert(p, &a, &d1, v);
                    let d2 = SimImage::alloc(p, w, h, bands);
                    pointwise::copy(p, &a, &d2, v);
                    (d1.to_image(p), d2.to_image(p))
                });
                prop_assert!(cpy == img, "copy is identity ({:?})", v);
                for i in 0..inv.data().len() {
                    prop_assert_eq!(inv.data()[i], 255 - img.data()[i]);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn blend_variants_close() {
    prop::check(
        Config::cases(24),
        |rng| (arb_geom(rng, 32, 10), rng.u64(), rng.u64()),
        |&((w, h, bands, seed), s2, s3)| {
            if w == 0 || h == 0 || bands == 0 {
                return Ok(());
            }
            let img = media_image::synth::still(w, h, bands, seed);
            let other = media_image::synth::still(w, h, bands, s2);
            let alpha = media_image::synth::alpha(w, h, bands, s3);
            let out = |v: Variant| {
                run2(|p| {
                    let a = SimImage::from_image(p, &img);
                    let b = SimImage::from_image(p, &other);
                    let al = SimImage::from_image(p, &alpha);
                    let d = SimImage::alloc(p, w, h, bands);
                    blend::blend(p, &a, &b, &al, &d, v);
                    d.to_image(p)
                })
            };
            let s = out(Variant::SCALAR);
            let v = out(Variant::VIS);
            prop_assert!(s.mean_abs_diff(&v) < 2.0, "diff {}", s.mean_abs_diff(&v));
            Ok(())
        },
    );
}

#[test]
fn conv_variants_agree() {
    prop::check(
        Config::cases(24),
        |rng| arb_geom(rng, 24, 10),
        |&(w, h, bands, seed)| {
            if w == 0 || h == 0 || bands == 0 || w * bands < 16 || h < 3 {
                return Ok(());
            }
            let img = media_image::synth::still(w, h, bands, seed);
            let out = |v: Variant| {
                run2(|p| {
                    let a = SimImage::from_image(p, &img);
                    let d = SimImage::alloc(p, w, h, bands);
                    conv::conv(p, &a, &d, &conv::SHARPEN_STRONG, v);
                    d.to_image(p)
                })
            };
            prop_assert!(out(Variant::SCALAR) == out(Variant::VIS), "variants differ");
            Ok(())
        },
    );
}

#[test]
fn sad_and_dotprod_are_exact() {
    prop::check(
        Config::cases(24),
        |rng| (rng.gen_range(1usize..64), rng.u64(), rng.u64()),
        |&(n4, s1, s2)| {
            if n4 == 0 {
                return Ok(());
            }
            let n = n4 * 4;
            let scalar = run2(|p| {
                let a = reduce::alloc_i16_array(p, n, s1);
                let b = reduce::alloc_i16_array(p, n, s2);
                reduce::dotprod(p, a, b, n, Variant::SCALAR)
            });
            let vis = run2(|p| {
                let a = reduce::alloc_i16_array(p, n, s1);
                let b = reduce::alloc_i16_array(p, n, s2);
                reduce::dotprod(p, a, b, n, Variant::VIS)
            });
            prop_assert_eq!(scalar, vis);
            Ok(())
        },
    );
}
