//! Property tests: scalar and VIS kernel variants must agree on random
//! images (exactly for the exact kernels, within the paper's
//! "visually imperceptible" tolerance for the fixed-point ones).

use media_image::Image;
use media_kernels::{blend, conv, pointwise, reduce, thresh, SimImage, Variant};
use proptest::prelude::*;
use visim_cpu::CountingSink;
use visim_trace::Program;

/// Arbitrary small image geometry + deterministic content.
fn arb_image(max_w: usize, max_h: usize) -> impl Strategy<Value = Image> {
    (1usize..max_w, 1usize..max_h, 1usize..4, any::<u64>()).prop_map(|(w, h, bands, seed)| {
        media_image::synth::still(w + 8, h + 2, bands, seed)
    })
}

fn run2<R>(f: impl FnOnce(&mut Program<CountingSink>) -> R) -> R {
    let mut sink = CountingSink::new();
    let mut p = Program::new(&mut sink);
    f(&mut p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn addition_variants_agree(img in arb_image(40, 12), seed2 in any::<u64>()) {
        let (w, h, bands) = (img.width(), img.height(), img.bands());
        let other = media_image::synth::still(w, h, bands, seed2);
        let out = |v: Variant| {
            run2(|p| {
                let a = SimImage::from_image(p, &img);
                let b = SimImage::from_image(p, &other);
                let d = SimImage::alloc(p, w, h, bands);
                pointwise::addition(p, &a, &b, &d, v);
                d.to_image(p)
            })
        };
        prop_assert_eq!(out(Variant::SCALAR), out(Variant::VIS));
    }

    #[test]
    fn thresh_variants_agree(img in arb_image(40, 12)) {
        let (w, h, bands) = (img.width(), img.height(), img.bands());
        let params = thresh::ThreshParams::example();
        let out = |v: Variant| {
            run2(|p| {
                let a = SimImage::from_image(p, &img);
                let d = SimImage::alloc(p, w, h, bands);
                thresh::thresh(p, &a, &d, &params, v);
                d.to_image(p)
            })
        };
        prop_assert_eq!(out(Variant::SCALAR), out(Variant::VIS));
    }

    #[test]
    fn invert_and_copy_variants_agree(img in arb_image(40, 12)) {
        let (w, h, bands) = (img.width(), img.height(), img.bands());
        for v in [Variant::SCALAR, Variant::VIS, Variant::VIS_PF] {
            let (inv, cpy) = run2(|p| {
                let a = SimImage::from_image(p, &img);
                let d1 = SimImage::alloc(p, w, h, bands);
                pointwise::invert(p, &a, &d1, v);
                let d2 = SimImage::alloc(p, w, h, bands);
                pointwise::copy(p, &a, &d2, v);
                (d1.to_image(p), d2.to_image(p))
            });
            prop_assert_eq!(&cpy, &img, "copy is identity ({:?})", v);
            for i in 0..inv.data().len() {
                prop_assert_eq!(inv.data()[i], 255 - img.data()[i]);
            }
        }
    }

    #[test]
    fn blend_variants_close(img in arb_image(32, 10), s2 in any::<u64>(), s3 in any::<u64>()) {
        let (w, h, bands) = (img.width(), img.height(), img.bands());
        let other = media_image::synth::still(w, h, bands, s2);
        let alpha = media_image::synth::alpha(w, h, bands, s3);
        let out = |v: Variant| {
            run2(|p| {
                let a = SimImage::from_image(p, &img);
                let b = SimImage::from_image(p, &other);
                let al = SimImage::from_image(p, &alpha);
                let d = SimImage::alloc(p, w, h, bands);
                blend::blend(p, &a, &b, &al, &d, v);
                d.to_image(p)
            })
        };
        let s = out(Variant::SCALAR);
        let v = out(Variant::VIS);
        prop_assert!(s.mean_abs_diff(&v) < 2.0, "diff {}", s.mean_abs_diff(&v));
    }

    #[test]
    fn conv_variants_agree(img in arb_image(24, 10)) {
        let (w, h, bands) = (img.width(), img.height(), img.bands());
        prop_assume!(w * bands >= 16 && h >= 3);
        let out = |v: Variant| {
            run2(|p| {
                let a = SimImage::from_image(p, &img);
                let d = SimImage::alloc(p, w, h, bands);
                conv::conv(p, &a, &d, &conv::SHARPEN_STRONG, v);
                d.to_image(p)
            })
        };
        prop_assert_eq!(out(Variant::SCALAR), out(Variant::VIS));
    }

    #[test]
    fn sad_and_dotprod_are_exact(n4 in 1usize..64, s1 in any::<u64>(), s2 in any::<u64>()) {
        let n = n4 * 4;
        let scalar = run2(|p| {
            let a = reduce::alloc_i16_array(p, n, s1);
            let b = reduce::alloc_i16_array(p, n, s2);
            reduce::dotprod(p, a, b, n, Variant::SCALAR)
        });
        let vis = run2(|p| {
            let a = reduce::alloc_i16_array(p, n, s1);
            let b = reduce::alloc_i16_array(p, n, s2);
            reduce::dotprod(p, a, b, n, Variant::VIS)
        });
        prop_assert_eq!(scalar, vis);
    }
}
