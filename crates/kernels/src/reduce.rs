//! Reduction kernels: [`dotprod`] (paper Table 1: 16×16-bit dot product
//! over a linear array) and [`sad`] (sum of absolute differences, the
//! `pdist` showcase outside of MPEG motion estimation).

use visim_cpu::SimSink;
use visim_trace::{Cond, Program};

use crate::simimg::SimImage;
use crate::{Variant, PF_DISTANCE};

/// Allocate and fill a 16-bit array for [`dotprod`] (host-side
/// initialization, deterministic in `seed`). Values stay within ±1024 so
/// products are comfortably inside 32 bits when accumulated.
pub fn alloc_i16_array<S: SimSink>(p: &mut Program<S>, n: usize, seed: u64) -> u64 {
    let addr = p.mem_mut().alloc_skewed(n * 2 + 16, 8, 136);
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let v = ((x >> 16) as i16) % 1024;
        p.mem_mut().write_u16(addr + 2 * i as u64, v as u16);
    }
    addr
}

/// 16×16-bit dot product of two `n`-element arrays. Returns the sum.
///
/// The VIS variant emulates each 16×16 multiply with the widening
/// `fmuld8sux16`/`fmuld8ulx16` pair plus a packed 32-bit add — the
/// emulation overhead the paper blames for dotprod's small VIS benefit
/// (§3.2.3) — accumulating exactly into two 32-bit lane pairs.
///
/// Like the real VIS code it models, the packed accumulator is 32 bits
/// per lane: inputs from [`alloc_i16_array`] (±1023) keep the partial
/// sums far inside range at the paper's 2²⁰-element size, but
/// adversarial correlated inputs could wrap where the scalar variant's
/// 64-bit accumulator would not.
pub fn dotprod<S: SimSink>(p: &mut Program<S>, a: u64, b: u64, n: usize, v: Variant) -> i64 {
    let bytes = (n * 2) as i64;
    let ra = p.li(a as i64);
    let rb = p.li(b as i64);
    if v.vis {
        assert_eq!(n % 4, 0, "VIS dotprod processes 4 elements per step");
        let mut acc_lo = p.vli(0);
        let mut acc_hi = p.vli(0);
        p.loop_range(0, bytes, 8, |p, i| {
            if v.prefetch && i.value() % 64 == 0 {
                p.prefetch_idx(&ra, i, PF_DISTANCE);
                p.prefetch_idx(&rb, i, PF_DISTANCE);
            }
            let va = p.loadv_idx(&ra, i, 0);
            let vb = p.loadv_idx(&rb, i, 0);
            let sl = p.vmuld_sux_lo(&va, &vb);
            let ul = p.vmuld_ulx_lo(&va, &vb);
            let pl = p.vadd32(&sl, &ul);
            acc_lo = p.vadd32(&acc_lo, &pl);
            let sh = p.vmuld_sux_hi(&va, &vb);
            let uh = p.vmuld_ulx_hi(&va, &vb);
            let ph = p.vadd32(&sh, &uh);
            acc_hi = p.vadd32(&acc_hi, &ph);
        });
        // Spill the four partial lanes and fold them with scalar adds.
        let scratch = p.mem_mut().alloc(16, 8);
        let sp = p.li(scratch as i64);
        p.storev(&sp, 0, &acc_lo);
        p.storev(&sp, 8, &acc_hi);
        let p0 = p.load_i32(&sp, 0);
        let p1 = p.load_i32(&sp, 4);
        let p2 = p.load_i32(&sp, 8);
        let p3 = p.load_i32(&sp, 12);
        let s01 = p.add(&p0, &p1);
        let s23 = p.add(&p2, &p3);
        let s = p.add(&s01, &s23);
        s.value()
    } else {
        // Unrolled 4x, as the paper's tuned kernels are (§2.3.1).
        assert_eq!(n % 4, 0, "scalar dotprod is unrolled by four");
        let mut acc = p.li(0);
        p.loop_range(0, bytes, 8, |p, i| {
            if v.prefetch && i.value() % 64 == 0 {
                p.prefetch_idx(&ra, i, PF_DISTANCE);
                p.prefetch_idx(&rb, i, PF_DISTANCE);
            }
            for u in 0..4 {
                let x = p.load_i16_idx(&ra, i, 2 * u);
                let y = p.load_i16_idx(&rb, i, 2 * u);
                let t = p.mul(&x, &y);
                acc = p.add(&acc, &t);
            }
        });
        acc.value()
    }
}

/// Sum of absolute differences between two images (the operation at the
/// heart of MPEG motion estimation). The VIS variant uses `pdist`; the
/// scalar variant's sign test is a data-dependent branch per sample.
pub fn sad<S: SimSink>(p: &mut Program<S>, a: &SimImage, b: &SimImage, v: Variant) -> i64 {
    assert_eq!((a.width, a.height, a.bands), (b.width, b.height, b.bands));
    let n = a.row_bytes() as i64;
    let mut ra = p.li(a.addr as i64);
    let mut rb = p.li(b.addr as i64);
    let mut total = p.li(0);
    p.loop_range(0, a.height as i64, 1, |p, _| {
        if v.vis {
            assert_eq!(n % 8, 0, "VIS sad processes whole chunks");
            p.loop_range(0, n, 8, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&ra, i, PF_DISTANCE);
                    p.prefetch_idx(&rb, i, PF_DISTANCE);
                }
                let va = p.loadv_idx(&ra, i, 0);
                let vb = p.loadv_idx(&rb, i, 0);
                total = p.vpdist(&va, &vb, &total);
            });
        } else {
            p.loop_range(0, n, 1, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&ra, i, PF_DISTANCE);
                    p.prefetch_idx(&rb, i, PF_DISTANCE);
                }
                let x = p.load_u8_idx(&ra, i, 0);
                let y = p.load_u8_idx(&rb, i, 0);
                let mut d = p.sub(&x, &y);
                // Branchy absolute value (hard to predict on noise).
                if p.bcond_i(Cond::Lt, &d, 0, false) {
                    let z = p.li(0);
                    d = p.sub(&z, &d);
                }
                total = p.add(&total, &d);
            });
        }
        ra = p.addi(&ra, a.stride as i64);
        rb = p.addi(&rb, b.stride as i64);
    });
    total.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_image::synth;
    use visim_cpu::CountingSink;

    #[test]
    fn dotprod_scalar_matches_host() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let n = 64;
        let a = alloc_i16_array(&mut p, n, 1);
        let b = alloc_i16_array(&mut p, n, 2);
        let host: i64 = (0..n)
            .map(|i| {
                let x = p.mem().read_u16(a + 2 * i as u64) as i16 as i64;
                let y = p.mem().read_u16(b + 2 * i as u64) as i16 as i64;
                x * y
            })
            .sum();
        let got = dotprod(&mut p, a, b, n, Variant::SCALAR);
        assert_eq!(got, host);
    }

    #[test]
    fn dotprod_vis_is_exact_but_barely_cheaper() {
        let n = 256;
        let run = |v: Variant| {
            let mut sink = CountingSink::new();
            let r = {
                let mut p = Program::new(&mut sink);
                let a = alloc_i16_array(&mut p, n, 1);
                let b = alloc_i16_array(&mut p, n, 2);
                dotprod(&mut p, a, b, n, v)
            };
            (r, sink.finish())
        };
        let (s, cs) = run(Variant::SCALAR);
        let (vv, cv) = run(Variant::VIS);
        assert_eq!(s, vv, "widening emulation is exact");
        // The 16x16 emulation overhead keeps the VIS win small —
        // qualitatively matching the paper's dotprod (88.5% in Fig. 2).
        let ratio = cv.retired as f64 / cs.retired as f64;
        assert!(
            ratio > 0.35 && ratio < 0.9,
            "dotprod is the weakest VIS kernel: {ratio:.2}"
        );
    }

    #[test]
    fn sad_matches_host_and_pdist_agrees() {
        let (w, h) = (32, 6);
        let a = synth::still(w, h, 1, 7);
        let b = synth::still(w, h, 1, 8);
        let host: i64 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| (x as i64 - y as i64).abs())
            .sum();
        let run = |v: Variant| {
            let mut sink = CountingSink::new();
            let r = {
                let mut p = Program::new(&mut sink);
                let ia = SimImage::from_image(&mut p, &a);
                let ib = SimImage::from_image(&mut p, &b);
                sad(&mut p, &ia, &ib, v)
            };
            (r, sink.finish())
        };
        let (s, cs) = run(Variant::SCALAR);
        let (vv, cv) = run(Variant::VIS);
        assert_eq!(s, host);
        assert_eq!(vv, host, "pdist is exact");
        assert!(
            cv.retired * 5 < cs.retired,
            "pdist crushes the SAD loop: {} vs {}",
            cv.retired,
            cs.retired
        );
        assert!(cs.mispredicts > 0, "scalar abs branches mispredict");
    }
}
