//! Point-wise kernels: addition, copy, invert, scaling, lookup,
//! histogram.

use visim_cpu::SimSink;
use visim_trace::{Program, Val};

use crate::simimg::SimImage;
use crate::{last_chunk, Variant, PF_DISTANCE};

/// Byte offset of the (edge-masked) final 8-byte chunk of an `n`-byte
/// row.
/// `addition`: per-sample mean of two images, `dst = (a + b) / 2`
/// (paper Table 1).
pub fn addition<S: SimSink>(
    p: &mut Program<S>,
    a: &SimImage,
    b: &SimImage,
    dst: &SimImage,
    v: Variant,
) {
    assert_eq!((a.width, a.height, a.bands), (b.width, b.height, b.bands));
    assert_eq!(
        (a.width, a.height, a.bands),
        (dst.width, dst.height, dst.bands)
    );
    let n = a.row_bytes() as i64;
    if v.vis {
        // expand gives v<<4; pack at scale 2 yields ((a+b)<<4 <<2)>>7.
        p.set_gsr_scale(2);
    }
    let mut ra = p.li(a.addr as i64);
    let mut rb = p.li(b.addr as i64);
    let mut rd = p.li(dst.addr as i64);
    p.loop_range(0, a.height as i64, 1, |p, _| {
        if v.vis {
            let body = |p: &mut Program<S>, i: &Val, ra: &Val, rb: &Val| {
                // Prefetches are staggered across the line so the three
                // streams do not burst-fill the MSHRs (Mowry scheduling).
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(ra, i, PF_DISTANCE);
                }
                if v.prefetch && i.value() % 64 == 24 {
                    p.prefetch_idx(rb, i, PF_DISTANCE - 24);
                }
                if v.prefetch && i.value() % 64 == 48 {
                    p.prefetch_idx(&rd, i, PF_DISTANCE - 48);
                }
                let va = p.loadv_idx(ra, i, 0);
                let vb = p.loadv_idx(rb, i, 0);
                let al = p.vexpand_lo(&va);
                let ah = p.vexpand_hi(&va);
                let bl = p.vexpand_lo(&vb);
                let bh = p.vexpand_hi(&vb);
                let sl = p.vadd16(&al, &bl);
                let sh = p.vadd16(&ah, &bh);
                p.vpack16_pair(&sl, &sh)
            };
            p.loop_range(0, last_chunk(n), 8, |p, i| {
                let out = body(p, i, &ra, &rb);
                p.storev_idx(&rd, i, 0, &out);
            });
            // Edge-masked epilogue chunk.
            let i = p.li(last_chunk(n));
            let out = body(p, &i, &ra, &rb);
            let cur = p.add(&rd, &i);
            let end = p.addi(&rd, n - 1);
            let mask = p.vedge8(&cur, &end);
            p.partial_store(&cur, 0, &out, &mask);
        } else {
            p.loop_range(0, n, 1, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&ra, i, PF_DISTANCE);
                    p.prefetch_idx(&rb, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let x = p.load_u8_idx(&ra, i, 0);
                let y = p.load_u8_idx(&rb, i, 0);
                let s = p.add(&x, &y);
                let m = p.shri(&s, 1);
                p.store_u8_idx(&rd, i, 0, &m);
            });
        }
        ra = p.addi(&ra, a.stride as i64);
        rb = p.addi(&rb, b.stride as i64);
        rd = p.addi(&rd, dst.stride as i64);
    });
}

/// `copy`: image copy.
pub fn copy<S: SimSink>(p: &mut Program<S>, src: &SimImage, dst: &SimImage, v: Variant) {
    assert_eq!(
        (src.width, src.height, src.bands),
        (dst.width, dst.height, dst.bands)
    );
    let n = src.row_bytes() as i64;
    let mut rs = p.li(src.addr as i64);
    let mut rd = p.li(dst.addr as i64);
    p.loop_range(0, src.height as i64, 1, |p, _| {
        if v.vis {
            p.loop_range(0, last_chunk(n), 8, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let x = p.loadv_idx(&rs, i, 0);
                p.storev_idx(&rd, i, 0, &x);
            });
            let i = p.li(last_chunk(n));
            let x = p.loadv_idx(&rs, &i, 0);
            let cur = p.add(&rd, &i);
            let end = p.addi(&rd, n - 1);
            let mask = p.vedge8(&cur, &end);
            p.partial_store(&cur, 0, &x, &mask);
        } else {
            p.loop_range(0, n, 1, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let x = p.load_u8_idx(&rs, i, 0);
                p.store_u8_idx(&rd, i, 0, &x);
            });
        }
        rs = p.addi(&rs, src.stride as i64);
        rd = p.addi(&rd, dst.stride as i64);
    });
}

/// `invert`: photographic negative, `dst = 255 - src`.
pub fn invert<S: SimSink>(p: &mut Program<S>, src: &SimImage, dst: &SimImage, v: Variant) {
    assert_eq!(
        (src.width, src.height, src.bands),
        (dst.width, dst.height, dst.bands)
    );
    let n = src.row_bytes() as i64;
    let ones = if v.vis { Some(p.vli(u64::MAX)) } else { None };
    let mut rs = p.li(src.addr as i64);
    let mut rd = p.li(dst.addr as i64);
    p.loop_range(0, src.height as i64, 1, |p, _| {
        if let Some(ones) = ones {
            p.loop_range(0, last_chunk(n), 8, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let x = p.loadv_idx(&rs, i, 0);
                let y = p.vxor(&x, &ones);
                p.storev_idx(&rd, i, 0, &y);
            });
            let i = p.li(last_chunk(n));
            let x = p.loadv_idx(&rs, &i, 0);
            let y = p.vxor(&x, &ones);
            let cur = p.add(&rd, &i);
            let end = p.addi(&rd, n - 1);
            let mask = p.vedge8(&cur, &end);
            p.partial_store(&cur, 0, &y, &mask);
        } else {
            p.loop_range(0, n, 1, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let x = p.load_u8_idx(&rs, i, 0);
                let ff = p.li(0xff);
                let y = p.xor(&x, &ff);
                p.store_u8_idx(&rd, i, 0, &y);
            });
        }
        rs = p.addi(&rs, src.stride as i64);
        rd = p.addi(&rd, dst.stride as i64);
    });
}

/// `scaling`: linear intensity scaling with saturation,
/// `dst = clamp((src * scale_q8) >> 8 + offset)`.
pub fn scaling<S: SimSink>(
    p: &mut Program<S>,
    src: &SimImage,
    dst: &SimImage,
    scale_q8: i16,
    offset: i16,
    v: Variant,
) {
    assert_eq!(
        (src.width, src.height, src.bands),
        (dst.width, dst.height, dst.bands)
    );
    assert!(scale_q8 >= 0, "negative scales not supported");
    let n = src.row_bytes() as i64;
    let vis_state = if v.vis {
        p.set_gsr_scale(7); // lanes hold final pixel values
        let coeff = p.li(scale_q8 as i64);
        let offv = p.vli(visim_isa::vis::pack16([offset; 4]));
        Some((coeff, offv))
    } else {
        None
    };
    let mut rs = p.li(src.addr as i64);
    let mut rd = p.li(dst.addr as i64);
    p.loop_range(0, src.height as i64, 1, |p, _| {
        if let Some((coeff, offv)) = &vis_state {
            let body = |p: &mut Program<S>, i: &Val| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let x = p.loadv_idx(&rs, i, 0);
                let lo = p.vmul8x16au(&x, coeff);
                let hi = p.vmul8x16au_hi(&x, coeff);
                let lo = p.vadd16(&lo, offv);
                let hi = p.vadd16(&hi, offv);
                p.vpack16_pair(&lo, &hi)
            };
            p.loop_range(0, last_chunk(n), 8, |p, i| {
                let y = body(p, i);
                p.storev_idx(&rd, i, 0, &y);
            });
            let i = p.li(last_chunk(n));
            let y = body(p, &i);
            let cur = p.add(&rd, &i);
            let end = p.addi(&rd, n - 1);
            let mask = p.vedge8(&cur, &end);
            p.partial_store(&cur, 0, &y, &mask);
        } else {
            p.loop_range(0, n, 1, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let x = p.load_u8_idx(&rs, i, 0);
                let m = p.muli(&x, scale_q8 as i64);
                let s = p.srai(&m, 8);
                let y = p.addi(&s, offset as i64);
                // Explicit saturation: the data-dependent branches the
                // paper calls out as hard to predict.
                let mut out = y;
                if p.bcond_i(visim_trace::Cond::Lt, &y, 0, false) {
                    out = p.li(0);
                }
                if p.bcond_i(visim_trace::Cond::Gt, &out, 255, false) {
                    out = p.li(255);
                }
                p.store_u8_idx(&rd, i, 0, &out);
            });
        }
        rs = p.addi(&rs, src.stride as i64);
        rd = p.addi(&rd, dst.stride as i64);
    });
}

/// `lookup`: table transform `dst = table[src]`. VIS has no gather, so
/// (as §3.2.3 notes for scatter-gather addressing) the VIS variant falls
/// back to scalar code.
pub fn lookup<S: SimSink>(
    p: &mut Program<S>,
    src: &SimImage,
    dst: &SimImage,
    table: &[u8; 256],
    v: Variant,
) {
    assert_eq!(
        (src.width, src.height, src.bands),
        (dst.width, dst.height, dst.bands)
    );
    let n = src.row_bytes() as i64;
    let taddr = p.mem_mut().alloc(256, 8);
    p.mem_mut().write_bytes(taddr, table);
    let tbase = p.li(taddr as i64);
    let mut rs = p.li(src.addr as i64);
    let mut rd = p.li(dst.addr as i64);
    p.loop_range(0, src.height as i64, 1, |p, _| {
        p.loop_range(0, n, 1, |p, i| {
            if v.prefetch && i.value() % 64 == 0 {
                p.prefetch_idx(&rs, i, PF_DISTANCE);
            }
            let x = p.load_u8_idx(&rs, i, 0);
            let y = p.load_u8_idx(&tbase, &x, 0);
            p.store_u8_idx(&rd, i, 0, &y);
        });
        rs = p.addi(&rs, src.stride as i64);
        rd = p.addi(&rd, dst.stride as i64);
    });
}

/// `histogram`: 256-bin luminance histogram (band-0 samples). The
/// read-modify-write scatter is VIS-inapplicable; both variants emit
/// scalar code. Returns the histogram address (256 × u32).
pub fn histogram<S: SimSink>(p: &mut Program<S>, src: &SimImage, _v: Variant) -> u64 {
    let haddr = p.mem_mut().alloc(256 * 4, 8);
    let hbase = p.li(haddr as i64);
    let mut rs = p.li(src.addr as i64);
    let bands = src.bands as i64;
    let n = src.row_bytes() as i64;
    p.loop_range(0, src.height as i64, 1, |p, _| {
        p.loop_range(0, n, bands, |p, i| {
            let x = p.load_u8_idx(&rs, i, 0);
            let ix = p.shli(&x, 2);
            let c = p.load_i32_idx(&hbase, &ix, 0);
            let c1 = p.addi(&c, 1);
            p.store_u32_idx(&hbase, &ix, 0, &c1);
        });
        rs = p.addi(&rs, src.stride as i64);
    });
    haddr
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_image::{synth, Image};
    use visim_cpu::{CountingSink, CpuStats};

    fn run2(
        w: usize,
        h: usize,
        bands: usize,
        v: Variant,
        f: impl Fn(&mut Program<CountingSink>, &SimImage, &SimImage, &SimImage, Variant),
    ) -> (Image, CpuStats) {
        let a = synth::still(w, h, bands, 1);
        let b = synth::still(w, h, bands, 2);
        let mut sink = CountingSink::new();
        let out = {
            let mut p = Program::new(&mut sink);
            let sa = SimImage::from_image(&mut p, &a);
            let sb = SimImage::from_image(&mut p, &b);
            let sd = SimImage::alloc(&mut p, w, h, bands);
            f(&mut p, &sa, &sb, &sd, v);
            sd.to_image(&p)
        };
        (out, sink.finish())
    }

    #[test]
    fn addition_scalar_matches_reference() {
        let (out, _) = run2(24, 5, 3, Variant::SCALAR, addition);
        let a = synth::still(24, 5, 3, 1);
        let b = synth::still(24, 5, 3, 2);
        for i in 0..out.data().len() {
            let want = ((a.data()[i] as u32 + b.data()[i] as u32) / 2) as u8;
            assert_eq!(out.data()[i], want, "sample {i}");
        }
    }

    #[test]
    fn addition_vis_matches_scalar_exactly() {
        let (s, cs) = run2(40, 7, 3, Variant::SCALAR, addition);
        let (v, cv) = run2(40, 7, 3, Variant::VIS, addition);
        assert_eq!(s, v, "VIS addition is exact");
        assert!(
            cv.retired * 3 < cs.retired,
            "VIS cuts instructions >3x: {} vs {}",
            cv.retired,
            cs.retired
        );
        assert!(cv.mix[3] > 0, "VIS ops present");
        assert_eq!(cs.mix[3], 0, "scalar emits no VIS ops");
    }

    #[test]
    fn addition_with_odd_row_bytes_uses_edge_mask() {
        // width*bands = 25 bytes: the last chunk is partial.
        let (s, _) = run2(25, 3, 1, Variant::SCALAR, addition);
        let (v, _) = run2(25, 3, 1, Variant::VIS, addition);
        assert_eq!(s, v);
    }

    #[test]
    fn prefetch_variant_emits_prefetches_and_same_pixels() {
        let (s, _) = run2(32, 4, 3, Variant::SCALAR, addition);
        let (vp, cp) = run2(32, 4, 3, Variant::VIS_PF, addition);
        assert_eq!(s, vp);
        assert!(cp.prefetches > 0, "prefetches emitted");
    }

    #[test]
    fn copy_roundtrips() {
        for v in [Variant::SCALAR, Variant::VIS] {
            let img = synth::still(19, 6, 3, 9);
            let mut sink = CountingSink::new();
            let out = {
                let mut p = Program::new(&mut sink);
                let s = SimImage::from_image(&mut p, &img);
                let d = SimImage::alloc(&mut p, 19, 6, 3);
                copy(&mut p, &s, &d, v);
                d.to_image(&p)
            };
            assert_eq!(out, img, "{v:?}");
        }
    }

    #[test]
    fn invert_is_an_involution() {
        let img = synth::still(16, 8, 3, 4);
        for v in [Variant::SCALAR, Variant::VIS] {
            let mut sink = CountingSink::new();
            let out = {
                let mut p = Program::new(&mut sink);
                let s = SimImage::from_image(&mut p, &img);
                let d = SimImage::alloc(&mut p, 16, 8, 3);
                let dd = SimImage::alloc(&mut p, 16, 8, 3);
                invert(&mut p, &s, &d, v);
                invert(&mut p, &d, &dd, v);
                dd.to_image(&p)
            };
            assert_eq!(out, img, "{v:?}");
        }
    }

    #[test]
    fn scaling_scalar_saturates() {
        let img = synth::still(24, 4, 3, 7);
        let mut sink = CountingSink::new();
        let out = {
            let mut p = Program::new(&mut sink);
            let s = SimImage::from_image(&mut p, &img);
            let d = SimImage::alloc(&mut p, 24, 4, 3);
            scaling(&mut p, &s, &d, 512, 30, Variant::SCALAR); // 2x + 30
            d.to_image(&p)
        };
        for i in 0..out.data().len() {
            let want = ((img.data()[i] as i32 * 2) + 30).clamp(0, 255) as u8;
            assert_eq!(out.data()[i], want, "sample {i}");
        }
    }

    #[test]
    fn scaling_vis_matches_scalar() {
        let img = synth::still(40, 6, 3, 3);
        let run = |v: Variant| {
            let mut sink = CountingSink::new();
            let out = {
                let mut p = Program::new(&mut sink);
                let s = SimImage::from_image(&mut p, &img);
                let d = SimImage::alloc(&mut p, 40, 6, 3);
                scaling(&mut p, &s, &d, 307, -12, v); // 1.2x - 12
                d.to_image(&p)
            };
            (out, sink.finish())
        };
        let (s, cs) = run(Variant::SCALAR);
        let (v, cv) = run(Variant::VIS);
        assert!(s.mean_abs_diff(&v) <= 1.0, "visually identical");
        assert!(cv.retired * 3 < cs.retired);
        // Scalar saturation uses data-dependent branches; VIS does not.
        assert!(cs.cond_branches > cv.cond_branches * 2);
    }

    #[test]
    fn lookup_applies_table() {
        let img = synth::still(16, 4, 1, 5);
        let mut table = [0u8; 256];
        for (i, t) in table.iter_mut().enumerate() {
            *t = (255 - i) as u8;
        }
        let mut sink = CountingSink::new();
        let out = {
            let mut p = Program::new(&mut sink);
            let s = SimImage::from_image(&mut p, &img);
            let d = SimImage::alloc(&mut p, 16, 4, 1);
            lookup(&mut p, &s, &d, &table, Variant::VIS);
            d.to_image(&p)
        };
        for i in 0..out.data().len() {
            assert_eq!(out.data()[i], 255 - img.data()[i]);
        }
        assert_eq!(sink.finish().mix[3], 0, "lookup cannot use VIS");
    }

    #[test]
    fn histogram_counts_every_pixel() {
        let img = synth::still(20, 10, 1, 8);
        let mut sink = CountingSink::new();
        let (haddr, bins) = {
            let mut p = Program::new(&mut sink);
            let s = SimImage::from_image(&mut p, &img);
            let h = histogram(&mut p, &s, Variant::SCALAR);
            let bins: Vec<u32> = (0..256)
                .map(|i| p.mem().read_u32(h + 4 * i as u64))
                .collect();
            (h, bins)
        };
        assert!(haddr > 0);
        let total: u32 = bins.iter().sum();
        assert_eq!(total, 200, "every pixel counted once");
        let mut want = [0u32; 256];
        for &px in img.data() {
            want[px as usize] += 1;
        }
        assert_eq!(&bins[..], &want[..]);
    }
}
