//! Images placed in the simulated address space.

use media_image::Image;
use visim_cpu::SimSink;
use visim_trace::Program;

/// An image resident in simulated memory: interleaved 8-bit samples with
/// rows padded to 8-byte alignment (so VIS row loads are aligned), and
/// allocations skewed so concurrent streams do not conflict in the same
/// cache sets (the paper's §2.3.1 source-level tuning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimImage {
    /// Simulated base address (8-aligned).
    pub addr: u64,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Interleaved bands.
    pub bands: usize,
    /// Row stride in bytes (multiple of 8).
    pub stride: usize,
}

/// Skew between consecutive image allocations, chosen (as in the paper)
/// to push concurrent row streams into different cache sets.
const SKEW: u64 = 136;

impl SimImage {
    /// Allocate an uninitialized (zeroed) image.
    pub fn alloc<S: SimSink>(
        p: &mut Program<S>,
        width: usize,
        height: usize,
        bands: usize,
    ) -> Self {
        let stride = (width * bands + 7) & !7;
        // 16 guard bytes: VIS windowed loads (falignaddr/faligndata) may
        // read one aligned chunk past the final row.
        let addr = p.mem_mut().alloc_skewed(stride * height + 16, 8, SKEW);
        SimImage {
            addr,
            width,
            height,
            bands,
            stride,
        }
    }

    /// Place `img` into simulated memory (host-side copy; emits no
    /// instructions, standing in for the benchmark's untimed input I/O).
    pub fn from_image<S: SimSink>(p: &mut Program<S>, img: &Image) -> Self {
        let s = Self::alloc(p, img.width(), img.height(), img.bands());
        let row_bytes = img.stride();
        for y in 0..img.height() {
            let row = &img.data()[y * row_bytes..(y + 1) * row_bytes];
            p.mem_mut().write_bytes(s.addr + (y * s.stride) as u64, row);
        }
        s
    }

    /// Copy the simulated image back out to a host [`Image`].
    pub fn to_image<S: SimSink>(&self, p: &Program<S>) -> Image {
        let row_bytes = self.width * self.bands;
        let mut data = Vec::with_capacity(row_bytes * self.height);
        for y in 0..self.height {
            data.extend_from_slice(
                p.mem()
                    .bytes(self.addr + (y * self.stride) as u64, row_bytes),
            );
        }
        Image::from_raw(self.width, self.height, self.bands, data)
    }

    /// Address of row `y`.
    pub fn row_addr(&self, y: usize) -> u64 {
        self.addr + (y * self.stride) as u64
    }

    /// Meaningful bytes per row (excluding pad).
    pub fn row_bytes(&self) -> usize {
        self.width * self.bands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_image::synth;
    use visim_cpu::CountingSink;

    #[test]
    fn image_roundtrips_through_simulated_memory() {
        let img = synth::still(37, 11, 3, 42);
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let s = SimImage::from_image(&mut p, &img);
        assert_eq!(s.stride % 8, 0);
        assert_eq!(s.to_image(&p), img);
    }

    #[test]
    fn rows_are_aligned_and_disjoint() {
        let mut sink = CountingSink::new();
        let mut p = Program::new(&mut sink);
        let a = SimImage::alloc(&mut p, 10, 4, 3);
        let b = SimImage::alloc(&mut p, 10, 4, 3);
        assert_eq!(a.addr % 8, 0);
        assert_eq!(a.row_addr(1) - a.row_addr(0), a.stride as u64);
        assert!(b.addr >= a.row_addr(3) + a.stride as u64, "no overlap");
        assert_eq!(a.row_bytes(), 30);
        assert_eq!(a.stride, 32);
    }
}
