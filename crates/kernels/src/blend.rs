//! Alpha blending: `dst = (alpha*src1 + (255-alpha)*src2) / 255`
//! (paper Table 1). Works for one-band (`blend1`) and three-band
//! (`blend`) images alike — the operation is per-sample with a
//! per-sample alpha image.

use visim_cpu::SimSink;
use visim_isa::vis;
use visim_trace::{Program, Val};

use crate::simimg::SimImage;
use crate::{last_chunk, Variant, PF_DISTANCE};

/// Run the blend kernel.
pub fn blend<S: SimSink>(
    p: &mut Program<S>,
    src1: &SimImage,
    src2: &SimImage,
    alpha: &SimImage,
    dst: &SimImage,
    v: Variant,
) {
    for img in [src2, alpha, dst] {
        assert_eq!(
            (src1.width, src1.height, src1.bands),
            (img.width, img.height, img.bands)
        );
    }
    let n = src1.row_bytes() as i64;
    let vis_consts = if v.vis {
        // Packing scale 3: lanes hold blended*255/16, and
        // ((v << 3) >> 7) == v/16 ≈ blended (see kernel docs).
        p.set_gsr_scale(3);
        // 255 in the fexpand (<<4) domain, for computing 255 - alpha.
        Some(p.vli(vis::pack16([255 << 4; 4])))
    } else {
        None
    };
    let mut r1 = p.li(src1.addr as i64);
    let mut r2 = p.li(src2.addr as i64);
    let mut ra = p.li(alpha.addr as i64);
    let mut rd = p.li(dst.addr as i64);
    p.loop_range(0, src1.height as i64, 1, |p, _| {
        if let Some(k255) = vis_consts {
            let body = |p: &mut Program<S>, i: &Val| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&r1, i, PF_DISTANCE);
                    p.prefetch_idx(&r2, i, PF_DISTANCE);
                    p.prefetch_idx(&ra, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let va = p.loadv_idx(&ra, i, 0);
                let v1 = p.loadv_idx(&r1, i, 0);
                let v2 = p.loadv_idx(&r2, i, 0);
                let al = p.vexpand_lo(&va);
                let ah = p.vexpand_hi(&va);
                let il = p.vsub16(&k255, &al);
                let ih = p.vsub16(&k255, &ah);
                let m1l = p.vmul8x16(&v1, &al);
                let m1h = p.vmul8x16_hi(&v1, &ah);
                let m2l = p.vmul8x16(&v2, &il);
                let m2h = p.vmul8x16_hi(&v2, &ih);
                let sl = p.vadd16(&m1l, &m2l);
                let sh = p.vadd16(&m1h, &m2h);
                p.vpack16_pair(&sl, &sh)
            };
            p.loop_range(0, last_chunk(n), 8, |p, i| {
                let out = body(p, i);
                p.storev_idx(&rd, i, 0, &out);
            });
            let i = p.li(last_chunk(n));
            let out = body(p, &i);
            let cur = p.add(&rd, &i);
            let end = p.addi(&rd, n - 1);
            let mask = p.vedge8(&cur, &end);
            p.partial_store(&cur, 0, &out, &mask);
        } else {
            p.loop_range(0, n, 1, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&r1, i, PF_DISTANCE);
                    p.prefetch_idx(&r2, i, PF_DISTANCE);
                    p.prefetch_idx(&ra, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let a = p.load_u8_idx(&ra, i, 0);
                let x = p.load_u8_idx(&r1, i, 0);
                let y = p.load_u8_idx(&r2, i, 0);
                let k = p.li(255);
                let inv = p.sub(&k, &a);
                let t1 = p.mul(&x, &a);
                let t2 = p.mul(&y, &inv);
                let t = p.add(&t1, &t2);
                // Exact round(t/255) = (t*257 + 32768) >> 16.
                let u = p.muli(&t, 257);
                let w = p.addi(&u, 32768);
                let out = p.shri(&w, 16);
                p.store_u8_idx(&rd, i, 0, &out);
            });
        }
        r1 = p.addi(&r1, src1.stride as i64);
        r2 = p.addi(&r2, src2.stride as i64);
        ra = p.addi(&ra, alpha.stride as i64);
        rd = p.addi(&rd, dst.stride as i64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_image::synth;
    use visim_cpu::CountingSink;

    fn run(bands: usize, v: Variant) -> (media_image::Image, visim_cpu::CpuStats) {
        let (w, h) = (40, 6);
        let s1 = synth::still(w, h, bands, 1);
        let s2 = synth::still(w, h, bands, 2);
        let al = synth::alpha(w, h, bands, 3);
        let mut sink = CountingSink::new();
        let out = {
            let mut p = Program::new(&mut sink);
            let i1 = SimImage::from_image(&mut p, &s1);
            let i2 = SimImage::from_image(&mut p, &s2);
            let ia = SimImage::from_image(&mut p, &al);
            let id = SimImage::alloc(&mut p, w, h, bands);
            blend(&mut p, &i1, &i2, &ia, &id, v);
            id.to_image(&p)
        };
        (out, sink.finish())
    }

    #[test]
    fn scalar_blend_matches_reference() {
        let (out, _) = run(3, Variant::SCALAR);
        let s1 = synth::still(40, 6, 3, 1);
        let s2 = synth::still(40, 6, 3, 2);
        let al = synth::alpha(40, 6, 3, 3);
        for i in 0..out.data().len() {
            let (a, x, y) = (
                al.data()[i] as u32,
                s1.data()[i] as u32,
                s2.data()[i] as u32,
            );
            let t = a * x + (255 - a) * y;
            let want = ((t * 257 + 32768) >> 16) as u8;
            assert_eq!(out.data()[i], want, "sample {i}");
        }
    }

    #[test]
    fn vis_blend_is_visually_identical() {
        let (s, cs) = run(3, Variant::SCALAR);
        let (v, cv) = run(3, Variant::VIS);
        // The paper's criterion (§2.3.2): losses must be imperceptible.
        assert!(s.mean_abs_diff(&v) < 2.0, "diff {}", s.mean_abs_diff(&v));
        assert!(s.psnr(&v) > 40.0, "psnr {}", s.psnr(&v));
        assert!(
            cv.retired * 4 < cs.retired,
            "VIS cuts blend instructions >4x: {} vs {}",
            cv.retired,
            cs.retired
        );
    }

    #[test]
    fn one_band_blend_works_too() {
        let (s, _) = run(1, Variant::SCALAR);
        let (v, _) = run(1, Variant::VIS);
        assert!(s.mean_abs_diff(&v) < 2.0);
    }

    #[test]
    fn extreme_alphas_select_sources() {
        let (w, h) = (16, 2);
        let s1 = synth::still(w, h, 1, 1);
        let s2 = synth::still(w, h, 1, 2);
        let mut a0 = media_image::Image::new(w, h, 1);
        let mut a255 = media_image::Image::new(w, h, 1);
        for v in a255.data_mut() {
            *v = 255;
        }
        for v in a0.data_mut() {
            *v = 0;
        }
        for (alpha_img, want) in [(&a255, &s1), (&a0, &s2)] {
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let i1 = SimImage::from_image(&mut p, &s1);
            let i2 = SimImage::from_image(&mut p, &s2);
            let ia = SimImage::from_image(&mut p, alpha_img);
            let id = SimImage::alloc(&mut p, w, h, 1);
            blend(&mut p, &i1, &i2, &ia, &id, Variant::SCALAR);
            assert_eq!(id.to_image(&p), (*want).clone());
        }
    }

    #[test]
    fn prefetch_emits_for_all_three_streams() {
        let (_, c) = run(3, Variant::VIS_PF);
        // 6 rows x (row_bytes=120 -> 2 line boundaries) x 3 streams.
        assert!(c.prefetches >= 18, "prefetches {}", c.prefetches);
    }
}
