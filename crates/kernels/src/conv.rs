//! Convolution kernels (paper Table 1): [`conv`], the general 3×3
//! saturating convolution, and [`convsep`], a separable 3×3 (1×3 then
//! 3×1) smoothing convolution.
//!
//! The scalar `conv` performs the saturation clamp with data-dependent
//! branches (the paper measures ~10% misprediction); the VIS variant
//! folds saturation into `fpack16` (0% — §3.2.2), extracts unaligned
//! pixel windows with `falignaddr`/`faligndata`, and multiplies with
//! `fmul8x16au`.

use visim_cpu::SimSink;
use visim_trace::{Cond, Program, Val};

use crate::simimg::SimImage;
use crate::{Variant, PF_DISTANCE};

/// A 3×3 integer kernel (row-major); e.g. [`SHARPEN`].
pub type Kernel3x3 = [i16; 9];

/// The classic sharpen kernel (sum = 1, has negative taps so the
/// saturation paths are exercised).
pub const SHARPEN: Kernel3x3 = [0, -1, 0, -1, 5, -1, 0, -1, 0];

/// A high-gain sharpen (sum = 1): amplifies texture ~4x, so the
/// saturation branches fire often and unpredictably — matching the
/// paper's ~10% conv misprediction rate on photographic inputs.
pub const SHARPEN_STRONG: Kernel3x3 = [0, -3, 0, -3, 13, -3, 0, -3, 0];

/// General 3×3 convolution with saturation. Boundary pixels are copied
/// through unchanged.
pub fn conv<S: SimSink>(
    p: &mut Program<S>,
    src: &SimImage,
    dst: &SimImage,
    kernel: &Kernel3x3,
    v: Variant,
) {
    assert_eq!(
        (src.width, src.height, src.bands),
        (dst.width, dst.height, dst.bands)
    );
    assert!(src.height >= 3 && src.row_bytes() >= 16, "image too small");
    let bands = src.bands as i64;
    let n = src.row_bytes() as i64;
    let h = src.height as i64;

    // Boundary rows/columns pass through.
    copy_row(p, src, dst, 0);
    copy_row(p, src, dst, src.height - 1);

    let coeffs: Option<Vec<Val>> = if v.vis {
        p.set_gsr_scale(7);
        // Q8 coefficients: (pixel * (w << 8)) >> 8 == pixel * w exactly.
        Some(kernel.iter().map(|&w| p.li((w as i64) << 8)).collect())
    } else {
        None
    };

    let mut rm = p.li(src.addr as i64); // row above
    let mut r0 = p.li(src.addr as i64 + src.stride as i64);
    let mut rp = p.li(src.addr as i64 + 2 * src.stride as i64);
    let mut rd = p.li(dst.addr as i64 + dst.stride as i64);
    let interior_end = n - bands; // first byte past the interior
    p.loop_range(1, h - 1, 1, |p, _| {
        // Left/right boundary bytes pass through (plus alignment slack
        // for the VIS variant, which processes 4-byte-aligned chunks).
        let (start, end) = if v.vis {
            let s = (bands + 3) & !3;
            (s, interior_end)
        } else {
            (bands, interior_end)
        };
        for b in 0..bands {
            let x = p.load_u8(&r0, b);
            p.store_u8(&rd, b, &x);
            let x = p.load_u8(&r0, interior_end + b);
            p.store_u8(&rd, interior_end + b, &x);
        }
        if let Some(coeffs) = &coeffs {
            // Scalar prologue for the unaligned head bytes.
            for b in bands..start {
                scalar_tap9(p, &[rm, r0, rp], &rd, b, kernel, bands);
            }
            // Main loop: 4 outputs per iteration; the final chunk is
            // re-anchored at end-4 (overlapping recompute).
            let rows = [rm, r0, rp];
            let body = |p: &mut Program<S>, i: &Val| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rp, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let mut acc: Option<visim_trace::VVal> = None;
                for (ky, row) in rows.iter().enumerate() {
                    let addr = p.add(row, i);
                    // Three aligned loads cover every shifted window.
                    let base = p.valignaddr(&addr, -bands);
                    let d0 = p.loadv(&base, 0);
                    let d1 = p.loadv(&base, 8);
                    let d2 = p.loadv(&base, 16);
                    for kx in 0..3i64 {
                        let off = (kx - 1) * bands;
                        let w = coeffs[ky * 3 + kx as usize];
                        let _ = p.valignaddr(&addr, off);
                        // Which chunk pair holds the window is known at
                        // "compile time" (register selection, no code).
                        let start_off = (addr.value() + off) - base.value();
                        let win = if start_off < 8 {
                            p.valigndata(&d0, &d1)
                        } else {
                            p.valigndata(&d1, &d2)
                        };
                        let prod = p.vmul8x16au(&win, &w);
                        acc = Some(match acc {
                            None => prod,
                            Some(a) => p.vadd16(&a, &prod),
                        });
                    }
                }
                p.vpack16(&acc.expect("nine taps"))
            };
            p.loop_range(start, end - 4, 4, |p, i| {
                let out = body(p, i);
                p.storev4_idx(&rd, i, 0, &out);
            });
            let i = p.li(end - 4);
            let out = body(p, &i);
            p.storev4_idx(&rd, &i, 0, &out);
        } else {
            let rows = [rm, r0, rp];
            p.loop_range(start, end, 1, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rp, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let mut acc = p.li(0);
                for (ky, row) in rows.iter().enumerate() {
                    for kx in 0..3i64 {
                        // A *general* convolution reads its kernel from
                        // memory; zero taps still cost work.
                        let w = kernel[ky * 3 + kx as usize];
                        let x = p.load_u8_idx(row, i, (kx - 1) * bands);
                        let t = p.muli(&x, w as i64);
                        acc = p.add(&acc, &t);
                    }
                }
                // Explicit saturation branches (hard to predict).
                let mut out = acc;
                if p.bcond_i(Cond::Lt, &out, 0, false) {
                    out = p.li(0);
                }
                if p.bcond_i(Cond::Gt, &out, 255, false) {
                    out = p.li(255);
                }
                p.store_u8_idx(&rd, i, 0, &out);
            });
        }
        rm = p.addi(&rm, src.stride as i64);
        r0 = p.addi(&r0, src.stride as i64);
        rp = p.addi(&rp, src.stride as i64);
        rd = p.addi(&rd, dst.stride as i64);
    });
}

/// Separable 3×3 smoothing: horizontal then vertical `[1, 2, 1] / 4`
/// passes through an intermediate image.
pub fn convsep<S: SimSink>(
    p: &mut Program<S>,
    src: &SimImage,
    tmp: &SimImage,
    dst: &SimImage,
    v: Variant,
) {
    assert_eq!(
        (src.width, src.height, src.bands),
        (tmp.width, tmp.height, tmp.bands)
    );
    assert_eq!(
        (src.width, src.height, src.bands),
        (dst.width, dst.height, dst.bands)
    );
    pass(p, src, tmp, src.bands as i64, false, v); // horizontal: ±bands
    pass(p, tmp, dst, src.stride as i64, true, v); // vertical: ±stride
}

/// One `[1,2,1]/4` pass with taps at byte distance `d`. Boundary bytes
/// (where a tap would leave the image) pass through.
fn pass<S: SimSink>(
    p: &mut Program<S>,
    src: &SimImage,
    dst: &SimImage,
    d: i64,
    vertical: bool,
    v: Variant,
) {
    let n = src.row_bytes() as i64;
    let h = src.height as i64;
    let coeff = if v.vis {
        p.set_gsr_scale(7);
        Some(p.li(64)) // 0.25 in Q8
    } else {
        None
    };
    let mut rs = p.li(src.addr as i64);
    let mut rd = p.li(dst.addr as i64);
    p.loop_range(0, h, 1, |p, y| {
        let (start, end) = if vertical {
            if y.value() == 0 || y.value() == h - 1 {
                (n, n) // whole row passes through
            } else {
                (0, n)
            }
        } else {
            (d, n - d)
        };
        // Pass-through bytes at the edges of the valid range.
        for b in 0..start {
            let x = p.load_u8(&rs, b);
            p.store_u8(&rd, b, &x);
        }
        for b in end..n {
            let x = p.load_u8(&rs, b);
            p.store_u8(&rd, b, &x);
        }
        if let Some(c) = &coeff {
            let vstart = (start + 7) & !7;
            for b in start..vstart.min(end) {
                let x = p.load_u8(&rs, b);
                p.store_u8(&rd, b, &x);
            }
            if vstart + 8 <= end {
                let body = |p: &mut Program<S>, i: &Val| {
                    if v.prefetch && i.value() % 64 == 0 {
                        p.prefetch_idx(&rs, i, PF_DISTANCE + d);
                        p.prefetch_idx(&rd, i, PF_DISTANCE);
                    }
                    let mut acc_l = None;
                    let mut acc_h = None;
                    for (tap, weight) in [(-d, 1i64), (0, 2), (d, 1)] {
                        let addr = p.add(&rs, i);
                        let base = p.valignaddr(&addr, tap);
                        let d0 = p.loadv(&base, 0);
                        let d1 = p.loadv(&base, 8);
                        let win = p.valigndata(&d0, &d1);
                        let mut pl = p.vmul8x16au(&win, c);
                        let mut ph = p.vmul8x16au_hi(&win, c);
                        if weight == 2 {
                            pl = p.vadd16(&pl, &pl);
                            ph = p.vadd16(&ph, &ph);
                        }
                        acc_l = Some(match acc_l {
                            None => pl,
                            Some(a) => p.vadd16(&a, &pl),
                        });
                        acc_h = Some(match acc_h {
                            None => ph,
                            Some(a) => p.vadd16(&a, &ph),
                        });
                    }
                    p.vpack16_pair(&acc_l.expect("taps"), &acc_h.expect("taps"))
                };
                let vend = vstart + (end - vstart) / 8 * 8;
                p.loop_range(vstart, vend, 8, |p, i| {
                    let out = body(p, i);
                    p.storev_idx(&rd, i, 0, &out);
                });
                for b in vend..end {
                    scalar_121(p, &rs, &rd, b, d);
                }
            } else {
                for b in vstart.min(end)..end {
                    scalar_121(p, &rs, &rd, b, d);
                }
            }
        } else {
            p.loop_range(start, end, 1, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE + d);
                }
                scalar_121_idx(p, &rs, &rd, i, d);
            });
        }
        rs = p.addi(&rs, src.stride as i64);
        rd = p.addi(&rd, dst.stride as i64);
    });
}

fn scalar_121<S: SimSink>(p: &mut Program<S>, rs: &Val, rd: &Val, b: i64, d: i64) {
    let a = p.load_u8(rs, b - d);
    let m = p.load_u8(rs, b);
    let c = p.load_u8(rs, b + d);
    let m2 = p.shli(&m, 1);
    let s = p.add(&a, &m2);
    let s = p.add(&s, &c);
    let s = p.addi(&s, 2);
    let out = p.shri(&s, 2);
    p.store_u8(rd, b, &out);
}

fn scalar_121_idx<S: SimSink>(p: &mut Program<S>, rs: &Val, rd: &Val, i: &Val, d: i64) {
    let a = p.load_u8_idx(rs, i, -d);
    let m = p.load_u8_idx(rs, i, 0);
    let c = p.load_u8_idx(rs, i, d);
    let m2 = p.shli(&m, 1);
    let s = p.add(&a, &m2);
    let s = p.add(&s, &c);
    let s = p.addi(&s, 2);
    let out = p.shri(&s, 2);
    p.store_u8_idx(rd, i, 0, &out);
}

/// One scalar 9-tap saturating convolution at byte offset `b` (used for
/// the VIS variant's unaligned head bytes).
fn scalar_tap9<S: SimSink>(
    p: &mut Program<S>,
    rows: &[Val; 3],
    rd: &Val,
    b: i64,
    kernel: &Kernel3x3,
    bands: i64,
) {
    let mut acc = p.li(0);
    for (ky, row) in rows.iter().enumerate() {
        for kx in 0..3i64 {
            let w = kernel[ky * 3 + kx as usize];
            let x = p.load_u8(row, b + (kx - 1) * bands);
            let t = p.muli(&x, w as i64);
            acc = p.add(&acc, &t);
        }
    }
    let mut out = acc;
    if p.bcond_i(Cond::Lt, &out, 0, false) {
        out = p.li(0);
    }
    if p.bcond_i(Cond::Gt, &out, 255, false) {
        out = p.li(255);
    }
    p.store_u8(rd, b, &out);
}

fn copy_row<S: SimSink>(p: &mut Program<S>, src: &SimImage, dst: &SimImage, y: usize) {
    let rs = p.li(src.row_addr(y) as i64);
    let rd = p.li(dst.row_addr(y) as i64);
    p.loop_range(0, src.row_bytes() as i64, 1, |p, i| {
        let x = p.load_u8_idx(&rs, i, 0);
        p.store_u8_idx(&rd, i, 0, &x);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_image::synth;
    use visim_cpu::CountingSink;

    fn run_conv(v: Variant) -> (media_image::Image, visim_cpu::CpuStats) {
        let (w, h) = (24, 8);
        let img = synth::still(w, h, 3, 21);
        let mut sink = CountingSink::new();
        let out = {
            let mut p = Program::new(&mut sink);
            let s = SimImage::from_image(&mut p, &img);
            let d = SimImage::alloc(&mut p, w, h, 3);
            conv(&mut p, &s, &d, &SHARPEN, v);
            d.to_image(&p)
        };
        (out, sink.finish())
    }

    fn host_conv(img: &media_image::Image, k: &Kernel3x3) -> media_image::Image {
        let (w, h, bands) = (img.width(), img.height(), img.bands());
        let mut out = img.clone();
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                for b in 0..bands {
                    let mut acc = 0i32;
                    for ky in 0..3 {
                        for kx in 0..3 {
                            acc +=
                                img.get(x + kx - 1, y + ky - 1, b) as i32 * k[ky * 3 + kx] as i32;
                        }
                    }
                    out.set(x, y, b, acc.clamp(0, 255) as u8);
                }
            }
        }
        out
    }

    #[test]
    fn scalar_conv_matches_host_reference() {
        let (out, cs) = run_conv(Variant::SCALAR);
        let want = host_conv(&synth::still(24, 8, 3, 21), &SHARPEN);
        assert_eq!(out, want);
        assert!(cs.mispredicts > 0, "saturation branches mispredict");
    }

    #[test]
    fn vis_conv_matches_scalar_and_removes_saturation_branches() {
        let (s, cs) = run_conv(Variant::SCALAR);
        let (v, cv) = run_conv(Variant::VIS);
        assert_eq!(s, v, "Q8 coefficients make VIS conv exact");
        assert!(cv.retired < cs.retired, "{} vs {}", cv.retired, cs.retired);
        // VIS folds saturation into fpack16: far fewer data-dependent
        // branches and fewer mispredictions overall.
        assert!(
            cv.cond_branches * 4 < cs.cond_branches,
            "saturation branches gone: {} vs {}",
            cv.cond_branches,
            cs.cond_branches
        );
        assert!(cv.mispredicts <= cs.mispredicts);
    }

    #[test]
    fn convsep_smooths_towards_reference() {
        let (w, h) = (32, 8);
        let img = synth::still(w, h, 3, 5);
        let run = |v: Variant| {
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let s = SimImage::from_image(&mut p, &img);
            let t = SimImage::alloc(&mut p, w, h, 3);
            let d = SimImage::alloc(&mut p, w, h, 3);
            convsep(&mut p, &s, &t, &d, v);
            d.to_image(&p)
        };
        let sc = run(Variant::SCALAR);
        let vi = run(Variant::VIS);
        // Interior should be the separable [1,2,1]/4 blur.
        let mid = |im: &media_image::Image| im.get(w / 2, h / 2, 1) as i32;
        let want = {
            let mut acc = 0i32;
            for (dy, wy) in [(-1i32, 1i32), (0, 2), (1, 1)] {
                let mut racc = 0i32;
                for (dx, wx) in [(-1i32, 1i32), (0, 2), (1, 1)] {
                    racc += wx
                        * img.get(
                            (w as i32 / 2 + dx) as usize,
                            (h as i32 / 2 + dy) as usize,
                            1,
                        ) as i32;
                }
                acc += wy * ((racc + 2) >> 2);
            }
            (acc + 2) >> 2
        };
        assert!((mid(&sc) - want).abs() <= 1, "{} vs {want}", mid(&sc));
        assert!(sc.mean_abs_diff(&vi) < 2.0, "VIS pass is imperceptibly off");
    }
}
