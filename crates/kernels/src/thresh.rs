//! Thresholding kernels (paper Table 1).
//!
//! * [`thresh`]: double-limit — if `lo[b] <= v <= hi[b]` the destination
//!   becomes `map[b]`, otherwise the source value passes through.
//! * [`thresh1`]: single-limit — if `v >= limit[b]` the destination
//!   becomes `map[b]`.
//!
//! The scalar variants use the data-dependent branches the paper calls
//! out (6% misprediction on thresh); the VIS variants replace them with
//! partitioned compares and partial stores (0%).

use visim_cpu::SimSink;
use visim_isa::vis;
use visim_trace::{Cond, Program, VVal, Val};

use crate::simimg::SimImage;
use crate::{last_chunk, Variant, PF_DISTANCE};

/// Per-band threshold parameters (up to 4 bands).
#[derive(Debug, Clone, Copy)]
pub struct ThreshParams {
    /// Inclusive lower limits per band.
    pub lo: [u8; 4],
    /// Inclusive upper limits per band.
    pub hi: [u8; 4],
    /// Replacement values per band.
    pub map: [u8; 4],
}

impl ThreshParams {
    /// A typical chroma-key-ish parameter set.
    pub fn example() -> Self {
        ThreshParams {
            lo: [60, 80, 100, 0],
            hi: [180, 200, 220, 255],
            map: [0, 255, 128, 0],
        }
    }
}

/// Byte-phase constant vectors for a `bands`-periodic parameter at a
/// chunk starting at byte offset `start` (values pre-shifted into the
/// fexpand `<<4` domain for the 16-bit compare lanes).
fn lane_vec16(params: &[u8; 4], bands: usize, start: i64, shift: u32) -> u64 {
    let mut lanes = [0i16; 4];
    for (k, lane) in lanes.iter_mut().enumerate() {
        let band = ((start as usize) + k) % bands;
        *lane = (params[band] as i16) << shift;
    }
    vis::pack16(lanes)
}

/// Byte constant vector for a `bands`-periodic parameter at byte phase
/// `start`.
fn lane_vec8(params: &[u8; 4], bands: usize, start: i64) -> u64 {
    let mut bytes = [0u8; 8];
    for (k, b) in bytes.iter_mut().enumerate() {
        *b = params[((start as usize) + k) % bands];
    }
    vis::pack8(bytes)
}

/// Double-limit threshold.
pub fn thresh<S: SimSink>(
    p: &mut Program<S>,
    src: &SimImage,
    dst: &SimImage,
    params: &ThreshParams,
    v: Variant,
) {
    assert_eq!(
        (src.width, src.height, src.bands),
        (dst.width, dst.height, dst.bands)
    );
    let bands = src.bands;
    let n = src.row_bytes() as i64;
    // Constant vectors per chunk phase (chunk start mod lcm(8, bands)).
    let phases = if bands.is_multiple_of(2) { 1 } else { bands };
    let vis_consts: Option<Vec<[VVal; 5]>> = if v.vis {
        Some(
            (0..phases)
                .map(|ph| {
                    let s = (ph * 8) as i64;
                    [
                        p.vli(lane_vec16(&params.lo, bands, s, 4)),
                        p.vli(lane_vec16(&params.hi, bands, s, 4)),
                        p.vli(lane_vec16(&params.lo, bands, s + 4, 4)),
                        p.vli(lane_vec16(&params.hi, bands, s + 4, 4)),
                        p.vli(lane_vec8(&params.map, bands, s)),
                    ]
                })
                .collect(),
        )
    } else {
        None
    };
    let mut rs = p.li(src.addr as i64);
    let mut rd = p.li(dst.addr as i64);
    p.loop_range(0, src.height as i64, 1, |p, _| {
        if let Some(consts) = &vis_consts {
            // Returns (source chunk, in-range byte mask, map vector).
            let body = |p: &mut Program<S>, i: &Val| -> (VVal, Val, VVal) {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let [lov_l, hiv_l, lov_h, hiv_h, mapv] = consts[(i.value() / 8) as usize % phases];
                let x = p.loadv_idx(&rs, i, 0);
                let xl = p.vexpand_lo(&x);
                let xh = p.vexpand_hi(&x);
                let ge_l = p.vcmple16(&lov_l, &xl);
                let le_l = p.vcmple16(&xl, &hiv_l);
                let in_l = p.and(&ge_l, &le_l);
                let ge_h = p.vcmple16(&lov_h, &xh);
                let le_h = p.vcmple16(&xh, &hiv_h);
                let in_h = p.and(&ge_h, &le_h);
                let hi4 = p.shli(&in_h, 4);
                let mask = p.or(&in_l, &hi4);
                (x, mask, mapv)
            };
            p.loop_range(0, last_chunk(n), 8, |p, i| {
                let (x, mask, mapv) = body(p, i);
                p.storev_idx(&rd, i, 0, &x);
                let cur = p.add(&rd, i);
                p.partial_store(&cur, 0, &mapv, &mask);
            });
            let i = p.li(last_chunk(n));
            let (x, mask, mapv) = body(p, &i);
            let cur = p.add(&rd, &i);
            let end = p.addi(&rd, n - 1);
            let edge = p.vedge8(&cur, &end);
            p.partial_store(&cur, 0, &x, &edge);
            let both = p.and(&mask, &edge);
            p.partial_store(&cur, 0, &mapv, &both);
        } else {
            p.loop_range(0, n, 1, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let band = (i.value() as usize) % bands;
                let x = p.load_u8_idx(&rs, i, 0);
                let mut out = x;
                // Data-dependent double test (hard to predict).
                if p.bcond_i(Cond::Ge, &x, params.lo[band] as i64, false)
                    && p.bcond_i(Cond::Le, &x, params.hi[band] as i64, false)
                {
                    out = p.li(params.map[band] as i64);
                }
                p.store_u8_idx(&rd, i, 0, &out);
            });
        }
        rs = p.addi(&rs, src.stride as i64);
        rd = p.addi(&rd, dst.stride as i64);
    });
}

/// Single-limit threshold: `dst = v >= limit[b] ? map[b] : v`.
pub fn thresh1<S: SimSink>(
    p: &mut Program<S>,
    src: &SimImage,
    dst: &SimImage,
    limit: &[u8; 4],
    map: &[u8; 4],
    v: Variant,
) {
    assert_eq!(
        (src.width, src.height, src.bands),
        (dst.width, dst.height, dst.bands)
    );
    let bands = src.bands;
    let n = src.row_bytes() as i64;
    let phases = if bands.is_multiple_of(2) { 1 } else { bands };
    let vis_consts: Option<Vec<[VVal; 3]>> = if v.vis {
        Some(
            (0..phases)
                .map(|ph| {
                    let s = (ph * 8) as i64;
                    [
                        p.vli(lane_vec16(limit, bands, s, 4)),
                        p.vli(lane_vec16(limit, bands, s + 4, 4)),
                        p.vli(lane_vec8(map, bands, s)),
                    ]
                })
                .collect(),
        )
    } else {
        None
    };
    let mut rs = p.li(src.addr as i64);
    let mut rd = p.li(dst.addr as i64);
    p.loop_range(0, src.height as i64, 1, |p, _| {
        if let Some(consts) = &vis_consts {
            p.loop_range(0, last_chunk(n), 8, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let [limv_l, limv_h, mapv] = consts[(i.value() / 8) as usize % phases];
                let x = p.loadv_idx(&rs, i, 0);
                let xl = p.vexpand_lo(&x);
                let xh = p.vexpand_hi(&x);
                let ge_l = p.vcmple16(&limv_l, &xl);
                let ge_h = p.vcmple16(&limv_h, &xh);
                let hi4 = p.shli(&ge_h, 4);
                let mask = p.or(&ge_l, &hi4);
                p.storev_idx(&rd, i, 0, &x);
                let cur = p.add(&rd, i);
                p.partial_store(&cur, 0, &mapv, &mask);
            });
            // Epilogue with edge mask.
            let i = p.li(last_chunk(n));
            let [limv_l, limv_h, mapv] = consts[(i.value() / 8) as usize % phases];
            let x = p.loadv_idx(&rs, &i, 0);
            let xl = p.vexpand_lo(&x);
            let xh = p.vexpand_hi(&x);
            let ge_l = p.vcmple16(&limv_l, &xl);
            let ge_h = p.vcmple16(&limv_h, &xh);
            let hi4 = p.shli(&ge_h, 4);
            let mask = p.or(&ge_l, &hi4);
            let cur = p.add(&rd, &i);
            let end = p.addi(&rd, n - 1);
            let edge = p.vedge8(&cur, &end);
            p.partial_store(&cur, 0, &x, &edge);
            let both = p.and(&mask, &edge);
            p.partial_store(&cur, 0, &mapv, &both);
        } else {
            p.loop_range(0, n, 1, |p, i| {
                if v.prefetch && i.value() % 64 == 0 {
                    p.prefetch_idx(&rs, i, PF_DISTANCE);
                    p.prefetch_idx(&rd, i, PF_DISTANCE);
                }
                let band = (i.value() as usize) % bands;
                let x = p.load_u8_idx(&rs, i, 0);
                let mut out = x;
                if p.bcond_i(Cond::Ge, &x, limit[band] as i64, false) {
                    out = p.li(map[band] as i64);
                }
                p.store_u8_idx(&rd, i, 0, &out);
            });
        }
        rs = p.addi(&rs, src.stride as i64);
        rd = p.addi(&rd, dst.stride as i64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use media_image::synth;
    use visim_cpu::CountingSink;

    fn run_thresh(bands: usize, v: Variant) -> (media_image::Image, visim_cpu::CpuStats) {
        let (w, h) = (40, 6);
        let img = synth::still(w, h, bands, 11);
        let mut sink = CountingSink::new();
        let out = {
            let mut p = Program::new(&mut sink);
            let s = SimImage::from_image(&mut p, &img);
            let d = SimImage::alloc(&mut p, w, h, bands);
            thresh(&mut p, &s, &d, &ThreshParams::example(), v);
            d.to_image(&p)
        };
        (out, sink.finish())
    }

    #[test]
    fn scalar_thresh_matches_reference() {
        let (out, _) = run_thresh(3, Variant::SCALAR);
        let img = synth::still(40, 6, 3, 11);
        let pr = ThreshParams::example();
        for i in 0..out.data().len() {
            let b = i % 3;
            let x = img.data()[i];
            let want = if x >= pr.lo[b] && x <= pr.hi[b] {
                pr.map[b]
            } else {
                x
            };
            assert_eq!(out.data()[i], want, "sample {i}");
        }
    }

    #[test]
    fn vis_thresh_is_exact_and_branch_free() {
        let (s, cs) = run_thresh(3, Variant::SCALAR);
        let (v, cv) = run_thresh(3, Variant::VIS);
        assert_eq!(s, v, "partitioned compares are exact");
        assert!(cv.retired * 3 < cs.retired);
        // The paper: thresh mispredicts drop from ~6% to ~0%.
        assert!(cs.mispredicts > 0);
        assert!(
            (cv.mispredicts as f64) < 0.1 * cs.mispredicts as f64,
            "VIS removes data-dependent branches: {} vs {}",
            cv.mispredicts,
            cs.mispredicts
        );
    }

    #[test]
    fn one_band_thresh() {
        let (s, _) = run_thresh(1, Variant::SCALAR);
        let (v, _) = run_thresh(1, Variant::VIS);
        assert_eq!(s, v);
    }

    #[test]
    fn thresh1_matches_reference_both_variants() {
        let (w, h) = (32, 5);
        let img = synth::still(w, h, 3, 13);
        let limit = [100u8, 120, 140, 0];
        let map = [250u8, 1, 128, 0];
        let run = |v: Variant| {
            let mut sink = CountingSink::new();
            let mut p = Program::new(&mut sink);
            let s = SimImage::from_image(&mut p, &img);
            let d = SimImage::alloc(&mut p, w, h, 3);
            thresh1(&mut p, &s, &d, &limit, &map, v);
            d.to_image(&p)
        };
        let sc = run(Variant::SCALAR);
        let vi = run(Variant::VIS);
        for i in 0..sc.data().len() {
            let b = i % 3;
            let x = img.data()[i];
            let want = if x >= limit[b] { map[b] } else { x };
            assert_eq!(sc.data()[i], want, "scalar sample {i}");
        }
        assert_eq!(sc, vi);
    }
}
