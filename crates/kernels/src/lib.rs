//! The Sun VSDK-style image-processing kernels of the paper (Table 1).
//!
//! The paper studies the 14 kernels of the VIS Software Development Kit
//! and reports six representative ones: *addition, blend, conv, dotprod,
//! scaling, thresh*. This crate implements that kernel family — each in
//! a **scalar** variant (plain RISC code with explicit saturation /
//! threshold branches), a **VIS** variant (packed arithmetic,
//! pack/expand/align rearrangement, partitioned compares, edge-masked
//! partial stores, `pdist`), and optionally with Mowry-style **software
//! prefetching** (§2.3.3) — all emitted through [`visim_trace::Program`]
//! so the same code both computes the output image and drives the
//! timing simulator.
//!
//! Kernels where VIS is inapplicable (table lookup, histogram — the
//! scatter/gather cases called out in §3.2.3) fall back to the scalar
//! loop in their VIS variant, as real VIS code must.

pub mod blend;
pub mod conv;
pub mod pointwise;
pub mod reduce;
pub mod simimg;
pub mod thresh;

pub use simimg::SimImage;

/// Kernel variant selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Variant {
    /// Use the VIS media-ISA code path.
    pub vis: bool,
    /// Insert software prefetches (Mowry-style, §2.3.3).
    pub prefetch: bool,
}

impl Variant {
    /// Plain scalar code.
    pub const SCALAR: Variant = Variant {
        vis: false,
        prefetch: false,
    };
    /// VIS-enhanced code.
    pub const VIS: Variant = Variant {
        vis: true,
        prefetch: false,
    };
    /// VIS with software prefetching (the paper's Figure 3 "+PF").
    pub const VIS_PF: Variant = Variant {
        vis: true,
        prefetch: true,
    };
    /// Scalar with software prefetching.
    pub const SCALAR_PF: Variant = Variant {
        vis: false,
        prefetch: true,
    };
}

/// Byte offset of the (edge-masked) final 8-byte chunk of an `n`-byte
/// row — the epilogue position shared by the VIS kernels.
pub(crate) fn last_chunk(n: i64) -> i64 {
    (n - 1) & !7
}

/// Software-prefetch look-ahead distance in bytes (eight cache lines).
///
/// Mowry's algorithm picks the distance to cover the miss latency: the
/// VIS kernels consume a 64-byte line in roughly 15-50 cycles, so eight
/// lines ahead covers the 122-cycle DRAM latency with slack.
pub const PF_DISTANCE: i64 = 512;

/// Identifiers for all fourteen kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// Mean of two images (reported).
    Addition,
    /// Three-band alpha blend (reported).
    Blend,
    /// One-band alpha blend.
    Blend1,
    /// General 3×3 saturating convolution (reported).
    Conv,
    /// Separable 3×3 convolution.
    ConvSep,
    /// Image copy.
    Copy,
    /// 16×16-bit dot product over a linear array (reported).
    Dotprod,
    /// Pixel inversion.
    Invert,
    /// Table lookup (VIS-inapplicable).
    Lookup,
    /// 256-bin histogram (VIS-inapplicable).
    Histogram,
    /// Sum of absolute differences between two images (`pdist`).
    Sad,
    /// Linear intensity scaling with saturation (reported).
    Scaling,
    /// Double-limit threshold (reported).
    Thresh,
    /// Single-limit threshold.
    Thresh1,
}

impl KernelId {
    /// All fourteen kernels.
    pub fn all() -> &'static [KernelId] {
        use KernelId::*;
        &[
            Addition, Blend, Blend1, Conv, ConvSep, Copy, Dotprod, Invert, Lookup, Histogram, Sad,
            Scaling, Thresh, Thresh1,
        ]
    }

    /// The six kernels the paper reports in its figures.
    pub fn reported() -> &'static [KernelId] {
        use KernelId::*;
        &[Addition, Blend, Conv, Dotprod, Scaling, Thresh]
    }

    /// Lower-case name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        use KernelId::*;
        match self {
            Addition => "addition",
            Blend => "blend",
            Blend1 => "blend1",
            Conv => "conv",
            ConvSep => "convsep",
            Copy => "copy",
            Dotprod => "dotprod",
            Invert => "invert",
            Lookup => "lookup",
            Histogram => "histogram",
            Sad => "sad",
            Scaling => "scaling",
            Thresh => "thresh",
            Thresh1 => "thresh1",
        }
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_inventory_matches_the_paper() {
        assert_eq!(KernelId::all().len(), 14, "the VSDK has 14 kernels");
        assert_eq!(KernelId::reported().len(), 6);
        for k in KernelId::reported() {
            assert!(KernelId::all().contains(k));
        }
    }

    #[test]
    fn variant_constants() {
        let cases = [
            (Variant::SCALAR, false, false),
            (Variant::VIS, true, false),
            (Variant::VIS_PF, true, true),
            (Variant::SCALAR_PF, false, true),
        ];
        for (v, vis, prefetch) in cases {
            assert_eq!(v.vis, vis, "{v:?}");
            assert_eq!(v.prefetch, prefetch, "{v:?}");
        }
    }
}
