//! Graceful-degradation tests: one failing benchmark must not take the
//! rest of a figure down with it.
//!
//! These tests set the `VISIM_FAIL_BENCH` fault-injection variable, so
//! they live in their own integration-test binary (their own process)
//! where no unrelated test can race with the environment.

use media_kernels::Variant;
use visim::bench::{Bench, WorkloadSize};
use visim::config::Arch;
use visim::experiment::{try_fig2, try_run_timed, FAIL_BENCH_ENV};
use visim_util::SimError;

fn tiny() -> WorkloadSize {
    let mut s = WorkloadSize::tiny();
    s.image_w = 32;
    s.image_h = 32;
    s.dotprod_n = 512;
    s
}

#[test]
fn injected_fault_degrades_one_benchmark_not_the_figure() {
    std::env::set_var(FAIL_BENCH_ENV, "blend");
    let outcomes = try_fig2(&tiny());
    std::env::remove_var(FAIL_BENCH_ENV);

    assert_eq!(outcomes.len(), 12, "every benchmark reports an outcome");
    for (bench, row) in &outcomes {
        if *bench == Bench::Blend {
            match row {
                Err(SimError::Workload { bench, detail }) => {
                    assert_eq!(bench, "blend");
                    assert!(detail.contains(FAIL_BENCH_ENV), "{detail}");
                }
                other => panic!("expected injected Workload error, got {other:?}"),
            }
        } else {
            let row = row.as_ref().unwrap_or_else(|e| panic!("{bench}: {e}"));
            assert!(row.base.retired > 500, "{bench} still produced counts");
        }
    }
}

#[test]
fn injection_also_covers_the_timed_path() {
    std::env::set_var(FAIL_BENCH_ENV, "addition");
    let r = try_run_timed(Bench::Addition, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
    let ok = try_run_timed(Bench::Thresh, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
    std::env::remove_var(FAIL_BENCH_ENV);

    assert!(matches!(r, Err(SimError::Workload { .. })), "{r:?}");
    let ok = ok.expect("uninjected benchmark unaffected");
    assert!(ok.cycles() > 0);
}
