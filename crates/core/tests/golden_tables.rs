//! Golden-snapshot test: the descriptive tables are pure configuration
//! rendering, so their text must match the committed
//! `results/tables.txt` byte-for-byte. A diff here means either an
//! intentional parameter/format change (regenerate the file with
//! `cargo run --release -p visim-bench --bin tables > results/tables.txt`)
//! or an accidental drift in a default — both worth a human look.

use std::fs;
use std::path::Path;

#[test]
fn tables_text_matches_committed_snapshot() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/tables.txt");
    let golden =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let current = visim::report::tables_text();
    if current != golden {
        // Locate the first differing line for a readable failure.
        let mut gl = golden.lines();
        for (n, cur) in current.lines().enumerate() {
            let gold = gl.next().unwrap_or("<missing line>");
            assert_eq!(
                cur,
                gold,
                "tables output drifted from results/tables.txt at line {} — \
                 if intentional, regenerate the snapshot",
                n + 1
            );
        }
        panic!("tables output drifted from results/tables.txt (length mismatch)");
    }
}
