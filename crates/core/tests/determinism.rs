//! Determinism regression: the whole stack — synthetic inputs, codec
//! emission, and the timing model — must be bit-reproducible, or the
//! committed `results/` files stop being regenerable.

use visim::bench::{Bench, WorkloadSize};
use visim::experiment::try_fig1_bench;
use visim::report;

fn tiny() -> WorkloadSize {
    let mut s = WorkloadSize::tiny();
    s.image_w = 32;
    s.image_h = 32;
    s.dotprod_n = 512;
    s
}

#[test]
fn fig1_is_byte_identical_across_runs() {
    // One kernel and one codec cover both emission paths without
    // running the full 12-benchmark figure twice.
    for bench in [Bench::Addition, Bench::CjpegNp] {
        let a = try_fig1_bench(bench, &tiny()).expect("first run");
        let b = try_fig1_bench(bench, &tiny()).expect("second run");
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arch, y.arch);
            assert_eq!(x.vis, y.vis);
            assert_eq!(
                x.summary.cycles(),
                y.summary.cycles(),
                "{bench:?} {:?} vis={} cycle count drifted",
                x.arch,
                x.vis
            );
            assert_eq!(x.summary.cpu.retired, y.summary.cpu.retired);
        }
        // The rendered rows (everything the figure file contains) match
        // byte for byte.
        assert_eq!(report::fig1_rows(&a), report::fig1_rows(&b));
    }
}
