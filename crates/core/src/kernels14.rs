//! The appendix 14-kernel VSDK sweep as a library: the kernel driver
//! and the store-aware per-kernel cell runner.
//!
//! The paper studies all 14 VSDK kernels but reports six for space
//! (§2.1.1); this module drives the whole family — including the
//! VIS-inapplicable scatter/gather kernels — so both the `kernels14`
//! figure binary and the `visim-serve` daemon execute the identical
//! cells through [`try_kernel_cell`].

use media_image::synth;
use media_kernels::{blend, conv, pointwise, reduce, simimg::SimImage, thresh, KernelId, Variant};
use visim_cpu::{CountingSink, CpuConfig, CpuStats, Pipeline, SimSink, Summary};
use visim_mem::MemConfig;
use visim_trace::Program;
use visim_util::SimError;

use crate::bench::WorkloadSize;
use crate::experiment;

/// Emit one kernel's instruction stream into `p` over synthetic
/// `w`×`h` inputs.
pub fn drive<S: SimSink>(p: &mut Program<S>, k: KernelId, w: usize, h: usize, v: Variant) {
    let img = synth::still(w, h, 3, 1);
    let img2 = synth::still(w, h, 3, 2);
    let al = synth::alpha(w, h, 3, 3);
    let img1b = synth::still(w, h, 1, 4);
    let img1b2 = synth::still(w, h, 1, 5);
    let al1b = synth::alpha(w, h, 1, 6);
    match k {
        KernelId::Addition => {
            let a = SimImage::from_image(p, &img);
            let b = SimImage::from_image(p, &img2);
            let d = SimImage::alloc(p, w, h, 3);
            pointwise::addition(p, &a, &b, &d, v);
        }
        KernelId::Blend => {
            let a = SimImage::from_image(p, &img);
            let b = SimImage::from_image(p, &img2);
            let m = SimImage::from_image(p, &al);
            let d = SimImage::alloc(p, w, h, 3);
            blend::blend(p, &a, &b, &m, &d, v);
        }
        KernelId::Blend1 => {
            let a = SimImage::from_image(p, &img1b);
            let b = SimImage::from_image(p, &img1b2);
            let m = SimImage::from_image(p, &al1b);
            let d = SimImage::alloc(p, w, h, 1);
            blend::blend(p, &a, &b, &m, &d, v);
        }
        KernelId::Conv => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            conv::conv(p, &a, &d, &conv::SHARPEN_STRONG, v);
        }
        KernelId::ConvSep => {
            let a = SimImage::from_image(p, &img);
            let t = SimImage::alloc(p, w, h, 3);
            let d = SimImage::alloc(p, w, h, 3);
            conv::convsep(p, &a, &t, &d, v);
        }
        KernelId::Copy => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            pointwise::copy(p, &a, &d, v);
        }
        KernelId::Dotprod => {
            let n = w * h;
            let a = reduce::alloc_i16_array(p, n, 1);
            let b = reduce::alloc_i16_array(p, n, 2);
            let _ = reduce::dotprod(p, a, b, n, v);
        }
        KernelId::Invert => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            pointwise::invert(p, &a, &d, v);
        }
        KernelId::Lookup => {
            let a = SimImage::from_image(p, &img1b);
            let d = SimImage::alloc(p, w, h, 1);
            let mut table = [0u8; 256];
            for (i, t) in table.iter_mut().enumerate() {
                *t = (i as u8).wrapping_mul(31);
            }
            pointwise::lookup(p, &a, &d, &table, v);
        }
        KernelId::Histogram => {
            let a = SimImage::from_image(p, &img1b);
            let _ = pointwise::histogram(p, &a, v);
        }
        KernelId::Sad => {
            let a = SimImage::from_image(p, &img1b);
            let b = SimImage::from_image(p, &img1b2);
            let _ = reduce::sad(p, &a, &b, v);
        }
        KernelId::Scaling => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            pointwise::scaling(p, &a, &d, 307, -12, v);
        }
        KernelId::Thresh => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            thresh::thresh(p, &a, &d, &thresh::ThreshParams::example(), v);
        }
        KernelId::Thresh1 => {
            let a = SimImage::from_image(p, &img);
            let d = SimImage::alloc(p, w, h, 3);
            thresh::thresh1(p, &a, &d, &[100, 120, 140, 0], &[250, 1, 128, 0], v);
        }
    }
}

/// One detailed-timing run of `k` on the 4-way out-of-order baseline.
pub fn timed(k: KernelId, w: usize, h: usize, v: Variant) -> Summary {
    let mut pipe = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
    {
        let mut p = Program::new(&mut pipe);
        drive(&mut p, k, w, h, v);
    }
    pipe.finish()
}

/// The four runs behind one `kernels14` table row.
#[derive(Debug, Clone)]
pub struct KernelCell {
    /// Scalar-variant instruction counts.
    pub base: CpuStats,
    /// VIS-variant instruction counts.
    pub vis: CpuStats,
    /// Scalar-variant detailed timing (4-way ooo).
    pub timed_base: Summary,
    /// VIS-variant detailed timing (4-way ooo).
    pub timed_vis: Summary,
    /// Whether every one of the four runs was served from the result
    /// store (the cell's hit flag for serve accounting).
    pub from_store: bool,
}

/// Run one kernel's full cell — two counted and two timed runs —
/// through the store-aware custom-cell runners, so the appendix gets
/// the same crash-safe resume, retry, and fault-injection coverage as
/// the registry-driven figures.
pub fn try_kernel_cell(k: KernelId, size: &WorkloadSize) -> Result<KernelCell, SimError> {
    let (w, h) = (size.image_w, size.image_h);
    let counted_run = |v: Variant, vname: &str| {
        experiment::try_custom_counted_with_origin(
            &format!("k14.{}.{vname}", k.name()),
            size,
            || {
                let mut sink = CountingSink::new();
                {
                    let mut p = Program::new(&mut sink);
                    drive(&mut p, k, w, h, v);
                }
                Ok(sink.finish())
            },
        )
    };
    let (base, base_hit) = counted_run(Variant::SCALAR, "base")?;
    let (vis, vis_hit) = counted_run(Variant::VIS, "vis")?;
    let cpu = CpuConfig::ooo_4way();
    let mem = MemConfig::default();
    let timed_run = |v: Variant, vname: &str| {
        experiment::try_custom_timed(
            &format!("k14.{}.{vname}", k.name()),
            &cpu,
            &mem,
            size,
            || Ok(timed(k, w, h, v)),
        )
    };
    let timed_base = timed_run(Variant::SCALAR, "base")?;
    let timed_vis = timed_run(Variant::VIS, "vis")?;
    let from_store = base_hit
        && vis_hit
        && timed_base.metrics.counter("cell.store_hit") == 1
        && timed_vis.metrics.counter("cell.store_hit") == 1;
    Ok(KernelCell {
        base,
        vis,
        timed_base,
        timed_vis,
        from_store,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_cell_runs_all_four_variants() {
        let mut size = WorkloadSize::tiny();
        size.image_w = 16;
        size.image_h = 16;
        let cell = try_kernel_cell(KernelId::Addition, &size).expect("cell runs");
        assert!(cell.base.retired > 0);
        assert!(
            cell.vis.retired < cell.base.retired,
            "VIS reduces instruction count on addition"
        );
        assert!(cell.timed_base.cycles() > cell.timed_vis.cycles());
        // The store is disabled in unit tests (no default dir), so
        // nothing can have been served from it.
        assert!(!cell.from_store);
    }
}
