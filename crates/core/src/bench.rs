//! The 12-benchmark registry (paper Table 1) and workload drivers.

use media_image::synth;
use media_jpeg as jpeg;
use media_kernels::{blend, conv, pointwise, reduce, thresh, SimImage, Variant};
use media_mpeg as mpeg;
use visim_cpu::{CountingSink, SimSink};
use visim_trace::Program;

/// Input-size configuration for the whole suite.
///
/// The paper runs 1024×640 images and the 352×240 `mei16v2` stream;
/// those geometries make detailed simulation impractically slow (the
/// paper itself skipped full-screen sizes for the same reason), so the
/// study defaults scale everything down while preserving aspect ratios
/// and structure. EXPERIMENTS.md discusses how cache-sweep results shift
/// with the working-set scale.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSize {
    /// Still-image width (multiple of 16).
    pub image_w: usize,
    /// Still-image height (multiple of 16).
    pub image_h: usize,
    /// Dot-product element count.
    pub dotprod_n: usize,
    /// Video width (multiple of 16).
    pub video_w: usize,
    /// Video height (multiple of 16).
    pub video_h: usize,
    /// Video frame count (the paper encodes 4: I-B-B-P).
    pub frames: usize,
    /// JPEG quality.
    pub jpeg_quality: u32,
    /// MPEG encoder parameters.
    pub mpeg: mpeg::MpegParams,
    /// Deterministic input seed.
    pub seed: u64,
}

impl WorkloadSize {
    /// Miniature inputs for unit/integration tests.
    pub fn tiny() -> Self {
        WorkloadSize {
            image_w: 64,
            image_h: 48,
            dotprod_n: 4096,
            video_w: 48,
            video_h: 32,
            frames: 4,
            jpeg_quality: 80,
            mpeg: mpeg::MpegParams {
                search_range: 3,
                ..Default::default()
            },
            seed: 7,
        }
    }

    /// The study defaults used by the figure/table binaries: same 8:5
    /// aspect as the paper's 1024×640 inputs at 1/4 linear scale.
    pub fn study() -> Self {
        WorkloadSize {
            image_w: 256,
            image_h: 160,
            dotprod_n: 262_144,
            video_w: 96,
            video_h: 64,
            frames: 4,
            jpeg_quality: 80,
            mpeg: mpeg::MpegParams::default(),
            seed: 7,
        }
    }

    /// The paper's full geometry (slow; provided for completeness).
    pub fn paper() -> Self {
        WorkloadSize {
            image_w: 1024,
            image_h: 640,
            dotprod_n: 1_048_576,
            video_w: 352,
            video_h: 240,
            frames: 4,
            jpeg_quality: 80,
            mpeg: mpeg::MpegParams::default(),
            seed: 7,
        }
    }
}

/// The paper's 12 benchmarks (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// Image addition (mean of two images).
    Addition,
    /// Three-band alpha blend.
    Blend,
    /// General 3×3 convolution.
    Conv,
    /// 16×16-bit dot product.
    Dotprod,
    /// Linear intensity scaling.
    Scaling,
    /// Double-limit thresholding.
    Thresh,
    /// JPEG progressive encoding.
    Cjpeg,
    /// JPEG progressive decoding.
    Djpeg,
    /// JPEG baseline encoding.
    CjpegNp,
    /// JPEG baseline decoding.
    DjpegNp,
    /// MPEG-2 encoding (I-B-B-P).
    MpegEnc,
    /// MPEG-2 decoding.
    MpegDec,
}

impl Bench {
    /// All 12 benchmarks in the paper's figure order.
    pub fn all() -> [Bench; 12] {
        use Bench::*;
        [
            Addition, Blend, Conv, Dotprod, Scaling, Thresh, Cjpeg, Djpeg, CjpegNp, DjpegNp,
            MpegEnc, MpegDec,
        ]
    }

    /// The image-processing kernels.
    pub fn kernels() -> [Bench; 6] {
        use Bench::*;
        [Addition, Blend, Conv, Dotprod, Scaling, Thresh]
    }

    /// The Figure 3 set (benchmarks with non-trivial memory stall).
    pub fn prefetch_set() -> [Bench; 9] {
        use Bench::*;
        [
            Addition, Blend, Conv, Dotprod, Scaling, Thresh, Cjpeg, Djpeg, MpegDec,
        ]
    }

    /// Figure label.
    pub fn name(self) -> &'static str {
        use Bench::*;
        match self {
            Addition => "addition",
            Blend => "blend",
            Conv => "conv",
            Dotprod => "dotprod",
            Scaling => "scaling",
            Thresh => "thresh",
            Cjpeg => "cjpeg",
            Djpeg => "djpeg",
            CjpegNp => "cjpeg-np",
            DjpegNp => "djpeg-np",
            MpegEnc => "mpeg-enc",
            MpegDec => "mpeg-dec",
        }
    }

    /// Table 1 description.
    pub fn description(self) -> &'static str {
        use Bench::*;
        match self {
            Addition => "addition of two images using the mean of pixel values",
            Blend => "alpha blending of two images with an alpha image",
            Conv => "general 3x3 saturating image convolution",
            Dotprod => "16x16-bit dot product of a linear array",
            Scaling => "linear intensity scaling with saturation",
            Thresh => "double-limit thresholding of an image",
            Cjpeg => "JPEG progressive encoding",
            Djpeg => "JPEG progressive decoding",
            CjpegNp => "JPEG non-progressive (baseline) encoding",
            DjpegNp => "JPEG non-progressive (baseline) decoding",
            MpegEnc => "MPEG-2 encoding of 4 frames (I-B-B-P)",
            MpegDec => "MPEG-2 decoding into YUV components",
        }
    }

    /// Drive this benchmark through `sink` at the given size/variant.
    ///
    /// For the decode benchmarks the input stream is produced by an
    /// *untimed* helper run (the paper likewise excludes input file I/O)
    /// and copied into the measured program's address space.
    pub fn run<S: SimSink>(self, sink: &mut S, size: &WorkloadSize, variant: Variant) {
        let mut p = Program::new(sink);
        self.run_in(&mut p, size, variant);
    }

    /// Like [`Bench::run`] but into an existing program.
    pub fn run_in<S: SimSink>(self, p: &mut Program<S>, size: &WorkloadSize, variant: Variant) {
        let (w, h) = (size.image_w, size.image_h);
        match self {
            Bench::Addition => {
                let a = SimImage::from_image(p, &synth::still(w, h, 3, size.seed));
                let b = SimImage::from_image(p, &synth::still(w, h, 3, size.seed + 1));
                let d = SimImage::alloc(p, w, h, 3);
                pointwise::addition(p, &a, &b, &d, variant);
            }
            Bench::Blend => {
                let a = SimImage::from_image(p, &synth::still(w, h, 3, size.seed));
                let b = SimImage::from_image(p, &synth::still(w, h, 3, size.seed + 1));
                let al = SimImage::from_image(p, &synth::alpha(w, h, 3, size.seed + 2));
                let d = SimImage::alloc(p, w, h, 3);
                blend::blend(p, &a, &b, &al, &d, variant);
            }
            Bench::Conv => {
                let a = SimImage::from_image(p, &synth::still(w, h, 3, size.seed));
                let d = SimImage::alloc(p, w, h, 3);
                conv::conv(p, &a, &d, &conv::SHARPEN_STRONG, variant);
            }
            Bench::Dotprod => {
                let a = reduce::alloc_i16_array(p, size.dotprod_n, size.seed);
                let b = reduce::alloc_i16_array(p, size.dotprod_n, size.seed + 1);
                let _ = reduce::dotprod(p, a, b, size.dotprod_n, variant);
            }
            Bench::Scaling => {
                let a = SimImage::from_image(p, &synth::still(w, h, 3, size.seed));
                let d = SimImage::alloc(p, w, h, 3);
                pointwise::scaling(p, &a, &d, 307, -12, variant);
            }
            Bench::Thresh => {
                let a = SimImage::from_image(p, &synth::still(w, h, 3, size.seed));
                let d = SimImage::alloc(p, w, h, 3);
                thresh::thresh(p, &a, &d, &thresh::ThreshParams::example(), variant);
            }
            Bench::Cjpeg | Bench::CjpegNp => {
                let img = synth::still(w, h, 3, size.seed);
                let params = jpeg::EncodeParams {
                    quality: size.jpeg_quality,
                    progressive: self == Bench::Cjpeg,
                };
                let _ = jpeg::encode(p, &img, params, variant);
            }
            Bench::Djpeg | Bench::DjpegNp => {
                // Untimed encode, then copy the bytes into the measured
                // program (standing in for the benchmark's input file).
                let progressive = self == Bench::Djpeg;
                let (bytes, meta) = {
                    let mut aux = CountingSink::new();
                    let mut ap = Program::new(&mut aux);
                    let img = synth::still(w, h, 3, size.seed);
                    let params = jpeg::EncodeParams {
                        quality: size.jpeg_quality,
                        progressive,
                    };
                    let s = jpeg::encode(&mut ap, &img, params, Variant::SCALAR);
                    (ap.mem().bytes(s.addr, s.len).to_vec(), s)
                };
                let addr = p.mem_mut().alloc(bytes.len(), 8);
                p.mem_mut().write_bytes(addr, &bytes);
                let stream = jpeg::JpegStream { addr, ..meta };
                let _ = jpeg::decode(p, &stream, variant);
            }
            Bench::MpegEnc => {
                let frames = synth::video(size.video_w, size.video_h, size.frames, size.seed);
                let gop = default_gop(size.frames);
                let _ = mpeg::encode(p, &frames, &gop, size.mpeg, variant);
            }
            Bench::MpegDec => {
                let (bytes, meta) = {
                    let mut aux = CountingSink::new();
                    let mut ap = Program::new(&mut aux);
                    let frames = synth::video(size.video_w, size.video_h, size.frames, size.seed);
                    let gop = default_gop(size.frames);
                    let ev = mpeg::encode(&mut ap, &frames, &gop, size.mpeg, Variant::SCALAR);
                    (ap.mem().bytes(ev.addr, ev.len).to_vec(), ev)
                };
                let addr = p.mem_mut().alloc(bytes.len(), 8);
                p.mem_mut().write_bytes(addr, &bytes);
                let ev = mpeg::EncodedVideo { addr, ..meta };
                let _ = mpeg::decode(p, &ev, variant);
            }
        }
    }
}

impl std::fmt::Display for Bench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An I-B-B-P-like pattern for `n` frames.
pub fn default_gop(n: usize) -> Vec<mpeg::FrameType> {
    let base = mpeg::gop_ibbp();
    (0..n).map(|i| base[i % base.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_1() {
        assert_eq!(Bench::all().len(), 12);
        assert_eq!(Bench::kernels().len(), 6);
        assert_eq!(Bench::prefetch_set().len(), 9);
        let names: Vec<&str> = Bench::all().iter().map(|b| b.name()).collect();
        assert!(names.contains(&"cjpeg-np"));
        assert!(names.contains(&"mpeg-enc"));
        for b in Bench::all() {
            assert!(!b.description().is_empty());
        }
    }

    #[test]
    fn every_benchmark_runs_functionally() {
        let size = WorkloadSize {
            image_w: 32,
            image_h: 32,
            dotprod_n: 256,
            video_w: 32,
            video_h: 32,
            frames: 2,
            jpeg_quality: 80,
            mpeg: media_mpeg::MpegParams {
                search_range: 2,
                ..Default::default()
            },
            seed: 3,
        };
        for b in Bench::all() {
            for v in [Variant::SCALAR, Variant::VIS] {
                let mut sink = CountingSink::new();
                b.run(&mut sink, &size, v);
                let st = sink.finish();
                assert!(st.retired > 500, "{b:?}/{v:?}: {}", st.retired);
                if v.vis {
                    assert!(st.mix[3] > 0, "{b:?} VIS variant emits VIS ops");
                }
            }
        }
    }

    #[test]
    fn gop_pattern_tiles() {
        let g = default_gop(6);
        use media_mpeg::FrameType::*;
        assert_eq!(g, vec![I, B, B, P, I, B]);
    }
}
