//! Content-addressed result store: the durability layer under the
//! experiment engine.
//!
//! Every completed (benchmark × configuration) cell can be persisted as
//! one file under the store directory and served back on a resumed run,
//! so a crashed study loses at most the cells in flight — not the hours
//! of finished simulation behind them. The design follows the
//! trace-cache's on-disk discipline (`.vtrc`): versioned framing, a
//! trailing FNV-1a checksum, and purge-and-recompute on any validation
//! failure — never trust, never crash.
//!
//! * **Keying.** A cell's identity is the full text
//!   `"<kind>|<bench>|<variant>|<workload Debug>|cpu=<CpuConfig Debug>|
//!   mem=<MemConfig Debug>"` — everything the simulation result depends
//!   on. The file name carries `fnv1a64` of that text; the entry echoes
//!   the full text so a hash collision (or renamed file) is detected on
//!   load and treated as corruption.
//! * **Freshness.** Each entry records the store format version, the
//!   `visim-results-v2` schema tag, and the writing binary's git
//!   revision. A mismatch on load means the entry was produced by
//!   different code: it is *purged and recomputed*
//!   (`store.stale_purged`), never served — a stale cell that parses is
//!   more dangerous than a torn one.
//! * **Atomicity.** Writes land via `visim_util::atomic::write_atomic`
//!   (temp file + `sync_all` + rename), so a SIGKILL mid-write leaves
//!   either the old complete entry or the new complete entry. The
//!   `store.write.torn` fault point bypasses exactly this discipline to
//!   prove the checksum catches the resulting tear.
//! * **Failed cells too.** A deterministic `SimError` is stored with
//!   `status: failed` and served back on resume, reproducing the
//!   original error row byte-for-byte instead of re-running a known
//!   failure. Transient (retryable) faults are never stored.
//!
//! The store is enabled whenever a directory is configured —
//! `VISIM_STORE_DIR`, or the binaries' default `results/store` — and
//! not disabled via `--no-store`/`VISIM_NO_STORE=1`. Reads happen only
//! on resume (`--resume`/`VISIM_RESUME=1`); writes happen on every
//! run, which is what makes any run crash-safe by default.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use media_kernels::Variant;
use visim_cpu::{CpuConfig, CpuStats, Summary};
use visim_mem::MemConfig;
use visim_obs::codec::{ByteReader, ByteWriter};
use visim_obs::schema::RESULTS_SCHEMA;
use visim_obs::Registry;
use visim_util::{fault, fnv1a64, SimError};

use crate::bench::WorkloadSize;

/// Directory holding the store (unset + no CLI default = disabled).
pub const STORE_DIR_ENV: &str = "VISIM_STORE_DIR";
/// Set to `1` to serve finished cells from the store (same as
/// `--resume`).
pub const RESUME_ENV: &str = "VISIM_RESUME";
/// Set to `1` to disable the store entirely (same as `--no-store`).
pub const NO_STORE_ENV: &str = "VISIM_NO_STORE";
/// Test hook: override the git revision recorded in (and expected of)
/// store entries, so stale-entry handling is testable without rewriting
/// history.
pub const STORE_REV_ENV: &str = "VISIM_STORE_REV";

/// On-disk entry format version; bump on any layout change so old
/// entries are purged as stale instead of misread.
pub const STORE_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"VSTR";

// CLI overrides, set by the binaries' shared arg parser before any
// simulation runs.
static CLI_RESUME: AtomicBool = AtomicBool::new(false);
static CLI_DISABLE: AtomicBool = AtomicBool::new(false);
static CLI_DIR: Mutex<Option<String>> = Mutex::new(None);
static DEFAULT_DIR: Mutex<Option<String>> = Mutex::new(None);

/// Serve finished cells from the store this run (the `--resume` flag).
pub fn set_cli_resume() {
    CLI_RESUME.store(true, Ordering::Relaxed);
}

/// Disable the store for this process (the `--no-store` flag).
pub fn set_cli_disabled() {
    CLI_DISABLE.store(true, Ordering::Relaxed);
}

/// Point the store at `dir` (the `--store-dir` flag; takes precedence
/// over the environment).
pub fn set_cli_dir(dir: &str) {
    *CLI_DIR.lock().expect("store dir lock") = Some(dir.to_string());
}

/// Install the directory used when neither the flag nor the
/// environment names one. The figure binaries install
/// `results/store` here; library users (and unit tests) that never
/// call the arg parser keep the store disabled and the working tree
/// untouched.
pub fn set_default_dir(dir: &str) {
    *DEFAULT_DIR.lock().expect("store dir lock") = Some(dir.to_string());
}

/// The store directory: CLI flag, then `VISIM_STORE_DIR`, then the
/// installed default. `None` disables the store.
pub fn dir() -> Option<String> {
    if let Some(d) = CLI_DIR.lock().expect("store dir lock").clone() {
        return Some(d);
    }
    if let Ok(d) = std::env::var(STORE_DIR_ENV) {
        if !d.is_empty() {
            return Some(d);
        }
    }
    DEFAULT_DIR.lock().expect("store dir lock").clone()
}

/// True when cells are persisted (a directory is configured and the
/// store is not disabled).
pub fn enabled() -> bool {
    !CLI_DISABLE.load(Ordering::Relaxed)
        && std::env::var(NO_STORE_ENV).as_deref() != Ok("1")
        && dir().is_some()
}

/// True when finished cells are *served* from the store this run.
pub fn resume() -> bool {
    enabled()
        && (CLI_RESUME.load(Ordering::Relaxed) || std::env::var(RESUME_ENV).as_deref() == Ok("1"))
}

/// The code revision recorded in (and demanded of) store entries:
/// [`STORE_REV_ENV`] when set (tests), otherwise the git revision.
/// Cached — it forks a `git` process — and rendered once per run.
pub fn recorded_rev() -> &'static str {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        std::env::var(STORE_REV_ENV).unwrap_or_else(|_| visim_obs::schema::git_rev())
    })
}

/// What kind of payload a cell holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A detailed timing run: a full [`Summary`].
    Timed,
    /// A functional counting run: [`CpuStats`] only.
    Counted,
}

impl Kind {
    fn tag(self) -> u8 {
        match self {
            Kind::Timed => 0,
            Kind::Counted => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, String> {
        match tag {
            0 => Ok(Kind::Timed),
            1 => Ok(Kind::Counted),
            other => Err(format!("unknown payload kind {other}")),
        }
    }
}

/// The content address of one experiment cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellKey {
    kind: Kind,
    /// The full identity text (see module docs); hashing it yields the
    /// file name, echoing it in the entry defends against collisions.
    text: String,
    /// Filename-safe label prefix (benchmark name) for the entry file.
    label: String,
}

impl CellKey {
    /// The payload kind this key addresses.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// The full identity text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The content hash of the identity text.
    pub fn hash(&self) -> u64 {
        fnv1a64(self.text.as_bytes())
    }

    /// The entry's file name: `<label>.<kind>.<hash>.vcell`.
    pub fn file_name(&self) -> String {
        let kind = match self.kind {
            Kind::Timed => "timed",
            Kind::Counted => "counted",
        };
        format!(
            "{}.{kind}.{:016x}.vcell",
            sanitize(&self.label),
            self.hash()
        )
    }

    fn path(&self, dir: &str) -> std::path::PathBuf {
        std::path::Path::new(dir).join(self.file_name())
    }
}

fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn variant_bits(variant: Variant) -> String {
    format!(
        "{}{}",
        if variant.vis { 'v' } else { 's' },
        if variant.prefetch { 'p' } else { '-' }
    )
}

/// The active sampling geometry, folded into every timed cell's content
/// address while sampling is enabled — including cells that end up
/// falling back to exact simulation. Sampled estimates and exact
/// measurements therefore never share a store entry in either
/// direction, and neither do sampled runs of different geometries.
fn sample_bits() -> String {
    match crate::sampling::config() {
        Some(cfg) => cfg.key_suffix(),
        None => String::new(),
    }
}

/// The key for a detailed timing cell, or `None` when the store is
/// disabled. Everything the result depends on is folded in: benchmark,
/// code variant, full workload geometry (seed included), the complete
/// machine configuration, and the sampling geometry if one is active.
pub fn timed_key(
    bench: &str,
    cpu: &CpuConfig,
    mem: &MemConfig,
    size: &WorkloadSize,
    variant: Variant,
) -> Option<CellKey> {
    if !enabled() {
        return None;
    }
    Some(CellKey {
        kind: Kind::Timed,
        text: format!(
            "timed|{bench}|{}|{size:?}|cpu={cpu:?}|mem={mem:?}{}",
            variant_bits(variant),
            sample_bits()
        ),
        label: bench.to_string(),
    })
}

/// The key for a functional counting cell (no machine configuration —
/// the counts depend only on the emitted stream), or `None` when the
/// store is disabled.
pub fn counted_key(bench: &str, size: &WorkloadSize, variant: Variant) -> Option<CellKey> {
    if !enabled() {
        return None;
    }
    Some(CellKey {
        kind: Kind::Counted,
        text: format!("counted|{bench}|{}|{size:?}", variant_bits(variant)),
        label: bench.to_string(),
    })
}

/// A timed-cell key for a driver outside the [`crate::bench::Bench`]
/// registry (the appendix `kernels14` binary drives kernels directly).
/// `tag` must identify the workload and variant; machine configuration
/// and geometry are folded in here.
pub fn custom_timed_key(
    tag: &str,
    cpu: &CpuConfig,
    mem: &MemConfig,
    size: &WorkloadSize,
) -> Option<CellKey> {
    if !enabled() {
        return None;
    }
    Some(CellKey {
        kind: Kind::Timed,
        text: format!(
            "timed|{tag}|{size:?}|cpu={cpu:?}|mem={mem:?}{}",
            sample_bits()
        ),
        label: tag.to_string(),
    })
}

/// A counted-cell key for a driver outside the benchmark registry.
pub fn custom_counted_key(tag: &str, size: &WorkloadSize) -> Option<CellKey> {
    if !enabled() {
        return None;
    }
    Some(CellKey {
        kind: Kind::Counted,
        text: format!("counted|{tag}|{size:?}"),
        label: tag.to_string(),
    })
}

/// A stored cell: the completed payload, or the deterministic error the
/// cell failed with.
#[derive(Debug, Clone)]
pub enum Entry {
    /// A completed timing run (boxed: a `Summary` dwarfs the other
    /// variants).
    Timed(Box<Summary>),
    /// A completed counting run.
    Counted(CpuStats),
    /// A deterministic failure (`status: failed`): served back on
    /// resume so known failures are not re-run.
    Failed(SimError),
}

/// Why a present entry was rejected (and purged).
#[derive(Debug)]
enum Reject {
    /// Torn write, bit flip, bad magic, key mismatch, undecodable
    /// payload.
    Corrupt(String),
    /// Valid frame written by different code: format version, schema,
    /// or git revision mismatch.
    Stale(String),
}

// Observability counters (process-wide, exported into every binary's
// metrics block via `experiment::drain_pool_metrics`).
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static WRITES: AtomicU64 = AtomicU64::new(0);
static CORRUPT_PURGED: AtomicU64 = AtomicU64::new(0);
static STALE_PURGED: AtomicU64 = AtomicU64::new(0);

/// Snapshot the store counters into `reg` (`store.*` namespace). All
/// five counters are always present — a zero `store.stale_purged` is
/// evidence of freshness, not absence of instrumentation.
pub fn export_metrics(reg: &mut Registry) {
    reg.set("store.hit", HITS.load(Ordering::Relaxed));
    reg.set("store.miss", MISSES.load(Ordering::Relaxed));
    reg.set("store.writes", WRITES.load(Ordering::Relaxed));
    reg.set(
        "store.corrupt_purged",
        CORRUPT_PURGED.load(Ordering::Relaxed),
    );
    reg.set("store.stale_purged", STALE_PURGED.load(Ordering::Relaxed));
}

/// Aggregate statistics for the entries one (schema, revision) pairing
/// wrote — the unit of staleness: entries under another pairing would
/// be purged instead of served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevStats {
    /// Results-schema tag the entries carry.
    pub schema: String,
    /// Git revision (or [`STORE_REV_ENV`] override) that wrote them.
    pub rev: String,
    /// Number of valid entries.
    pub entries: u64,
    /// Their total size on disk in bytes.
    pub bytes: u64,
}

/// A scan of the whole store directory (the `--store-stats` flag and
/// the serve daemon's `store.bytes` accounting).
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Valid `.vcell` entries found.
    pub entries: u64,
    /// Their total size in bytes.
    pub bytes: u64,
    /// Files that failed checksum/framing validation (candidates for
    /// purge on their next lookup; left in place by the scan).
    pub invalid: u64,
    /// Per-(schema, revision) breakdown, sorted for stable output.
    pub revs: Vec<RevStats>,
}

/// Scan the store directory and size up its contents per schema
/// revision. Entries are checksum-validated (a torn file counts as
/// `invalid`, not as an entry) but never purged — the scan only
/// observes. Returns `None` when the store is disabled.
pub fn stats() -> Option<StoreStats> {
    let dir = dir().filter(|_| enabled())?;
    let mut stats = StoreStats::default();
    let mut by_rev: std::collections::BTreeMap<(String, String), (u64, u64)> =
        std::collections::BTreeMap::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        // A store that was never written to is empty, not an error.
        Err(_) => return Some(stats),
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("vcell") {
            continue;
        }
        let Ok(bytes) = std::fs::read(&path) else {
            stats.invalid += 1;
            continue;
        };
        match entry_stamps(&bytes) {
            Some((schema, rev)) => {
                stats.entries += 1;
                stats.bytes += bytes.len() as u64;
                let slot = by_rev.entry((schema, rev)).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += bytes.len() as u64;
            }
            None => stats.invalid += 1,
        }
    }
    stats.revs = by_rev
        .into_iter()
        .map(|((schema, rev), (entries, bytes))| RevStats {
            schema,
            rev,
            entries,
            bytes,
        })
        .collect();
    Some(stats)
}

/// A cheap store-size estimate: `(files, bytes)` over the `.vcell`
/// entries, from directory metadata alone — no file is opened or
/// checksummed, so this is safe to call on every flight-recorder tick
/// (the full [`stats`] scan reads and validates every entry, which a
/// once-per-second sampler must not). Counts torn/invalid files too;
/// the periodic snapshot tolerates that imprecision, the shutdown
/// artifact uses the exact scan. `None` when the store is disabled.
pub fn quick_scan() -> Option<(u64, u64)> {
    let dir = dir().filter(|_| enabled())?;
    let (mut files, mut bytes) = (0u64, 0u64);
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("vcell") {
                continue;
            }
            if let Ok(meta) = entry.metadata() {
                files += 1;
                bytes += meta.len();
            }
        }
    }
    Some((files, bytes))
}

/// Read the (schema, revision) stamps of one encoded entry, validating
/// the checksum and framing first. `None` means the file is not a
/// well-formed store entry.
fn entry_stamps(bytes: &[u8]) -> Option<(String, String)> {
    if bytes.len() < MAGIC.len() + 8 {
        return None;
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let expect = u64::from_le_bytes(trailer.try_into().unwrap());
    if fnv1a64(body) != expect {
        return None;
    }
    let mut r = ByteReader::new(body);
    if r.raw(4).ok()? != MAGIC {
        return None;
    }
    let _version = r.u32().ok()?;
    let schema = r.str().ok()?;
    let rev = r.str().ok()?;
    Some((schema, rev))
}

/// Encode one entry in the framed store format (magic, version, schema,
/// revision, key echo, status, payload, trailing checksum).
fn encode_entry(key: &CellKey, entry: &Entry, schema: &str, rev: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_raw(MAGIC);
    w.put_u32(STORE_FORMAT_VERSION);
    w.put_str(schema);
    w.put_str(rev);
    w.put_str(&key.text);
    w.put_u8(key.kind.tag());
    match entry {
        Entry::Timed(s) => {
            w.put_u8(0);
            s.encode_into(&mut w);
        }
        Entry::Counted(c) => {
            w.put_u8(0);
            c.encode_into(&mut w);
        }
        Entry::Failed(e) => {
            w.put_u8(1);
            e.encode_into(&mut w);
        }
    }
    let mut bytes = w.into_bytes();
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Validate and decode one entry against the key and freshness stamps
/// the current binary expects. Checksum first: a torn or flipped entry
/// must be rejected before any field is believed.
fn decode_entry(bytes: &[u8], key: &CellKey, schema: &str, rev: &str) -> Result<Entry, Reject> {
    let corrupt = |why: String| Reject::Corrupt(why);
    if bytes.len() < MAGIC.len() + 8 {
        return Err(corrupt(format!("{} bytes is too short", bytes.len())));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let expect = u64::from_le_bytes(trailer.try_into().unwrap());
    if fnv1a64(body) != expect {
        return Err(corrupt("checksum mismatch".into()));
    }
    let mut r = ByteReader::new(body);
    if r.raw(4).map_err(corrupt)? != MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let version = r.u32().map_err(corrupt)?;
    if version != STORE_FORMAT_VERSION {
        return Err(Reject::Stale(format!(
            "format v{version}, binary expects v{STORE_FORMAT_VERSION}"
        )));
    }
    let got_schema = r.str().map_err(corrupt)?;
    if got_schema != schema {
        return Err(Reject::Stale(format!(
            "schema {got_schema:?}, binary expects {schema:?}"
        )));
    }
    let got_rev = r.str().map_err(corrupt)?;
    if got_rev != rev {
        return Err(Reject::Stale(format!(
            "written at rev {got_rev}, binary is {rev}"
        )));
    }
    let got_key = r.str().map_err(corrupt)?;
    if got_key != key.text {
        return Err(corrupt(format!("key mismatch: entry holds {got_key:?}")));
    }
    let kind = Kind::from_tag(r.u8().map_err(corrupt)?).map_err(corrupt)?;
    if kind != key.kind {
        return Err(corrupt(format!(
            "payload kind {kind:?} under a {:?} key",
            key.kind
        )));
    }
    let status = r.u8().map_err(corrupt)?;
    let entry = match (status, kind) {
        (0, Kind::Timed) => Entry::Timed(Box::new(Summary::decode_from(&mut r).map_err(corrupt)?)),
        (0, Kind::Counted) => Entry::Counted(CpuStats::decode_from(&mut r).map_err(corrupt)?),
        (1, _) => Entry::Failed(SimError::decode_from(&mut r).map_err(corrupt)?),
        (other, _) => return Err(corrupt(format!("unknown status byte {other}"))),
    };
    r.done().map_err(corrupt)?;
    Ok(entry)
}

/// Look up a finished cell. A present-but-invalid entry is purged
/// (corrupt or stale, counted separately) and reported as a miss, so
/// damage degrades to recomputation. Counts one hit or one miss.
pub fn load(key: &CellKey) -> Option<Entry> {
    let dir = dir()?;
    let path = key.path(&dir);
    let Ok(bytes) = std::fs::read(&path) else {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return None;
    };
    match decode_entry(&bytes, key, RESULTS_SCHEMA, recorded_rev()) {
        Ok(entry) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            Some(entry)
        }
        Err(reject) => {
            let (counter, why) = match &reject {
                Reject::Corrupt(why) => (&CORRUPT_PURGED, why),
                Reject::Stale(why) => (&STALE_PURGED, why),
            };
            if std::fs::remove_file(&path).is_ok() {
                counter.fetch_add(1, Ordering::Relaxed);
                eprintln!("result store: purged {} ({why})", path.display());
            }
            MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Persist a finished cell atomically. The `store.write.torn` fault
/// point deliberately bypasses the atomic path and truncates the entry
/// mid-payload — the checksum then rejects it on the next load, which
/// is exactly the property the fault gate proves. A failed write (full
/// disk, permissions) silently degrades to a store-less run — cell
/// durability is an optimization, never a correctness dependency.
pub fn save(key: &CellKey, entry: &Entry) {
    let Some(dir) = dir() else { return };
    let bytes = encode_entry(key, entry, RESULTS_SCHEMA, recorded_rev());
    let path = key.path(&dir);
    if fault::fires("store.write.torn", &key.text) {
        // A torn write: some prefix of the entry, landed non-atomically
        // at the final path.
        let cut = bytes.len() / 2;
        if std::fs::create_dir_all(&dir).is_ok() {
            std::fs::write(&path, &bytes[..cut]).ok();
        }
        return;
    }
    if visim_util::atomic::write_atomic(&path, &bytes).is_ok() {
        WRITES.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visim_cpu::Pipeline;
    use visim_isa::{Inst, Op, Reg};
    use visim_util::prop::{self, Config};

    fn summary(n: u64) -> Summary {
        let mut p = Pipeline::new(CpuConfig::ooo_4way(), MemConfig::default());
        for i in 0..n {
            visim_cpu::SimSink::push(
                &mut p,
                Inst::compute(
                    Op::IntAlu,
                    0x10 + 4 * i,
                    Reg(1 + (i % 28) as u32),
                    [Reg::NONE; 3],
                ),
            );
        }
        p.finish()
    }

    fn timed_test_key(text_salt: &str) -> CellKey {
        CellKey {
            kind: Kind::Timed,
            text: format!("timed|conv|v-|{text_salt}"),
            label: "conv".to_string(),
        }
    }

    #[test]
    fn entries_round_trip_and_reject_wrong_stamps() {
        let key = timed_test_key("salt");
        let entry = Entry::Timed(Box::new(summary(40)));
        let bytes = encode_entry(&key, &entry, RESULTS_SCHEMA, "rev-a");
        let back = match decode_entry(&bytes, &key, RESULTS_SCHEMA, "rev-a") {
            Ok(Entry::Timed(s)) => s,
            other => panic!("expected timed entry, got {other:?}"),
        };
        let Entry::Timed(orig) = &entry else {
            unreachable!()
        };
        assert_eq!(format!("{back:?}"), format!("{orig:?}"));
        // Wrong revision: stale, not corrupt.
        assert!(matches!(
            decode_entry(&bytes, &key, RESULTS_SCHEMA, "rev-b"),
            Err(Reject::Stale(_))
        ));
        // Wrong schema: stale.
        assert!(matches!(
            decode_entry(&bytes, &key, "visim-results-v999", "rev-a"),
            Err(Reject::Stale(_))
        ));
        // Wrong key text: corrupt (collision or renamed file).
        let other_key = timed_test_key("other-salt");
        assert!(matches!(
            decode_entry(&bytes, &other_key, RESULTS_SCHEMA, "rev-a"),
            Err(Reject::Corrupt(_))
        ));
        // A counted key must not accept a timed payload.
        let counted = CellKey {
            kind: Kind::Counted,
            text: key.text.clone(),
            label: key.label.clone(),
        };
        assert!(matches!(
            decode_entry(&bytes, &counted, RESULTS_SCHEMA, "rev-a"),
            Err(Reject::Corrupt(_))
        ));
    }

    #[test]
    fn failed_entries_round_trip_their_error() {
        let key = timed_test_key("fail");
        let err = SimError::Workload {
            bench: "conv".into(),
            detail: "fault injected via VISIM_FAIL_BENCH".into(),
        };
        let bytes = encode_entry(&key, &Entry::Failed(err.clone()), RESULTS_SCHEMA, "r");
        match decode_entry(&bytes, &key, RESULTS_SCHEMA, "r") {
            Ok(Entry::Failed(back)) => {
                assert_eq!(back, err);
                assert_eq!(back.to_string(), err.to_string());
            }
            other => panic!("expected failed entry, got {other:?}"),
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_as_corrupt_or_stale() {
        // Property: flipping any single bit of an encoded entry must
        // never be served (the trailing checksum guards the whole
        // frame). Each case picks a random bit via the prop harness.
        let key = timed_test_key("prop");
        let bytes = encode_entry(
            &key,
            &Entry::Timed(Box::new(summary(16))),
            RESULTS_SCHEMA,
            "rev",
        );
        let nbits = bytes.len() * 8;
        prop::check(
            Config::cases(128),
            |rng| rng.gen_range(0..nbits),
            |&bit| {
                let mut mutated = bytes.clone();
                mutated[bit / 8] ^= 1 << (bit % 8);
                match decode_entry(&mutated, &key, RESULTS_SCHEMA, "rev") {
                    Err(_) => Ok(()),
                    Ok(_) => Err(format!("bit {bit} flip was accepted")),
                }
            },
        );
    }

    #[test]
    fn truncations_are_rejected() {
        let key = timed_test_key("trunc");
        let bytes = encode_entry(
            &key,
            &Entry::Timed(Box::new(summary(16))),
            RESULTS_SCHEMA,
            "rev",
        );
        for cut in [0, 1, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_entry(&bytes[..cut], &key, RESULTS_SCHEMA, "rev").is_err(),
                "accepted a {cut}-byte truncation"
            );
        }
    }

    #[test]
    fn counted_entries_round_trip() {
        let key = CellKey {
            kind: Kind::Counted,
            text: "counted|conv|v-|salt".into(),
            label: "conv".into(),
        };
        let stats = summary(24).cpu;
        let bytes = encode_entry(&key, &Entry::Counted(stats.clone()), RESULTS_SCHEMA, "r");
        match decode_entry(&bytes, &key, RESULTS_SCHEMA, "r") {
            Ok(Entry::Counted(back)) => {
                assert_eq!(format!("{back:?}"), format!("{stats:?}"))
            }
            other => panic!("expected counted entry, got {other:?}"),
        }
    }

    #[test]
    fn file_names_are_safe_and_key_dependent() {
        let a = timed_test_key("a");
        let b = timed_test_key("b");
        assert_ne!(a.file_name(), b.file_name());
        assert!(a.file_name().starts_with("conv.timed."));
        assert!(a.file_name().ends_with(".vcell"));
        let evil = CellKey {
            kind: Kind::Timed,
            text: "t".into(),
            label: "../evil name".into(),
        };
        assert!(!evil.file_name().contains('/'));
        assert!(!evil.file_name().contains(' '));
    }
}
