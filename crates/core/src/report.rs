//! Plain-text rendering of experiment results (the figure/table
//! binaries print these).

use visim_cpu::{Breakdown, CpuStats};

use crate::experiment::{Fig1Bar, Fig2Row, Fig3Row, SweepPoint};

/// Render a simple aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:width$}  ", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

fn pct(x: f64, total: f64) -> String {
    if total <= 0.0 {
        "0.0".into()
    } else {
        format!("{:.1}", 100.0 * x / total)
    }
}

/// Figure 1 rows for one benchmark: normalized execution time split into
/// the paper's four components.
pub fn fig1_rows(bars: &[Fig1Bar]) -> Vec<Vec<String>> {
    let base = bars
        .first()
        .map(|b| b.summary.cycles() as f64)
        .unwrap_or(1.0);
    bars.iter()
        .map(|b| {
            let bd: Breakdown = b.summary.cpu.breakdown();
            let n = b.summary.cycles() as f64 / base * 100.0;
            vec![
                format!("{}{}", if b.vis { "VIS " } else { "" }, b.arch.label()),
                format!("{n:.1}"),
                pct(bd.busy, base),
                pct(bd.fu_stall, base),
                pct(bd.l1_hit, base),
                pct(bd.l1_miss, base),
            ]
        })
        .collect()
}

/// Figure 1 table headers.
pub fn fig1_headers() -> [&'static str; 6] {
    [
        "config",
        "norm time",
        "busy",
        "fu stall",
        "l1 hit",
        "l1 miss",
    ]
}

/// Figure 2 rows: normalized dynamic instruction counts by category.
pub fn fig2_rows(rows: &[Fig2Row]) -> Vec<Vec<String>> {
    rows.iter()
        .flat_map(|r| {
            let base = r.base.retired as f64;
            let mk = |label: &str, s: &CpuStats| {
                vec![
                    r.bench.name().to_string(),
                    label.to_string(),
                    format!("{:.1}", 100.0 * s.retired as f64 / base),
                    pct(s.mix[0] as f64, base),
                    pct(s.mix[1] as f64, base),
                    pct(s.mix[2] as f64, base),
                    pct(s.mix[3] as f64, base),
                    format!("{:.1}", 100.0 * s.mispredict_rate()),
                    format!("{:.0}", 100.0 * s.vis_overhead_fraction()),
                ]
            };
            [mk("base", &r.base), mk("vis", &r.vis)]
        })
        .collect()
}

/// Figure 2 table headers.
pub fn fig2_headers() -> [&'static str; 9] {
    [
        "benchmark",
        "variant",
        "norm insts",
        "fu",
        "branch",
        "memory",
        "vis",
        "mispredict%",
        "vis-overhead%",
    ]
}

/// Figure 3 rows: VIS vs VIS+PF normalized execution time.
pub fn fig3_rows(rows: &[Fig3Row]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            let base = r.vis.cycles() as f64;
            let bd = r.pf.cpu.breakdown();
            vec![
                r.bench.name().to_string(),
                "100.0".to_string(),
                format!("{:.1}", 100.0 * r.pf.cycles() as f64 / base),
                format!("{:.2}x", base / r.pf.cycles() as f64),
                pct(bd.memory(), r.pf.cycles() as f64),
                format!("{}", r.pf.mem.prefetches_issued),
                format!("{}", r.pf.mem.prefetches_late),
            ]
        })
        .collect()
}

/// Figure 3 table headers.
pub fn fig3_headers() -> [&'static str; 7] {
    [
        "benchmark",
        "VIS",
        "+PF",
        "speedup",
        "mem% after",
        "prefetches",
        "late",
    ]
}

/// Sweep rows: normalized time per cache size.
pub fn sweep_rows(points: &[SweepPoint]) -> Vec<Vec<String>> {
    let base = points
        .first()
        .map(|pt| pt.summary.cycles() as f64)
        .unwrap_or(1.0);
    points
        .iter()
        .map(|pt| {
            let bd = pt.summary.cpu.breakdown();
            vec![
                if pt.bytes >= 1 << 20 {
                    format!("{}M", pt.bytes >> 20)
                } else {
                    format!("{}K", pt.bytes >> 10)
                },
                format!("{:.1}", 100.0 * pt.summary.cycles() as f64 / base),
                format!("{:.1}", 100.0 * bd.memory() / pt.summary.cycles() as f64),
                format!("{:.2}", 100.0 * pt.summary.mem.l1_miss_rate()),
            ]
        })
        .collect()
}

/// Sweep table headers.
pub fn sweep_headers() -> [&'static str; 4] {
    ["size", "norm time", "mem stall %", "l1 miss %"]
}

/// The paper's descriptive Tables 1-4 as one text document — exactly
/// what the `tables` binary prints and `results/tables.txt` commits.
/// Pure configuration rendering (no simulation), so it is also the
/// golden-snapshot surface for the table formats.
pub fn tables_text() -> String {
    use crate::bench::Bench;
    use visim_cpu::CpuConfig;
    use visim_isa::Op;
    use visim_mem::MemConfig;

    let mut out = String::new();
    let section = |out: &mut String, title: &str| {
        out.push_str(&format!("\n=== {title} ===\n\n"));
    };

    section(&mut out, "Table 1: benchmark summary");
    let rows: Vec<Vec<String>> = Bench::all()
        .into_iter()
        .map(|b| vec![b.name().to_string(), b.description().to_string()])
        .collect();
    out.push_str(&table(&["benchmark", "description"], &rows));

    section(&mut out, "Table 2: default processor parameters");
    let rows: Vec<Vec<String>> = CpuConfig::ooo_4way()
        .table2()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    out.push_str(&table(&["parameter", "value"], &rows));

    section(&mut out, "Table 3: default memory system parameters");
    let rows: Vec<Vec<String>> = MemConfig::default()
        .table3()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    out.push_str(&table(&["parameter", "value"], &rows));

    section(&mut out, "Table 4: classification of VIS instructions");
    let rows: Vec<Vec<String>> = Op::all()
        .iter()
        .filter_map(|op| {
            op.vis_class().map(|class| {
                vec![
                    format!("{op:?}"),
                    class.to_string(),
                    format!("{:?}", op.fu()),
                    if op.is_vis_overhead() {
                        "rearrangement overhead".into()
                    } else {
                        String::new()
                    },
                ]
            })
        })
        .collect();
    out.push_str(&table(
        &["operation", "class (Table 4)", "unit", "notes"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "bench"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("x"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn pct_handles_zero_total() {
        assert_eq!(pct(5.0, 0.0), "0.0");
        assert_eq!(pct(5.0, 10.0), "50.0");
    }
}
