//! Declarative experiment manifests (`visim-manifest-v1`).
//!
//! A manifest describes one experiment — which benchmarks, which
//! configuration axes, which code variants, and which output artifact —
//! as data instead of code. The authoritative copies live under
//! `results/manifests/<name>.json`; each figure binary also embeds its
//! manifest at compile time ([`Manifest::builtin`]) so the binaries
//! keep working from any directory (the verification gates run them
//! from scratch directories), with `--manifest <path>` overriding the
//! built-in description at runtime.
//!
//! One generic engine (`experiment::run_manifest`) executes any
//! manifest by fanning its cells through the existing worker pool,
//! content-addressed result store, trace cache, and sampling machinery;
//! the binaries reduce to "load manifest, run engine, render". The
//! `visim-serve` daemon executes the same manifests cell-wise via
//! [`Manifest::cells`].
//!
//! The grid kinds mirror the paper's artifacts: `fig1`/`fig2`/`fig3`,
//! the §4.1 cache `sweep`s, the descriptive `tables`, the design
//! `ablation` sections, and the appendix `kernels14` sweep. Presentation
//! that is intrinsically figure-shaped (table layouts, in-text
//! statistics) stays in the renderer keyed by grid kind — the manifest
//! carries the *what* (benchmarks, axes, values, titles), the renderer
//! owns the *how it reads*, and the split is what keeps the output
//! byte-identical to the hand-rolled drivers this module replaced.

use std::sync::Mutex;

use media_kernels::{KernelId, Variant};
use visim_cpu::CpuConfig;
use visim_mem::MemConfig;
use visim_obs::Json;

use crate::bench::{Bench, WorkloadSize};
use crate::config::Arch;

/// Schema tag every manifest file must carry.
pub const MANIFEST_SCHEMA: &str = "visim-manifest-v1";

// The authoritative manifest files, embedded at compile time so the
// binaries run from any working directory.
const BUILTINS: &[(&str, &str)] = &[
    ("fig1", include_str!("../../../results/manifests/fig1.json")),
    ("fig2", include_str!("../../../results/manifests/fig2.json")),
    ("fig3", include_str!("../../../results/manifests/fig3.json")),
    (
        "sweep_l1",
        include_str!("../../../results/manifests/sweep_l1.json"),
    ),
    (
        "sweep_l2",
        include_str!("../../../results/manifests/sweep_l2.json"),
    ),
    (
        "tables",
        include_str!("../../../results/manifests/tables.json"),
    ),
    (
        "ablation",
        include_str!("../../../results/manifests/ablation.json"),
    ),
    (
        "kernels14",
        include_str!("../../../results/manifests/kernels14.json"),
    ),
];

// The `--manifest <path>` override, recorded by the binaries' shared
// arg parser before the manifest is loaded.
static CLI_PATH: Mutex<Option<String>> = Mutex::new(None);

/// Record the `--manifest <path>` override for this process.
pub fn set_cli_path(path: &str) {
    *CLI_PATH.lock().expect("manifest path lock") = Some(path.to_string());
}

/// The `--manifest <path>` override, if one was given.
pub fn cli_path() -> Option<String> {
    CLI_PATH.lock().expect("manifest path lock").clone()
}

/// Which cache the §4.1 sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepCache {
    /// Vary the L1 size, L2 fixed.
    L1,
    /// Vary the L2 size, L1 fixed.
    L2,
}

impl SweepCache {
    /// The artifact key (`"l1"`/`"l2"`) used in result cells.
    pub fn key(self) -> &'static str {
        match self {
            SweepCache::L1 => "l1",
            SweepCache::L2 => "l2",
        }
    }

    /// The memory configuration for one sweep point.
    pub fn mem_config(self, bytes: u64) -> MemConfig {
        match self {
            SweepCache::L1 => MemConfig::default().with_l1_size(bytes),
            SweepCache::L2 => MemConfig::default().with_l2_size(bytes),
        }
    }
}

/// Which machine parameter an ablation section sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationParam {
    /// `CpuConfig::issue_width`.
    IssueWidth,
    /// `CpuConfig::window`.
    Window,
    /// `MemConfig::{l1,l2}.mshrs`.
    MshrCount,
    /// `CpuConfig::mispredict_penalty`.
    MispredictPenalty,
    /// `CpuConfig::blocking_loads` (any nonzero value = blocking).
    BlockingLoads,
}

impl AblationParam {
    fn parse(name: &str) -> Result<Self, String> {
        Ok(match name {
            "issue-width" => AblationParam::IssueWidth,
            "window" => AblationParam::Window,
            "mshr-count" => AblationParam::MshrCount,
            "mispredict-penalty" => AblationParam::MispredictPenalty,
            "blocking-loads" => AblationParam::BlockingLoads,
            other => return Err(format!("unknown ablation param {other:?}")),
        })
    }

    /// The machine configuration for one sweep value, derived from the
    /// out-of-order baseline.
    pub fn config(self, value: u64) -> (CpuConfig, MemConfig) {
        let mut cpu = CpuConfig::ooo_4way();
        let mut mem = MemConfig::default();
        match self {
            AblationParam::IssueWidth => cpu.issue_width = value as u32,
            AblationParam::Window => cpu.window = value as u32,
            AblationParam::MshrCount => {
                mem.l1.mshrs = value as u32;
                mem.l2.mshrs = value as u32;
            }
            AblationParam::MispredictPenalty => cpu.mispredict_penalty = value,
            AblationParam::BlockingLoads => cpu.blocking_loads = value != 0,
        }
        (cpu, mem)
    }
}

/// One base-plus-variants ablation section: a baseline run per
/// benchmark plus one run per sweep value, rendered as slowdown ratios.
#[derive(Debug, Clone)]
pub struct AblationSection {
    /// Artifact key (`config.section` in the result cells).
    pub key: String,
    /// Section title as printed.
    pub title: String,
    /// The parameter this section sweeps.
    pub param: AblationParam,
    /// The sweep values (applied via [`AblationParam::config`]).
    pub values: Vec<u64>,
    /// Table headers: `benchmark` plus one label per sweep value. The
    /// value labels double as the cells' `config.value` members.
    pub headers: Vec<String>,
}

/// The MSHR-occupancy histogram section of the ablation experiment.
#[derive(Debug, Clone)]
pub struct HistogramSection {
    /// Section title as printed.
    pub title: String,
    /// Benchmarks whose MSHR histograms are reported.
    pub benchmarks: Vec<Bench>,
    /// `(display label, code variant)` pairs, in print order.
    pub variants: Vec<(String, Variant)>,
}

/// The experiment grid a manifest describes.
#[derive(Debug, Clone)]
pub enum Grid {
    /// Figure 1: benchmarks × architectures × {base, VIS} timing bars.
    Fig1 {
        /// Benchmarks, in figure order.
        benchmarks: Vec<Bench>,
        /// Architecture variations, in bar order.
        archs: Vec<Arch>,
        /// Code variants (outer bar axis).
        variants: Vec<Variant>,
    },
    /// Figure 2: counted instruction mixes, base vs. VIS.
    Fig2 {
        /// Benchmarks, in figure order.
        benchmarks: Vec<Bench>,
        /// Benchmarks singled out for the in-text mispredict statistics.
        highlights: Vec<String>,
    },
    /// Figure 3: VIS vs. VIS+prefetch timing pairs.
    Fig3 {
        /// Benchmarks (the paper's prefetch set), in figure order.
        benchmarks: Vec<Bench>,
    },
    /// §4.1 cache-size sweep.
    Sweep {
        /// Which cache is varied.
        cache: SweepCache,
        /// Benchmarks, in print order.
        benchmarks: Vec<Bench>,
        /// Cache sizes in bytes, in sweep order.
        bytes: Vec<u64>,
    },
    /// Tables 1-4 (static; no simulation cells).
    Tables,
    /// Design-choice ablations: ratio sections plus the MSHR histogram.
    Ablation {
        /// Benchmarks every ratio section runs.
        benchmarks: Vec<Bench>,
        /// The ratio sections, in print order.
        sections: Vec<AblationSection>,
        /// The MSHR-occupancy histogram section.
        histogram: HistogramSection,
    },
    /// Appendix: the full VSDK kernel sweep.
    Kernels14 {
        /// Kernels, in table order.
        kernels: Vec<KernelId>,
    },
}

/// A parsed experiment manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Experiment name: the artifact base name (`results/json/<name>`)
    /// and the run-journal name.
    pub name: String,
    /// One-line purpose, used in the binaries' usage text.
    pub about: String,
    /// Optional headline printed before the first section.
    pub title: Option<String>,
    /// The experiment grid.
    pub grid: Grid,
}

fn bench_from_name(name: &str) -> Result<Bench, String> {
    Bench::all()
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name:?}"))
}

fn arch_from_label(label: &str) -> Result<Arch, String> {
    Arch::all()
        .into_iter()
        .find(|a| a.label() == label)
        .ok_or_else(|| format!("unknown architecture {label:?}"))
}

/// Parse a code-variant name. `"base"` and `"scalar"` are synonyms, as
/// are the upper-case display forms used by histogram sections.
pub fn variant_from_name(name: &str) -> Result<Variant, String> {
    match name.to_ascii_lowercase().as_str() {
        "base" | "scalar" => Ok(Variant::SCALAR),
        "vis" => Ok(Variant::VIS),
        "vis+pf" => Ok(Variant::VIS_PF),
        other => Err(format!("unknown variant {other:?}")),
    }
}

fn kernel_from_name(name: &str) -> Result<KernelId, String> {
    KernelId::all()
        .iter()
        .copied()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown kernel {name:?}"))
}

fn str_member<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string {key:?} member"))
}

fn arr_member<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], String> {
    obj.get(key)
        .and_then(Json::elements)
        .ok_or_else(|| format!("missing or non-array {key:?} member"))
}

fn str_list(obj: &Json, key: &str) -> Result<Vec<String>, String> {
    arr_member(obj, key)?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{key:?} holds a non-string element"))
        })
        .collect()
}

fn u64_list(obj: &Json, key: &str) -> Result<Vec<u64>, String> {
    arr_member(obj, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("{key:?} holds a non-integer element"))
        })
        .collect()
}

fn bench_list(obj: &Json, key: &str) -> Result<Vec<Bench>, String> {
    str_list(obj, key)?
        .iter()
        .map(|s| bench_from_name(s))
        .collect()
}

fn parse_sections(grid: &Json) -> Result<Vec<AblationSection>, String> {
    arr_member(grid, "sections")?
        .iter()
        .map(|s| {
            let values = u64_list(s, "values")?;
            let headers = str_list(s, "headers")?;
            if headers.len() != values.len() + 1 {
                return Err(format!(
                    "section {:?}: {} headers for {} values (want values + 1)",
                    str_member(s, "key").unwrap_or("?"),
                    headers.len(),
                    values.len()
                ));
            }
            Ok(AblationSection {
                key: str_member(s, "key")?.to_string(),
                title: str_member(s, "title")?.to_string(),
                param: AblationParam::parse(str_member(s, "param")?)?,
                values,
                headers,
            })
        })
        .collect()
}

fn parse_histogram(grid: &Json) -> Result<HistogramSection, String> {
    let h = grid
        .get("histogram")
        .ok_or_else(|| "missing \"histogram\" member".to_string())?;
    let variants = str_list(h, "variants")?
        .into_iter()
        .map(|label| variant_from_name(&label).map(|v| (label, v)))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(HistogramSection {
        title: str_member(h, "title")?.to_string(),
        benchmarks: bench_list(h, "benchmarks")?,
        variants,
    })
}

impl Manifest {
    /// Parse a `visim-manifest-v1` document.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = str_member(&doc, "schema")?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "schema {schema:?}, this binary expects {MANIFEST_SCHEMA:?}"
            ));
        }
        let grid = doc
            .get("grid")
            .ok_or_else(|| "missing \"grid\" member".to_string())?;
        let kind = str_member(grid, "kind")?;
        let parsed = match kind {
            "fig1" => Grid::Fig1 {
                benchmarks: bench_list(grid, "benchmarks")?,
                archs: str_list(grid, "archs")?
                    .iter()
                    .map(|s| arch_from_label(s))
                    .collect::<Result<_, _>>()?,
                variants: str_list(grid, "variants")?
                    .iter()
                    .map(|s| variant_from_name(s))
                    .collect::<Result<_, _>>()?,
            },
            "fig2" => Grid::Fig2 {
                benchmarks: bench_list(grid, "benchmarks")?,
                highlights: str_list(grid, "mispredict_highlights")?,
            },
            "fig3" => Grid::Fig3 {
                benchmarks: bench_list(grid, "benchmarks")?,
            },
            "sweep" => Grid::Sweep {
                cache: match str_member(grid, "cache")? {
                    "l1" => SweepCache::L1,
                    "l2" => SweepCache::L2,
                    other => return Err(format!("unknown sweep cache {other:?}")),
                },
                benchmarks: bench_list(grid, "benchmarks")?,
                bytes: u64_list(grid, "bytes")?,
            },
            "tables" => Grid::Tables,
            "ablation" => Grid::Ablation {
                benchmarks: bench_list(grid, "benchmarks")?,
                sections: parse_sections(grid)?,
                histogram: parse_histogram(grid)?,
            },
            "kernels14" => Grid::Kernels14 {
                kernels: str_list(grid, "kernels")?
                    .iter()
                    .map(|s| kernel_from_name(s))
                    .collect::<Result<_, _>>()?,
            },
            other => return Err(format!("unknown grid kind {other:?}")),
        };
        Ok(Manifest {
            name: str_member(&doc, "name")?.to_string(),
            about: str_member(&doc, "about")?.to_string(),
            title: doc.get("title").and_then(Json::as_str).map(str::to_string),
            grid: parsed,
        })
    }

    /// The embedded manifest text for one of the eight built-in
    /// experiments (the compile-time copy of
    /// `results/manifests/<name>.json`).
    pub fn builtin_text(name: &str) -> Option<&'static str> {
        BUILTINS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, text)| *text)
    }

    /// The parsed built-in manifest named `name`. The embedded texts
    /// are validated by unit tests, so a parse failure here means the
    /// binary itself is corrupt.
    pub fn builtin(name: &str) -> Option<Manifest> {
        Self::builtin_text(name).map(|text| {
            Manifest::parse(text)
                .unwrap_or_else(|e| panic!("embedded manifest {name:?} is invalid: {e}"))
        })
    }

    /// Names of every built-in manifest, in suite order.
    pub fn builtin_names() -> Vec<&'static str> {
        BUILTINS.iter().map(|(n, _)| *n).collect()
    }

    /// Load and parse a manifest file from disk.
    pub fn load_file(path: &str) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Manifest::parse(&text)
    }

    /// Enumerate the manifest's simulation cells as self-contained
    /// specs, in grid order — the cell-wise view the `visim-serve`
    /// daemon schedules (the figure renderers use
    /// `experiment::run_manifest` instead, which preserves the
    /// figure-shaped grouping and error-masking semantics).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::new();
        match &self.grid {
            Grid::Fig1 {
                benchmarks,
                archs,
                variants,
            } => {
                for &bench in benchmarks {
                    for &variant in variants {
                        for &arch in archs {
                            cells.push(CellSpec::Timed {
                                label: format!(
                                    "{}/{}/{}",
                                    bench.name(),
                                    arch.label(),
                                    variant_label(variant)
                                ),
                                bench,
                                cpu: arch.cpu(),
                                mem: MemConfig::default(),
                                variant,
                            });
                        }
                    }
                }
            }
            Grid::Fig2 { benchmarks, .. } => {
                for &bench in benchmarks {
                    for variant in [Variant::SCALAR, Variant::VIS] {
                        cells.push(CellSpec::Counted {
                            label: format!("{}/{}", bench.name(), variant_label(variant)),
                            bench,
                            variant,
                        });
                    }
                }
            }
            Grid::Fig3 { benchmarks } => {
                for &bench in benchmarks {
                    for variant in [Variant::VIS, Variant::VIS_PF] {
                        cells.push(CellSpec::Timed {
                            label: format!("{}/{}", bench.name(), variant_label(variant)),
                            bench,
                            cpu: Arch::Ooo4.cpu(),
                            mem: MemConfig::default(),
                            variant,
                        });
                    }
                }
            }
            Grid::Sweep {
                cache,
                benchmarks,
                bytes,
            } => {
                for &bench in benchmarks {
                    for &b in bytes {
                        cells.push(CellSpec::Timed {
                            label: format!("{}/{}={}", bench.name(), cache.key(), b),
                            bench,
                            cpu: Arch::Ooo4.cpu(),
                            mem: cache.mem_config(b),
                            variant: Variant::VIS,
                        });
                    }
                }
            }
            Grid::Tables => {}
            Grid::Ablation {
                benchmarks,
                sections,
                histogram,
            } => {
                for section in sections {
                    for &bench in benchmarks {
                        cells.push(CellSpec::Timed {
                            label: format!("{}/{}/base", bench.name(), section.key),
                            bench,
                            cpu: CpuConfig::ooo_4way(),
                            mem: MemConfig::default(),
                            variant: Variant::VIS,
                        });
                        for (&value, header) in
                            section.values.iter().zip(section.headers[1..].iter())
                        {
                            let (cpu, mem) = section.param.config(value);
                            cells.push(CellSpec::Timed {
                                label: format!("{}/{}/{}", bench.name(), section.key, header),
                                bench,
                                cpu,
                                mem,
                                variant: Variant::VIS,
                            });
                        }
                    }
                }
                for &bench in &histogram.benchmarks {
                    for (label, variant) in &histogram.variants {
                        cells.push(CellSpec::Timed {
                            label: format!("{}/mshr-occupancy/{}", bench.name(), label),
                            bench,
                            cpu: Arch::Ooo4.cpu(),
                            mem: MemConfig::default(),
                            variant: *variant,
                        });
                    }
                }
            }
            Grid::Kernels14 { kernels } => {
                for &kernel in kernels {
                    cells.push(CellSpec::Kernel {
                        label: format!("k14.{}", kernel.name()),
                        kernel,
                    });
                }
            }
        }
        cells
    }
}

/// Display label for a variant (the manifest vocabulary).
pub fn variant_label(v: Variant) -> &'static str {
    match (v.vis, v.prefetch) {
        (false, _) => "base",
        (true, false) => "vis",
        (true, true) => "vis+pf",
    }
}

/// One self-contained simulation cell of a manifest, as scheduled by
/// the `visim-serve` daemon.
#[derive(Debug, Clone)]
pub enum CellSpec {
    /// A detailed-timing cell.
    Timed {
        /// Human-readable cell label (unique within the manifest).
        label: String,
        /// The benchmark.
        bench: Bench,
        /// Processor configuration.
        cpu: CpuConfig,
        /// Memory-system configuration.
        mem: MemConfig,
        /// Code variant.
        variant: Variant,
    },
    /// A functional counting cell.
    Counted {
        /// Human-readable cell label.
        label: String,
        /// The benchmark.
        bench: Bench,
        /// Code variant.
        variant: Variant,
    },
    /// One appendix kernel (two counted + two timed runs).
    Kernel {
        /// Human-readable cell label.
        label: String,
        /// The kernel.
        kernel: KernelId,
    },
}

impl CellSpec {
    /// The cell's display label.
    pub fn label(&self) -> &str {
        match self {
            CellSpec::Timed { label, .. }
            | CellSpec::Counted { label, .. }
            | CellSpec::Kernel { label, .. } => label,
        }
    }

    /// The cell's full identity under workload `size`: every input the
    /// result depends on, in one string. Used by the serve daemon as
    /// its single-flight coalescing key — parallel requests for the
    /// same identity share one simulation. (The result store keys cells
    /// the same way; this string only ever gates deduplication, so it
    /// does not need to match the store's byte-exact key text.)
    pub fn identity(&self, size: &WorkloadSize) -> String {
        match self {
            CellSpec::Timed {
                bench,
                cpu,
                mem,
                variant,
                ..
            } => format!(
                "timed|{}|{}|{size:?}|cpu={cpu:?}|mem={mem:?}",
                bench.name(),
                variant_label(*variant)
            ),
            CellSpec::Counted { bench, variant, .. } => {
                format!(
                    "counted|{}|{}|{size:?}",
                    bench.name(),
                    variant_label(*variant)
                )
            }
            CellSpec::Kernel { kernel, .. } => format!("kernel|{}|{size:?}", kernel.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_manifests_parse_and_enumerate_their_grids() {
        let expect = [
            ("fig1", 72),
            ("fig2", 24),
            ("fig3", 18),
            ("sweep_l1", 60),
            ("sweep_l2", 60),
            ("tables", 0),
            ("ablation", 70),
            ("kernels14", 14),
        ];
        for (name, cells) in expect {
            let m = Manifest::builtin(name)
                .unwrap_or_else(|| panic!("builtin manifest {name} missing"));
            assert_eq!(m.name, name);
            assert!(!m.about.is_empty());
            let specs = m.cells();
            assert_eq!(specs.len(), cells, "{name} cell count");
            // Labels are unique: the serve daemon keys progress on them.
            let mut labels: Vec<_> = specs.iter().map(|c| c.label().to_string()).collect();
            labels.sort();
            labels.dedup();
            assert_eq!(labels.len(), specs.len(), "{name} labels collide");
        }
        assert_eq!(Manifest::builtin_names().len(), 8);
        assert!(Manifest::builtin("no-such-experiment").is_none());
    }

    #[test]
    fn identities_distinguish_configurations() {
        let m = Manifest::builtin("fig1").unwrap();
        let size = WorkloadSize::tiny();
        let mut ids: Vec<_> = m.cells().iter().map(|c| c.identity(&size)).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 72, "every fig1 cell has a distinct identity");
        // The same cell at a different size is a different identity.
        let tiny = m.cells()[0].identity(&WorkloadSize::tiny());
        let study = m.cells()[0].identity(&WorkloadSize::study());
        assert_ne!(tiny, study);
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(Manifest::parse("{").is_err());
        assert!(Manifest::parse("{}").is_err());
        let wrong_schema = r#"{"schema":"visim-manifest-v0","name":"x","about":"y",
                              "grid":{"kind":"tables"}}"#;
        assert!(Manifest::parse(wrong_schema)
            .unwrap_err()
            .contains("schema"));
        let bad_bench = r#"{"schema":"visim-manifest-v1","name":"x","about":"y",
            "grid":{"kind":"fig2","benchmarks":["no-such-bench"],
                    "mispredict_highlights":[]}}"#;
        assert!(Manifest::parse(bad_bench)
            .unwrap_err()
            .contains("no-such-bench"));
        let bad_kind = r#"{"schema":"visim-manifest-v1","name":"x","about":"y",
                           "grid":{"kind":"fig9"}}"#;
        assert!(Manifest::parse(bad_kind).unwrap_err().contains("fig9"));
    }

    #[test]
    fn ablation_params_derive_configs_from_the_ooo_baseline() {
        let (cpu, mem) = AblationParam::IssueWidth.config(2);
        assert_eq!(cpu.issue_width, 2);
        assert_eq!(mem.l1.mshrs, MemConfig::default().l1.mshrs);
        let (cpu, mem) = AblationParam::MshrCount.config(24);
        assert_eq!(mem.l1.mshrs, 24);
        assert_eq!(mem.l2.mshrs, 24);
        assert_eq!(cpu.issue_width, CpuConfig::ooo_4way().issue_width);
        let (cpu, _) = AblationParam::BlockingLoads.config(1);
        assert!(cpu.blocking_loads);
        let (cpu, _) = AblationParam::MispredictPenalty.config(20);
        assert_eq!(cpu.mispredict_penalty, 20);
    }

    #[test]
    fn variant_vocabulary_round_trips() {
        for (name, v) in [
            ("base", Variant::SCALAR),
            ("vis", Variant::VIS),
            ("vis+pf", Variant::VIS_PF),
        ] {
            assert_eq!(variant_from_name(name).unwrap(), v);
            assert_eq!(variant_label(v), name);
        }
        assert_eq!(variant_from_name("VIS+PF").unwrap(), Variant::VIS_PF);
        assert!(variant_from_name("mmx").is_err());
    }
}
