//! `visim` — the study façade reproducing Ranganathan, Adve & Jouppi,
//! *Performance of Image and Video Processing with General-Purpose
//! Processors and Media ISA Extensions* (ISCA 1999).
//!
//! This crate ties the simulator substrate (`visim-cpu`, `visim-mem`,
//! `visim-trace`) to the twelve workloads (`media-kernels`,
//! `media-jpeg`, `media-mpeg`) and provides:
//!
//! * [`bench`](mod@bench) — the paper's 12-benchmark registry (Table 1)
//!   and the code that drives each benchmark through a
//!   [`visim_cpu::SimSink`];
//! * [`config`] — the architecture variations of Figure 1 and the
//!   Table 2/3 machine parameters;
//! * [`experiment`] — runners that regenerate every figure and table:
//!   Figure 1 (ILP × VIS execution-time breakdowns), Figure 2 (dynamic
//!   instruction mix), Figure 3 (software prefetching), and the §4.1
//!   cache-size sweeps;
//! * [`report`] — plain-text rendering of the results;
//! * [`trace_cache`] — the record-once/replay-many stream cache the
//!   runners use to avoid re-emitting the same dynamic instruction
//!   stream for every machine configuration;
//! * [`store`] — the journaled content-addressed result store behind
//!   crash-safe `--resume` runs: finished cells (successes *and*
//!   deterministic failures) persist atomically and are served back
//!   instead of re-simulated;
//! * [`journal`] — the append-only run journal recording cell
//!   completion order, used to report resume progress;
//! * [`sampling`] — SMARTS-style sampled-simulation configuration:
//!   detailed windows + functional warming, opt-in via
//!   `--sample`/`VISIM_SAMPLE`, with exact simulation the byte-stable
//!   default;
//! * [`manifest`] — declarative `visim-manifest-v1` experiment
//!   descriptions (`results/manifests/*.json`): benchmarks, config
//!   axes, variants and titles as data, executed by
//!   [`experiment::run_manifest`] and served cell-wise by the
//!   `visim-serve` daemon;
//! * [`kernels14`] — the appendix 14-kernel VSDK sweep driver;
//! * [`artifact`] — `visim-results-v2` JSON cell builders pairing each
//!   text row with a machine-readable record (see `visim-obs`).
//!
//! # Example
//!
//! ```no_run
//! use visim::bench::{Bench, WorkloadSize};
//! use visim::config::Arch;
//! use visim::experiment;
//!
//! let size = WorkloadSize::tiny();
//! let s = experiment::run_timed(Bench::Addition, Arch::Ooo4, None, &size,
//!                               media_kernels::Variant::VIS);
//! println!("addition/VIS: {} cycles", s.cycles());
//! ```

pub mod artifact;
pub mod bench;
pub mod config;
pub mod experiment;
pub mod journal;
pub mod kernels14;
pub mod manifest;
pub mod report;
pub mod sampling;
pub mod store;
pub mod trace_cache;

pub use bench::{Bench, WorkloadSize};
pub use config::Arch;
