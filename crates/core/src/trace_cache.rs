//! Process-wide cache of recorded instruction streams.
//!
//! A dynamic instruction stream is a pure function of (benchmark,
//! workload size, code variant) — the machine configuration only
//! *consumes* it. The experiment runners therefore record each stream
//! once (`visim_trace::Recorder`) and replay it into every pipeline
//! configuration that needs it; this module is the shared, keyed store
//! that makes the "once" hold across cells, figure sections, and — via
//! an optional on-disk spill — across processes.
//!
//! * **Keying.** [`key_for`] derives `"<bench>.<variant bits>.<fnv1a64
//!   of the workload geometry's Debug form>"`. Anything that can change
//!   the emitted stream is in the key; anything that cannot (arch,
//!   cache sizes, tracing) is not.
//! * **Budget.** The resident set is LRU-bounded by `VISIM_TRACE_MB`
//!   (default 1024 MB; `--trace-cache-mb` overrides). The same budget
//!   caps a single capture: a stream that outgrows it poisons its
//!   recorder and the cell falls back to direct emission. The default
//!   deliberately does *not* hold the full study suite (~2.5 GB of
//!   decoded streams): evictions cost re-loads, but on virtualized
//!   hosts with on-demand paging the cost of first-touch page faults
//!   grows with resident set size, and a measured study run with a
//!   4 GB budget was slower end to end than with 1 GB — the extra
//!   residency made every later allocation pay more than the evicted
//!   re-loads saved.
//! * **Opt-out.** `VISIM_NO_TRACE_CACHE=1` (or `--no-trace-cache`)
//!   disables the cache entirely; every cell then emits directly, and
//!   output must be byte-identical either way.
//! * **Disk spill.** When `VISIM_TRACE_DIR` names a directory, stores
//!   also write `<dir>/<key>.vtrc` (versioned + checksummed, see
//!   `visim_trace::Recorded::encode`) and lookups fall back to it, so a
//!   second process starts warm. A file that fails validation is
//!   deleted and re-recorded — corruption degrades to a cache miss,
//!   never to a wrong result.
//! * **Spill policy.** A disk spill only pays off when re-*emitting*
//!   the stream costs more than reading and decoding it back. Most of
//!   the twelve workloads emit at ~1 GB/s of encoded stream — far
//!   faster than a disk round-trip — so spilling them is pure
//!   overhead (measured: the study-size sweep binaries spent ~12 s
//!   writing and ~5 s reloading 450 MB of traces to save under 1 s of
//!   emission, making the warm pass *slower* than the cold one).
//!   [`store`] therefore spills only streams whose measured emission
//!   rate falls below `VISIM_SPILL_EMIT_MBPS` (default 200 MB/s —
//!   i.e. the workload regenerates its stream slower than a disk read
//!   could): skipped spills count in `trace_cache.spill_skipped`. Set
//!   the threshold huge to force every stream to disk (the verify
//!   gates do, to exercise the corruption path) or to `0` to never
//!   spill. The policy shifts only wall clock and `trace_cache.*`
//!   counters — never results.
//!
//! Results never depend on cache state: a replayed stream pushes
//! bit-identical `Inst` values in the original order, so hit, miss,
//! and disabled paths produce byte-identical simulations. Only the
//! wall-clock observability (`cell.*` and `trace_cache.*` counters in
//! the JSON artifacts) reflects which path ran.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use media_kernels::Variant;
use visim_obs::Registry;
use visim_trace::Recorded;
use visim_util::fnv1a64;

use crate::bench::WorkloadSize;

/// Resident-set budget in megabytes (default 1024).
pub const TRACE_MB_ENV: &str = "VISIM_TRACE_MB";
/// Set to `1` to disable the trace cache (every cell emits directly).
pub const NO_TRACE_CACHE_ENV: &str = "VISIM_NO_TRACE_CACHE";
/// Directory for the on-disk spill; unset means memory-only.
pub const TRACE_DIR_ENV: &str = "VISIM_TRACE_DIR";
/// Emission-rate threshold (MB/s) below which a stream is worth
/// spilling to disk; see the module doc's spill policy.
pub const SPILL_EMIT_MBPS_ENV: &str = "VISIM_SPILL_EMIT_MBPS";

const DEFAULT_BUDGET_MB: u64 = 1024;
const DEFAULT_SPILL_EMIT_MBPS: u64 = 200;

// CLI overrides, set by the binaries' shared arg parser before any
// simulation runs (they take precedence over the environment).
static CLI_DISABLE: AtomicBool = AtomicBool::new(false);
static CLI_BUDGET_MB: AtomicU64 = AtomicU64::new(0); // 0 = unset

/// Disable the cache for this process (the `--no-trace-cache` flag).
pub fn set_cli_disabled() {
    CLI_DISABLE.store(true, Ordering::Relaxed);
}

/// Override the resident budget (the `--trace-cache-mb N` flag).
pub fn set_cli_budget_mb(mb: u64) {
    CLI_BUDGET_MB.store(mb.max(1), Ordering::Relaxed);
}

/// True when recording/replay may be used at all.
pub fn enabled() -> bool {
    !CLI_DISABLE.load(Ordering::Relaxed) && std::env::var(NO_TRACE_CACHE_ENV).as_deref() != Ok("1")
}

/// The resident budget in bytes (also the per-capture poison limit).
pub fn budget_bytes() -> usize {
    let mb = match CLI_BUDGET_MB.load(Ordering::Relaxed) {
        0 => std::env::var(TRACE_MB_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(DEFAULT_BUDGET_MB),
        cli => cli,
    };
    usize::try_from(mb.saturating_mul(1 << 20)).unwrap_or(usize::MAX)
}

fn disk_dir() -> Option<String> {
    std::env::var(TRACE_DIR_ENV).ok().filter(|d| !d.is_empty())
}

/// The cache key for a cell, or `None` when the cache is disabled.
/// Everything the emitted stream depends on is folded in: benchmark,
/// variant bits, and the full workload geometry (seed included).
pub fn key_for(bench: &str, size: &WorkloadSize, variant: Variant) -> Option<String> {
    if !enabled() {
        return None;
    }
    Some(format!(
        "{bench}.{}{}.{:016x}",
        if variant.vis { 'v' } else { 's' },
        if variant.prefetch { 'p' } else { '-' },
        fnv1a64(format!("{size:?}").as_bytes())
    ))
}

// Observability counters (process-wide, exported into the JSON
// artifacts next to the worker-pool metrics).
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static DISK_LOADS: AtomicU64 = AtomicU64::new(0);
static DISK_STORES: AtomicU64 = AtomicU64::new(0);
static DISK_PURGED: AtomicU64 = AtomicU64::new(0);
static SPILL_SKIPPED: AtomicU64 = AtomicU64::new(0);

/// Snapshot the cache counters into `reg` (`trace_cache.*` namespace).
pub fn export_metrics(reg: &mut Registry) {
    reg.set("trace_cache.hits", HITS.load(Ordering::Relaxed));
    reg.set("trace_cache.misses", MISSES.load(Ordering::Relaxed));
    reg.set("trace_cache.evictions", EVICTIONS.load(Ordering::Relaxed));
    reg.set("trace_cache.disk_loads", DISK_LOADS.load(Ordering::Relaxed));
    reg.set(
        "trace_cache.disk_stores",
        DISK_STORES.load(Ordering::Relaxed),
    );
    reg.set(
        "trace_cache.disk_purged",
        DISK_PURGED.load(Ordering::Relaxed),
    );
    reg.set(
        "trace_cache.spill_skipped",
        SPILL_SKIPPED.load(Ordering::Relaxed),
    );
    let (bytes, entries) = {
        let lru = state().lock().expect("trace cache lock");
        (lru.bytes as u64, lru.order.len() as u64)
    };
    reg.set("trace_cache.resident_bytes", bytes);
    reg.set("trace_cache.resident_entries", entries);
}

/// The resident store: keyed `Arc<Recorded>` with least-recently-used
/// eviction on a byte budget. `order` holds keys from cold (front) to
/// hot (back).
#[derive(Default)]
struct Lru {
    map: HashMap<String, Arc<Recorded>>,
    order: Vec<String>,
    bytes: usize,
}

impl Lru {
    fn touch(&mut self, id: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == id) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    fn lookup(&mut self, id: &str) -> Option<Arc<Recorded>> {
        let rec = self.map.get(id).cloned()?;
        self.touch(id);
        Some(rec)
    }

    /// Insert under `id`, evicting cold entries until the budget holds.
    /// A stream bigger than the whole budget is not kept resident at
    /// all (the caller still owns its `Arc` for the current cell).
    /// Returns the number of evictions.
    fn insert(&mut self, id: String, rec: Arc<Recorded>, budget: usize) -> u64 {
        let bytes = rec.approx_bytes();
        if bytes > budget {
            return 0;
        }
        if let Some(old) = self.map.remove(&id) {
            self.bytes -= old.approx_bytes();
            self.order.retain(|k| k != &id);
        }
        let mut evicted = 0;
        while self.bytes + bytes > budget {
            let cold = self.order.remove(0);
            let old = self.map.remove(&cold).expect("order tracks map");
            self.bytes -= old.approx_bytes();
            evicted += 1;
        }
        self.bytes += bytes;
        self.map.insert(id.clone(), rec);
        self.order.push(id);
        evicted
    }

    /// Evict cold entries until `incoming` more bytes would fit in
    /// `budget`, returning the eviction count. Called *before* an
    /// expensive disk load rather than after it: dropping the cold
    /// streams first hands their pages back to the OS, so the fresh
    /// multi-hundred-MB allocations the load is about to make fault in
    /// against a small resident set. (On virtualized hosts with
    /// on-demand paging, first-touch cost grows with resident set
    /// size — loading the biggest stream at ~1 GB RSS measured ~3x
    /// slower than the same load into a lean process.)
    fn pre_evict(&mut self, incoming: usize, budget: usize) -> u64 {
        let mut evicted = 0;
        while !self.order.is_empty() && self.bytes + incoming > budget {
            let cold = self.order.remove(0);
            let old = self.map.remove(&cold).expect("order tracks map");
            self.bytes -= old.approx_bytes();
            evicted += 1;
        }
        evicted
    }
}

fn state() -> &'static Mutex<Lru> {
    static STATE: std::sync::OnceLock<Mutex<Lru>> = std::sync::OnceLock::new();
    STATE.get_or_init(|| Mutex::new(Lru::default()))
}

/// Look up a stream: resident store first, then the on-disk spill.
/// Counts one hit or one miss.
pub fn lookup(id: &str) -> Option<Arc<Recorded>> {
    if let Some(rec) = state().lock().expect("trace cache lock").lookup(id) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Some(rec);
    }
    if let Some(dir) = disk_dir() {
        // Make room *before* reading: the decoded stream lands in
        // roughly 1.5x its encoded bytes of fresh allocations, and
        // first-touching them is far cheaper against a small resident
        // set (see [`Lru::pre_evict`]). An over-estimate only evicts a
        // stream the insert below would have evicted anyway.
        if let Ok(md) = std::fs::metadata(disk_path(&dir, id)) {
            let estimate = usize::try_from(md.len())
                .unwrap_or(usize::MAX)
                .saturating_mul(3)
                / 2;
            let evicted = state()
                .lock()
                .expect("trace cache lock")
                .pre_evict(estimate, budget_bytes());
            EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
        }
        if let Some(rec) = disk_load(&dir, id) {
            let rec = Arc::new(rec);
            let evicted = state().lock().expect("trace cache lock").insert(
                id.to_string(),
                rec.clone(),
                budget_bytes(),
            );
            EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
            HITS.fetch_add(1, Ordering::Relaxed);
            DISK_LOADS.fetch_add(1, Ordering::Relaxed);
            return Some(rec);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    None
}

/// Store a freshly captured stream: into the resident LRU and — when
/// `VISIM_TRACE_DIR` is set *and* the stream is expensive enough to
/// regenerate that a disk round-trip can win (see
/// [`spill_worthwhile`]) — onto disk. `emit` is the measured wall
/// clock of the recording pass.
pub fn store(id: &str, rec: &Arc<Recorded>, emit: std::time::Duration) {
    let evicted = state().lock().expect("trace cache lock").insert(
        id.to_string(),
        rec.clone(),
        budget_bytes(),
    );
    EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    if let Some(dir) = disk_dir() {
        if !spill_worthwhile(rec.approx_bytes(), emit, spill_emit_mbps()) {
            SPILL_SKIPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if disk_store(&dir, id, rec).is_ok() {
            DISK_STORES.fetch_add(1, Ordering::Relaxed);
        }
        // A failed spill (full disk, permissions) is silently a
        // memory-only cache — never a simulation failure.
    }
}

/// The configured emission-rate threshold in MB/s (default 200).
fn spill_emit_mbps() -> u64 {
    std::env::var(SPILL_EMIT_MBPS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_SPILL_EMIT_MBPS)
}

/// Is a stream of `bytes` encoded bytes, recorded in `emit` wall
/// clock, worth spilling to disk? Only when the workload regenerates
/// it *slower* than `threshold_mbps` — i.e. re-emission would cost
/// more than a disk read of the same bytes. Fast emitters (most of the
/// kernel workloads run at ~1 GB/s of encoded stream) are cheaper to
/// re-record than to reload, so spilling them only burns I/O.
fn spill_worthwhile(bytes: usize, emit: std::time::Duration, threshold_mbps: u64) -> bool {
    let micros = emit.as_micros().max(1) as u64;
    // bytes/micros == MB/s (both are factors of 10^6).
    let emit_mbps = bytes as u64 / micros;
    emit_mbps < threshold_mbps
}

fn disk_path(dir: &str, id: &str) -> std::path::PathBuf {
    std::path::Path::new(dir).join(format!("{id}.vtrc"))
}

/// Load and validate `<dir>/<id>.vtrc`. Any failure (missing file,
/// bad magic/version/key, checksum mismatch) returns `None`; a file
/// that exists but fails validation is *purged* so the slot is
/// re-recorded cleanly instead of erroring on every run.
fn disk_load(dir: &str, id: &str) -> Option<Recorded> {
    let path = disk_path(dir, id);
    let bytes = std::fs::read(&path).ok()?;
    match Recorded::decode(&bytes, id) {
        Ok(rec) => Some(rec),
        Err(reason) => {
            if std::fs::remove_file(&path).is_ok() {
                DISK_PURGED.fetch_add(1, Ordering::Relaxed);
                eprintln!("trace cache: purged stale {} ({reason})", path.display());
            }
            None
        }
    }
}

/// Write `<dir>/<id>.vtrc` atomically via the workspace's shared
/// temp-file + rename path
/// ([`visim_util::atomic::write_atomic_unsynced`]), so a concurrent
/// reader sees either the complete old file or the complete new one. The
/// `spill.corrupt` fault point flips one byte mid-payload before the
/// write — the framing checksum then rejects the spill on reload and
/// [`disk_load`] purges it, which is the degradation the fault gate
/// proves out.
fn disk_store(dir: &str, id: &str, rec: &Recorded) -> std::io::Result<()> {
    let mut bytes = rec.encode(id);
    if visim_util::fault::fires("spill.corrupt", id) {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
    }
    // Unsynced on purpose: the spill is a cache whose reader validates
    // a checksum and purges damage, so a crash-torn file degrades to a
    // miss — and `sync_all` on hundreds of MB of traces dominated the
    // cold pass of the sweep binaries.
    visim_util::atomic::write_atomic_unsynced(disk_path(dir, id), &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use visim_isa::{Inst, Op, Reg};

    fn stream_of(n: u32) -> Arc<Recorded> {
        let mut rec = Recorded::new();
        for i in 0..n {
            rec.push(Inst::compute(Op::IntAlu, i as u64, Reg(i), [Reg::NONE; 3]));
        }
        Arc::new(rec)
    }

    #[test]
    fn lru_evicts_coldest_first_and_tracks_bytes() {
        let mut lru = Lru::default();
        let one = stream_of(10).approx_bytes();
        let budget = 3 * one;
        assert_eq!(lru.insert("a".into(), stream_of(10), budget), 0);
        assert_eq!(lru.insert("b".into(), stream_of(10), budget), 0);
        assert_eq!(lru.insert("c".into(), stream_of(10), budget), 0);
        // Touch "a" so "b" is now the coldest.
        assert!(lru.lookup("a").is_some());
        assert_eq!(lru.insert("d".into(), stream_of(10), budget), 1);
        assert!(lru.lookup("b").is_none(), "coldest entry evicted");
        assert!(lru.lookup("a").is_some());
        assert!(lru.lookup("c").is_some());
        assert!(lru.lookup("d").is_some());
        assert_eq!(lru.bytes, 3 * one);
    }

    #[test]
    fn lru_skips_entries_bigger_than_the_whole_budget() {
        let mut lru = Lru::default();
        let big = stream_of(1000);
        assert_eq!(lru.insert("big".into(), big.clone(), 16), 0);
        assert!(lru.lookup("big").is_none());
        assert_eq!(lru.bytes, 0);
    }

    #[test]
    fn lru_reinsert_replaces_in_place() {
        let mut lru = Lru::default();
        let budget = 10 * stream_of(10).approx_bytes();
        lru.insert("a".into(), stream_of(10), budget);
        lru.insert("a".into(), stream_of(20), budget);
        assert_eq!(lru.bytes, stream_of(20).approx_bytes());
        assert_eq!(lru.order.len(), 1);
        assert_eq!(lru.lookup("a").unwrap().len(), 20);
    }

    #[test]
    fn disk_round_trip_and_corruption_purge() {
        let dir = std::env::temp_dir().join(format!("visim-tc-test-{}", std::process::id()));
        let dir = dir.to_str().unwrap().to_string();
        let rec = stream_of(50);
        disk_store(&dir, "k1", &rec).expect("spill");
        let back = disk_load(&dir, "k1").expect("reload");
        assert_eq!(back.len(), 50);
        // Wrong id: validation fails and the (misnamed) file is purged.
        std::fs::rename(disk_path(&dir, "k1"), disk_path(&dir, "k2")).unwrap();
        assert!(disk_load(&dir, "k2").is_none());
        assert!(!disk_path(&dir, "k2").exists(), "invalid file purged");
        // Corrupt bytes: same treatment.
        disk_store(&dir, "k3", &rec).expect("spill");
        let p = disk_path(&dir, "k3");
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&p, &bytes).unwrap();
        assert!(disk_load(&dir, "k3").is_none());
        assert!(!p.exists(), "corrupt file purged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_policy_keeps_slow_emitters_and_skips_fast_ones() {
        use std::time::Duration;
        let mb = 1 << 20;
        // 100 MB emitted in 1 s = 100 MB/s: below the 200 MB/s default
        // threshold, re-emission is slow, spilling wins.
        assert!(spill_worthwhile(100 * mb, Duration::from_secs(1), 200));
        // The same bytes in 100 ms = 1 GB/s: re-emission beats any
        // disk read, skip the spill.
        assert!(!spill_worthwhile(100 * mb, Duration::from_millis(100), 200));
        // Threshold 0 never spills; a huge threshold always does.
        assert!(!spill_worthwhile(100 * mb, Duration::from_secs(60), 0));
        assert!(spill_worthwhile(
            100 * mb,
            Duration::from_micros(1),
            u64::MAX
        ));
        // A zero-duration emit cannot divide by zero.
        assert!(!spill_worthwhile(mb, Duration::ZERO, 200));
    }

    #[test]
    fn keys_separate_benchmarks_variants_and_sizes() {
        let s1 = WorkloadSize::tiny();
        let mut s2 = WorkloadSize::tiny();
        s2.seed += 1;
        let k = |b: &str, s: &WorkloadSize, v: Variant| key_for(b, s, v).unwrap();
        assert_ne!(
            k("conv", &s1, Variant::VIS),
            k("conv", &s1, Variant::SCALAR)
        );
        assert_ne!(
            k("conv", &s1, Variant::VIS),
            k("conv", &s1, Variant::VIS_PF)
        );
        assert_ne!(k("conv", &s1, Variant::VIS), k("blend", &s1, Variant::VIS));
        assert_ne!(k("conv", &s1, Variant::VIS), k("conv", &s2, Variant::VIS));
        assert_eq!(k("conv", &s1, Variant::VIS), k("conv", &s1, Variant::VIS));
    }
}
