//! Experiment runners for every figure and table of the paper.

use media_kernels::Variant;
use visim_cpu::{CountingSink, CpuStats, Pipeline, Summary};
use visim_mem::MemConfig;

use crate::bench::{Bench, WorkloadSize};
use crate::config::Arch;

/// Run one benchmark through the detailed timing model.
pub fn run_timed(
    bench: Bench,
    arch: Arch,
    mem: Option<MemConfig>,
    size: &WorkloadSize,
    variant: Variant,
) -> Summary {
    let mut pipe = Pipeline::new(arch.cpu(), mem.unwrap_or_default());
    bench.run(&mut pipe, size, variant);
    pipe.finish()
}

/// Run one benchmark through the functional counter (fast; used for the
/// instruction-mix experiments).
pub fn run_counted(bench: Bench, size: &WorkloadSize, variant: Variant) -> CpuStats {
    let mut sink = CountingSink::new();
    bench.run(&mut sink, size, variant);
    sink.finish()
}

/// One bar of Figure 1.
#[derive(Debug, Clone)]
pub struct Fig1Bar {
    /// Architecture variation.
    pub arch: Arch,
    /// With or without VIS.
    pub vis: bool,
    /// Timing result.
    pub summary: Summary,
}

/// Figure 1 for one benchmark: six bars (3 architectures × {base, VIS}).
pub fn fig1_bench(bench: Bench, size: &WorkloadSize) -> Vec<Fig1Bar> {
    let mut bars = Vec::with_capacity(6);
    for vis in [false, true] {
        let variant = if vis { Variant::VIS } else { Variant::SCALAR };
        for arch in Arch::all() {
            let summary = run_timed(bench, arch, None, size, variant);
            bars.push(Fig1Bar {
                arch,
                vis,
                summary,
            });
        }
    }
    bars
}

/// One pair of Figure 2 bars: base and VIS instruction mixes.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// The benchmark.
    pub bench: Bench,
    /// Scalar-variant counts.
    pub base: CpuStats,
    /// VIS-variant counts.
    pub vis: CpuStats,
}

/// Figure 2: dynamic (retired) instruction counts, base vs. VIS.
pub fn fig2(size: &WorkloadSize) -> Vec<Fig2Row> {
    Bench::all()
        .into_iter()
        .map(|bench| Fig2Row {
            bench,
            base: run_counted(bench, size, Variant::SCALAR),
            vis: run_counted(bench, size, Variant::VIS),
        })
        .collect()
}

/// One pair of Figure 3 bars: VIS and VIS+prefetch timings.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// The benchmark.
    pub bench: Bench,
    /// VIS baseline.
    pub vis: Summary,
    /// VIS + software prefetching.
    pub pf: Summary,
}

/// Figure 3: software prefetching on the benchmarks with memory stall.
pub fn fig3(size: &WorkloadSize) -> Vec<Fig3Row> {
    Bench::prefetch_set()
        .into_iter()
        .map(|bench| Fig3Row {
            bench,
            vis: run_timed(bench, Arch::Ooo4, None, size, Variant::VIS),
            pf: run_timed(bench, Arch::Ooo4, None, size, Variant::VIS_PF),
        })
        .collect()
}

/// A cache-size sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Cache size in bytes.
    pub bytes: u64,
    /// Timing result.
    pub summary: Summary,
}

/// §4.1 L2 sweep: vary the L2 size with the L1 fixed.
pub fn l2_sweep(bench: Bench, size: &WorkloadSize, l2_sizes: &[u64]) -> Vec<SweepPoint> {
    l2_sizes
        .iter()
        .map(|&bytes| SweepPoint {
            bytes,
            summary: run_timed(
                bench,
                Arch::Ooo4,
                Some(MemConfig::default().with_l2_size(bytes)),
                size,
                Variant::VIS,
            ),
        })
        .collect()
}

/// §4.1 L1 sweep: vary the L1 size with the L2 fixed.
pub fn l1_sweep(bench: Bench, size: &WorkloadSize, l1_sizes: &[u64]) -> Vec<SweepPoint> {
    l1_sizes
        .iter()
        .map(|&bytes| SweepPoint {
            bytes,
            summary: run_timed(
                bench,
                Arch::Ooo4,
                Some(MemConfig::default().with_l1_size(bytes)),
                size,
                Variant::VIS,
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WorkloadSize {
        let mut s = WorkloadSize::tiny();
        s.image_w = 32;
        s.image_h = 32;
        s.dotprod_n = 512;
        s
    }

    #[test]
    fn timed_run_produces_consistent_summary() {
        let s = run_timed(Bench::Addition, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
        assert!(s.cycles() > 0);
        let b = s.cpu.breakdown();
        assert!((b.total() - s.cycles() as f64).abs() < 1e-6);
        assert!(s.cpu.retired > 1000);
    }

    #[test]
    fn ooo_beats_inorder_on_a_kernel() {
        let io = run_timed(Bench::Scaling, Arch::InOrder1, None, &tiny(), Variant::SCALAR);
        let ooo = run_timed(Bench::Scaling, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
        let speedup = io.cycles() as f64 / ooo.cycles() as f64;
        assert!(speedup > 1.5, "ILP speedup {speedup:.2}");
    }

    #[test]
    fn vis_beats_scalar_on_a_kernel() {
        let s = run_timed(Bench::Thresh, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
        let v = run_timed(Bench::Thresh, Arch::Ooo4, None, &tiny(), Variant::VIS);
        let speedup = s.cycles() as f64 / v.cycles() as f64;
        assert!(speedup > 1.5, "VIS speedup {speedup:.2}");
    }

    #[test]
    fn fig2_reduces_instruction_counts_with_vis() {
        let rows = fig2(&tiny());
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(
                r.vis.retired <= r.base.retired,
                "{}: VIS should not add instructions",
                r.bench.name()
            );
        }
        // Kernels see large reductions.
        let addition = rows.iter().find(|r| r.bench == Bench::Addition).unwrap();
        assert!(addition.vis.retired * 2 < addition.base.retired);
    }
}
