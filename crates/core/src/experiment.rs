//! Experiment runners for every figure and table of the paper.
//!
//! Each runner comes in two flavours: a `try_*` form returning
//! `Result<_, SimError>` so the figure binaries can degrade gracefully
//! (one wedged or panicking benchmark becomes an error row, the rest
//! still produce bars), and the original panicking form for callers
//! that treat any failure as fatal.

use std::panic::{catch_unwind, AssertUnwindSafe};

use media_kernels::Variant;
use visim_cpu::{CountingSink, CpuStats, Pipeline, Summary};
use visim_mem::MemConfig;
use visim_util::SimError;

use crate::bench::{Bench, WorkloadSize};
use crate::config::Arch;

/// Environment variable naming a benchmark that must fail: fault
/// injection for exercising the degraded paths end to end.
pub const FAIL_BENCH_ENV: &str = "VISIM_FAIL_BENCH";

fn injected_fault(bench: Bench) -> Result<(), SimError> {
    if std::env::var(FAIL_BENCH_ENV).as_deref() == Ok(bench.name()) {
        return Err(SimError::Workload {
            bench: bench.name().to_string(),
            detail: format!("fault injected via {FAIL_BENCH_ENV}"),
        });
    }
    Ok(())
}

/// Run `f`, converting a workload panic into `SimError::Workload`.
fn catch_workload<R>(bench: Bench, f: impl FnOnce() -> R) -> Result<R, SimError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        SimError::Workload {
            bench: bench.name().to_string(),
            detail,
        }
    })
}

/// Run one benchmark through the detailed timing model, surfacing
/// workload panics, invariant violations, and watchdog aborts as errors.
pub fn try_run_timed(
    bench: Bench,
    arch: Arch,
    mem: Option<MemConfig>,
    size: &WorkloadSize,
    variant: Variant,
) -> Result<Summary, SimError> {
    injected_fault(bench)?;
    let mut pipe = Pipeline::new(arch.cpu(), mem.unwrap_or_default());
    catch_workload(bench, || bench.run(&mut pipe, size, variant))?;
    pipe.try_finish()
}

/// Run one benchmark through the detailed timing model.
pub fn run_timed(
    bench: Bench,
    arch: Arch,
    mem: Option<MemConfig>,
    size: &WorkloadSize,
    variant: Variant,
) -> Summary {
    try_run_timed(bench, arch, mem, size, variant)
        .unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

/// Run one benchmark through the functional counter (fast; used for the
/// instruction-mix experiments), surfacing failures as errors.
pub fn try_run_counted(
    bench: Bench,
    size: &WorkloadSize,
    variant: Variant,
) -> Result<CpuStats, SimError> {
    injected_fault(bench)?;
    let mut sink = CountingSink::new();
    catch_workload(bench, || bench.run(&mut sink, size, variant))?;
    Ok(sink.finish())
}

/// Run one benchmark through the functional counter (fast; used for the
/// instruction-mix experiments).
pub fn run_counted(bench: Bench, size: &WorkloadSize, variant: Variant) -> CpuStats {
    try_run_counted(bench, size, variant)
        .unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

/// One bar of Figure 1.
#[derive(Debug, Clone)]
pub struct Fig1Bar {
    /// Architecture variation.
    pub arch: Arch,
    /// With or without VIS.
    pub vis: bool,
    /// Timing result.
    pub summary: Summary,
}

/// Figure 1 for one benchmark: six bars (3 architectures × {base, VIS}).
/// Fails on the first bar whose simulation fails.
pub fn try_fig1_bench(bench: Bench, size: &WorkloadSize) -> Result<Vec<Fig1Bar>, SimError> {
    let mut bars = Vec::with_capacity(6);
    for vis in [false, true] {
        let variant = if vis { Variant::VIS } else { Variant::SCALAR };
        for arch in Arch::all() {
            let summary = try_run_timed(bench, arch, None, size, variant)?;
            bars.push(Fig1Bar { arch, vis, summary });
        }
    }
    Ok(bars)
}

/// Figure 1 for one benchmark: six bars (3 architectures × {base, VIS}).
pub fn fig1_bench(bench: Bench, size: &WorkloadSize) -> Vec<Fig1Bar> {
    try_fig1_bench(bench, size).unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

/// One pair of Figure 2 bars: base and VIS instruction mixes.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// The benchmark.
    pub bench: Bench,
    /// Scalar-variant counts.
    pub base: CpuStats,
    /// VIS-variant counts.
    pub vis: CpuStats,
}

/// Figure 2: dynamic (retired) instruction counts, base vs. VIS, with
/// per-benchmark failures reported instead of aborting the figure.
pub fn try_fig2(size: &WorkloadSize) -> Vec<(Bench, Result<Fig2Row, SimError>)> {
    Bench::all()
        .into_iter()
        .map(|bench| {
            let row = try_run_counted(bench, size, Variant::SCALAR).and_then(|base| {
                Ok(Fig2Row {
                    bench,
                    base,
                    vis: try_run_counted(bench, size, Variant::VIS)?,
                })
            });
            (bench, row)
        })
        .collect()
}

/// Figure 2: dynamic (retired) instruction counts, base vs. VIS.
pub fn fig2(size: &WorkloadSize) -> Vec<Fig2Row> {
    try_fig2(size)
        .into_iter()
        .map(|(bench, row)| row.unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}")))
        .collect()
}

/// One pair of Figure 3 bars: VIS and VIS+prefetch timings.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// The benchmark.
    pub bench: Bench,
    /// VIS baseline.
    pub vis: Summary,
    /// VIS + software prefetching.
    pub pf: Summary,
}

/// Figure 3: software prefetching on the benchmarks with memory stall,
/// with per-benchmark failures reported instead of aborting the figure.
pub fn try_fig3(size: &WorkloadSize) -> Vec<(Bench, Result<Fig3Row, SimError>)> {
    Bench::prefetch_set()
        .into_iter()
        .map(|bench| {
            let row = try_run_timed(bench, Arch::Ooo4, None, size, Variant::VIS).and_then(|vis| {
                Ok(Fig3Row {
                    bench,
                    vis,
                    pf: try_run_timed(bench, Arch::Ooo4, None, size, Variant::VIS_PF)?,
                })
            });
            (bench, row)
        })
        .collect()
}

/// Figure 3: software prefetching on the benchmarks with memory stall.
pub fn fig3(size: &WorkloadSize) -> Vec<Fig3Row> {
    try_fig3(size)
        .into_iter()
        .map(|(bench, row)| row.unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}")))
        .collect()
}

/// A cache-size sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Cache size in bytes.
    pub bytes: u64,
    /// Timing result.
    pub summary: Summary,
}

/// §4.1 L2 sweep: vary the L2 size with the L1 fixed. Fails on the
/// first sweep point whose simulation fails.
pub fn try_l2_sweep(
    bench: Bench,
    size: &WorkloadSize,
    l2_sizes: &[u64],
) -> Result<Vec<SweepPoint>, SimError> {
    l2_sizes
        .iter()
        .map(|&bytes| {
            Ok(SweepPoint {
                bytes,
                summary: try_run_timed(
                    bench,
                    Arch::Ooo4,
                    Some(MemConfig::default().with_l2_size(bytes)),
                    size,
                    Variant::VIS,
                )?,
            })
        })
        .collect()
}

/// §4.1 L2 sweep: vary the L2 size with the L1 fixed.
pub fn l2_sweep(bench: Bench, size: &WorkloadSize, l2_sizes: &[u64]) -> Vec<SweepPoint> {
    try_l2_sweep(bench, size, l2_sizes)
        .unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

/// §4.1 L1 sweep: vary the L1 size with the L2 fixed. Fails on the
/// first sweep point whose simulation fails.
pub fn try_l1_sweep(
    bench: Bench,
    size: &WorkloadSize,
    l1_sizes: &[u64],
) -> Result<Vec<SweepPoint>, SimError> {
    l1_sizes
        .iter()
        .map(|&bytes| {
            Ok(SweepPoint {
                bytes,
                summary: try_run_timed(
                    bench,
                    Arch::Ooo4,
                    Some(MemConfig::default().with_l1_size(bytes)),
                    size,
                    Variant::VIS,
                )?,
            })
        })
        .collect()
}

/// §4.1 L1 sweep: vary the L1 size with the L2 fixed.
pub fn l1_sweep(bench: Bench, size: &WorkloadSize, l1_sizes: &[u64]) -> Vec<SweepPoint> {
    try_l1_sweep(bench, size, l1_sizes)
        .unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WorkloadSize {
        let mut s = WorkloadSize::tiny();
        s.image_w = 32;
        s.image_h = 32;
        s.dotprod_n = 512;
        s
    }

    #[test]
    fn timed_run_produces_consistent_summary() {
        let s = run_timed(Bench::Addition, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
        assert!(s.cycles() > 0);
        let b = s.cpu.breakdown();
        assert!((b.total() - s.cycles() as f64).abs() < 1e-6);
        assert!(s.cpu.retired > 1000);
    }

    #[test]
    fn ooo_beats_inorder_on_a_kernel() {
        let io = run_timed(
            Bench::Scaling,
            Arch::InOrder1,
            None,
            &tiny(),
            Variant::SCALAR,
        );
        let ooo = run_timed(Bench::Scaling, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
        let speedup = io.cycles() as f64 / ooo.cycles() as f64;
        assert!(speedup > 1.5, "ILP speedup {speedup:.2}");
    }

    #[test]
    fn vis_beats_scalar_on_a_kernel() {
        let s = run_timed(Bench::Thresh, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
        let v = run_timed(Bench::Thresh, Arch::Ooo4, None, &tiny(), Variant::VIS);
        let speedup = s.cycles() as f64 / v.cycles() as f64;
        assert!(speedup > 1.5, "VIS speedup {speedup:.2}");
    }

    #[test]
    fn fig2_reduces_instruction_counts_with_vis() {
        let rows = fig2(&tiny());
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(
                r.vis.retired <= r.base.retired,
                "{}: VIS should not add instructions",
                r.bench.name()
            );
        }
        // Kernels see large reductions.
        let addition = rows.iter().find(|r| r.bench == Bench::Addition).unwrap();
        assert!(addition.vis.retired * 2 < addition.base.retired);
    }
}
