//! Experiment runners for every figure and table of the paper.
//!
//! Each runner comes in two flavours: a `try_*` form returning
//! `Result<_, SimError>` so the figure binaries can degrade gracefully
//! (one wedged or panicking benchmark becomes an error row, the rest
//! still produce bars), and the original panicking form for callers
//! that treat any failure as fatal.
//!
//! # Parallel execution
//!
//! The full result set is ~100+ independent cycle-level simulations
//! (Figure 1 alone is 12 benchmarks × 6 configurations). Every
//! (benchmark, configuration) cell is a pure function of its inputs, so
//! the figure-level runners fan the cells out over a worker pool
//! ([`run_parallel`]) and reassemble the results in deterministic input
//! order: output is bit-identical for any worker count. `VISIM_JOBS`
//! selects the worker count (`1` = the serial reference path, no
//! threads at all; unset/`0` = one worker per available core).

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use media_kernels::Variant;
use visim_cpu::{
    CountingSink, CpuConfig, CpuStats, Pipeline, SimSink, Summary, Traced, WarmingSink,
};
use visim_mem::MemConfig;
use visim_obs::live::{names as live_names, LiveRegistry};
use visim_obs::trace::{Trace, TraceRing};
use visim_obs::Registry;
use visim_trace::{Checkpoint, Recorded, Recorder, ReplayCursor};
use visim_util::{fault, pool, SimError};

use media_kernels::KernelId;

use crate::bench::{Bench, WorkloadSize};
use crate::config::Arch;
use crate::journal;
use crate::kernels14::{self, KernelCell};
use crate::manifest::{AblationSection, Grid, HistogramSection, Manifest, SweepCache};
use crate::sampling::{self, SampleConfig};
use crate::store;
use crate::trace_cache;

/// Environment variable naming a benchmark that must fail: fault
/// injection for exercising the degraded paths end to end.
pub const FAIL_BENCH_ENV: &str = "VISIM_FAIL_BENCH";

/// Environment variable selecting the experiment-executor worker count.
/// `1` forces the serial reference path; `0` or unset auto-detects one
/// worker per available core.
pub const JOBS_ENV: &str = "VISIM_JOBS";

/// The configured worker count: `VISIM_JOBS` if set to a positive
/// integer, otherwise one worker per available core.
pub fn jobs() -> usize {
    match std::env::var(JOBS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_jobs(),
        },
        Err(_) => default_jobs(),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pool observability accumulated across every [`run_parallel`] call in
/// this process: job wall-clock and queue-wait histograms, queue depth,
/// run/job counts. Drained by the figure binaries into their JSON
/// artifacts via [`drain_pool_metrics`].
static POOL_METRICS: Mutex<Option<Registry>> = Mutex::new(None);

/// A process-wide progress callback, called as `(done, total, run_ns)`
/// after every completed [`run_parallel`] job. See
/// [`set_progress_observer`].
pub type ProgressObserver = Box<dyn Fn(usize, usize, u64) + Send + Sync>;

static PROGRESS: Mutex<Option<ProgressObserver>> = Mutex::new(None);

/// An optional live telemetry sink. When installed (the serve daemon
/// does; the figure binaries never do), the experiment layer
/// additionally records request-lifecycle phase timings
/// (store-lookup, simulate) and folds each pool run's batch stats in,
/// so a concurrent reader can watch latency distributions build up
/// mid-run. Never installed → not even an `Instant::now()` is spent,
/// and nothing here ever feeds [`drain_pool_metrics`] — the binaries'
/// artifacts are byte-identical with telemetry compiled in.
static LIVE_METRICS: Mutex<Option<Arc<LiveRegistry>>> = Mutex::new(None);

/// Install (or, with `None`, remove) the process-wide live telemetry
/// sink. See [`LIVE_METRICS`].
pub fn install_live_metrics(live: Option<Arc<LiveRegistry>>) {
    *LIVE_METRICS.lock().expect("live metrics lock") = live;
}

fn live_metrics() -> Option<Arc<LiveRegistry>> {
    LIVE_METRICS.lock().expect("live metrics lock").clone()
}

/// Install (or, with `None`, remove) the process-wide progress
/// observer. The figure binaries install a stderr heartbeat here; the
/// observer only ever sees completion counts and job latencies, so it
/// cannot influence results.
pub fn set_progress_observer(obs: Option<ProgressObserver>) {
    *PROGRESS.lock().expect("progress observer lock") = obs;
}

/// Take (and reset) the pool metrics accumulated so far, merged with
/// snapshots of the trace-cache counters (`trace_cache.*`), the result
/// store counters (`store.*`), the fault-injection counters
/// (`fault.*`), and the per-cell retry counters (`retry.*`). Returns
/// the snapshots alone when no parallel work has run.
pub fn drain_pool_metrics() -> Registry {
    let mut reg = POOL_METRICS
        .lock()
        .expect("pool metrics lock")
        .take()
        .unwrap_or_default();
    trace_cache::export_metrics(&mut reg);
    store::export_metrics(&mut reg);
    fault::export_metrics(&mut reg);
    reg.set("retry.attempts", RETRY_ATTEMPTS.load(Ordering::Relaxed));
    reg.set("retry.recovered", RETRY_RECOVERED.load(Ordering::Relaxed));
    reg.set("retry.exhausted", RETRY_EXHAUSTED.load(Ordering::Relaxed));
    reg
}

/// Run independent experiment jobs on the worker pool ([`jobs`] workers)
/// and return the results in input order. Each job must be a pure
/// function of its captures; the result vector is then independent of
/// the worker count, which is what makes `VISIM_JOBS=1` and
/// `VISIM_JOBS=8` produce byte-identical figures. Per-job wall-clock
/// and queue timings accumulate into the process-wide pool metrics
/// ([`drain_pool_metrics`]); they never influence the results.
pub fn run_parallel<T, F>(work: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let observer = |done: usize, total: usize, run_ns: u64| {
        if let Some(obs) = PROGRESS.lock().expect("progress observer lock").as_ref() {
            obs(done, total, run_ns);
        }
    };
    let (results, stats) = pool::run_ordered_timed_observed(jobs(), work, Some(&observer));
    // The live sink (when installed) gets the same batch stats — the
    // pool queue-wait and run-time distributions join the daemon's
    // instantly-readable registry as well as the end-of-run artifact.
    if let Some(live) = live_metrics() {
        let mut batch = Registry::new();
        stats.export(&mut batch);
        live.merge(&batch);
    }
    let mut guard = POOL_METRICS.lock().expect("pool metrics lock");
    stats.export(guard.get_or_insert_with(Registry::new));
    results
}

/// Per-cell retry policy: a cell whose attempt fails with a
/// *transient* fault (see [`SimError::is_transient`]) is retried up to
/// this many attempts with a short exponential backoff. Deterministic
/// errors — workload panics, invariant violations, cycle-budget
/// exhaustion — fail fast on the first attempt: re-running them would
/// reproduce the same failure and waste the budget.
const MAX_ATTEMPTS: u32 = 3;

static RETRY_ATTEMPTS: AtomicU64 = AtomicU64::new(0);
static RETRY_RECOVERED: AtomicU64 = AtomicU64::new(0);
static RETRY_EXHAUSTED: AtomicU64 = AtomicU64::new(0);

/// Run one cell attempt function under the retry policy. The attempt
/// number is passed in so the `cell.transient` fault point can be
/// scoped to a specific attempt (`VISIM_FAULT=cell.transient:conv:0`
/// fires on attempt 0 and heals on the retry — the recovery path the
/// fault gate exercises).
fn with_retry<T>(mut attempt_fn: impl FnMut(u32) -> Result<T, SimError>) -> Result<T, SimError> {
    let mut attempt = 0u32;
    loop {
        match attempt_fn(attempt) {
            Ok(v) => {
                if attempt > 0 {
                    RETRY_RECOVERED.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(v);
            }
            Err(e) if e.is_transient() && attempt + 1 < MAX_ATTEMPTS => {
                RETRY_ATTEMPTS.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(1u64 << attempt));
                attempt += 1;
            }
            Err(e) => {
                if e.is_transient() {
                    RETRY_EXHAUSTED.fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        }
    }
}

/// The crash-safety wrapper every store-eligible cell runs through.
///
/// On a resume run, a valid store entry under `key` short-circuits the
/// simulation entirely — including entries with `status: failed`, whose
/// recorded deterministic error is re-raised so a resumed run renders
/// the same error row without re-running a known failure. Otherwise the
/// cell computes under the retry policy (with the `cell.transient`
/// fault point armed per attempt) and the outcome — success or
/// deterministic failure, never a transient one — is persisted
/// atomically and journaled.
fn run_cell<T: Clone>(
    key: Option<store::CellKey>,
    tag: &str,
    compute: impl Fn() -> Result<T, SimError>,
    to_entry: impl Fn(&T) -> store::Entry,
    from_entry: impl Fn(store::Entry) -> Option<T>,
) -> Result<(T, bool), SimError> {
    let live = live_metrics();
    if let Some(key) = key.as_ref().filter(|_| store::resume()) {
        let t0 = live.as_ref().map(|_| Instant::now());
        let loaded = store::load(key);
        if let (Some(live), Some(t0)) = (&live, t0) {
            live.observe_latency_ns(
                live_names::PHASE_STORE_LOOKUP,
                t0.elapsed().as_nanos() as u64,
            );
        }
        match loaded {
            Some(store::Entry::Failed(e)) => {
                journal::record(key, "stored-failed");
                return Err(e);
            }
            Some(entry) => {
                if let Some(v) = from_entry(entry) {
                    journal::record(key, "stored");
                    return Ok((v, true));
                }
            }
            None => {}
        }
    }
    let t1 = live.as_ref().map(|_| Instant::now());
    let result = with_retry(|attempt| {
        fault::trip_transient("cell.transient", &format!("{tag}:{attempt}"))?;
        compute()
    });
    if let (Some(live), Some(t1)) = (&live, t1) {
        live.observe_latency_ns(live_names::PHASE_SIMULATE, t1.elapsed().as_nanos() as u64);
    }
    if let Some(key) = &key {
        match &result {
            Ok(v) => {
                store::save(key, &to_entry(v));
                journal::record(key, "ok");
            }
            Err(e) if !e.is_transient() => {
                store::save(key, &store::Entry::Failed(e.clone()));
                journal::record(key, "failed");
            }
            Err(_) => {}
        }
    }
    result.map(|v| (v, false))
}

/// Fire the `cell.panic` fault point (keyed by benchmark/driver tag)
/// inside the panic-catching boundary, so an injected panic takes the
/// exact recovery path a real workload panic does.
fn injected_panic(tag: &str) {
    if fault::fires("cell.panic", tag) {
        panic!("fault injected: cell.panic at {tag}");
    }
}

fn injected_fault(bench: Bench) -> Result<(), SimError> {
    if std::env::var(FAIL_BENCH_ENV).as_deref() == Ok(bench.name()) {
        return Err(SimError::Workload {
            bench: bench.name().to_string(),
            detail: format!("fault injected via {FAIL_BENCH_ENV}"),
        });
    }
    Ok(())
}

/// Run `f`, converting a workload panic into `SimError::Workload`.
fn catch_workload<R>(bench: Bench, f: impl FnOnce() -> R) -> Result<R, SimError> {
    catch_workload_named(bench.name(), f)
}

/// [`catch_workload`] for drivers outside the benchmark registry
/// (`tag` stands in for the benchmark name in the error).
fn catch_workload_named<R>(tag: &str, f: impl FnOnce() -> R) -> Result<R, SimError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        SimError::Workload {
            bench: tag.to_string(),
            detail,
        }
    })
}

/// The dynamic instruction stream a timed cell will feed its pipeline.
enum Stream {
    /// A recorded stream (fresh capture or cache hit) to replay.
    Replay { rec: Arc<Recorded>, cache_hit: bool },
    /// No usable recording (cache disabled, or the stream outgrew the
    /// capture budget): emit directly into the pipeline as before.
    Direct,
}

/// Obtain the cell's instruction stream, consulting and feeding the
/// process-wide [`trace_cache`]. The stream depends only on
/// (benchmark, size, variant) — never on the machine configuration —
/// which is what lets one capture serve every architecture and cache
/// size. On a miss, the stream is captured through a pure
/// [`Recorder`] (no timing model attached); emission faults surface
/// here exactly as they would on the direct path, because emission is
/// deterministic.
fn obtain_stream(bench: Bench, size: &WorkloadSize, variant: Variant) -> Result<Stream, SimError> {
    let Some(key) = trace_cache::key_for(bench.name(), size, variant) else {
        return Ok(Stream::Direct);
    };
    if let Some(rec) = trace_cache::lookup(&key) {
        return Ok(Stream::Replay {
            rec,
            cache_hit: true,
        });
    }
    let mut recorder = Recorder::new(trace_cache::budget_bytes());
    let t0 = Instant::now();
    catch_workload(bench, || bench.run(&mut recorder, size, variant))?;
    let emit = t0.elapsed();
    match recorder.finish() {
        Some(rec) => {
            let rec = Arc::new(rec);
            trace_cache::store(&key, &rec, emit);
            Ok(Stream::Replay {
                rec,
                cache_hit: false,
            })
        }
        // Over the capture budget: this cell re-emits directly. Slower,
        // never wrong.
        None => Ok(Stream::Direct),
    }
}

/// Feed `stream` into `sink` (replaying the recording, or emitting
/// directly), and stamp the per-cell observability counters into
/// `metrics` afterwards via [`stamp_cell_metrics`].
fn feed<S: SimSink>(
    bench: Bench,
    size: &WorkloadSize,
    variant: Variant,
    stream: &Stream,
    sink: &mut S,
) -> Result<(), SimError> {
    match stream {
        Stream::Replay { rec, .. } => catch_workload(bench, || rec.replay(sink)),
        Stream::Direct => catch_workload(bench, || bench.run(sink, size, variant)),
    }
}

/// Record how a cell obtained and consumed its stream:
/// `cell.emit_micros` is the time to *obtain* it (recording on a miss,
/// near zero on a hit), `cell.simulate_micros` the time to feed the
/// pipeline (pure replay, or combined emission+simulation on the
/// direct path), `cell.trace_replay`/`cell.trace_cache_hit` are 0/1
/// flags. All four are wall-clock observability — scrubbed, never
/// compared, in equivalence tests.
fn stamp_cell_metrics(
    metrics: &mut Registry,
    emit: std::time::Duration,
    simulate: std::time::Duration,
    stream: &Stream,
) {
    let (replayed, hit) = match stream {
        Stream::Replay { cache_hit, .. } => (1, u64::from(*cache_hit)),
        Stream::Direct => (0, 0),
    };
    metrics.set("cell.emit_micros", emit.as_micros() as u64);
    metrics.set("cell.simulate_micros", simulate.as_micros() as u64);
    metrics.set("cell.trace_replay", replayed);
    metrics.set("cell.trace_cache_hit", hit);
}

/// Integrity key for one window's checkpoint frame: identifies the
/// cell's stream, the sampling geometry, and the window index, so a
/// frame can never be replayed against the wrong window.
fn ckpt_key(
    bench: Bench,
    size: &WorkloadSize,
    variant: Variant,
    scfg: SampleConfig,
    ix: usize,
) -> String {
    format!(
        "{}|{}{}|{size:?}|w{}p{}|win{ix}",
        bench.name(),
        if variant.vis { 'v' } else { 's' },
        if variant.prefetch { 'p' } else { '-' },
        scfg.window,
        scfg.period
    )
}

/// Exact simulation standing in for a sampled cell (`cell.sampling.mode
/// = 2`): the stream was not replayable, too short for two windows, or
/// the sample was degenerate. The result is a measurement, not an
/// estimate, so the interval is zero-width — but it still lives under a
/// sampling-suffixed store key, because it was produced by a sampled
/// run.
fn sampled_exact_fallback(
    bench: Bench,
    cpu: &CpuConfig,
    mem: &MemConfig,
    size: &WorkloadSize,
    variant: Variant,
    stream: &Stream,
) -> Result<Summary, SimError> {
    let mut pipe = Pipeline::new(cpu.clone(), mem.clone());
    feed(bench, size, variant, stream, &mut pipe)?;
    let mut summary = pipe.try_finish()?;
    summary.metrics.set("cell.sampling.windows", 0);
    summary
        .metrics
        .set("cell.sampling.sampled_insts", summary.cpu.retired);
    summary.metrics.set("cell.sampling.ci_centipct", 0);
    summary
        .metrics
        .set("cell.sampling.mode", sampling::MODE_EXACT_FALLBACK);
    Ok(summary)
}

/// One timed cell under SMARTS-style sampling: a functional-warming
/// pass over the recorded stream serializes an architectural checkpoint
/// ([`Checkpoint`]) at every window boundary, the detailed windows fan
/// out across the worker pool (each job independently validates its
/// checkpoint frame, restores it into a fresh pipeline, and replays
/// just its window span), and [`visim_cpu::extrapolate`] combines the
/// warming pass's exact functional totals with the windows' cycle
/// measurements into the full-run estimate.
///
/// The sampled result is deterministic for any worker count: windows
/// are scheduled from instruction indices alone, the pool returns
/// results in input order, and extrapolation is integer arithmetic over
/// those ordered summaries. Anything that prevents sampling degrades to
/// [`sampled_exact_fallback`] rather than failing the cell.
fn run_sampled(
    bench: Bench,
    cpu: &CpuConfig,
    mem: &MemConfig,
    size: &WorkloadSize,
    variant: Variant,
    stream: &Stream,
    scfg: SampleConfig,
) -> Result<Summary, SimError> {
    // Windows address dynamic instruction indices, so sampling needs a
    // recorded stream; direct emission (cache disabled or over budget)
    // falls back to exact.
    let rec = match stream {
        Stream::Replay { rec, .. } => Arc::clone(rec),
        Stream::Direct => return sampled_exact_fallback(bench, cpu, mem, size, variant, stream),
    };
    let n = rec.len() as u64;
    let starts: Vec<u64> = (0u64..)
        .map(|k| k.saturating_mul(scfg.period))
        .take_while(|s| s.saturating_add(scfg.window) <= n)
        .collect();
    if starts.len() < 2 {
        return sampled_exact_fallback(bench, cpu, mem, size, variant, stream);
    }

    // Warming pass: advance the functional model through the whole
    // stream (windows included — state continuity is the point),
    // serializing a framed checkpoint at each window's *warm-up* entry:
    // `warmup()` instructions before the measured span, so the detailed
    // replay can refill the pipeline, ports, and banks before the
    // window starts counting. The first window has no warm-up — at
    // instruction 0 the cold start is the program's, not sampling's.
    let warmup = scfg.warmup();
    let entries: Vec<u64> = starts.iter().map(|&s| s.saturating_sub(warmup)).collect();
    let mut warm = WarmingSink::new(cpu, mem.clone());
    let mut cursor = ReplayCursor::start();
    let mut frames = Vec::with_capacity(entries.len());
    for (ix, &entry) in entries.iter().enumerate() {
        cursor = rec.replay_span(cursor, entry - warm.insts(), &mut warm);
        let ck = Checkpoint {
            cursor,
            state: warm.checkpoint(),
        };
        frames.push(ck.encode(&ckpt_key(bench, size, variant, scfg, ix)));
    }
    rec.replay_span(cursor, u64::MAX, &mut warm);
    let total = warm.finish();

    // Detailed windows: independent jobs on the worker pool (the plain
    // pool entry point, not `run_parallel` — window jobs are an
    // implementation detail of one cell, not top-level progress). Each
    // job re-validates its checkpoint frame end to end before trusting
    // it.
    let window_jobs: Vec<_> = frames
        .into_iter()
        .enumerate()
        .map(|(ix, frame)| {
            let rec = Arc::clone(&rec);
            let cpu = cpu.clone();
            let mem = mem.clone();
            let key = ckpt_key(bench, size, variant, scfg, ix);
            let window = scfg.window;
            // How far this window's checkpoint sits before its
            // measured span (0 for the first window).
            let warm_insts = starts[ix] - entries[ix];
            move || -> Result<Summary, SimError> {
                let ck = Checkpoint::decode_for(&frame, &key, &rec).map_err(|detail| {
                    SimError::Invariant {
                        model: "sampling",
                        detail,
                    }
                })?;
                let mut pipe = Pipeline::new(cpu, mem);
                pipe.restore_checkpoint(&ck.state)
                    .map_err(|detail| SimError::Invariant {
                        model: "sampling",
                        detail,
                    })?;
                // Detailed warm-up, then measure: the warm-up span
                // refills the pipeline and memory-system timing state
                // the checkpoint cannot carry, and `reset_stats`
                // discards its cycles so only the window is counted.
                let cursor = rec.replay_span(ck.cursor, warm_insts, &mut pipe);
                pipe.reset_stats();
                rec.replay_span(cursor, window, &mut pipe);
                pipe.try_finish()
            }
        })
        .collect();
    let mut windows = Vec::with_capacity(starts.len());
    for w in pool::run_ordered(jobs(), window_jobs) {
        windows.push(w?);
    }

    match visim_cpu::extrapolate(&total, &windows) {
        Some((mut summary, est)) => {
            summary.metrics.set("cell.sampling.windows", est.windows);
            summary
                .metrics
                .set("cell.sampling.sampled_insts", est.sampled_insts);
            summary
                .metrics
                .set("cell.sampling.ci_centipct", est.ci_centipct);
            summary.metrics.set("cell.sampling.warmup_insts", warmup);
            summary
                .metrics
                .set("cell.sampling.mode", sampling::MODE_SAMPLED);
            Ok(summary)
        }
        None => sampled_exact_fallback(bench, cpu, mem, size, variant, stream),
    }
}

/// Run one benchmark through the detailed timing model, surfacing
/// workload panics, invariant violations, and watchdog aborts as errors.
pub fn try_run_timed(
    bench: Bench,
    arch: Arch,
    mem: Option<MemConfig>,
    size: &WorkloadSize,
    variant: Variant,
) -> Result<Summary, SimError> {
    try_run_timed_cfg(bench, arch.cpu(), mem.unwrap_or_default(), size, variant)
}

/// [`try_run_timed`] with explicit machine parameters instead of a
/// named [`Arch`] — the ablation binary's entry point. Replays the
/// shared recorded stream when the trace cache has it; the result is
/// byte-identical to direct emission either way.
pub fn try_run_timed_cfg(
    bench: Bench,
    cpu: CpuConfig,
    mem: MemConfig,
    size: &WorkloadSize,
    variant: Variant,
) -> Result<Summary, SimError> {
    let key = store::timed_key(bench.name(), &cpu, &mem, size, variant);
    let (mut summary, from_store) = run_cell(
        key,
        bench.name(),
        || {
            injected_fault(bench)?;
            catch_workload(bench, || injected_panic(bench.name()))?;
            let t0 = Instant::now();
            let stream = obtain_stream(bench, size, variant)?;
            let emit = t0.elapsed();
            let t1 = Instant::now();
            let mut summary = match sampling::config() {
                Some(scfg) => run_sampled(bench, &cpu, &mem, size, variant, &stream, scfg)?,
                None => {
                    let mut pipe = Pipeline::new(cpu.clone(), mem.clone());
                    feed(bench, size, variant, &stream, &mut pipe)?;
                    pipe.try_finish()?
                }
            };
            stamp_cell_metrics(&mut summary.metrics, emit, t1.elapsed(), &stream);
            Ok(summary)
        },
        |s| store::Entry::Timed(Box::new(s.clone())),
        |e| match e {
            store::Entry::Timed(s) => Some(*s),
            _ => None,
        },
    )?;
    summary.metrics.set("cell.store_hit", u64::from(from_store));
    Ok(summary)
}

/// A store-aware detailed-timing cell for drivers outside the
/// [`Bench`] registry (the appendix `kernels14` binary). `tag` must
/// identify the workload and code variant; the machine configuration
/// and workload geometry are folded into the content address here.
/// `compute` gets the full crash-safety treatment: resume lookup, the
/// `cell.panic`/`cell.transient` fault points, bounded retry, and an
/// atomic store write of the outcome.
pub fn try_custom_timed(
    tag: &str,
    cpu: &CpuConfig,
    mem: &MemConfig,
    size: &WorkloadSize,
    compute: impl Fn() -> Result<Summary, SimError>,
) -> Result<Summary, SimError> {
    let key = store::custom_timed_key(tag, cpu, mem, size);
    let (mut summary, from_store) = run_cell(
        key,
        tag,
        || {
            catch_workload_named(tag, || {
                injected_panic(tag);
                compute()
            })
            .and_then(|r| r)
        },
        |s| store::Entry::Timed(Box::new(s.clone())),
        |e| match e {
            store::Entry::Timed(s) => Some(*s),
            _ => None,
        },
    )?;
    summary.metrics.set("cell.store_hit", u64::from(from_store));
    Ok(summary)
}

/// The counting-cell counterpart of [`try_custom_timed`].
pub fn try_custom_counted(
    tag: &str,
    size: &WorkloadSize,
    compute: impl Fn() -> Result<CpuStats, SimError>,
) -> Result<CpuStats, SimError> {
    try_custom_counted_with_origin(tag, size, compute).map(|(c, _)| c)
}

/// [`try_custom_counted`] reporting where the result came from: the
/// flag is `true` when the counts were served from the result store
/// (the serve daemon's hit accounting; timed cells carry the same fact
/// as their `cell.store_hit` metric instead).
pub fn try_custom_counted_with_origin(
    tag: &str,
    size: &WorkloadSize,
    compute: impl Fn() -> Result<CpuStats, SimError>,
) -> Result<(CpuStats, bool), SimError> {
    let key = store::custom_counted_key(tag, size);
    run_cell(
        key,
        tag,
        || {
            catch_workload_named(tag, || {
                injected_panic(tag);
                compute()
            })
            .and_then(|r| r)
        },
        |c| store::Entry::Counted(c.clone()),
        |e| match e {
            store::Entry::Counted(c) => Some(c),
            _ => None,
        },
    )
}

/// Run one benchmark through the detailed timing model with
/// cycle-level tracing attached, returning both the summary and the
/// recorded [`Trace`]. The caller configures the ring (capacity, cycle
/// window) before passing it in; the simulation result is identical to
/// [`try_run_timed`] — tracing only observes.
pub fn try_run_traced(
    bench: Bench,
    arch: Arch,
    mem: Option<MemConfig>,
    size: &WorkloadSize,
    variant: Variant,
    ring: TraceRing,
) -> Result<(Summary, Trace), SimError> {
    injected_fault(bench)?;
    let t0 = Instant::now();
    let stream = obtain_stream(bench, size, variant)?;
    let emit = t0.elapsed();
    let t1 = Instant::now();
    let ring = Rc::new(RefCell::new(ring));
    let mut sink = Traced::new(
        Pipeline::new(arch.cpu(), mem.unwrap_or_default()),
        ring.clone(),
    );
    feed(bench, size, variant, &stream, &mut sink)?;
    let mut summary = sink.into_inner().try_finish()?;
    stamp_cell_metrics(&mut summary.metrics, emit, t1.elapsed(), &stream);
    // `try_finish` consumed the pipeline, dropping every clone the
    // tracer hooks held; this handle is now the sole owner.
    let ring = Rc::try_unwrap(ring)
        .expect("pipeline dropped; sole ring owner")
        .into_inner();
    Ok((summary, ring.into_trace()))
}

/// Run one benchmark through the detailed timing model.
pub fn run_timed(
    bench: Bench,
    arch: Arch,
    mem: Option<MemConfig>,
    size: &WorkloadSize,
    variant: Variant,
) -> Summary {
    try_run_timed(bench, arch, mem, size, variant)
        .unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

/// Panicking form of [`try_run_timed_cfg`], for callers that treat any
/// failure as fatal.
pub fn run_timed_cfg(
    bench: Bench,
    cpu: CpuConfig,
    mem: MemConfig,
    size: &WorkloadSize,
    variant: Variant,
) -> Summary {
    try_run_timed_cfg(bench, cpu, mem, size, variant)
        .unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

/// Run one benchmark through the functional counter (fast; used for the
/// instruction-mix experiments), surfacing failures as errors.
pub fn try_run_counted(
    bench: Bench,
    size: &WorkloadSize,
    variant: Variant,
) -> Result<CpuStats, SimError> {
    try_run_counted_with_origin(bench, size, variant).map(|(c, _)| c)
}

/// [`try_run_counted`] reporting whether the counts were served from
/// the result store (see [`try_custom_counted_with_origin`]).
pub fn try_run_counted_with_origin(
    bench: Bench,
    size: &WorkloadSize,
    variant: Variant,
) -> Result<(CpuStats, bool), SimError> {
    let key = store::counted_key(bench.name(), size, variant);
    run_cell(
        key,
        bench.name(),
        || {
            injected_fault(bench)?;
            let mut sink = CountingSink::new();
            catch_workload(bench, || {
                injected_panic(bench.name());
                bench.run(&mut sink, size, variant)
            })?;
            Ok(sink.finish())
        },
        |c| store::Entry::Counted(c.clone()),
        |e| match e {
            store::Entry::Counted(c) => Some(c),
            _ => None,
        },
    )
}

/// Run one benchmark through the functional counter (fast; used for the
/// instruction-mix experiments).
pub fn run_counted(bench: Bench, size: &WorkloadSize, variant: Variant) -> CpuStats {
    try_run_counted(bench, size, variant)
        .unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

/// One bar of Figure 1.
#[derive(Debug, Clone)]
pub struct Fig1Bar {
    /// Architecture variation.
    pub arch: Arch,
    /// With or without VIS.
    pub vis: bool,
    /// Timing result.
    pub summary: Summary,
}

/// Figure 1 for one benchmark: six bars (3 architectures × {base, VIS}).
/// Fails on the first bar whose simulation fails.
pub fn try_fig1_bench(bench: Bench, size: &WorkloadSize) -> Result<Vec<Fig1Bar>, SimError> {
    let mut bars = Vec::with_capacity(6);
    for vis in [false, true] {
        let variant = if vis { Variant::VIS } else { Variant::SCALAR };
        for arch in Arch::all() {
            let summary = try_run_timed(bench, arch, None, size, variant)?;
            bars.push(Fig1Bar { arch, vis, summary });
        }
    }
    Ok(bars)
}

/// Figure 1 for one benchmark: six bars (3 architectures × {base, VIS}).
pub fn fig1_bench(bench: Bench, size: &WorkloadSize) -> Vec<Fig1Bar> {
    try_fig1_bench(bench, size).unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

/// Figure 1 for the whole suite: all 12 benchmarks × 6 bars fanned out
/// over the worker pool as 72 independent cells and reassembled in
/// figure order. A benchmark whose first failing bar (in bar order) is
/// `Err` reports that error, matching [`try_fig1_bench`]'s serial
/// first-failure semantics, while the other benchmarks keep their bars.
pub fn try_fig1_all(size: &WorkloadSize) -> Vec<(Bench, Result<Vec<Fig1Bar>, SimError>)> {
    try_fig1_grid(
        size,
        &Bench::all(),
        &Arch::all(),
        &[Variant::SCALAR, Variant::VIS],
    )
}

/// [`try_fig1_all`] over an explicit manifest grid: `benchmarks` ×
/// `variants` × `archs` cells in that nesting order (matching the
/// figure's bar order), fanned out over the worker pool in one batch.
pub fn try_fig1_grid(
    size: &WorkloadSize,
    benchmarks: &[Bench],
    archs: &[Arch],
    variants: &[Variant],
) -> Vec<(Bench, Result<Vec<Fig1Bar>, SimError>)> {
    let mut cells = Vec::new();
    for &bench in benchmarks {
        for &variant in variants {
            for &arch in archs {
                cells.push((bench, variant, arch));
            }
        }
    }
    let results = run_parallel(
        cells
            .iter()
            .map(|&(bench, variant, arch)| move || try_run_timed(bench, arch, None, size, variant))
            .collect(),
    );
    let mut results = results.into_iter();
    benchmarks
        .iter()
        .map(|&bench| {
            let mut bars = Vec::with_capacity(archs.len() * variants.len());
            let mut first_err = None;
            for &variant in variants {
                for &arch in archs {
                    match results.next().expect("one result per Figure 1 cell") {
                        Ok(summary) if first_err.is_none() => bars.push(Fig1Bar {
                            arch,
                            vis: variant.vis,
                            summary,
                        }),
                        Err(e) if first_err.is_none() => first_err = Some(e),
                        _ => {}
                    }
                }
            }
            (bench, first_err.map_or(Ok(bars), Err))
        })
        .collect()
}

/// One pair of Figure 2 bars: base and VIS instruction mixes.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// The benchmark.
    pub bench: Bench,
    /// Scalar-variant counts.
    pub base: CpuStats,
    /// VIS-variant counts.
    pub vis: CpuStats,
}

/// Figure 2: dynamic (retired) instruction counts, base vs. VIS, with
/// per-benchmark failures reported instead of aborting the figure. The
/// 12 × 2 counted runs fan out over the worker pool; a failing base
/// variant masks the VIS result for that benchmark, matching the serial
/// evaluation order.
pub fn try_fig2(size: &WorkloadSize) -> Vec<(Bench, Result<Fig2Row, SimError>)> {
    try_fig2_grid(size, &Bench::all())
}

/// [`try_fig2`] over an explicit benchmark list (the manifest grid).
pub fn try_fig2_grid(
    size: &WorkloadSize,
    benchmarks: &[Bench],
) -> Vec<(Bench, Result<Fig2Row, SimError>)> {
    let mut cells = Vec::new();
    for &bench in benchmarks {
        for variant in [Variant::SCALAR, Variant::VIS] {
            cells.push((bench, variant));
        }
    }
    let mut results = run_parallel(
        cells
            .into_iter()
            .map(|(bench, variant)| move || try_run_counted(bench, size, variant))
            .collect(),
    )
    .into_iter();
    benchmarks
        .iter()
        .map(|&bench| {
            let base = results.next().expect("base result per benchmark");
            let vis = results.next().expect("VIS result per benchmark");
            let row = base.and_then(|base| {
                Ok(Fig2Row {
                    bench,
                    base,
                    vis: vis?,
                })
            });
            (bench, row)
        })
        .collect()
}

/// Figure 2: dynamic (retired) instruction counts, base vs. VIS.
pub fn fig2(size: &WorkloadSize) -> Vec<Fig2Row> {
    try_fig2(size)
        .into_iter()
        .map(|(bench, row)| row.unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}")))
        .collect()
}

/// One pair of Figure 3 bars: VIS and VIS+prefetch timings.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// The benchmark.
    pub bench: Bench,
    /// VIS baseline.
    pub vis: Summary,
    /// VIS + software prefetching.
    pub pf: Summary,
}

/// Figure 3: software prefetching on the benchmarks with memory stall,
/// with per-benchmark failures reported instead of aborting the figure.
/// The 9 × 2 timed runs fan out over the worker pool; a failing VIS
/// baseline masks the prefetch result for that benchmark, matching the
/// serial evaluation order.
pub fn try_fig3(size: &WorkloadSize) -> Vec<(Bench, Result<Fig3Row, SimError>)> {
    try_fig3_grid(size, &Bench::prefetch_set())
}

/// [`try_fig3`] over an explicit benchmark list (the manifest grid).
pub fn try_fig3_grid(
    size: &WorkloadSize,
    benchmarks: &[Bench],
) -> Vec<(Bench, Result<Fig3Row, SimError>)> {
    let mut cells = Vec::new();
    for &bench in benchmarks {
        for variant in [Variant::VIS, Variant::VIS_PF] {
            cells.push((bench, variant));
        }
    }
    let mut results = run_parallel(
        cells
            .into_iter()
            .map(|(bench, variant)| move || try_run_timed(bench, Arch::Ooo4, None, size, variant))
            .collect(),
    )
    .into_iter();
    benchmarks
        .iter()
        .map(|&bench| {
            let vis = results.next().expect("VIS result per benchmark");
            let pf = results.next().expect("prefetch result per benchmark");
            let row = vis.and_then(|vis| {
                Ok(Fig3Row {
                    bench,
                    vis,
                    pf: pf?,
                })
            });
            (bench, row)
        })
        .collect()
}

/// Figure 3: software prefetching on the benchmarks with memory stall.
pub fn fig3(size: &WorkloadSize) -> Vec<Fig3Row> {
    try_fig3(size)
        .into_iter()
        .map(|(bench, row)| row.unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}")))
        .collect()
}

/// A cache-size sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Cache size in bytes.
    pub bytes: u64,
    /// Timing result.
    pub summary: Summary,
}

/// §4.1 L2 sweep: vary the L2 size with the L1 fixed. Fails on the
/// first sweep point whose simulation fails.
pub fn try_l2_sweep(
    bench: Bench,
    size: &WorkloadSize,
    l2_sizes: &[u64],
) -> Result<Vec<SweepPoint>, SimError> {
    l2_sizes
        .iter()
        .map(|&bytes| {
            Ok(SweepPoint {
                bytes,
                summary: try_run_timed(
                    bench,
                    Arch::Ooo4,
                    Some(MemConfig::default().with_l2_size(bytes)),
                    size,
                    Variant::VIS,
                )?,
            })
        })
        .collect()
}

/// §4.1 L2 sweep: vary the L2 size with the L1 fixed.
pub fn l2_sweep(bench: Bench, size: &WorkloadSize, l2_sizes: &[u64]) -> Vec<SweepPoint> {
    try_l2_sweep(bench, size, l2_sizes)
        .unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

/// §4.1 L1 sweep: vary the L1 size with the L2 fixed. Fails on the
/// first sweep point whose simulation fails.
pub fn try_l1_sweep(
    bench: Bench,
    size: &WorkloadSize,
    l1_sizes: &[u64],
) -> Result<Vec<SweepPoint>, SimError> {
    l1_sizes
        .iter()
        .map(|&bytes| {
            Ok(SweepPoint {
                bytes,
                summary: try_run_timed(
                    bench,
                    Arch::Ooo4,
                    Some(MemConfig::default().with_l1_size(bytes)),
                    size,
                    Variant::VIS,
                )?,
            })
        })
        .collect()
}

/// §4.1 L1 sweep: vary the L1 size with the L2 fixed.
pub fn l1_sweep(bench: Bench, size: &WorkloadSize, l1_sizes: &[u64]) -> Vec<SweepPoint> {
    try_l1_sweep(bench, size, l1_sizes)
        .unwrap_or_else(|e| panic!("{bench}: simulation failed: {e}"))
}

/// A whole §4.1 sweep (all 12 benchmarks × every cache size) fanned out
/// over the worker pool. Per benchmark, the first failing point (in
/// sweep order) becomes its error, matching the serial sweep runners.
fn try_sweep_suite(
    size: &WorkloadSize,
    sweep_sizes: &[u64],
    cfg_for: impl Fn(u64) -> MemConfig,
) -> Vec<(Bench, Result<Vec<SweepPoint>, SimError>)> {
    try_sweep_grid_with(size, &Bench::all(), sweep_sizes, cfg_for)
}

/// [`try_sweep_suite`] over an explicit manifest grid: `benchmarks` ×
/// `bytes` cells, varying the cache `cache` selects.
pub fn try_sweep_grid(
    size: &WorkloadSize,
    benchmarks: &[Bench],
    bytes: &[u64],
    cache: SweepCache,
) -> Vec<(Bench, Result<Vec<SweepPoint>, SimError>)> {
    try_sweep_grid_with(size, benchmarks, bytes, |b| cache.mem_config(b))
}

fn try_sweep_grid_with(
    size: &WorkloadSize,
    benchmarks: &[Bench],
    sweep_sizes: &[u64],
    cfg_for: impl Fn(u64) -> MemConfig,
) -> Vec<(Bench, Result<Vec<SweepPoint>, SimError>)> {
    let mut cells = Vec::new();
    for &bench in benchmarks {
        for &bytes in sweep_sizes {
            cells.push((bench, bytes, cfg_for(bytes)));
        }
    }
    let mut results = run_parallel(
        cells
            .into_iter()
            .map(|(bench, bytes, cfg)| {
                move || {
                    try_run_timed(bench, Arch::Ooo4, Some(cfg), size, Variant::VIS)
                        .map(|summary| SweepPoint { bytes, summary })
                }
            })
            .collect(),
    )
    .into_iter();
    benchmarks
        .iter()
        .map(|&bench| {
            let mut points = Vec::with_capacity(sweep_sizes.len());
            let mut first_err = None;
            for _ in sweep_sizes {
                match results.next().expect("one result per sweep point") {
                    Ok(pt) if first_err.is_none() => points.push(pt),
                    Err(e) if first_err.is_none() => first_err = Some(e),
                    _ => {}
                }
            }
            (bench, first_err.map_or(Ok(points), Err))
        })
        .collect()
}

/// §4.1 L1 sweep over the whole suite, parallel across
/// (benchmark × L1 size) cells.
pub fn try_l1_sweep_all(
    size: &WorkloadSize,
    l1_sizes: &[u64],
) -> Vec<(Bench, Result<Vec<SweepPoint>, SimError>)> {
    try_sweep_suite(size, l1_sizes, |b| MemConfig::default().with_l1_size(b))
}

/// §4.1 L2 sweep over the whole suite, parallel across
/// (benchmark × L2 size) cells.
pub fn try_l2_sweep_all(
    size: &WorkloadSize,
    l2_sizes: &[u64],
) -> Vec<(Bench, Result<Vec<SweepPoint>, SimError>)> {
    try_sweep_suite(size, l2_sizes, |b| MemConfig::default().with_l2_size(b))
}

/// One ablation ratio section fanned out over the worker pool: per
/// benchmark, a baseline run on the out-of-order machine plus one run
/// per sweep value, in that order (the layout `AblationSection.headers`
/// describes). Any failure is fatal, matching the ablation binary's
/// historical behaviour — ablations have no degraded rendering.
pub fn run_ablation_section(
    section: &AblationSection,
    benchmarks: &[Bench],
    size: &WorkloadSize,
) -> Vec<Summary> {
    let mut cells = Vec::new();
    for &bench in benchmarks {
        cells.push((bench, CpuConfig::ooo_4way(), MemConfig::default()));
        for &value in &section.values {
            let (cpu, mem) = section.param.config(value);
            cells.push((bench, cpu, mem));
        }
    }
    run_parallel(
        cells
            .into_iter()
            .map(|(bench, cpu, mem)| move || run_timed_cfg(bench, cpu, mem, size, Variant::VIS))
            .collect(),
    )
}

/// The ablation experiment's MSHR-occupancy section: benchmarks ×
/// variants on the out-of-order baseline, one worker-pool batch.
pub fn run_histogram_section(section: &HistogramSection, size: &WorkloadSize) -> Vec<Summary> {
    let mut cells = Vec::new();
    for &bench in &section.benchmarks {
        for (_, variant) in &section.variants {
            cells.push((bench, *variant));
        }
    }
    run_parallel(
        cells
            .into_iter()
            .map(|(bench, variant)| {
                move || run_timed_cfg(bench, Arch::Ooo4.cpu(), MemConfig::default(), size, variant)
            })
            .collect(),
    )
}

/// The appendix kernel sweep: one worker-pool job per kernel, each job
/// the kernel's full four-run cell ([`kernels14::try_kernel_cell`]).
pub fn try_kernels14(
    kernels: &[KernelId],
    size: &WorkloadSize,
) -> Vec<(KernelId, Result<KernelCell, SimError>)> {
    let results = run_parallel(
        kernels
            .iter()
            .map(|&k| move || kernels14::try_kernel_cell(k, size))
            .collect(),
    );
    kernels.iter().copied().zip(results).collect()
}

/// The result of executing one manifest: one variant per grid kind,
/// carrying exactly what that kind's renderer needs.
pub enum ManifestOutcome {
    /// Figure 1 bars per benchmark.
    Fig1(Vec<(Bench, Result<Vec<Fig1Bar>, SimError>)>),
    /// Figure 2 instruction-mix rows per benchmark.
    Fig2(Vec<(Bench, Result<Fig2Row, SimError>)>),
    /// Figure 3 prefetch pairs per benchmark.
    Fig3(Vec<(Bench, Result<Fig3Row, SimError>)>),
    /// §4.1 sweep curves per benchmark.
    Sweep {
        /// Which cache was varied.
        cache: SweepCache,
        /// Sweep points per benchmark.
        results: Vec<(Bench, Result<Vec<SweepPoint>, SimError>)>,
    },
    /// Tables 1-4 (static; nothing was simulated).
    Tables,
    /// Ablation summaries: one vector per ratio section (in manifest
    /// order, each laid out as [`run_ablation_section`] describes) plus
    /// the histogram section's summaries.
    Ablation {
        /// Ratio-section summaries, one inner vector per section.
        sections: Vec<Vec<Summary>>,
        /// Histogram-section summaries.
        histogram: Vec<Summary>,
    },
    /// Appendix kernel cells.
    Kernels14(Vec<(KernelId, Result<KernelCell, SimError>)>),
}

/// Execute a manifest: fan its grid through the worker pool, store,
/// trace cache, and sampling machinery, and return the grid-shaped
/// outcome for rendering. Each ratio section of an ablation manifest is
/// its own worker-pool batch (sections are rendered as they complete),
/// every other grid is a single batch.
pub fn run_manifest(m: &Manifest, size: &WorkloadSize) -> ManifestOutcome {
    match &m.grid {
        Grid::Fig1 {
            benchmarks,
            archs,
            variants,
        } => ManifestOutcome::Fig1(try_fig1_grid(size, benchmarks, archs, variants)),
        Grid::Fig2 { benchmarks, .. } => ManifestOutcome::Fig2(try_fig2_grid(size, benchmarks)),
        Grid::Fig3 { benchmarks } => ManifestOutcome::Fig3(try_fig3_grid(size, benchmarks)),
        Grid::Sweep {
            cache,
            benchmarks,
            bytes,
        } => ManifestOutcome::Sweep {
            cache: *cache,
            results: try_sweep_grid(size, benchmarks, bytes, *cache),
        },
        Grid::Tables => ManifestOutcome::Tables,
        Grid::Ablation {
            benchmarks,
            sections,
            histogram,
        } => ManifestOutcome::Ablation {
            sections: sections
                .iter()
                .map(|s| run_ablation_section(s, benchmarks, size))
                .collect(),
            histogram: run_histogram_section(histogram, size),
        },
        Grid::Kernels14 { kernels } => ManifestOutcome::Kernels14(try_kernels14(kernels, size)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WorkloadSize {
        let mut s = WorkloadSize::tiny();
        s.image_w = 32;
        s.image_h = 32;
        s.dotprod_n = 512;
        s
    }

    #[test]
    fn timed_run_produces_consistent_summary() {
        let s = run_timed(Bench::Addition, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
        assert!(s.cycles() > 0);
        let b = s.cpu.breakdown();
        assert!((b.total() - s.cycles() as f64).abs() < 1e-6);
        assert!(s.cpu.retired > 1000);
    }

    #[test]
    fn ooo_beats_inorder_on_a_kernel() {
        let io = run_timed(
            Bench::Scaling,
            Arch::InOrder1,
            None,
            &tiny(),
            Variant::SCALAR,
        );
        let ooo = run_timed(Bench::Scaling, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
        let speedup = io.cycles() as f64 / ooo.cycles() as f64;
        assert!(speedup > 1.5, "ILP speedup {speedup:.2}");
    }

    #[test]
    fn vis_beats_scalar_on_a_kernel() {
        let s = run_timed(Bench::Thresh, Arch::Ooo4, None, &tiny(), Variant::SCALAR);
        let v = run_timed(Bench::Thresh, Arch::Ooo4, None, &tiny(), Variant::VIS);
        let speedup = s.cycles() as f64 / v.cycles() as f64;
        assert!(speedup > 1.5, "VIS speedup {speedup:.2}");
    }

    /// The load-bearing tentpole invariant: a replayed stream drives
    /// the pipeline to the *exact* state direct emission does — every
    /// counter, breakdown and histogram, not just final cycles. Run
    /// twice so both the cold (record→replay) and warm (cache-hit
    /// replay) paths are checked against the direct reference.
    #[test]
    fn replay_matches_direct_emission_exactly() {
        let size = tiny();
        for pass in ["cold", "warm"] {
            let r = try_run_timed(Bench::Blend, Arch::Ooo4, None, &size, Variant::VIS).unwrap();
            let mut pipe = Pipeline::new(Arch::Ooo4.cpu(), MemConfig::default());
            Bench::Blend.run(&mut pipe, &size, Variant::VIS);
            let d = pipe.try_finish().unwrap();
            assert_eq!(
                format!("{:?}", r.cpu),
                format!("{:?}", d.cpu),
                "{pass}: cpu stats diverge under replay"
            );
            assert_eq!(r.mem, d.mem, "{pass}: mem stats diverge under replay");
            assert_eq!(
                r.mshr_histogram, d.mshr_histogram,
                "{pass}: MSHR histogram diverges under replay"
            );
        }
    }

    #[test]
    fn cfg_runner_matches_arch_runner() {
        let size = tiny();
        let a =
            try_run_timed(Bench::Scaling, Arch::InOrder4, None, &size, Variant::SCALAR).unwrap();
        let b = try_run_timed_cfg(
            Bench::Scaling,
            Arch::InOrder4.cpu(),
            MemConfig::default(),
            &size,
            Variant::SCALAR,
        )
        .unwrap();
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.mem, b.mem);
    }

    #[test]
    fn fig2_fanout_matches_serial_composition() {
        let size = tiny();
        for (bench, row) in try_fig2(&size) {
            let base = try_run_counted(bench, &size, Variant::SCALAR).unwrap();
            let vis = try_run_counted(bench, &size, Variant::VIS).unwrap();
            let r = row.unwrap();
            assert_eq!(r.base.retired, base.retired, "{bench:?} base");
            assert_eq!(r.base.mix, base.mix, "{bench:?} base mix");
            assert_eq!(r.vis.retired, vis.retired, "{bench:?} vis");
            assert_eq!(r.vis.mix, vis.mix, "{bench:?} vis mix");
        }
    }

    /// Sampling accuracy and telemetry, driven directly through
    /// [`run_sampled`] (never via the process-wide configuration, which
    /// would leak into concurrently running exact tests).
    #[test]
    fn sampled_estimate_tracks_exact_cycles() {
        let size = tiny();
        let exact = try_run_timed(Bench::Addition, Arch::Ooo4, None, &size, Variant::SCALAR)
            .expect("exact reference runs");
        let stream = obtain_stream(Bench::Addition, &size, Variant::SCALAR).expect("stream");
        let scfg = SampleConfig {
            window: 500,
            period: 2_000,
        };
        let cpu = Arch::Ooo4.cpu();
        let mem = MemConfig::default();
        let s = run_sampled(
            Bench::Addition,
            &cpu,
            &mem,
            &size,
            Variant::SCALAR,
            &stream,
            scfg,
        )
        .expect("sampled run succeeds");
        assert_eq!(
            s.metrics.counter("cell.sampling.mode"),
            sampling::MODE_SAMPLED
        );
        assert!(s.metrics.counter("cell.sampling.windows") >= 2);
        assert!(s.metrics.counter("cell.sampling.sampled_insts") >= 1_000);
        assert_eq!(
            s.cpu.retired, exact.cpu.retired,
            "functional counters are exact, not estimated"
        );
        assert_eq!(s.cpu.mix, exact.cpu.mix);
        assert_eq!(s.cpu.mispredicts, exact.cpu.mispredicts);
        // Cache hit/miss behaviour is reproduced exactly by the warming
        // pass; only retry-dependent counters (accesses, MSHR rejects)
        // depend on issue timing and may differ.
        assert_eq!(s.mem.l1_hits, exact.mem.l1_hits);
        assert_eq!(s.mem.l1_primary_misses, exact.mem.l1_primary_misses);
        assert_eq!(s.mem.l1_merged_misses, exact.mem.l1_merged_misses);
        assert_eq!(s.mem.l2_accesses, exact.mem.l2_accesses);
        assert_eq!(s.mem.l2_misses, exact.mem.l2_misses);
        let err = (s.cycles() as f64 - exact.cycles() as f64).abs() / exact.cycles() as f64;
        assert!(
            err < 0.15,
            "sampled {} vs exact {} cycles ({:.1}% off)",
            s.cycles(),
            exact.cycles(),
            100.0 * err
        );
        // The attribution stays exhaustive on the estimated summary.
        let b = s.cpu.breakdown();
        assert!((b.total() - s.cycles() as f64).abs() < 1e-6);

        // Repeatability: the sampled estimate is deterministic.
        let again = run_sampled(
            Bench::Addition,
            &cpu,
            &mem,
            &size,
            Variant::SCALAR,
            &stream,
            scfg,
        )
        .expect("sampled rerun succeeds");
        assert_eq!(format!("{:?}", again.cpu), format!("{:?}", s.cpu));
    }

    /// Streams sampling cannot window (direct emission, or too short
    /// for two windows) degrade to exact simulation and say so.
    #[test]
    fn unsampleable_cells_fall_back_to_exact() {
        let size = tiny();
        let exact = try_run_timed(Bench::Addition, Arch::Ooo4, None, &size, Variant::SCALAR)
            .expect("exact reference runs");
        let cpu = Arch::Ooo4.cpu();
        let mem = MemConfig::default();
        let scfg = SampleConfig {
            window: 500,
            period: 2_000,
        };
        let direct = run_sampled(
            Bench::Addition,
            &cpu,
            &mem,
            &size,
            Variant::SCALAR,
            &Stream::Direct,
            scfg,
        )
        .expect("direct fallback runs");
        assert_eq!(
            direct.metrics.counter("cell.sampling.mode"),
            sampling::MODE_EXACT_FALLBACK
        );
        assert_eq!(direct.metrics.counter("cell.sampling.windows"), 0);
        assert_eq!(direct.cycles(), exact.cycles(), "fallback is exact");

        let stream = obtain_stream(Bench::Addition, &size, Variant::SCALAR).expect("stream");
        let huge = SampleConfig {
            window: 1 << 40,
            period: 1 << 40,
        };
        let short = run_sampled(
            Bench::Addition,
            &cpu,
            &mem,
            &size,
            Variant::SCALAR,
            &stream,
            huge,
        )
        .expect("short-stream fallback runs");
        assert_eq!(
            short.metrics.counter("cell.sampling.mode"),
            sampling::MODE_EXACT_FALLBACK
        );
        assert_eq!(short.cycles(), exact.cycles());
    }

    #[test]
    fn jobs_env_parses_positive_integers_only() {
        // `jobs()` falls back to auto-detect on garbage, so any value it
        // returns is at least 1 (run_ordered would panic on 0 workers
        // only via BoundedQueue::new, never from here).
        assert!(jobs() >= 1);
    }

    #[test]
    fn fig2_reduces_instruction_counts_with_vis() {
        let rows = fig2(&tiny());
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(
                r.vis.retired <= r.base.retired,
                "{}: VIS should not add instructions",
                r.bench.name()
            );
        }
        // Kernels see large reductions.
        let addition = rows.iter().find(|r| r.bench == Bench::Addition).unwrap();
        assert!(addition.vis.retired * 2 < addition.base.retired);
    }
}
