//! Architecture configurations for the study.

use visim_cpu::CpuConfig;
use visim_mem::MemConfig;

/// The three architecture variations of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Single-issue in-order.
    InOrder1,
    /// 4-way in-order.
    InOrder4,
    /// 4-way out-of-order (the base machine of Tables 2/3).
    Ooo4,
}

impl Arch {
    /// All three, in the paper's bar order.
    pub fn all() -> [Arch; 3] {
        [Arch::InOrder1, Arch::InOrder4, Arch::Ooo4]
    }

    /// The figure label.
    pub fn label(self) -> &'static str {
        match self {
            Arch::InOrder1 => "1-way",
            Arch::InOrder4 => "4-way",
            Arch::Ooo4 => "4-way ooo",
        }
    }

    /// The processor configuration.
    pub fn cpu(self) -> CpuConfig {
        match self {
            Arch::InOrder1 => CpuConfig::inorder_1way(),
            Arch::InOrder4 => CpuConfig::inorder_4way(),
            Arch::Ooo4 => CpuConfig::ooo_4way(),
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The default memory system (Table 3).
pub fn default_mem() -> MemConfig {
    MemConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_labels_and_configs() {
        assert_eq!(Arch::all().len(), 3);
        assert_eq!(Arch::InOrder1.cpu().issue_width, 1);
        assert_eq!(Arch::InOrder4.cpu().issue_width, 4);
        assert_eq!(Arch::Ooo4.cpu().issue_width, 4);
        assert_eq!(Arch::Ooo4.label(), "4-way ooo");
    }
}
