//! Sampled-run configuration (SMARTS-style systematic sampling).
//!
//! A sampled run replays the detailed cycle-accurate pipeline only for
//! periodic windows of `window` instructions, one window every `period`
//! instructions, and fast-forwards between them with the functional
//! warming engine (`visim_cpu::WarmingSink`). The configuration lives
//! here — one process-wide switch, exactly like the store and
//! trace-cache knobs — because it must be visible both to the
//! experiment engine (which schedules windows) and to the result store
//! (whose content addresses must separate sampled estimates from exact
//! measurements).
//!
//! Off is the default: exact simulation stays byte-identical unless the
//! user opts in via `--sample` or `VISIM_SAMPLE`.

use std::sync::Mutex;

/// Environment variable enabling sampled simulation: `1` for the
/// default window/period, or `WINDOW:PERIOD` (e.g. `8000:160000`) for an
/// explicit geometry. Empty or `0` means exact simulation.
pub const SAMPLE_ENV: &str = "VISIM_SAMPLE";

/// Default detailed-window length, in dynamic instructions. Sized so
/// a window comfortably outlives the slowest microarchitectural
/// transient a checkpoint restore cannot carry: the software-prefetch
/// pipeline takes thousands of instructions to re-reach its steady
/// lead distance, and 2000-instruction windows measured a persistent
/// ~12% CPI bias on the prefetching blend kernel where 8000-instruction
/// windows (with their 4000-instruction warm-up) measure within 1%.
pub const DEFAULT_WINDOW: u64 = 8_000;
/// Default sampling period (window start to window start). 8000:160000
/// puts 5% of instructions in measured windows (7.5% counting each
/// window's warm-up span): the long media workloads still get over a
/// hundred windows — past where the CI stops shrinking — while the
/// detailed-replay share, which is what sampled wall clock is made of,
/// stays small, and the per-window checkpoint serialization (full L1 +
/// L2 tag state) happens 4x less often than a 2000:40000 geometry.
/// Short kernel streams (a few hundred thousand instructions) fall
/// below the two-window minimum and degrade to exact simulation —
/// which is the right call: sampling only pays on streams long enough
/// that detailed replay is the cost, and the fallback is reported
/// honestly (`cell.sampling.mode` = 2, zero-width interval).
pub const DEFAULT_PERIOD: u64 = 160_000;

/// `cell.sampling.mode` value: the cell is a sampled estimate.
pub const MODE_SAMPLED: u64 = 1;
/// `cell.sampling.mode` value: sampling was requested but the cell fell
/// back to exact simulation (stream too short, not replayable, or the
/// sample was degenerate).
pub const MODE_EXACT_FALLBACK: u64 = 2;

/// One sampled-run geometry: a detailed window of `window` instructions
/// starts every `period` instructions (the first at instruction 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleConfig {
    /// Detailed-window length, in dynamic instructions.
    pub window: u64,
    /// Distance between window starts, in dynamic instructions.
    pub period: u64,
}

impl SampleConfig {
    /// Store-key suffix separating sampled cells from exact ones (and
    /// sampled cells of different geometries from each other). Appended
    /// to every timed cell's content address while sampling is enabled
    /// — including cells that fall back to exact simulation, so a
    /// sampled run's store entries are never served to an exact run.
    pub fn key_suffix(&self) -> String {
        format!("|sample=w{}p{}", self.window, self.period)
    }

    /// Detailed warm-up span replayed immediately before each measured
    /// window (except the first, which starts at instruction 0 — the
    /// program's own cold start is real, not a sampling artifact).
    ///
    /// A checkpoint restores caches, predictor, and RAS, but the
    /// pipeline itself, the cache ports, and the memory banks restart
    /// idle — a transient that biases short windows of contended
    /// workloads (measured: up to 31% CPI error on the prefetching
    /// threshold kernel at the default geometry). Replaying half a
    /// window of detailed warm-up and then discarding its statistics
    /// ([`visim_cpu::Pipeline::reset_stats`]) lets the measured span
    /// start from a busy machine. Derived from the geometry rather
    /// than configured separately, so a `WINDOW:PERIOD` spec still
    /// names the complete sampling design.
    pub fn warmup(&self) -> u64 {
        self.window / 2
    }
}

/// Parse a `VISIM_SAMPLE`/`--sample` specification. `1` selects the
/// default geometry; `WINDOW:PERIOD` an explicit one (both positive,
/// window ≤ period); empty or `0` disables sampling.
pub fn parse_spec(spec: &str) -> Result<Option<SampleConfig>, String> {
    let spec = spec.trim();
    match spec {
        "" | "0" => Ok(None),
        "1" => Ok(Some(SampleConfig {
            window: DEFAULT_WINDOW,
            period: DEFAULT_PERIOD,
        })),
        _ => {
            let (w, p) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad sample spec {spec:?}: want 1 or WINDOW:PERIOD"))?;
            let window = w
                .parse::<u64>()
                .map_err(|_| format!("bad sample window {w:?}"))?;
            let period = p
                .parse::<u64>()
                .map_err(|_| format!("bad sample period {p:?}"))?;
            if window == 0 || period < window {
                return Err(format!(
                    "bad sample geometry {spec:?}: need 1 <= window <= period"
                ));
            }
            Ok(Some(SampleConfig { window, period }))
        }
    }
}

/// CLI override (set by `--sample`); outranks the environment, like the
/// store's CLI flags.
static CLI: Mutex<Option<Option<SampleConfig>>> = Mutex::new(None);

/// Install (or with `None` clear) the CLI-level sampling selection.
pub fn set_cli(cfg: Option<Option<SampleConfig>>) {
    *CLI.lock().expect("sampling cli lock") = cfg;
}

/// The active sampling configuration: the CLI override if set, else
/// `VISIM_SAMPLE`. `None` means exact simulation. A malformed
/// environment value disables sampling (with a one-time warning) rather
/// than silently sampling with a guessed geometry.
pub fn config() -> Option<SampleConfig> {
    if let Some(cli) = *CLI.lock().expect("sampling cli lock") {
        return cli;
    }
    match std::env::var(SAMPLE_ENV) {
        Ok(v) => match parse_spec(&v) {
            Ok(cfg) => cfg,
            Err(e) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("visim: ignoring {SAMPLE_ENV}: {e}"));
                None
            }
        },
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_or_are_rejected() {
        assert_eq!(parse_spec(""), Ok(None));
        assert_eq!(parse_spec("0"), Ok(None));
        assert_eq!(
            parse_spec("1"),
            Ok(Some(SampleConfig {
                window: DEFAULT_WINDOW,
                period: DEFAULT_PERIOD,
            }))
        );
        assert_eq!(
            parse_spec(" 500:4000 "),
            Ok(Some(SampleConfig {
                window: 500,
                period: 4000,
            }))
        );
        // Back-to-back windows (full detail) are a legal degenerate case.
        assert!(parse_spec("100:100").is_ok());
        for bad in ["2000", "0:100", "100:99", "a:b", "10:", ":10", "1:2:3"] {
            assert!(parse_spec(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn key_suffix_separates_geometries() {
        let a = SampleConfig {
            window: 2000,
            period: 20_000,
        };
        let b = SampleConfig {
            window: 500,
            period: 20_000,
        };
        assert_ne!(a.key_suffix(), b.key_suffix());
        assert_eq!(a.key_suffix(), "|sample=w2000p20000");
    }
}
