//! Append-only run journal: a line-per-cell completion log beside the
//! result store.
//!
//! The store (see [`crate::store`]) already makes every finished cell
//! durable; the journal adds the *run-level* record — which cells a
//! named run completed, in what order, with what status — so a resumed
//! run can report how much prior progress it found, and a post-mortem
//! can see exactly where a crashed run stopped.
//!
//! Format: one file per run at `<store>/journal/<name>.<size>.jnl`,
//! plain text, one line per event:
//!
//! ```text
//! # visim-journal-v1 run=fig1 size=tiny rev=<git rev>
//! <fnv of line body>|cell|<status>|<cell key text>
//! <fnv of line body>|end|ok|failures=0
//! ```
//!
//! Each line carries a leading FNV-1a checksum of its body, so the torn
//! final line a SIGKILL can leave behind is detected and ignored on
//! read-back — the journal follows the same never-trust discipline as
//! the store, just line-wise instead of file-wise. The journal is
//! informational: resume correctness comes from the store's
//! content-addressed lookups, never from journal replay.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

use visim_util::fnv1a64;

use crate::store;

/// Journal file format tag (the header line's first token).
pub const JOURNAL_SCHEMA: &str = "visim-journal-v1";

struct Journal {
    file: std::fs::File,
}

static ACTIVE: Mutex<Option<Journal>> = Mutex::new(None);

fn journal_path(name: &str, size: &str) -> Option<PathBuf> {
    let dir = store::dir()?;
    Some(
        std::path::Path::new(&dir)
            .join("journal")
            .join(format!("{name}.{size}.jnl")),
    )
}

fn checksummed(body: &str) -> String {
    format!("{:016x}|{body}\n", fnv1a64(body.as_bytes()))
}

/// Parse one journal line, returning its body when the checksum holds.
fn valid_body(line: &str) -> Option<&str> {
    let (sum, body) = line.split_once('|')?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    (sum == fnv1a64(body.as_bytes())).then_some(body)
}

/// Open the journal for run `name` at workload `size`. No-op unless the
/// store is enabled. A fresh run truncates any previous journal; a
/// resumed run appends, and the count of valid prior `cell` lines is
/// returned so the caller can report recovered progress.
pub fn begin(name: &str, size: &str) -> Option<u64> {
    if !store::enabled() {
        return None;
    }
    let path = journal_path(name, size)?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok()?;
    }
    let resuming = store::resume();
    let prior = if resuming {
        std::fs::read_to_string(&path)
            .map(|text| {
                text.lines()
                    .filter_map(valid_body)
                    .filter(|b| b.starts_with("cell|"))
                    .count() as u64
            })
            .unwrap_or(0)
    } else {
        0
    };
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(resuming)
        .write(true)
        .truncate(!resuming)
        .open(&path)
        .ok()?;
    let header = format!(
        "# {JOURNAL_SCHEMA} run={name} size={size} rev={}{}",
        store::recorded_rev(),
        if resuming { " resumed" } else { "" }
    );
    file.write_all(checksummed(&header).as_bytes()).ok()?;
    file.flush().ok()?;
    *ACTIVE.lock().expect("journal lock") = Some(Journal { file });
    Some(prior)
}

/// Record one completed cell (status `ok`, `failed`, or `stored` for a
/// cell served from the result store). Flushed per line so the journal
/// survives a crash up to the last finished cell.
pub fn record(key: &store::CellKey, status: &str) {
    let mut guard = ACTIVE.lock().expect("journal lock");
    if let Some(j) = guard.as_mut() {
        let line = checksummed(&format!("cell|{status}|{}", key.text()));
        let _ = j.file.write_all(line.as_bytes());
        let _ = j.file.flush();
    }
}

/// Close the journal with an end marker carrying the failure count.
pub fn finish(failures: u64) {
    let mut guard = ACTIVE.lock().expect("journal lock");
    if let Some(mut j) = guard.take() {
        let status = if failures == 0 { "ok" } else { "failed" };
        let line = checksummed(&format!("end|{status}|failures={failures}"));
        let _ = j.file.write_all(line.as_bytes());
        let _ = j.file.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksummed_lines_round_trip_and_torn_lines_are_ignored() {
        let line = checksummed("cell|ok|timed|conv|v-|tiny");
        let body = valid_body(line.trim_end()).expect("valid line accepted");
        assert_eq!(body, "cell|ok|timed|conv|v-|tiny");
        // A torn tail (truncated mid-line) fails the checksum.
        let torn = &line[..line.len() - 4];
        assert_eq!(valid_body(torn.trim_end()), None);
        // A flipped byte in the body fails too.
        let flipped = line.replace("ok", "ok!");
        assert_eq!(valid_body(flipped.trim_end()), None);
        // Garbage without a delimiter is rejected, not a panic.
        assert_eq!(valid_body("no-delimiter-here"), None);
        assert_eq!(valid_body(""), None);
    }
}
